// Remote engine: the Memo API over a connection to this machine's memo
// server. Values are encoded with the transferable codec for the wire, and
// every delivered value is checked against the receiving machine's profile —
// the lossless-domain-mapping contract of Sec. 3.1.3.
#pragma once

#include "core/engine.h"
#include "server/resilient_channel.h"
#include "transferable/machine_profile.h"
#include "transport/transport.h"
#include "util/retry.h"

namespace dmemo {

struct RemoteEngineOptions {
  std::string app;
  // The machine this process runs on (ADF host name). Used only for
  // diagnostics; routing happens server-side.
  std::string host;
  // Receiving-machine profile for domain checks on delivered values.
  MachineProfile profile = MachineProfile::Universal();
  // When false, a lossy delivery is logged but the value is still returned
  // (the "caveat emptor" mode); when true (default) it is a DATA_LOSS error.
  bool strict_domains = true;
  // Whole-call deadline for every engine operation, forwarding hops
  // included. Zero (the default unless DMEMO_RPC_TIMEOUT_MS is set) keeps
  // the paper's unbounded blocking-get semantics; nonzero makes a dead or
  // partitioned server surface as TIMED_OUT instead of a hang.
  std::chrono::milliseconds call_timeout = CallTimeoutFromEnv();
  // Reconnect/retry policy for the server link (DESIGN.md "Fault
  // tolerance"). Retries are at-most-once safe: the engine's channel mints
  // a request id per call and servers dedupe on it.
  RetryPolicy retry = RetryPolicy::FromEnv();
};

// Connects to the memo server at `server_url` via `transport`.
Result<MemoEnginePtr> MakeRemoteEngine(TransportPtr transport,
                                       const std::string& server_url,
                                       RemoteEngineOptions options);

// Register an application ADF with one memo server over the wire (the
// launcher calls this for every server; tests use it directly).
Status RegisterAppWith(TransportPtr transport, const std::string& server_url,
                       const std::string& adf_text);

}  // namespace dmemo
