// In-process engine: the whole memo space lives in one FolderDirectory of
// transferable pointers. Many Memo handles (one per simulated process /
// thread) share one LocalSpace — the single shared-memory-machine deployment
// of the abstraction.
#pragma once

#include "core/engine.h"
#include "folder/directory.h"

namespace dmemo {

class LocalSpace {
 public:
  explicit LocalSpace(std::string app) : app_(std::move(app)) {}

  const std::string& app() const { return app_; }
  FolderDirectory<TransferablePtr>& directory() { return directory_; }

  // Wake all blocked operations with CANCELLED.
  void Close() { directory_.Close(); }

 private:
  std::string app_;
  FolderDirectory<TransferablePtr> directory_;
};

using LocalSpacePtr = std::shared_ptr<LocalSpace>;

MemoEnginePtr MakeLocalEngine(LocalSpacePtr space);

}  // namespace dmemo
