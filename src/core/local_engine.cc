#include "core/local_engine.h"

namespace dmemo {

namespace {

class LocalEngine final : public MemoEngine {
 public:
  explicit LocalEngine(LocalSpacePtr space) : space_(std::move(space)) {}

  const std::string& app() const override { return space_->app(); }

  Status Put(const Key& key, TransferablePtr value) override {
    return space_->directory().Put(Qualify(key), std::move(value));
  }

  Status PutDelayed(const Key& key1, const Key& key2,
                    TransferablePtr value) override {
    return space_->directory().PutDelayed(Qualify(key1), Qualify(key2),
                                          std::move(value));
  }

  Result<TransferablePtr> Get(const Key& key) override {
    return space_->directory().Get(Qualify(key));
  }

  Result<TransferablePtr> GetCopy(const Key& key) override {
    return space_->directory().GetCopy(Qualify(key));
  }

  Result<std::optional<TransferablePtr>> GetSkip(const Key& key) override {
    return space_->directory().GetSkip(Qualify(key));
  }

  Result<std::pair<Key, TransferablePtr>> GetAlt(
      std::span<const Key> keys) override {
    DMEMO_ASSIGN_OR_RETURN(auto hit,
                           space_->directory().GetAlt(Qualify(keys)));
    return std::make_pair(hit.first.key, std::move(hit.second));
  }

  Result<std::optional<std::pair<Key, TransferablePtr>>> GetAltSkip(
      std::span<const Key> keys) override {
    DMEMO_ASSIGN_OR_RETURN(auto hit,
                           space_->directory().GetAltSkip(Qualify(keys)));
    if (!hit.has_value()) return std::optional<std::pair<Key, TransferablePtr>>();
    return std::optional<std::pair<Key, TransferablePtr>>(
        std::make_pair(hit->first.key, std::move(hit->second)));
  }

  Result<std::uint64_t> Count(const Key& key) override {
    return static_cast<std::uint64_t>(
        space_->directory().Count(Qualify(key)));
  }

 private:
  QualifiedKey Qualify(const Key& key) const {
    return QualifiedKey{space_->app(), key};
  }
  std::vector<QualifiedKey> Qualify(std::span<const Key> keys) const {
    std::vector<QualifiedKey> out;
    out.reserve(keys.size());
    for (const Key& k : keys) out.push_back(Qualify(k));
    return out;
  }

  LocalSpacePtr space_;
};

}  // namespace

MemoEnginePtr MakeLocalEngine(LocalSpacePtr space) {
  return std::make_shared<LocalEngine>(std::move(space));
}

}  // namespace dmemo
