// Engine interface behind the Memo API.
//
// The same application code runs against three deployments:
//   * LocalEngine   — one address space, folders in a FolderDirectory of
//     transferable pointers (the shared-memory MIMD abstraction);
//   * RemoteEngine  — a connection to this machine's memo server; values
//     cross the wire encoded and are domain-checked against the receiving
//     machine's profile on delivery (Sec. 3.1.3);
// both created by the helpers in memo.h. Patterns, examples, baselines and
// benches all program against this interface.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "folder/key.h"
#include "transferable/transferable.h"
#include "util/status.h"

namespace dmemo {

class MemoEngine {
 public:
  virtual ~MemoEngine() = default;

  virtual const std::string& app() const = 0;

  virtual Status Put(const Key& key, TransferablePtr value) = 0;
  virtual Status PutDelayed(const Key& key1, const Key& key2,
                            TransferablePtr value) = 0;
  virtual Result<TransferablePtr> Get(const Key& key) = 0;
  virtual Result<TransferablePtr> GetCopy(const Key& key) = 0;
  virtual Result<std::optional<TransferablePtr>> GetSkip(const Key& key) = 0;
  virtual Result<std::pair<Key, TransferablePtr>> GetAlt(
      std::span<const Key> keys) = 0;
  virtual Result<std::optional<std::pair<Key, TransferablePtr>>> GetAltSkip(
      std::span<const Key> keys) = 0;

  // Extractable memos currently in `key` (diagnostics; not part of the
  // paper's API surface).
  virtual Result<std::uint64_t> Count(const Key& key) = 0;
};

using MemoEnginePtr = std::shared_ptr<MemoEngine>;

}  // namespace dmemo
