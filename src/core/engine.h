// Engine interface behind the Memo API.
//
// The same application code runs against three deployments:
//   * LocalEngine   — one address space, folders in a FolderDirectory of
//     transferable pointers (the shared-memory MIMD abstraction);
//   * RemoteEngine  — a connection to this machine's memo server; values
//     cross the wire encoded and are domain-checked against the receiving
//     machine's profile on delivery (Sec. 3.1.3);
// both created by the helpers in memo.h. Patterns, examples, baselines and
// benches all program against this interface.
#pragma once

#include <future>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "folder/key.h"
#include "transferable/transferable.h"
#include "util/status.h"

namespace dmemo {

class MemoEngine {
 public:
  virtual ~MemoEngine() = default;

  virtual const std::string& app() const = 0;

  virtual Status Put(const Key& key, TransferablePtr value) = 0;
  virtual Status PutDelayed(const Key& key1, const Key& key2,
                            TransferablePtr value) = 0;
  virtual Result<TransferablePtr> Get(const Key& key) = 0;
  virtual Result<TransferablePtr> GetCopy(const Key& key) = 0;
  virtual Result<std::optional<TransferablePtr>> GetSkip(const Key& key) = 0;
  virtual Result<std::pair<Key, TransferablePtr>> GetAlt(
      std::span<const Key> keys) = 0;
  virtual Result<std::optional<std::pair<Key, TransferablePtr>>> GetAltSkip(
      std::span<const Key> keys) = 0;

  // Extractable memos currently in `key` (diagnostics; not part of the
  // paper's API surface).
  virtual Result<std::uint64_t> Count(const Key& key) = 0;

  // ---- async pipeline (ROADMAP item 1) ----
  //
  // Fire-and-collect variants: the returned future resolves when the op
  // completes. Async ops carry no mutual ordering guarantee — two
  // PutAsyncs issued back to back may land in either order (they may ride
  // one packed frame and dispatch concurrently server-side); callers that
  // need order wait on the future before issuing the next op.
  //
  // Defaults make every engine usable asynchronously: PutAsync runs the
  // (non-blocking) Put inline and returns a ready future; GetAsync runs
  // the possibly-parking Get on its own thread. RemoteEngine overrides
  // both with the pipelined wire path (many in-flight calls coalesced
  // into packed frames on one connection) — that is the implementation
  // the throughput numbers come from.
  virtual std::future<Status> PutAsync(const Key& key,
                                       TransferablePtr value) {
    std::promise<Status> ready;
    std::future<Status> future = ready.get_future();
    ready.set_value(Put(key, std::move(value)));
    return future;
  }
  virtual std::future<Result<TransferablePtr>> GetAsync(const Key& key) {
    return std::async(std::launch::async,
                      [this, key] { return Get(key); });
  }

  // Pipelining hint: "I am about to block waiting on futures". A remote
  // engine pushes out whatever its formation queue has coalesced so far —
  // the issuing burst is over, so holding a partial batch for the delay
  // timer would stall the caller for nothing. The timer remains the
  // backstop for callers that never hint. No-op for engines without a wire
  // (local), and cheap when the queue is empty.
  virtual void Flush() {}
};

using MemoEnginePtr = std::shared_ptr<MemoEngine>;

}  // namespace dmemo
