#include "core/memo.h"

#include <unistd.h>

#include <chrono>

#include "util/hash.h"

namespace dmemo {

Symbol Memo::create_symbol() {
  // Uniqueness across processes with no coordination: mix the pid and a
  // startup timestamp into a per-process sequence. Collision probability is
  // that of a 64-bit hash — negligible next to anything else in the system.
  static const std::uint64_t kProcessSeed = HashCombine(
      static_cast<std::uint64_t>(::getpid()),
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()));
  static std::atomic<std::uint64_t> counter{0};
  return Mix64(kProcessSeed ^ counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace dmemo
