// class Memo — the D-Memo application programming interface (paper Sec. 6).
//
// A Memo is a lightweight handle a process uses to talk to the memo space:
//
//   Memo memo = Memo::Local(space);              // shared-memory deployment
//   auto jar = memo.symbol("job_jar");
//   memo.put(Key(jar), MakeInt32(42));           // deposit a memo
//   auto v = memo.get(Key(jar));                 // blocking extraction
//
// The seven primitives mirror Sec. 6.1.2 exactly:
//   put(key, value)                  deposit; returns immediately
//   put_delayed(key1, key2, value)   dataflow trigger (Sec. 6.3.3)
//   get(key)                         blocking extraction
//   get_copy(key)                    blocking examine (memo stays)
//   get_skip(key)                    non-blocking; NIL -> std::nullopt
//   get_alt(keys)                    blocking extraction from any folder
//   get_alt_skip(keys)               non-blocking variant
//
// plus create_symbol() (fresh unique symbol) and symbol(name) (stable named
// symbol shared across processes). The handle is cheap to copy; all copies
// share the engine.
#pragma once

#include <atomic>

#include "core/engine.h"
#include "core/local_engine.h"

namespace dmemo {

class Memo {
 public:
  explicit Memo(MemoEnginePtr engine) : engine_(std::move(engine)) {}

  // Handle onto an in-process memo space.
  static Memo Local(LocalSpacePtr space) {
    return Memo(MakeLocalEngine(std::move(space)));
  }

  const std::string& app() const { return engine_->app(); }
  const MemoEnginePtr& engine() const { return engine_; }

  // ---- symbols (Sec. 6.1.1) ----

  // A fresh symbol no other create_symbol call in any process returns.
  Symbol create_symbol();

  // Stable symbol for a well-known name; equal in every process.
  Symbol symbol(std::string_view name) const { return SymbolFromName(name); }

  // ---- basic functions (Sec. 6.1.2) ----

  Status put(const Key& key, TransferablePtr value) {
    return engine_->Put(key, std::move(value));
  }

  Status put_delayed(const Key& key1, const Key& key2,
                     TransferablePtr value) {
    return engine_->PutDelayed(key1, key2, std::move(value));
  }

  Result<TransferablePtr> get(const Key& key) { return engine_->Get(key); }

  Result<TransferablePtr> get_copy(const Key& key) {
    return engine_->GetCopy(key);
  }

  Result<std::optional<TransferablePtr>> get_skip(const Key& key) {
    return engine_->GetSkip(key);
  }

  Result<std::pair<Key, TransferablePtr>> get_alt(
      std::span<const Key> keys) {
    return engine_->GetAlt(keys);
  }

  Result<std::optional<std::pair<Key, TransferablePtr>>> get_alt_skip(
      std::span<const Key> keys) {
    return engine_->GetAltSkip(keys);
  }

  // ---- async pipeline ----
  //
  // Futures resolve when the op completes; no ordering between in-flight
  // async ops (see MemoEngine::PutAsync). Against a RemoteEngine these
  // pipeline over one connection — hundreds of logical clients' worth of
  // small ops coalesce into packed frames instead of paying a round trip
  // each.

  std::future<Status> put_async(const Key& key, TransferablePtr value) {
    return engine_->PutAsync(key, std::move(value));
  }

  std::future<Result<TransferablePtr>> get_async(const Key& key) {
    return engine_->GetAsync(key);
  }

  // Call before blocking on async futures: pushes out any partially
  // coalesced packed frame immediately instead of waiting for the
  // formation delay timer (MemoEngine::Flush). A pipelined client's loop
  // is `put_async…; flush(); future.get()`.
  void flush() { engine_->Flush(); }

  // Diagnostics (not part of the paper's surface).
  Result<std::uint64_t> count(const Key& key) { return engine_->Count(key); }

 private:
  MemoEnginePtr engine_;
};

}  // namespace dmemo
