#include "core/remote_engine.h"

#include "transferable/codec.h"
#include "util/log.h"
#include "util/trace.h"

namespace dmemo {

namespace {

// Decode + domain-check a delivered value (Sec. 3.1.3). A free function so
// async completion callbacks can capture the profile by value and run after
// the engine may be gone.
Result<TransferablePtr> DeliverValue(const IoBuf& encoded,
                                     const MachineProfile& profile,
                                     bool strict_domains,
                                     const std::string& host) {
  DMEMO_ASSIGN_OR_RETURN(TransferablePtr value, DecodeGraphFromBytes(encoded));
  if (value != nullptr) {
    Status domain = CheckRepresentable(*value, profile);
    if (!domain.ok()) {
      if (strict_domains) return domain;
      DMEMO_LOG(kWarn) << "delivering lossy value to " << host << ": "
                       << domain.ToString();
    }
  }
  return value;
}

class RemoteEngine final : public MemoEngine {
 public:
  RemoteEngine(ResilientChannelPtr channel, RemoteEngineOptions options)
      : channel_(std::move(channel)), options_(std::move(options)) {}

  ~RemoteEngine() override { channel_->Close(); }

  const std::string& app() const override { return options_.app; }

  Status Put(const Key& key, TransferablePtr value) override {
    Request req = Base(Op::kPut);
    req.key = key;
    req.value = EncodeGraphToIoBuf(value);
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    return resp.ToStatus();
  }

  Status PutDelayed(const Key& key1, const Key& key2,
                    TransferablePtr value) override {
    Request req = Base(Op::kPutDelayed);
    req.key = key1;
    req.key2 = key2;
    req.value = EncodeGraphToIoBuf(value);
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    return resp.ToStatus();
  }

  Result<TransferablePtr> Get(const Key& key) override {
    Request req = Base(Op::kGet);
    req.key = key;
    return CallForValue(req);
  }

  Result<TransferablePtr> GetCopy(const Key& key) override {
    Request req = Base(Op::kGetCopy);
    req.key = key;
    return CallForValue(req);
  }

  Result<std::optional<TransferablePtr>> GetSkip(const Key& key) override {
    Request req = Base(Op::kGetSkip);
    req.key = key;
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    DMEMO_RETURN_IF_ERROR(resp.ToStatus());
    if (!resp.has_value) return std::optional<TransferablePtr>();
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr value, Deliver(resp.value));
    return std::optional<TransferablePtr>(std::move(value));
  }

  Result<std::pair<Key, TransferablePtr>> GetAlt(
      std::span<const Key> keys) override {
    Request req = Base(Op::kGetAlt);
    req.alts.assign(keys.begin(), keys.end());
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    DMEMO_RETURN_IF_ERROR(resp.ToStatus());
    if (!resp.has_value || !resp.has_key) {
      return InternalError("get_alt response missing value or key");
    }
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr value, Deliver(resp.value));
    return std::make_pair(resp.key, std::move(value));
  }

  Result<std::optional<std::pair<Key, TransferablePtr>>> GetAltSkip(
      std::span<const Key> keys) override {
    Request req = Base(Op::kGetAltSkip);
    req.alts.assign(keys.begin(), keys.end());
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    DMEMO_RETURN_IF_ERROR(resp.ToStatus());
    if (!resp.has_value) {
      return std::optional<std::pair<Key, TransferablePtr>>();
    }
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr value, Deliver(resp.value));
    return std::optional<std::pair<Key, TransferablePtr>>(
        std::make_pair(resp.key, std::move(value)));
  }

  Result<std::uint64_t> Count(const Key& key) override {
    Request req = Base(Op::kCount);
    req.key = key;
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    DMEMO_RETURN_IF_ERROR(resp.ToStatus());
    return resp.count;
  }

  // Pipelined wire path: many in-flight calls multiplex over the resilient
  // channel's async surface, coalescing into packed frames (PROTOCOL.md
  // §2). Completion callbacks capture what they need by value — an engine
  // may be destroyed while calls are in flight; the futures still resolve.
  std::future<Status> PutAsync(const Key& key,
                               TransferablePtr value) override {
    Request req = Base(Op::kPut);
    req.key = key;
    req.value = EncodeGraphToIoBuf(value);
    auto promise = std::make_shared<std::promise<Status>>();
    std::future<Status> future = promise->get_future();
    channel_->CallAsync(std::move(req), [promise](Result<Response> result) {
      promise->set_value(result.ok() ? result->ToStatus() : result.status());
    });
    return future;
  }

  std::future<Result<TransferablePtr>> GetAsync(const Key& key) override {
    Request req = Base(Op::kGet);
    req.key = key;
    auto promise = std::make_shared<std::promise<Result<TransferablePtr>>>();
    std::future<Result<TransferablePtr>> future = promise->get_future();
    channel_->CallAsync(
        std::move(req),
        [promise, profile = options_.profile, strict = options_.strict_domains,
         host = options_.host](Result<Response> result) {
          if (!result.ok()) {
            promise->set_value(result.status());
            return;
          }
          const Status status = result->ToStatus();
          if (!status.ok()) {
            promise->set_value(status);
            return;
          }
          if (!result->has_value) {
            promise->set_value(
                InternalError("response missing value for get"));
            return;
          }
          promise->set_value(
              DeliverValue(result->value, profile, strict, host));
        });
    return future;
  }

  void Flush() override { channel_->Flush(); }

 private:
  Request Base(Op op) const {
    Request req;
    req.op = op;
    req.app = options_.app;
    // The originating client mints the trace id, so a deposit can be
    // followed across every server it touches (util/trace.h).
    req.trace_id = NextTraceId();
    return req;
  }

  Result<TransferablePtr> CallForValue(const Request& req) {
    DMEMO_ASSIGN_OR_RETURN(Response resp, channel_->Call(req));
    DMEMO_RETURN_IF_ERROR(resp.ToStatus());
    if (!resp.has_value) {
      return InternalError("response missing value for " +
                           std::string(OpName(req.op)));
    }
    return Deliver(resp.value);
  }

  // Decode + domain-check a delivered value against this machine's profile.
  // The payload is read in place from its (typically single-slice) IoBuf.
  Result<TransferablePtr> Deliver(const IoBuf& encoded) {
    return DeliverValue(encoded, options_.profile, options_.strict_domains,
                        options_.host);
  }

  ResilientChannelPtr channel_;
  RemoteEngineOptions options_;
};

}  // namespace

Result<MemoEnginePtr> MakeRemoteEngine(TransportPtr transport,
                                       const std::string& server_url,
                                       RemoteEngineOptions options) {
  // Pure client: no inbound requests, no worker pool needed. The eager
  // Connect keeps the historical contract that a bad URL fails here, not
  // on the first Put; after that the channel re-dials on its own.
  ResilientChannel::Options copts;
  copts.retry = options.retry;
  copts.call_timeout = options.call_timeout;
  DMEMO_ASSIGN_OR_RETURN(
      ResilientChannelPtr channel,
      ResilientChannel::Connect(std::move(transport), server_url,
                                std::move(copts)));
  return MemoEnginePtr(
      std::make_shared<RemoteEngine>(std::move(channel), std::move(options)));
}

Status RegisterAppWith(TransportPtr transport, const std::string& server_url,
                       const std::string& adf_text) {
  DMEMO_ASSIGN_OR_RETURN(ConnectionPtr conn, transport->Dial(server_url));
  auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
  Request req;
  req.op = Op::kRegisterApp;
  req.text = adf_text;
  DMEMO_ASSIGN_OR_RETURN(Response resp, channel->Call(req));
  channel->Close();
  return resp.ToStatus();
}

}  // namespace dmemo
