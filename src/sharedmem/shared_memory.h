// SharedMemory foundation (paper Sec. 3 / 3.1.2).
//
// The paper's running example of portability: "on the Encore Multimax, one
// must specify the maximum amount of shared memory the application intends
// to use, then allocate and free pieces of it using specially named
// primitives... System V systems manage shared memory in a similar way,
// although the functions... differ in a subtle manner. Abstract classes
// allow shared memory and its conventional use to have a consistent
// interface."
//
// Derivations provided:
//   * InProcSharedMemory  — heap-backed arena; Encore-style "declare the
//     maximum up front" protocol; used by the single-process engine & tests.
//   * PosixSharedMemory   — shm_open/mmap named segment; shared between
//     cooperating processes on one host.
//   * SysVSharedMemory    — shmget/shmat; the genuinely different API the
//     paper cites, kept to demonstrate that a third derivation needs no base
//     class change.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dmemo {

class SharedMemory {
 public:
  virtual ~SharedMemory() = default;

  // Reserve the segment. `max_bytes` is the application's declared maximum
  // (the Encore-style contract); derivations that can grow lazily may treat
  // it as a cap. Must be called before Allocate.
  virtual Status Attach(std::size_t max_bytes) = 0;

  // Release the whole pool ("on termination, it must release the pool").
  // Idempotent.
  virtual Status Detach() = 0;

  // Allocate / free pieces of the pool. Offsets, not pointers: a segment
  // may map at different addresses in different processes.
  virtual Result<std::size_t> Allocate(std::size_t bytes) = 0;
  virtual Status Free(std::size_t offset) = 0;

  // Translate an offset to this process's mapping.
  virtual void* At(std::size_t offset) = 0;

  virtual std::size_t capacity() const = 0;
  virtual std::size_t used() const = 0;

  // Derivation label for diagnostics ("inproc", "posix", "sysv").
  virtual std::string_view mechanism() const = 0;
};

enum class SharedMemoryKind { kInProc, kPosix, kSysV };

// Create an unattached segment. `name` identifies the segment for the
// cross-process derivations (ignored by kInProc).
Result<std::unique_ptr<SharedMemory>> MakeSharedMemory(SharedMemoryKind kind,
                                                       std::string name = "");

}  // namespace dmemo
