// Region-resident allocator shared by every SharedMemory derivation.
//
// All allocator state (header, free list) lives *inside* the managed region
// and uses offsets instead of pointers, so two processes mapping the same
// segment at different addresses see one coherent heap. Mutual exclusion is
// a process-shared pthread mutex stored in the region header.
//
// Layout:   [Header][block][block]...
// A block is an 8-byte size word followed by the payload; free blocks keep a
// next-offset in their payload and are kept address-ordered so adjacent free
// blocks coalesce on Free.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace dmemo {

class RegionAllocator {
 public:
  // Offset sentinel for "no block".
  static constexpr std::uint64_t kNull = ~std::uint64_t{0};

  // Initialize a fresh region of `bytes` starting at `base`. Writes the
  // header; only ONE process must call this per segment.
  static Result<RegionAllocator> Create(void* base, std::size_t bytes);

  // Adopt an already-initialized region (other processes / re-attach).
  static Result<RegionAllocator> Open(void* base, std::size_t bytes);

  // Returns the offset of the payload, aligned to 16 bytes.
  Result<std::size_t> Allocate(std::size_t bytes);
  Status Free(std::size_t offset);

  void* At(std::size_t offset) const;
  std::size_t capacity() const;
  std::size_t used() const;

  // Number of blocks on the free list (white-box metric for tests).
  std::size_t FreeBlockCount() const;

 private:
  struct Header;
  struct FreeBlock;

  explicit RegionAllocator(void* base) : base_(static_cast<char*>(base)) {}

  Header* header() const;

  char* base_;
};

}  // namespace dmemo
