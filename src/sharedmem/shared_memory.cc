#include "sharedmem/shared_memory.h"

#include <fcntl.h>
#include <sys/ipc.h>
#include <sys/mman.h>
#include <sys/shm.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <vector>

#include "sharedmem/region_allocator.h"
#include "util/hash.h"

namespace dmemo {

namespace {

// Encore-style heap arena: the application declares its maximum up front,
// the pool is reserved in one piece, and pieces are carved with the region
// allocator. Single-process only.
class InProcSharedMemory final : public SharedMemory {
 public:
  ~InProcSharedMemory() override { (void)Detach(); }

  Status Attach(std::size_t max_bytes) override {
    if (!region_.empty()) {
      return FailedPreconditionError("already attached");
    }
    region_.resize(max_bytes);
    DMEMO_ASSIGN_OR_RETURN(auto alloc,
                           RegionAllocator::Create(region_.data(), max_bytes));
    alloc_ = alloc;
    return Status::Ok();
  }

  Status Detach() override {
    region_.clear();
    region_.shrink_to_fit();
    alloc_.reset();
    return Status::Ok();
  }

  Result<std::size_t> Allocate(std::size_t bytes) override {
    DMEMO_RETURN_IF_ERROR(CheckAttached());
    return alloc_->Allocate(bytes);
  }

  Status Free(std::size_t offset) override {
    DMEMO_RETURN_IF_ERROR(CheckAttached());
    return alloc_->Free(offset);
  }

  void* At(std::size_t offset) override {
    return alloc_ ? alloc_->At(offset) : nullptr;
  }

  std::size_t capacity() const override {
    return alloc_ ? alloc_->capacity() : 0;
  }
  std::size_t used() const override { return alloc_ ? alloc_->used() : 0; }
  std::string_view mechanism() const override { return "inproc"; }

 private:
  Status CheckAttached() const {
    if (!alloc_) return FailedPreconditionError("not attached");
    return Status::Ok();
  }

  std::vector<char> region_;
  std::optional<RegionAllocator> alloc_;
};

// POSIX shm_open/mmap derivation: a named segment shared by cooperating
// processes. The creator initializes the heap; later attachers adopt it.
class PosixSharedMemory final : public SharedMemory {
 public:
  explicit PosixSharedMemory(std::string name) : name_(std::move(name)) {}
  ~PosixSharedMemory() override { (void)Detach(); }

  Status Attach(std::size_t max_bytes) override {
    if (base_ != nullptr) return FailedPreconditionError("already attached");
    bool created = true;
    int fd = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      created = false;
      fd = ::shm_open(name_.c_str(), O_RDWR, 0600);
      if (fd < 0) {
        return UnavailableError("shm_open failed for " + name_ + ": " +
                                std::strerror(errno));
      }
    }
    if (created && ::ftruncate(fd, static_cast<off_t>(max_bytes)) != 0) {
      ::close(fd);
      ::shm_unlink(name_.c_str());
      return UnavailableError("ftruncate failed: " +
                              std::string(std::strerror(errno)));
    }
    void* base = ::mmap(nullptr, max_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      if (created) ::shm_unlink(name_.c_str());
      return UnavailableError("mmap failed: " +
                              std::string(std::strerror(errno)));
    }
    auto alloc = created ? RegionAllocator::Create(base, max_bytes)
                         : RegionAllocator::Open(base, max_bytes);
    if (!alloc.ok()) {
      ::munmap(base, max_bytes);
      if (created) ::shm_unlink(name_.c_str());
      return alloc.status();
    }
    base_ = base;
    size_ = max_bytes;
    owner_ = created;
    alloc_ = *alloc;
    return Status::Ok();
  }

  Status Detach() override {
    if (base_ == nullptr) return Status::Ok();
    ::munmap(base_, size_);
    if (owner_) ::shm_unlink(name_.c_str());
    base_ = nullptr;
    alloc_.reset();
    return Status::Ok();
  }

  Result<std::size_t> Allocate(std::size_t bytes) override {
    if (!alloc_) return FailedPreconditionError("not attached");
    return alloc_->Allocate(bytes);
  }

  Status Free(std::size_t offset) override {
    if (!alloc_) return FailedPreconditionError("not attached");
    return alloc_->Free(offset);
  }

  void* At(std::size_t offset) override {
    return alloc_ ? alloc_->At(offset) : nullptr;
  }

  std::size_t capacity() const override {
    return alloc_ ? alloc_->capacity() : 0;
  }
  std::size_t used() const override { return alloc_ ? alloc_->used() : 0; }
  std::string_view mechanism() const override { return "posix"; }

 private:
  std::string name_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool owner_ = false;
  std::optional<RegionAllocator> alloc_;
};

// System V shmget/shmat derivation — the API the paper contrasts with the
// Encore's: subtly different calls, same abstract protocol.
class SysVSharedMemory final : public SharedMemory {
 public:
  explicit SysVSharedMemory(std::string name) : name_(std::move(name)) {}
  ~SysVSharedMemory() override { (void)Detach(); }

  Status Attach(std::size_t max_bytes) override {
    if (base_ != nullptr) return FailedPreconditionError("already attached");
    // Derive a stable key from the name (ftok needs an existing file; a name
    // hash avoids that dependency).
    const key_t key =
        static_cast<key_t>(Fnv1a64(name_) & 0x7fffffff) | 1;
    bool created = true;
    int id = ::shmget(key, max_bytes, IPC_CREAT | IPC_EXCL | 0600);
    if (id < 0) {
      created = false;
      id = ::shmget(key, max_bytes, 0600);
      if (id < 0) {
        return UnavailableError("shmget failed: " +
                                std::string(std::strerror(errno)));
      }
    }
    void* base = ::shmat(id, nullptr, 0);
    if (base == reinterpret_cast<void*>(-1)) {
      if (created) ::shmctl(id, IPC_RMID, nullptr);
      return UnavailableError("shmat failed: " +
                              std::string(std::strerror(errno)));
    }
    auto alloc = created ? RegionAllocator::Create(base, max_bytes)
                         : RegionAllocator::Open(base, max_bytes);
    if (!alloc.ok()) {
      ::shmdt(base);
      if (created) ::shmctl(id, IPC_RMID, nullptr);
      return alloc.status();
    }
    base_ = base;
    shmid_ = id;
    owner_ = created;
    alloc_ = *alloc;
    return Status::Ok();
  }

  Status Detach() override {
    if (base_ == nullptr) return Status::Ok();
    ::shmdt(base_);
    if (owner_) ::shmctl(shmid_, IPC_RMID, nullptr);
    base_ = nullptr;
    alloc_.reset();
    return Status::Ok();
  }

  Result<std::size_t> Allocate(std::size_t bytes) override {
    if (!alloc_) return FailedPreconditionError("not attached");
    return alloc_->Allocate(bytes);
  }

  Status Free(std::size_t offset) override {
    if (!alloc_) return FailedPreconditionError("not attached");
    return alloc_->Free(offset);
  }

  void* At(std::size_t offset) override {
    return alloc_ ? alloc_->At(offset) : nullptr;
  }

  std::size_t capacity() const override {
    return alloc_ ? alloc_->capacity() : 0;
  }
  std::size_t used() const override { return alloc_ ? alloc_->used() : 0; }
  std::string_view mechanism() const override { return "sysv"; }

 private:
  std::string name_;
  void* base_ = nullptr;
  int shmid_ = -1;
  bool owner_ = false;
  std::optional<RegionAllocator> alloc_;
};

}  // namespace

Result<std::unique_ptr<SharedMemory>> MakeSharedMemory(SharedMemoryKind kind,
                                                       std::string name) {
  switch (kind) {
    case SharedMemoryKind::kInProc:
      return std::unique_ptr<SharedMemory>(
          std::make_unique<InProcSharedMemory>());
    case SharedMemoryKind::kPosix: {
      if (name.empty()) {
        return InvalidArgumentError("posix shared memory requires a name");
      }
      if (name.front() != '/') name.insert(name.begin(), '/');
      return std::unique_ptr<SharedMemory>(
          std::make_unique<PosixSharedMemory>(std::move(name)));
    }
    case SharedMemoryKind::kSysV: {
      if (name.empty()) {
        return InvalidArgumentError("sysv shared memory requires a name");
      }
      return std::unique_ptr<SharedMemory>(
          std::make_unique<SysVSharedMemory>(std::move(name)));
    }
  }
  return InvalidArgumentError("unknown shared memory kind");
}

}  // namespace dmemo
