#include "sharedmem/region_allocator.h"

#include <pthread.h>

#include <cstring>
#include <new>

namespace dmemo {

namespace {
constexpr std::uint64_t kMagic = 0xd3ed0a110cULL;  // "dmemo alloc"
constexpr std::size_t kAlign = 16;
// Block header: the size word plus (for free blocks) the next-offset, padded
// to one alignment unit so payloads stay 16-byte aligned.
constexpr std::size_t kBlockHeader = 16;

constexpr std::size_t AlignUp(std::size_t n) {
  return (n + (kAlign - 1)) & ~(kAlign - 1);
}
}  // namespace

struct RegionAllocator::Header {
  std::uint64_t magic;
  std::uint64_t capacity;   // total region bytes including this header
  std::uint64_t used;       // payload bytes currently allocated
  std::uint64_t free_head;  // offset of first free block, kNull if none
  pthread_mutex_t mu;       // process-shared
};

// Every block starts with a 16-byte header holding the payload size and —
// for free blocks — the next free offset; the second word is padding for
// allocated blocks so payloads keep 16-byte alignment.
struct RegionAllocator::FreeBlock {
  std::uint64_t size;  // payload bytes
  std::uint64_t next;  // offset of next free block (of its size word)
};

RegionAllocator::Header* RegionAllocator::header() const {
  return reinterpret_cast<Header*>(base_);
}

Result<RegionAllocator> RegionAllocator::Create(void* base,
                                                std::size_t bytes) {
  const std::size_t header_size = AlignUp(sizeof(Header));
  if (bytes < header_size + kAlign * 4) {
    return InvalidArgumentError("region too small for allocator header");
  }
  RegionAllocator a(base);
  Header* h = a.header();
  h->magic = kMagic;
  h->capacity = bytes;
  h->used = 0;

  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  pthread_mutex_init(&h->mu, &attr);
  pthread_mutexattr_destroy(&attr);

  // One big free block covering everything after the header.
  const std::size_t first = header_size;
  auto* blk = reinterpret_cast<FreeBlock*>(a.base_ + first);
  blk->size = bytes - first - kBlockHeader;
  blk->next = kNull;
  h->free_head = first;
  return a;
}

Result<RegionAllocator> RegionAllocator::Open(void* base, std::size_t bytes) {
  RegionAllocator a(base);
  Header* h = a.header();
  if (h->magic != kMagic) {
    return FailedPreconditionError("region is not an initialized dmemo heap");
  }
  if (h->capacity != bytes) {
    return InvalidArgumentError("region size mismatch: header says " +
                                std::to_string(h->capacity) + ", caller " +
                                std::to_string(bytes));
  }
  return a;
}

Result<std::size_t> RegionAllocator::Allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::size_t need = AlignUp(bytes);
  Header* h = header();
  pthread_mutex_lock(&h->mu);

  // First fit over the address-ordered free list.
  std::uint64_t prev = kNull;
  std::uint64_t cur = h->free_head;
  while (cur != kNull) {
    auto* blk = reinterpret_cast<FreeBlock*>(base_ + cur);
    if (blk->size >= need) {
      const std::uint64_t remainder = blk->size - need;
      std::uint64_t successor = blk->next;
      // Split when the tail can hold a block header plus one aligned unit.
      if (remainder >= kBlockHeader + kAlign) {
        const std::uint64_t tail_off = cur + kBlockHeader + need;
        auto* tail = reinterpret_cast<FreeBlock*>(base_ + tail_off);
        tail->size = remainder - kBlockHeader;
        tail->next = blk->next;
        blk->size = need;
        successor = tail_off;
      }
      if (prev == kNull) {
        h->free_head = successor;
      } else {
        reinterpret_cast<FreeBlock*>(base_ + prev)->next = successor;
      }
      h->used += blk->size;
      pthread_mutex_unlock(&h->mu);
      return static_cast<std::size_t>(cur + kBlockHeader);
    }
    prev = cur;
    cur = blk->next;
  }
  pthread_mutex_unlock(&h->mu);
  return ResourceExhaustedError("shared region exhausted: need " +
                                std::to_string(need) + " bytes");
}

Status RegionAllocator::Free(std::size_t payload_offset) {
  Header* h = header();
  if (payload_offset < kBlockHeader ||
      payload_offset >= h->capacity) {
    return InvalidArgumentError("offset outside region");
  }
  const std::uint64_t off = payload_offset - kBlockHeader;
  pthread_mutex_lock(&h->mu);
  auto* blk = reinterpret_cast<FreeBlock*>(base_ + off);
  h->used -= blk->size;

  // Insert address-ordered, coalescing with neighbours.
  std::uint64_t prev = kNull;
  std::uint64_t cur = h->free_head;
  while (cur != kNull && cur < off) {
    prev = cur;
    cur = reinterpret_cast<FreeBlock*>(base_ + cur)->next;
  }
  blk->next = cur;
  if (prev == kNull) {
    h->free_head = off;
  } else {
    reinterpret_cast<FreeBlock*>(base_ + prev)->next = off;
  }
  // Coalesce forward: freed block touches the next free block.
  if (cur != kNull && off + kBlockHeader + blk->size == cur) {
    auto* nxt = reinterpret_cast<FreeBlock*>(base_ + cur);
    blk->size += kBlockHeader + nxt->size;
    blk->next = nxt->next;
  }
  // Coalesce backward: previous free block touches the freed block.
  if (prev != kNull) {
    auto* p = reinterpret_cast<FreeBlock*>(base_ + prev);
    if (prev + kBlockHeader + p->size == off) {
      p->size += kBlockHeader + blk->size;
      p->next = blk->next;
    }
  }
  pthread_mutex_unlock(&h->mu);
  return Status::Ok();
}

void* RegionAllocator::At(std::size_t offset) const {
  return base_ + offset;
}

std::size_t RegionAllocator::capacity() const { return header()->capacity; }

std::size_t RegionAllocator::used() const { return header()->used; }

std::size_t RegionAllocator::FreeBlockCount() const {
  Header* h = header();
  pthread_mutex_lock(&h->mu);
  std::size_t n = 0;
  for (std::uint64_t cur = h->free_head; cur != kNull;
       cur = reinterpret_cast<FreeBlock*>(base_ + cur)->next) {
    ++n;
  }
  pthread_mutex_unlock(&h->mu);
  return n;
}

}  // namespace dmemo
