// Counting semaphores over folders (Sec. 6.3.2): "The simplest
// implementation of a counting semaphore is identical to a lock, except
// that the semaphore is initialized with as many memos as needed."
#pragma once

#include "core/memo.h"
#include "transferable/scalars.h"

namespace dmemo {

class MemoSemaphore {
 public:
  MemoSemaphore(Memo memo, Key key) : memo_(std::move(memo)), key_(key) {}

  // Deposit `count` tokens. Call once, from one process.
  Status Initialize(int count) {
    for (int i = 0; i < count; ++i) {
      DMEMO_RETURN_IF_ERROR(memo_.put(key_, MakeInt32(1)));
    }
    return Status::Ok();
  }

  // P: blocks until a token is available.
  Status Acquire() { return memo_.get(key_).status(); }

  // Non-blocking P.
  Result<bool> TryAcquire() {
    DMEMO_ASSIGN_OR_RETURN(auto token, memo_.get_skip(key_));
    return token.has_value();
  }

  // V.
  Status Release() { return memo_.put(key_, MakeInt32(1)); }

  Result<std::uint64_t> Value() { return memo_.count(key_); }

 private:
  Memo memo_;
  Key key_;
};

// A mutex is a semaphore initialized with one memo ("identical to a lock").
class MemoLock {
 public:
  MemoLock(Memo memo, Key key) : sem_(std::move(memo), key) {}

  Status Initialize() { return sem_.Initialize(1); }
  Status Acquire() { return sem_.Acquire(); }
  Status Release() { return sem_.Release(); }

 private:
  MemoSemaphore sem_;
};

}  // namespace dmemo
