// Job jars (Sec. 6.2.4): "The memos in the job jar indicate tasks to
// perform. When ever a process creates more work to do, it drops memos in
// the job jar. It is often convenient to have one job jar for each process
// and one common jar for all."
#pragma once

#include "core/memo.h"

namespace dmemo {

class JobJar {
 public:
  JobJar(Memo memo, Key jar) : memo_(std::move(memo)), jar_(jar) {}

  // Conventional jar keys: the common jar is index 0, worker w's private
  // jar is index w+1, under one well-known symbol.
  static Key CommonJar(Symbol jars) { return Key(jars, {0}); }
  static Key PrivateJar(Symbol jars, std::uint32_t worker) {
    return Key(jars, {worker + 1});
  }

  Status Drop(TransferablePtr task) { return memo_.put(jar_, std::move(task)); }

  // Blocking: wait for a task.
  Result<TransferablePtr> TakeTask() { return memo_.get(jar_); }

  // Non-blocking: nullopt when the jar is empty.
  Result<std::optional<TransferablePtr>> TryTakeTask() {
    return memo_.get_skip(jar_);
  }

  Result<std::uint64_t> Pending() { return memo_.count(jar_); }

  const Key& key() const { return jar_; }

 private:
  Memo memo_;
  Key jar_;
};

// A worker's view: its private jar plus the common jar, drained with
// get_alt / get_alt_skip exactly as Sec. 6.2.4 prescribes.
class WorkerJars {
 public:
  WorkerJars(Memo memo, Symbol jars, std::uint32_t worker)
      : memo_(std::move(memo)),
        keys_{JobJar::PrivateJar(jars, worker), JobJar::CommonJar(jars)} {}

  // Blocking: a task from either jar.
  Result<TransferablePtr> TakeTask() {
    DMEMO_ASSIGN_OR_RETURN(auto hit, memo_.get_alt(keys_));
    return std::move(hit.second);
  }

  Result<std::optional<TransferablePtr>> TryTakeTask() {
    DMEMO_ASSIGN_OR_RETURN(auto hit, memo_.get_alt_skip(keys_));
    if (!hit.has_value()) return std::optional<TransferablePtr>();
    return std::optional<TransferablePtr>(std::move(hit->second));
  }

 private:
  Memo memo_;
  std::vector<Key> keys_;
};

}  // namespace dmemo
