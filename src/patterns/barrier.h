// Barriers over folders (listed among the API's supported mechanisms in
// Sec. 2). Construction: every participant deposits an arrival memo;
// participant 0 acts as the collector — it extracts all N arrival memos
// (blocking until everyone has arrived) and then deposits N-1 release
// memos. The collector role is fixed by rank, so there is no election and
// no race; reuse across rounds comes from the round index in the key.
#pragma once

#include "core/memo.h"
#include "transferable/scalars.h"

namespace dmemo {

class MemoBarrier {
 public:
  // All participants must construct with the same symbol and count.
  // `rank` in [0, participants); rank 0 is the collector.
  MemoBarrier(Memo memo, Symbol name, std::uint32_t participants,
              std::uint32_t rank)
      : memo_(std::move(memo)),
        name_(name),
        participants_(participants),
        rank_(rank) {}

  // Block until all participants have arrived at `round`.
  Status Arrive(std::uint32_t round) {
    if (participants_ <= 1) return Status::Ok();
    const Key arrivals(name_, {round, 0});
    const Key releases(name_, {round, 1});
    if (rank_ == 0) {
      // Collector: wait for everyone else, then open the gate.
      for (std::uint32_t i = 1; i < participants_; ++i) {
        DMEMO_RETURN_IF_ERROR(memo_.get(arrivals).status());
      }
      for (std::uint32_t i = 1; i < participants_; ++i) {
        DMEMO_RETURN_IF_ERROR(memo_.put(releases, MakeInt32(1)));
      }
      return Status::Ok();
    }
    DMEMO_RETURN_IF_ERROR(memo_.put(arrivals, MakeInt32(1)));
    return memo_.get(releases).status();
  }

 private:
  Memo memo_;
  Symbol name_;
  std::uint32_t participants_;
  std::uint32_t rank_;
};

}  // namespace dmemo
