// Shared records with implicit locks (Sec. 6.3.1): "Shared records are
// accessed by getting them from their folders, examining and updating them,
// then putting them back. While the record is being updated, it's folder is
// empty. If any other process try to access it, it will be blocked."
#pragma once

#include "core/memo.h"

namespace dmemo {

class SharedRecord {
 public:
  SharedRecord(Memo memo, Key key) : memo_(std::move(memo)), key_(key) {}

  Status Initialize(TransferablePtr value) {
    return memo_.put(key_, std::move(value));
  }

  // RAII checkout: holding a Checkout means holding the implicit lock.
  class Checkout {
   public:
    Checkout(SharedRecord* record, TransferablePtr value)
        : record_(record), value_(std::move(value)) {}

    ~Checkout() {
      // An un-committed checkout puts the (possibly modified) record back,
      // so a thrown exception or early return cannot deadlock the folder.
      if (record_ != nullptr && value_ != nullptr) {
        (void)record_->memo_.put(record_->key_, std::move(value_));
      }
    }

    Checkout(Checkout&& other) noexcept
        : record_(other.record_), value_(std::move(other.value_)) {
      other.record_ = nullptr;
    }
    Checkout& operator=(Checkout&&) = delete;
    Checkout(const Checkout&) = delete;
    Checkout& operator=(const Checkout&) = delete;

    TransferablePtr& value() { return value_; }

    // Put the record back explicitly, ending the critical section early.
    Status Commit() {
      Status status = record_->memo_.put(record_->key_, std::move(value_));
      record_ = nullptr;
      return status;
    }

   private:
    SharedRecord* record_;
    TransferablePtr value_;
  };

  // Blocking acquisition of the record (the implicit lock).
  Result<Checkout> Acquire() {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr value, memo_.get(key_));
    return Checkout(this, std::move(value));
  }

  // Examine without locking.
  Result<TransferablePtr> Peek() { return memo_.get_copy(key_); }

 private:
  friend class Checkout;
  Memo memo_;
  Key key_;
};

}  // namespace dmemo
