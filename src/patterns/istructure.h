// I-structures (Sec. 6.2.5): "An I-structure (an 'incremental structure')
// is a collection (e.g. an array) of futures. I-structures were invented
// for dataflow." Each element is an assign-once cell; readers of an
// unwritten cell block until its producer writes it.
#pragma once

#include "core/memo.h"
#include "patterns/future.h"

namespace dmemo {

class IStructure {
 public:
  IStructure(Memo memo, Symbol name, std::uint32_t size)
      : memo_(std::move(memo)), name_(name), size_(size) {}

  std::uint32_t size() const { return size_; }

  Key ElementKey(std::uint32_t i) const { return Key(name_, {i}); }

  // Assign-once write of element i.
  Status Write(std::uint32_t i, TransferablePtr value) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i));
    return memo_.put(ElementKey(i), std::move(value));
  }

  // Blocking, non-destructive read: the I-structure read rule.
  Result<TransferablePtr> Read(std::uint32_t i) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i));
    return memo_.get_copy(ElementKey(i));
  }

  Result<bool> Written(std::uint32_t i) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i));
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, memo_.count(ElementKey(i)));
    return n > 0;
  }

  // Dataflow trigger on element i (put_delayed under the hood).
  Status Trigger(std::uint32_t i, const Key& job_jar,
                 TransferablePtr operation) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i));
    return memo_.put_delayed(ElementKey(i), job_jar, std::move(operation));
  }

  Future Element(std::uint32_t i) { return Future(memo_, ElementKey(i)); }

 private:
  Status CheckBounds(std::uint32_t i) const {
    if (i >= size_) {
      return OutOfRangeError("i-structure element " + std::to_string(i) +
                             " outside size " + std::to_string(size_));
    }
    return Status::Ok();
  }

  Memo memo_;
  Symbol name_;
  std::uint32_t size_;
};

}  // namespace dmemo
