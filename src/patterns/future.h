// Futures (Sec. 6.2.5): "A future is an assign-once variable used to
// communicate between a producer and a consumer... In D-Memo, any folder
// that will have only one memo ever placed into it may correspond to a
// future. The folder will vanish once the memo is removed."
#pragma once

#include "core/memo.h"

namespace dmemo {

class Future {
 public:
  Future(Memo memo, Key key) : memo_(std::move(memo)), key_(key) {}

  // Producer side: assign once. (A second Set violates the discipline; the
  // paper leaves that a programming error and so do we.)
  Status Set(TransferablePtr value) {
    return memo_.put(key_, std::move(value));
  }

  // Consumer side, non-destructive: blocks until assigned, leaves the value
  // so other consumers can also Wait.
  Result<TransferablePtr> Wait() { return memo_.get_copy(key_); }

  // Consumer side, destructive: take the value; the future's folder
  // vanishes (single-consumer hand-off).
  Result<TransferablePtr> Take() { return memo_.get(key_); }

  Result<bool> IsSet() {
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, memo_.count(key_));
    return n > 0;
  }

  // "Since it is usually better not to block an entire process, the
  // consumer can delay a memo for a job jar in the future's folder that
  // will trigger the desired computation when the data becomes available."
  Status Trigger(const Key& job_jar, TransferablePtr operation) {
    return memo_.put_delayed(key_, job_jar, std::move(operation));
  }

  const Key& key() const { return key_; }

 private:
  Memo memo_;
  Key key_;
};

}  // namespace dmemo
