// Ordered queues (paper Sec. 2 lists "unordered and ordered queues" among
// the API's primitives).
//
// Folders are deliberately unordered, so FIFO order is built *on top*: two
// ticket counters (shared records, implicitly locked) assign each pushed
// element a sequence number and each popper the next sequence to read;
// element n lives in its own folder {S=name, X=[n]}. Multiple producers
// and multiple consumers are safe; consumers block on the element folder
// (a future) until the producer holding that ticket delivers.
#pragma once

#include "core/memo.h"
#include "transferable/scalars.h"

namespace dmemo {

class OrderedQueue {
 public:
  OrderedQueue(Memo memo, Symbol name) : memo_(std::move(memo)), name_(name) {}

  // Create the queue's counters. Call once, from one process.
  Status Initialize() {
    DMEMO_RETURN_IF_ERROR(memo_.put(TailKey(), MakeUInt64(0)));
    return memo_.put(HeadKey(), MakeUInt64(0));
  }

  // Append: take a ticket, deposit at that sequence. FIFO per the ticket
  // order (concurrent pushes serialize on the tail counter).
  Status Push(TransferablePtr value) {
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t seq, NextTicket(TailKey()));
    return memo_.put(ElementKey(seq), std::move(value));
  }

  // Remove the oldest element; blocks until it is available.
  Result<TransferablePtr> Pop() {
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t seq, NextTicket(HeadKey()));
    return memo_.get(ElementKey(seq));
  }

  // Non-blocking variant: nullopt when the queue is empty. Unlike Pop it
  // must not claim a ticket it cannot redeem, so it peeks the counters
  // under the head record's implicit lock.
  Result<std::optional<TransferablePtr>> TryPop() {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr head_rec, memo_.get(HeadKey()));
    const std::uint64_t head =
        std::static_pointer_cast<TUInt64>(head_rec)->value();
    // Tail is read with a copy; it can only grow, so a stale value is safe
    // (we may report empty spuriously, never pop a missing element).
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr tail_rec,
                           memo_.get_copy(TailKey()));
    const std::uint64_t tail =
        std::static_pointer_cast<TUInt64>(tail_rec)->value();
    if (head >= tail) {
      DMEMO_RETURN_IF_ERROR(memo_.put(HeadKey(), MakeUInt64(head)));
      return std::optional<TransferablePtr>();
    }
    DMEMO_RETURN_IF_ERROR(memo_.put(HeadKey(), MakeUInt64(head + 1)));
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr value,
                           memo_.get(ElementKey(head)));
    return std::optional<TransferablePtr>(std::move(value));
  }

  // Elements pushed but not yet popped (approximate under concurrency).
  Result<std::uint64_t> Size() {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr tail_rec,
                           memo_.get_copy(TailKey()));
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr head_rec,
                           memo_.get_copy(HeadKey()));
    const std::uint64_t tail =
        std::static_pointer_cast<TUInt64>(tail_rec)->value();
    const std::uint64_t head =
        std::static_pointer_cast<TUInt64>(head_rec)->value();
    return tail > head ? tail - head : 0;
  }

 private:
  Key ElementKey(std::uint64_t seq) const {
    return Key(name_, {1, static_cast<std::uint32_t>(seq >> 32),
                       static_cast<std::uint32_t>(seq)});
  }
  Key TailKey() const { return Key(name_, {2}); }
  Key HeadKey() const { return Key(name_, {3}); }

  // Atomically read-and-increment a counter record (implicit lock).
  Result<std::uint64_t> NextTicket(const Key& counter) {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr rec, memo_.get(counter));
    const std::uint64_t seq =
        std::static_pointer_cast<TUInt64>(rec)->value();
    DMEMO_RETURN_IF_ERROR(memo_.put(counter, MakeUInt64(seq + 1)));
    return seq;
  }

  Memo memo_;
  Symbol name_;
};

}  // namespace dmemo
