// Shared data structures and synchronization mechanisms (paper Sec. 6.2 and
// 6.3) packaged as a library over the Memo API. Every class here is a thin
// discipline over folders and memos — exactly the point the paper makes:
// the directory of unordered queues is expressive enough that these are
// idioms, not new machinery.
#pragma once

#include "patterns/barrier.h"
#include "patterns/future.h"
#include "patterns/istructure.h"
#include "patterns/job_jar.h"
#include "patterns/named_object.h"
#include "patterns/ordered_queue.h"
#include "patterns/semaphore.h"
#include "patterns/shared_array.h"
#include "patterns/shared_record.h"
