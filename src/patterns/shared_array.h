// Shared arrays (Sec. 6.2.2): element a[i,j] lives in the folder whose key
// is {S = a, X = [i, j, 0]}. The class only builds keys; storage semantics
// are the named-object idiom per element.
#pragma once

#include "core/memo.h"

namespace dmemo {

// A distributed 2-D array of transferables. Elements are independent
// folders, so distinct elements never contend and reside on whichever
// folder server their key hashes to — data distribution for free.
class SharedArray2D {
 public:
  SharedArray2D(Memo memo, Symbol name, std::uint32_t rows,
                std::uint32_t cols)
      : memo_(std::move(memo)), name_(name), rows_(rows), cols_(cols) {}

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }

  // The paper's key construction, verbatim: X = [i, j, 0].
  Key ElementKey(std::uint32_t i, std::uint32_t j) const {
    Key key;
    key.S = name_;
    key.X = {i, j, 0};
    return key;
  }

  Status Write(std::uint32_t i, std::uint32_t j, TransferablePtr value) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i, j));
    return memo_.put(ElementKey(i, j), std::move(value));
  }

  // Blocking read-without-consume: readers wait for writers.
  Result<TransferablePtr> Read(std::uint32_t i, std::uint32_t j) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i, j));
    return memo_.get_copy(ElementKey(i, j));
  }

  // Exclusive checkout of one element (implicit lock, Sec. 6.3.1).
  Result<TransferablePtr> Take(std::uint32_t i, std::uint32_t j) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i, j));
    return memo_.get(ElementKey(i, j));
  }

  // Non-blocking probe.
  Result<bool> Present(std::uint32_t i, std::uint32_t j) {
    DMEMO_RETURN_IF_ERROR(CheckBounds(i, j));
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, memo_.count(ElementKey(i, j)));
    return n > 0;
  }

 private:
  Status CheckBounds(std::uint32_t i, std::uint32_t j) const {
    if (i >= rows_ || j >= cols_) {
      return OutOfRangeError("array element (" + std::to_string(i) + "," +
                             std::to_string(j) + ") outside " +
                             std::to_string(rows_) + "x" +
                             std::to_string(cols_));
    }
    return Status::Ok();
  }

  Memo memo_;
  Symbol name_;
  std::uint32_t rows_;
  std::uint32_t cols_;
};

}  // namespace dmemo
