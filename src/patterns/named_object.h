// Named objects (Sec. 6.2.1): "A folder that holds at most one memo can
// represent a dynamically allocated object on the heap. Instead of pointers
// to objects, we use folder names."
#pragma once

#include "core/memo.h"

namespace dmemo {

class NamedObject {
 public:
  NamedObject(Memo memo, Key key) : memo_(std::move(memo)), key_(key) {}

  // Create the object (folder must be empty; enforced by convention, as in
  // the paper — a second Create adds a second memo and breaks the idiom).
  Status Create(TransferablePtr initial) {
    return memo_.put(key_, std::move(initial));
  }

  // Read without consuming (blocking until the object exists).
  Result<TransferablePtr> Read() { return memo_.get_copy(key_); }

  // Take exclusive ownership (the folder empties: others block).
  Result<TransferablePtr> Take() { return memo_.get(key_); }

  // Return ownership / overwrite.
  Status Store(TransferablePtr value) {
    return memo_.put(key_, std::move(value));
  }

  // Destroy: consume the memo; the folder vanishes.
  Status Destroy() { return memo_.get(key_).status(); }

  // Does the object currently exist? (non-blocking probe)
  Result<bool> Exists() {
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, memo_.count(key_));
    return n > 0;
  }

  const Key& key() const { return key_; }

 private:
  Memo memo_;
  Key key_;
};

}  // namespace dmemo
