#include "transport/channel.h"

#include "util/mutex.h"
#include "util/thread_annotations.h"

#include <atomic>
#include <thread>
#include <unordered_map>

#include "util/blocking_queue.h"
#include "util/bytes.h"
#include "util/metrics.h"

namespace dmemo {

namespace {

// Fragmentation stats across every mux in the process: packets pumped out,
// messages fully reassembled, and messages that needed more than one packet.
Counter* FragPacketsSent() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_channel_packets_sent_total");
  return c;
}
Counter* FragMessagesReassembled() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_channel_messages_reassembled_total");
  return c;
}
Counter* FragMessagesFragmented() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_channel_messages_fragmented_total");
  return c;
}

Counter* FragWritevs() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_transport_writev_total", "transport=\"frag\"");
  return c;
}

void ChargeTransmission(const ChannelProfile& profile, std::size_t bytes) {
  if (profile.bytes_per_ms == 0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds((bytes * 1000) / profile.bytes_per_ms));
}

class BlockingChannelConnection final : public Connection {
 public:
  BlockingChannelConnection(ConnectionPtr inner, ChannelProfile profile)
      : inner_(std::move(inner)), profile_(profile) {}

  Status Send(std::span<const std::uint8_t> frame) override {
    // The whole long-winded communication happens on the caller's thread.
    ChargeTransmission(profile_, frame.size());
    return inner_->Send(frame);
  }

  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    ChargeTransmission(profile_, total);
    return inner_->Send(slices);  // inner's gather path (or its fallback)
  }

  Result<IoBuf> Receive() override { return inner_->Receive(); }

  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    return inner_->ReceiveFor(timeout);
  }

  void Close() override { inner_->Close(); }

  std::string description() const override {
    return "chan+" + inner_->description();
  }

 private:
  ConnectionPtr inner_;
  ChannelProfile profile_;
};

// Packet header: vc id (u32), flags (u8: bit0 = last fragment of message).
struct Packet {
  std::uint32_t vc;
  bool last;
  Bytes payload;
};

Result<Packet> DecodePacket(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  Packet p;
  DMEMO_ASSIGN_OR_RETURN(p.vc, r.u32());
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t flags, r.u8());
  p.last = (flags & 1) != 0;
  DMEMO_ASSIGN_OR_RETURN(p.payload, r.raw(r.remaining()));
  return p;
}

}  // namespace

struct FragmentingMux::Impl {
  ConnectionPtr inner;
  ChannelProfile profile;

  // Outbound packets (round-robin across senders happens naturally: each
  // Send enqueues its packets; the pump transmits in arrival order, so
  // concurrent messages interleave at packet granularity).
  BlockingQueue<Bytes> outbound;

  // Inbound reassembly per virtual connection.
  Mutex mu{"FragmentingMux::mu"};
  std::unordered_map<std::uint32_t, std::shared_ptr<BlockingQueue<Bytes>>>
      inbound DMEMO_GUARDED_BY(mu);
  std::unordered_map<std::uint32_t, Bytes> partial DMEMO_GUARDED_BY(mu);

  std::atomic<std::uint64_t> packets_sent{0};
  std::thread pump_tx;
  std::thread pump_rx;

  std::shared_ptr<BlockingQueue<Bytes>> InboundFor(std::uint32_t vc) {
    MutexLock lock(mu);
    auto& q = inbound[vc];
    if (q == nullptr) q = std::make_shared<BlockingQueue<Bytes>>();
    return q;
  }

  void TxLoop() {
    for (;;) {
      auto frame = outbound.Pop();
      if (!frame.has_value()) return;
      // Transmission cost is paid here, on the pump thread, not by the
      // sender — this is the whole point of the derived transport.
      ChargeTransmission(profile, frame->size());
      if (!inner->Send(*frame).ok()) return;
      packets_sent.fetch_add(1, std::memory_order_relaxed);
      FragPacketsSent()->Increment();
    }
  }

  void RxLoop() {
    for (;;) {
      auto frame = inner->Receive();
      if (!frame.ok()) {
        // Peer gone: close every stream so readers wake.
        MutexLock lock(mu);
        for (auto& [vc, q] : inbound) q->Close();
        return;
      }
      Bytes scratch;
      auto packet = DecodePacket(frame->ContiguousView(scratch));
      if (!packet.ok()) continue;  // malformed packet: drop, keep pumping
      Bytes complete;
      std::shared_ptr<BlockingQueue<Bytes>> queue;
      {
        MutexLock lock(mu);
        Bytes& partial_msg = partial[packet->vc];
        partial_msg.insert(partial_msg.end(), packet->payload.begin(),
                           packet->payload.end());
        if (!packet->last) continue;
        auto& q = inbound[packet->vc];
        if (q == nullptr) q = std::make_shared<BlockingQueue<Bytes>>();
        queue = q;
        complete = std::move(partial_msg);
        partial.erase(packet->vc);
      }
      FragMessagesReassembled()->Increment();
      // A false Push means the VC's queue closed mid-reassembly (shutdown);
      // dropping the message is correct — nobody will receive on it again.
      (void)queue->Push(std::move(complete));
    }
  }

  void Shutdown() {
    outbound.Close();
    inner->Close();
    if (pump_tx.joinable()) pump_tx.join();
    if (pump_rx.joinable()) pump_rx.join();
    MutexLock lock(mu);
    for (auto& [vc, q] : inbound) q->Close();
  }
};

namespace {

class VirtualConnection final : public Connection {
 public:
  VirtualConnection(std::shared_ptr<FragmentingMux::Impl> mux,
                    std::uint32_t vc)
      : mux_(std::move(mux)), vc_(vc), rx_(mux_->InboundFor(vc)) {}

  Status Send(std::span<const std::uint8_t> frame) override {
    const std::span<const std::uint8_t> one[] = {frame};
    return Send(std::span<const std::span<const std::uint8_t>>(one));
  }

  // Gather fragmentation: packets are cut across slice boundaries, so a
  // header slice chained to a payload slice fragments exactly like the
  // flattened frame would — no coalescing buffer. The per-packet framing
  // copy (into the packet buffer) is the channel's transmission cost and is
  // identical for both entry points.
  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    const std::size_t packet = mux_->profile.packet_bytes;
    if (total > packet) FragMessagesFragmented()->Increment();
    if (slices.size() > 1) FragWritevs()->Increment();
    std::size_t offset = 0;  // bytes of the logical frame consumed
    std::size_t si = 0;      // current slice
    std::size_t so = 0;      // offset within current slice
    do {
      const std::size_t n = std::min(packet, total - offset);
      const bool last = offset + n == total;
      ByteWriter w;
      w.u32(vc_);
      w.u8(last ? 1 : 0);
      std::size_t left = n;
      while (left > 0) {
        while (so == slices[si].size()) {
          ++si;
          so = 0;
        }
        const std::size_t piece = std::min(left, slices[si].size() - so);
        w.raw(slices[si].subspan(so, piece));
        so += piece;
        left -= piece;
      }
      if (!mux_->outbound.Push(w.take())) {
        return UnavailableError("fragmenting mux closed");
      }
      offset += n;
    } while (offset < total);
    return Status::Ok();
  }

  Result<IoBuf> Receive() override {
    auto frame = rx_->Pop();
    if (!frame.has_value()) return UnavailableError("virtual connection closed");
    return IoBuf::FromBytes(std::move(*frame));
  }

  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    auto frame = rx_->PopFor(timeout);
    if (!frame.has_value()) {
      if (rx_->closed() && rx_->size() == 0) {
        return UnavailableError("virtual connection closed");
      }
      return std::optional<IoBuf>(std::nullopt);
    }
    return std::optional<IoBuf>(IoBuf::FromBytes(std::move(*frame)));
  }

  void Close() override { rx_->Close(); }

  std::string description() const override {
    return "frag+vc" + std::to_string(vc_);
  }

 private:
  std::shared_ptr<FragmentingMux::Impl> mux_;
  std::uint32_t vc_;
  std::shared_ptr<BlockingQueue<Bytes>> rx_;
};

}  // namespace

FragmentingMux::FragmentingMux(ConnectionPtr inner, ChannelProfile profile)
    : impl_(std::make_shared<Impl>()) {
  impl_->inner = std::move(inner);
  impl_->profile = profile;
  impl_->pump_tx = std::thread([impl = impl_] { impl->TxLoop(); });
  impl_->pump_rx = std::thread([impl = impl_] { impl->RxLoop(); });
}

FragmentingMux::~FragmentingMux() { impl_->Shutdown(); }

Result<ConnectionPtr> FragmentingMux::OpenVirtual(std::uint32_t vc) {
  return ConnectionPtr(std::make_unique<VirtualConnection>(impl_, vc));
}

std::uint64_t FragmentingMux::packets_sent() const {
  return impl_->packets_sent.load(std::memory_order_relaxed);
}

ConnectionPtr MakeBlockingChannel(ConnectionPtr inner,
                                  ChannelProfile profile) {
  return std::make_unique<BlockingChannelConnection>(std::move(inner),
                                                     profile);
}

namespace {

// Owns the mux so the single-virtual-connection helper has somebody to keep
// the pump threads alive.
class OwningFragmentingConnection final : public Connection {
 public:
  OwningFragmentingConnection(ConnectionPtr inner, ChannelProfile profile)
      : mux_(std::make_unique<FragmentingMux>(std::move(inner), profile)) {
    auto vc = mux_->OpenVirtual(0);
    conn_ = std::move(vc).value();  // vc 0 on a fresh mux cannot fail
  }

  Status Send(std::span<const std::uint8_t> frame) override {
    return conn_->Send(frame);
  }
  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    return conn_->Send(slices);
  }
  Result<IoBuf> Receive() override { return conn_->Receive(); }
  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    return conn_->ReceiveFor(timeout);
  }
  void Close() override { conn_->Close(); }
  std::string description() const override { return conn_->description(); }

 private:
  std::unique_ptr<FragmentingMux> mux_;
  ConnectionPtr conn_;
};

}  // namespace

ConnectionPtr MakeFragmentingChannel(ConnectionPtr inner,
                                     ChannelProfile profile) {
  return std::make_unique<OwningFragmentingConnection>(std::move(inner),
                                                       profile);
}

}  // namespace dmemo
