#include "transport/shm_transport.h"

#include <pthread.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "sharedmem/shared_memory.h"
#include "transport/socket_transport.h"
#include "transport/transport_metrics.h"
#include "util/hash.h"
#include "util/log.h"

namespace dmemo {

namespace {

// ---- the ring ----------------------------------------------------------------
//
// One direction of a connection. Lives at a fixed offset inside a shared
// segment; all fields are offsets/sizes, never pointers. Chunk framing:
// each chunk is a u32 header (bit 31 = more-chunks-follow, low 31 bits =
// chunk length) followed by that many bytes, wrapping around the data
// area. A writer holds the ring mutex across waits so chunks of one frame
// are never interleaved with another writer's.

struct RingHeader {
  pthread_mutex_t mu;
  pthread_cond_t not_empty;
  pthread_cond_t not_full;
  std::uint64_t capacity;  // data-area bytes
  std::uint64_t head;      // reader position (absolute, monotonically grows)
  std::uint64_t tail;      // writer position
  std::uint32_t closed;    // either side closed
};

constexpr std::uint32_t kMoreChunks = 0x80000000u;

class Ring {
 public:
  // Construct over raw memory; init=true builds mutexes (creator only).
  static Ring Create(void* base, std::size_t total_bytes) {
    Ring ring(base, total_bytes);
    RingHeader* h = ring.header();
    pthread_mutexattr_t mattr;
    pthread_mutexattr_init(&mattr);
    pthread_mutexattr_setpshared(&mattr, PTHREAD_PROCESS_SHARED);
    pthread_mutex_init(&h->mu, &mattr);
    pthread_mutexattr_destroy(&mattr);
    pthread_condattr_t cattr;
    pthread_condattr_init(&cattr);
    pthread_condattr_setpshared(&cattr, PTHREAD_PROCESS_SHARED);
    pthread_cond_init(&h->not_empty, &cattr);
    pthread_cond_init(&h->not_full, &cattr);
    pthread_condattr_destroy(&cattr);
    h->capacity = total_bytes - sizeof(RingHeader);
    h->head = 0;
    h->tail = 0;
    h->closed = 0;
    return ring;
  }

  static Ring Open(void* base, std::size_t total_bytes) {
    return Ring(base, total_bytes);
  }

  Status SendFrame(std::span<const std::uint8_t> frame) {
    const std::span<const std::uint8_t> one[] = {frame};
    return SendFrameV(one);
  }

  // Gather form: the frame is the concatenation of `slices`, copied into
  // the ring chunk-by-chunk straight from each slice — no coalescing
  // buffer. The ring memcpy itself is the shared-memory "wire", so it is
  // not charged to the payload-copy meter (the bytes land in the peer's
  // address space, like a kernel socket copy).
  Status SendFrameV(std::span<const std::span<const std::uint8_t>> slices) {
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    RingHeader* h = header();
    pthread_mutex_lock(&h->mu);
    std::size_t offset = 0;  // bytes of the logical frame already written
    std::size_t si = 0;      // current slice
    std::size_t so = 0;      // offset within current slice
    bool first = true;
    // Emit at least one chunk even for empty frames.
    while (first || offset < total) {
      first = false;
      // Wait for room for the header plus at least one payload byte (or
      // just the header when the frame is empty).
      std::uint64_t free_bytes;
      for (;;) {
        if (h->closed != 0) {
          pthread_mutex_unlock(&h->mu);
          return UnavailableError("shm connection closed");
        }
        free_bytes = h->capacity - (h->tail - h->head);
        const std::uint64_t need =
            sizeof(std::uint32_t) + (total > offset ? 1 : 0);
        if (free_bytes >= need) break;
        pthread_cond_wait(&h->not_full, &h->mu);
      }
      const std::size_t remaining = total - offset;
      const std::size_t chunk = std::min<std::size_t>(
          remaining, free_bytes - sizeof(std::uint32_t));
      const bool more = chunk < remaining;
      WriteBytesLocked(EncodeHeader(static_cast<std::uint32_t>(chunk), more));
      std::size_t left = chunk;
      while (left > 0) {
        while (so == slices[si].size()) {
          ++si;
          so = 0;
        }
        const std::size_t piece = std::min(left, slices[si].size() - so);
        WriteRawLocked(slices[si].data() + so, piece);
        so += piece;
        left -= piece;
      }
      offset += chunk;
      pthread_cond_signal(&h->not_empty);
    }
    pthread_mutex_unlock(&h->mu);
    return Status::Ok();
  }

  Result<Bytes> ReceiveFrame() {
    RingHeader* h = header();
    pthread_mutex_lock(&h->mu);
    Bytes frame;
    for (;;) {
      // Wait for a chunk header.
      while (h->tail - h->head < sizeof(std::uint32_t)) {
        if (h->closed != 0) {
          pthread_mutex_unlock(&h->mu);
          return UnavailableError("shm connection closed");
        }
        pthread_cond_wait(&h->not_empty, &h->mu);
      }
      std::uint8_t raw[4];
      ReadRawLocked(raw, 4);
      const std::uint32_t word = (std::uint32_t(raw[0]) << 24) |
                                 (std::uint32_t(raw[1]) << 16) |
                                 (std::uint32_t(raw[2]) << 8) |
                                 std::uint32_t(raw[3]);
      const bool more = (word & kMoreChunks) != 0;
      std::uint32_t len = word & ~kMoreChunks;
      // Drain the chunk (its bytes may still be being produced only if the
      // writer published the header early — it does not: header+payload are
      // written under one lock hold, so `len` bytes are present).
      const std::size_t old = frame.size();
      frame.resize(old + len);
      ReadRawLocked(frame.data() + old, len);
      pthread_cond_signal(&h->not_full);
      if (!more) break;
    }
    pthread_mutex_unlock(&h->mu);
    return frame;
  }

  // Like ReceiveFrame with a deadline; nullopt on timeout.
  Result<std::optional<Bytes>> ReceiveFrameFor(
      std::chrono::milliseconds timeout) {
    RingHeader* h = header();
    struct timespec abs{};
    clock_gettime(CLOCK_REALTIME, &abs);
    abs.tv_sec += timeout.count() / 1000;
    abs.tv_nsec += (timeout.count() % 1000) * 1'000'000;
    if (abs.tv_nsec >= 1'000'000'000) {
      abs.tv_sec += 1;
      abs.tv_nsec -= 1'000'000'000;
    }
    pthread_mutex_lock(&h->mu);
    while (h->tail - h->head < sizeof(std::uint32_t)) {
      if (h->closed != 0) {
        pthread_mutex_unlock(&h->mu);
        return UnavailableError("shm connection closed");
      }
      if (pthread_cond_timedwait(&h->not_empty, &h->mu, &abs) == ETIMEDOUT) {
        pthread_mutex_unlock(&h->mu);
        return std::optional<Bytes>(std::nullopt);
      }
    }
    pthread_mutex_unlock(&h->mu);
    DMEMO_ASSIGN_OR_RETURN(Bytes frame, ReceiveFrame());
    return std::optional<Bytes>(std::move(frame));
  }

  void Close() {
    RingHeader* h = header();
    pthread_mutex_lock(&h->mu);
    h->closed = 1;
    pthread_cond_broadcast(&h->not_empty);
    pthread_cond_broadcast(&h->not_full);
    pthread_mutex_unlock(&h->mu);
  }

 private:
  Ring(void* base, std::size_t total_bytes)
      : base_(static_cast<std::uint8_t*>(base)), total_(total_bytes) {}

  RingHeader* header() const { return reinterpret_cast<RingHeader*>(base_); }
  std::uint8_t* data() const { return base_ + sizeof(RingHeader); }

  static std::array<std::uint8_t, 4> EncodeHeader(std::uint32_t len,
                                                  bool more) {
    const std::uint32_t word = len | (more ? kMoreChunks : 0);
    return {static_cast<std::uint8_t>(word >> 24),
            static_cast<std::uint8_t>(word >> 16),
            static_cast<std::uint8_t>(word >> 8),
            static_cast<std::uint8_t>(word)};
  }

  void WriteBytesLocked(const std::array<std::uint8_t, 4>& bytes) {
    WriteRawLocked(bytes.data(), bytes.size());
  }

  void WriteRawLocked(const std::uint8_t* src, std::size_t n) {
    RingHeader* h = header();
    const std::uint64_t cap = h->capacity;
    std::uint64_t pos = h->tail % cap;
    const std::uint64_t first = std::min<std::uint64_t>(n, cap - pos);
    std::memcpy(data() + pos, src, first);
    if (first < n) std::memcpy(data(), src + first, n - first);
    h->tail += n;
  }

  void ReadRawLocked(std::uint8_t* dst, std::size_t n) {
    RingHeader* h = header();
    const std::uint64_t cap = h->capacity;
    std::uint64_t pos = h->head % cap;
    const std::uint64_t first = std::min<std::uint64_t>(n, cap - pos);
    std::memcpy(dst, data() + pos, first);
    if (first < n) std::memcpy(dst + first, data(), n - first);
    h->head += n;
  }

  std::uint8_t* base_;
  std::size_t total_;
};

// ---- connection over two rings ----------------------------------------------

const TransportMetrics* ShmMetrics() {
  static const TransportMetrics* m = GetTransportMetrics("shm");
  return m;
}

class ShmConnection final : public Connection {
 public:
  ShmConnection(std::unique_ptr<SharedMemory> tx_seg,
                std::unique_ptr<SharedMemory> rx_seg, Ring tx, Ring rx,
                std::string description)
      : tx_seg_(std::move(tx_seg)),
        rx_seg_(std::move(rx_seg)),
        tx_(tx),
        rx_(rx),
        description_(std::move(description)) {}

  ~ShmConnection() override { Close(); }

  Status Send(std::span<const std::uint8_t> frame) override {
    DMEMO_RETURN_IF_ERROR(tx_.SendFrame(frame));
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(frame.size());
    return Status::Ok();
  }
  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    DMEMO_RETURN_IF_ERROR(tx_.SendFrameV(slices));
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    metrics_->writevs->Increment();
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(total);
    return Status::Ok();
  }
  Result<IoBuf> Receive() override {
    DMEMO_ASSIGN_OR_RETURN(Bytes frame, rx_.ReceiveFrame());
    metrics_->frames_received->Increment();
    metrics_->bytes_received->Add(frame.size());
    return IoBuf::FromBytes(std::move(frame));
  }
  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    DMEMO_ASSIGN_OR_RETURN(std::optional<Bytes> frame,
                           rx_.ReceiveFrameFor(timeout));
    if (!frame.has_value()) return std::optional<IoBuf>(std::nullopt);
    metrics_->frames_received->Increment();
    metrics_->bytes_received->Add(frame->size());
    return std::optional<IoBuf>(IoBuf::FromBytes(std::move(*frame)));
  }

  void Close() override {
    if (closed_.exchange(true)) return;
    tx_.Close();
    rx_.Close();
  }

  std::string description() const override { return description_; }

 private:
  std::unique_ptr<SharedMemory> tx_seg_;
  std::unique_ptr<SharedMemory> rx_seg_;
  Ring tx_;
  Ring rx_;
  std::atomic<bool> closed_{false};
  std::string description_;
  const TransportMetrics* metrics_ = ShmMetrics();
};

// ---- handshake + transport ----------------------------------------------------

// Handshake message (over the Unix socket): two segment names + ring size
// + the ring offset inside each segment.
struct Handshake {
  std::string c2s_name;
  std::string s2c_name;
  std::uint64_t seg_bytes;
  std::uint64_t ring_bytes;
  std::uint64_t offset;
};

Bytes EncodeHandshake(const Handshake& hs) {
  ByteWriter w;
  w.str(hs.c2s_name);
  w.str(hs.s2c_name);
  w.u64(hs.seg_bytes);
  w.u64(hs.ring_bytes);
  w.u64(hs.offset);
  return w.take();
}

Result<Handshake> DecodeHandshake(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Handshake hs;
  DMEMO_ASSIGN_OR_RETURN(hs.c2s_name, r.str());
  DMEMO_ASSIGN_OR_RETURN(hs.s2c_name, r.str());
  DMEMO_ASSIGN_OR_RETURN(hs.seg_bytes, r.u64());
  DMEMO_ASSIGN_OR_RETURN(hs.ring_bytes, r.u64());
  DMEMO_ASSIGN_OR_RETURN(hs.offset, r.u64());
  return hs;
}

// Create + attach a segment holding one ring at a RegionAllocator offset.
Result<std::pair<std::unique_ptr<SharedMemory>, std::size_t>> CreateRingSeg(
    const std::string& name, std::size_t seg_bytes, std::size_t ring_bytes) {
  DMEMO_ASSIGN_OR_RETURN(auto seg,
                         MakeSharedMemory(SharedMemoryKind::kPosix, name));
  DMEMO_RETURN_IF_ERROR(seg->Attach(seg_bytes));
  DMEMO_ASSIGN_OR_RETURN(std::size_t offset, seg->Allocate(ring_bytes));
  return std::make_pair(std::move(seg), offset);
}

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(ShmTransportOptions options)
      : options_(options), unix_(MakeUnixTransport()) {}

  Result<ConnectionPtr> Dial(std::string_view address) override {
    const std::string path = StripScheme(address);
    DMEMO_ASSIGN_OR_RETURN(ConnectionPtr control,
                           unix_->Dial("unix://" + path));
    // The dialer creates both segments and tells the acceptor their names.
    Handshake hs;
    static std::atomic<std::uint64_t> counter{0};
    const std::uint64_t id =
        HashCombine(static_cast<std::uint64_t>(::getpid()),
                    counter.fetch_add(1));
    hs.c2s_name = "dmemo-shm-" + std::to_string(id) + "-c2s";
    hs.s2c_name = "dmemo-shm-" + std::to_string(id) + "-s2c";
    hs.ring_bytes = options_.ring_bytes + sizeof(RingHeader);
    hs.seg_bytes = hs.ring_bytes + (64 << 10);  // allocator headroom
    DMEMO_ASSIGN_OR_RETURN(
        auto c2s, CreateRingSeg(hs.c2s_name, hs.seg_bytes, hs.ring_bytes));
    DMEMO_ASSIGN_OR_RETURN(
        auto s2c, CreateRingSeg(hs.s2c_name, hs.seg_bytes, hs.ring_bytes));
    if (c2s.second != s2c.second) {
      return InternalError("ring offsets diverged");
    }
    hs.offset = c2s.second;
    Ring tx = Ring::Create(c2s.first->At(c2s.second),
                           static_cast<std::size_t>(hs.ring_bytes));
    Ring rx = Ring::Create(s2c.first->At(s2c.second),
                           static_cast<std::size_t>(hs.ring_bytes));
    DMEMO_RETURN_IF_ERROR(control->Send(EncodeHandshake(hs)));
    // Wait for the acceptor's ack so segments are adopted before the
    // control socket goes away.
    DMEMO_ASSIGN_OR_RETURN(IoBuf ack, control->Receive());
    if (!(ack == Bytes{1})) return UnavailableError("shm handshake rejected");
    control->Close();
    ShmMetrics()->dials->Increment();
    return ConnectionPtr(std::make_unique<ShmConnection>(
        std::move(c2s.first), std::move(s2c.first), tx, rx,
        "shm:dial:" + path));
  }

  Result<ListenerPtr> Listen(std::string_view address) override {
    const std::string path = StripScheme(address);
    DMEMO_ASSIGN_OR_RETURN(ListenerPtr control,
                           unix_->Listen("unix://" + path));
    class ShmListener final : public Listener {
     public:
      explicit ShmListener(ListenerPtr control)
          : control_(std::move(control)) {}
      Result<ConnectionPtr> Accept() override {
        for (;;) {
          DMEMO_ASSIGN_OR_RETURN(ConnectionPtr conn, control_->Accept());
          auto frame = conn->Receive();
          if (!frame.ok()) continue;  // dialer vanished mid-handshake
          Bytes hs_scratch;
          auto hs = DecodeHandshake(frame->ContiguousView(hs_scratch));
          if (!hs.ok()) continue;
          // Adopt the dialer's segments (reverse directions).
          auto open = [&](const std::string& name)
              -> Result<std::unique_ptr<SharedMemory>> {
            DMEMO_ASSIGN_OR_RETURN(
                auto seg, MakeSharedMemory(SharedMemoryKind::kPosix, name));
            DMEMO_RETURN_IF_ERROR(
                seg->Attach(static_cast<std::size_t>(hs->seg_bytes)));
            return seg;
          };
          auto c2s = open(hs->c2s_name);
          auto s2c = open(hs->s2c_name);
          if (!c2s.ok() || !s2c.ok()) {
            (void)conn->Send(Bytes{0});
            continue;
          }
          Ring rx = Ring::Open((*c2s)->At(static_cast<std::size_t>(hs->offset)),
                               static_cast<std::size_t>(hs->ring_bytes));
          Ring tx = Ring::Open((*s2c)->At(static_cast<std::size_t>(hs->offset)),
                               static_cast<std::size_t>(hs->ring_bytes));
          DMEMO_RETURN_IF_ERROR(conn->Send(Bytes{1}));
          conn->Close();
          ShmMetrics()->accepts->Increment();
          return ConnectionPtr(std::make_unique<ShmConnection>(
              std::move(*s2c), std::move(*c2s), tx, rx, "shm:accept"));
        }
      }
      void Close() override { control_->Close(); }
      std::string address() const override {
        std::string addr = control_->address();
        // unix://path -> shm://path
        return "shm://" + addr.substr(std::string("unix://").size());
      }

     private:
      ListenerPtr control_;
    };
    return ListenerPtr(std::make_unique<ShmListener>(std::move(control)));
  }

  std::string_view scheme() const override { return "shm"; }

 private:
  static std::string StripScheme(std::string_view address) {
    constexpr std::string_view kPrefix = "shm://";
    if (address.substr(0, kPrefix.size()) == kPrefix) {
      address.remove_prefix(kPrefix.size());
    }
    return std::string(address);
  }

  ShmTransportOptions options_;
  TransportPtr unix_;
};

}  // namespace

TransportPtr MakeShmTransport(ShmTransportOptions options) {
  return std::make_shared<ShmTransport>(options);
}

}  // namespace dmemo
