#include "transport/transport.h"

#include "transport/socket_transport.h"

namespace dmemo {

Result<ParsedAddress> ParseAddress(std::string_view url) {
  auto pos = url.find("://");
  if (pos == std::string_view::npos || pos == 0) {
    return InvalidArgumentError("address must be scheme://rest, got '" +
                                std::string(url) + "'");
  }
  return ParsedAddress{std::string(url.substr(0, pos)),
                       std::string(url.substr(pos + 3))};
}

Status TransportMux::RegisterTransport(TransportPtr transport) {
  MutexLock lock(mu_);
  auto [it, inserted] =
      by_scheme_.emplace(std::string(transport->scheme()), transport);
  if (!inserted) {
    return AlreadyExistsError("transport for scheme '" +
                              std::string(transport->scheme()) +
                              "' already registered");
  }
  return Status::Ok();
}

Result<ConnectionPtr> TransportMux::Dial(std::string_view url) {
  DMEMO_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(url));
  TransportPtr transport;
  {
    MutexLock lock(mu_);
    auto it = by_scheme_.find(parsed.scheme);
    if (it == by_scheme_.end()) {
      return NotFoundError("no transport for scheme '" + parsed.scheme + "'");
    }
    transport = it->second;
  }
  return transport->Dial(url);
}

Result<ListenerPtr> TransportMux::Listen(std::string_view url) {
  DMEMO_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(url));
  TransportPtr transport;
  {
    MutexLock lock(mu_);
    auto it = by_scheme_.find(parsed.scheme);
    if (it == by_scheme_.end()) {
      return NotFoundError("no transport for scheme '" + parsed.scheme + "'");
    }
    transport = it->second;
  }
  return transport->Listen(url);
}

std::shared_ptr<TransportMux> TransportMux::CreateDefault() {
  auto mux = std::make_shared<TransportMux>();
  (void)mux->RegisterTransport(MakeTcpTransport());
  (void)mux->RegisterTransport(MakeUnixTransport());
  return mux;
}

}  // namespace dmemo
