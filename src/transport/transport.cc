#include "transport/transport.h"

#include "transport/socket_transport.h"
#include "util/iobuf.h"

namespace dmemo {

Status Connection::Send(std::span<const std::span<const std::uint8_t>> slices) {
  // Fallback for transports without a native gather path: coalesce into one
  // contiguous frame. The memcpy is charged to the payload-copy meter so
  // benches see exactly which paths still flatten.
  if (slices.size() == 1) return Send(slices[0]);
  std::size_t total = 0;
  for (const auto& s : slices) total += s.size();
  Bytes flat;
  flat.reserve(total);
  for (const auto& s : slices) flat.insert(flat.end(), s.begin(), s.end());
  CountPayloadCopyBytes(flat.size());
  return Send(std::span<const std::uint8_t>(flat));
}

Status Connection::SendBuf(const IoBuf& frame) {
  std::vector<std::span<const std::uint8_t>> slices;
  slices.reserve(frame.slice_count());
  for (std::size_t i = 0; i < frame.slice_count(); ++i) {
    slices.push_back(frame.slice_span(i));
  }
  if (slices.empty()) {
    return Send(std::span<const std::uint8_t>{});
  }
  return Send(std::span<const std::span<const std::uint8_t>>(slices));
}

Result<ParsedAddress> ParseAddress(std::string_view url) {
  auto pos = url.find("://");
  if (pos == std::string_view::npos || pos == 0) {
    return InvalidArgumentError("address must be scheme://rest, got '" +
                                std::string(url) + "'");
  }
  return ParsedAddress{std::string(url.substr(0, pos)),
                       std::string(url.substr(pos + 3))};
}

Status TransportMux::RegisterTransport(TransportPtr transport) {
  MutexLock lock(mu_);
  auto [it, inserted] =
      by_scheme_.emplace(std::string(transport->scheme()), transport);
  if (!inserted) {
    return AlreadyExistsError("transport for scheme '" +
                              std::string(transport->scheme()) +
                              "' already registered");
  }
  return Status::Ok();
}

Result<ConnectionPtr> TransportMux::Dial(std::string_view url) {
  DMEMO_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(url));
  TransportPtr transport;
  {
    MutexLock lock(mu_);
    auto it = by_scheme_.find(parsed.scheme);
    if (it == by_scheme_.end()) {
      return NotFoundError("no transport for scheme '" + parsed.scheme + "'");
    }
    transport = it->second;
  }
  return transport->Dial(url);
}

Result<ListenerPtr> TransportMux::Listen(std::string_view url) {
  DMEMO_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(url));
  TransportPtr transport;
  {
    MutexLock lock(mu_);
    auto it = by_scheme_.find(parsed.scheme);
    if (it == by_scheme_.end()) {
      return NotFoundError("no transport for scheme '" + parsed.scheme + "'");
    }
    transport = it->second;
  }
  return transport->Listen(url);
}

std::shared_ptr<TransportMux> TransportMux::CreateDefault() {
  auto mux = std::make_shared<TransportMux>();
  (void)mux->RegisterTransport(MakeTcpTransport());
  (void)mux->RegisterTransport(MakeUnixTransport());
  return mux;
}

}  // namespace dmemo
