// Per-scheme transport metrics (DESIGN.md "Observability").
//
// Every Transport implementation counts the same things — bytes and
// frames in each direction, dial/accept attempts, and scatter-gather
// sends — labelled by its scheme (`transport="tcp"`). Call sites resolve the handle bundle once
// (function-local static or constructor member) and pay one relaxed atomic
// add per frame on the data path.
#pragma once

#include <string>
#include <string_view>

#include "util/metrics.h"

namespace dmemo {

struct TransportMetrics {
  Counter* bytes_sent;
  Counter* bytes_received;
  Counter* frames_sent;
  Counter* frames_received;
  Counter* dials;
  Counter* accepts;
  // Frames sent through a native scatter-gather path (writev on sockets,
  // per-slice chunking on shm, gather fragmentation on frag+) rather than
  // a flatten-and-send fallback.
  Counter* writevs;
};

// Handles live as long as the process (registry-owned); the bundle itself is
// leaked intentionally, one per (scheme, call site).
inline const TransportMetrics* GetTransportMetrics(std::string_view scheme) {
  auto& registry = MetricsRegistry::Global();
  const std::string label = "transport=\"" + std::string(scheme) + "\"";
  return new TransportMetrics{
      registry.GetCounter("dmemo_transport_bytes_sent_total", label),
      registry.GetCounter("dmemo_transport_bytes_received_total", label),
      registry.GetCounter("dmemo_transport_frames_sent_total", label),
      registry.GetCounter("dmemo_transport_frames_received_total", label),
      registry.GetCounter("dmemo_transport_dials_total", label),
      registry.GetCounter("dmemo_transport_accepts_total", label),
      registry.GetCounter("dmemo_transport_writev_total", label),
  };
}

}  // namespace dmemo
