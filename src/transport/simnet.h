// In-process simulated network.
//
// A SimNetwork is a registry of named listening endpoints inside one
// process. Dialing creates a pair of frame queues (one per direction), so a
// "connection" is two BlockingQueues — reliable, ordered, message-framed,
// exactly the Connection contract, with zero kernel involvement.
//
// The simulated link can be given a bandwidth and a fixed latency, which the
// topology and transport benches use to model slow 1994-era links without
// real network hardware (per DESIGN.md's substitution table).
#pragma once

#include <memory>

#include "transport/transport.h"
#include "util/blocking_queue.h"

namespace dmemo {

struct SimLinkProfile {
  // 0 = infinite bandwidth (no transmission delay).
  std::uint64_t bytes_per_ms = 0;
  std::chrono::microseconds latency{0};
};

class SimNetwork {
 public:
  SimNetwork();
  ~SimNetwork();

  // Default profile applied to every subsequently dialed connection.
  void SetDefaultLinkProfile(SimLinkProfile profile);

  // Hostname-pair-specific profile (applies to dials of `to` from anywhere;
  // the simulated network has no notion of a caller address, so profiles
  // are keyed by target endpoint name).
  void SetEndpointLinkProfile(const std::string& endpoint,
                              SimLinkProfile profile);

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

using SimNetworkPtr = std::shared_ptr<SimNetwork>;

// Transport over a shared SimNetwork; addresses are "sim://name".
TransportPtr MakeSimTransport(SimNetworkPtr network);

}  // namespace dmemo
