// In-process simulated network.
//
// A SimNetwork is a registry of named listening endpoints inside one
// process. Dialing creates a pair of frame queues (one per direction), so a
// "connection" is two BlockingQueues — reliable, ordered, message-framed,
// exactly the Connection contract, with zero kernel involvement.
//
// The simulated link can be given a bandwidth and a fixed latency, which the
// topology and transport benches use to model slow 1994-era links without
// real network hardware (per DESIGN.md's substitution table).
//
// Fault injection (DESIGN.md "Fault tolerance"): link profiles are *live* —
// changing an endpoint's profile affects frames already-open connections
// send next, so tests inject delay or loss mid-call. A profile may drop
// each frame with a (deterministic, seeded) probability, modeling a lossy
// link under a reliable-looking API. Partition(endpoint) severs every open
// connection to that endpoint and makes new dials fail until Heal(endpoint)
// — the in-process stand-in for yanking a machine's cable, which is what
// the reconnect/retry tests drive.
#pragma once

#include <memory>

#include "transport/transport.h"
#include "util/blocking_queue.h"

namespace dmemo {

struct SimLinkProfile {
  // 0 = infinite bandwidth (no transmission delay).
  std::uint64_t bytes_per_ms = 0;
  std::chrono::microseconds latency{0};
  // Probability in [0, 1] that any single frame (either direction) is
  // silently lost. Draws come from a per-endpoint seeded PRNG, so a test
  // run is reproducible.
  double drop_probability = 0.0;
};

class SimNetwork {
 public:
  SimNetwork();
  ~SimNetwork();

  // Default profile applied to every endpoint without an explicit profile.
  // Live: also updates such endpoints' existing connections.
  void SetDefaultLinkProfile(SimLinkProfile profile);

  // Endpoint-specific profile (applies to dials of `endpoint` from
  // anywhere; the simulated network has no notion of a caller address, so
  // profiles are keyed by target endpoint name). Live: existing
  // connections to the endpoint switch to the new profile immediately.
  void SetEndpointLinkProfile(const std::string& endpoint,
                              SimLinkProfile profile);

  // Kill the link: every open connection to `endpoint` is severed (both
  // directions close; blocked Receives fail with UNAVAILABLE) and dials to
  // it fail until Heal. Severed connections stay dead after healing —
  // clients are expected to re-dial, exactly like after a real partition.
  void Partition(const std::string& endpoint);
  void Heal(const std::string& endpoint);

  // Seed for the per-endpoint drop PRNGs (set before traffic for
  // reproducible loss patterns).
  void SeedFaults(std::uint64_t seed);

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

using SimNetworkPtr = std::shared_ptr<SimNetwork>;

// Transport over a shared SimNetwork; addresses are "sim://name".
TransportPtr MakeSimTransport(SimNetworkPtr network);

}  // namespace dmemo
