#include "transport/simnet.h"

#include <thread>
#include <unordered_map>
#include <vector>

#include "transport/transport_metrics.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace dmemo {

namespace {

const TransportMetrics* SimMetrics() {
  static const TransportMetrics* m = GetTransportMetrics("sim");
  return m;
}

Counter* SimFramesDropped() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_transport_frames_dropped_total", "transport=\"sim\"");
  return c;
}

// One direction of a simulated connection.
struct Pipe {
  BlockingQueue<Bytes> frames;
};

using PipePtr = std::shared_ptr<Pipe>;

// Shared fault/profile state of one endpoint name. Every connection dialed
// to the endpoint holds a reference, so profile changes and partitions
// reach traffic on connections that already exist.
struct LinkState {
  explicit LinkState(SimLinkProfile initial, std::uint64_t seed)
      : profile(initial), rng(seed) {}

  Mutex mu{"SimNetwork::LinkState::mu"};
  SimLinkProfile profile DMEMO_GUARDED_BY(mu);
  bool has_override DMEMO_GUARDED_BY(mu) = false;
  bool partitioned DMEMO_GUARDED_BY(mu) = false;
  SplitMix64 rng DMEMO_GUARDED_BY(mu);
  // Both directions of every live connection to this endpoint; severed on
  // Partition, pruned lazily on dial.
  std::vector<std::weak_ptr<Pipe>> pipes DMEMO_GUARDED_BY(mu);

  // Decide one frame's fate: the profile to charge and whether the lossy
  // link eats it.
  std::pair<SimLinkProfile, bool> Admit() {
    MutexLock lock(mu);
    bool dropped = profile.drop_probability > 0.0 &&
                   rng.NextUnit() < profile.drop_probability;
    return {profile, dropped};
  }
};

using LinkStatePtr = std::shared_ptr<LinkState>;

// Applies the link profile: transmission time proportional to frame size
// plus fixed latency, charged to the sender (store-and-forward model).
void ChargeLink(const SimLinkProfile& profile, std::size_t bytes) {
  std::chrono::microseconds delay = profile.latency;
  if (profile.bytes_per_ms > 0) {
    delay += std::chrono::microseconds(
        (bytes * 1000) / profile.bytes_per_ms);
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

class SimConnection final : public Connection {
 public:
  SimConnection(PipePtr tx, PipePtr rx, LinkStatePtr link,
                std::string description)
      : tx_(std::move(tx)),
        rx_(std::move(rx)),
        link_(std::move(link)),
        description_(std::move(description)) {}

  ~SimConnection() override { Close(); }

  Status Send(std::span<const std::uint8_t> frame) override {
    // The queue hand-off is the simulated wire: one inherent copy per frame
    // (the analogue of the kernel's copy into the socket buffer), charged
    // to the payload-copy meter.
    CountPayloadCopyBytes(frame.size());
    auto [profile, dropped] = link_->Admit();
    ChargeLink(profile, frame.size());
    if (dropped) {
      // The lossy link ate the frame: the send itself "succeeded" exactly
      // as a kernel write into a doomed packet would.
      SimFramesDropped()->Increment();
      return Status::Ok();
    }
    if (!tx_->frames.Push(Bytes(frame.begin(), frame.end()))) {
      return UnavailableError("sim connection closed by peer");
    }
    SimMetrics()->frames_sent->Increment();
    SimMetrics()->bytes_sent->Add(frame.size());
    return Status::Ok();
  }

  // Gather send: the slices feed the single queue copy directly, so the
  // header/payload split costs no extra flatten pass.
  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    CountPayloadCopyBytes(total);
    auto [profile, dropped] = link_->Admit();
    ChargeLink(profile, total);
    if (dropped) {
      SimFramesDropped()->Increment();
      return Status::Ok();
    }
    Bytes frame;
    frame.reserve(total);
    for (const auto& s : slices) frame.insert(frame.end(), s.begin(), s.end());
    if (!tx_->frames.Push(std::move(frame))) {
      return UnavailableError("sim connection closed by peer");
    }
    SimMetrics()->writevs->Increment();
    SimMetrics()->frames_sent->Increment();
    SimMetrics()->bytes_sent->Add(total);
    return Status::Ok();
  }

  Result<IoBuf> Receive() override {
    auto frame = rx_->frames.Pop();
    if (!frame.has_value()) {
      return UnavailableError("sim connection closed");
    }
    SimMetrics()->frames_received->Increment();
    SimMetrics()->bytes_received->Add(frame->size());
    return IoBuf::FromBytes(std::move(*frame));
  }

  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    auto frame = rx_->frames.PopFor(timeout);
    if (!frame.has_value()) {
      if (rx_->frames.closed() && rx_->frames.size() == 0) {
        return UnavailableError("sim connection closed");
      }
      return std::optional<IoBuf>(std::nullopt);
    }
    SimMetrics()->frames_received->Increment();
    SimMetrics()->bytes_received->Add(frame->size());
    return std::optional<IoBuf>(IoBuf::FromBytes(std::move(*frame)));
  }

  void Close() override {
    tx_->frames.Close();
    rx_->frames.Close();
  }

  std::string description() const override { return description_; }

 private:
  PipePtr tx_;
  PipePtr rx_;
  LinkStatePtr link_;
  std::string description_;
};

}  // namespace

struct SimNetwork::Impl {
  Mutex mu{"SimNetwork::mu"};
  SimLinkProfile default_profile DMEMO_GUARDED_BY(mu);
  std::uint64_t fault_seed DMEMO_GUARDED_BY(mu) = 0x51'6d'4e'65'74ULL;
  std::unordered_map<std::string, LinkStatePtr> links DMEMO_GUARDED_BY(mu);
  // Pending dialed connections per listening endpoint name.
  std::unordered_map<std::string,
                     std::shared_ptr<BlockingQueue<ConnectionPtr>>>
      listeners DMEMO_GUARDED_BY(mu);

  LinkStatePtr StateFor(const std::string& endpoint) {
    MutexLock lock(mu);
    auto it = links.find(endpoint);
    if (it != links.end()) return it->second;
    auto state = std::make_shared<LinkState>(
        default_profile, fault_seed ^ Fnv1a64(endpoint));
    links.emplace(endpoint, state);
    return state;
  }
};

SimNetwork::SimNetwork() : impl_(std::make_unique<Impl>()) {}
SimNetwork::~SimNetwork() = default;

void SimNetwork::SetDefaultLinkProfile(SimLinkProfile profile) {
  MutexLock lock(impl_->mu);  // analyze:lock(SimNetwork::mu)
  impl_->default_profile = profile;
  for (auto& [name, state] : impl_->links) {
    MutexLock slock(state->mu);  // analyze:lock(SimNetwork::LinkState::mu)
    if (!state->has_override) state->profile = profile;
  }
}

void SimNetwork::SetEndpointLinkProfile(const std::string& endpoint,
                                        SimLinkProfile profile) {
  auto state = impl_->StateFor(endpoint);
  MutexLock lock(state->mu);  // analyze:lock(SimNetwork::LinkState::mu)
  state->profile = profile;
  state->has_override = true;
}

void SimNetwork::Partition(const std::string& endpoint) {
  auto state = impl_->StateFor(endpoint);
  std::vector<PipePtr> live;
  {
    MutexLock lock(state->mu);  // analyze:lock(SimNetwork::LinkState::mu)
    state->partitioned = true;
    for (auto& weak : state->pipes) {
      if (auto pipe = weak.lock()) live.push_back(std::move(pipe));
    }
    state->pipes.clear();
  }
  // Close outside the state lock: queue Close takes the queue mutex and
  // wakes blocked readers, which may immediately re-enter the transport.
  for (auto& pipe : live) pipe->frames.Close();
}

void SimNetwork::Heal(const std::string& endpoint) {
  auto state = impl_->StateFor(endpoint);
  MutexLock lock(state->mu);  // analyze:lock(SimNetwork::LinkState::mu)
  state->partitioned = false;
}

void SimNetwork::SeedFaults(std::uint64_t seed) {
  MutexLock lock(impl_->mu);  // analyze:lock(SimNetwork::mu)
  impl_->fault_seed = seed;
  for (auto& [name, state] : impl_->links) {
    MutexLock slock(state->mu);  // analyze:lock(SimNetwork::LinkState::mu)
    state->rng = SplitMix64(seed ^ Fnv1a64(name));
  }
}

namespace {

class SimListener final : public Listener {
 public:
  SimListener(std::string name,
              std::shared_ptr<BlockingQueue<ConnectionPtr>> backlog,
              std::weak_ptr<SimNetwork> network)
      : name_(std::move(name)),
        backlog_(std::move(backlog)),
        network_(std::move(network)) {}

  ~SimListener() override { Close(); }

  Result<ConnectionPtr> Accept() override {
    auto conn = backlog_->Pop();
    if (!conn.has_value()) {
      return UnavailableError("sim listener " + name_ + " closed");
    }
    SimMetrics()->accepts->Increment();
    return std::move(*conn);
  }

  void Close() override {
    backlog_->Close();
    if (auto network = network_.lock()) {
      MutexLock lock(network->impl().mu);  // analyze:lock(SimNetwork::mu)
      auto it = network->impl().listeners.find(name_);
      if (it != network->impl().listeners.end() &&
          it->second == backlog_) {
        network->impl().listeners.erase(it);
      }
    }
  }

  std::string address() const override { return "sim://" + name_; }

 private:
  std::string name_;
  std::shared_ptr<BlockingQueue<ConnectionPtr>> backlog_;
  std::weak_ptr<SimNetwork> network_;
};

class SimTransport final : public Transport {
 public:
  explicit SimTransport(SimNetworkPtr network)
      : network_(std::move(network)) {}

  Result<ConnectionPtr> Dial(std::string_view address) override {
    const std::string name = StripScheme(address);
    LinkStatePtr link = network_->impl().StateFor(name);
    std::shared_ptr<BlockingQueue<ConnectionPtr>> backlog;
    {
      MutexLock lock(network_->impl().mu);  // analyze:lock(SimNetwork::mu)
      auto it = network_->impl().listeners.find(name);
      if (it == network_->impl().listeners.end()) {
        return UnavailableError("no sim listener at " + name);
      }
      backlog = it->second;
    }
    auto a_to_b = std::make_shared<Pipe>();
    auto b_to_a = std::make_shared<Pipe>();
    {
      MutexLock lock(link->mu);  // analyze:lock(SimNetwork::LinkState::mu)
      if (link->partitioned) {
        return UnavailableError("sim endpoint " + name + " partitioned");
      }
      std::erase_if(link->pipes,
                    [](const std::weak_ptr<Pipe>& w) { return w.expired(); });
      link->pipes.push_back(a_to_b);
      link->pipes.push_back(b_to_a);
    }
    auto server_side = std::make_unique<SimConnection>(
        b_to_a, a_to_b, link, "sim:accept:" + name);
    if (!backlog->Push(std::move(server_side))) {
      return UnavailableError("sim listener at " + name + " closed");
    }
    SimMetrics()->dials->Increment();
    return ConnectionPtr(std::make_unique<SimConnection>(
        a_to_b, b_to_a, link, "sim:dial:" + name));
  }

  Result<ListenerPtr> Listen(std::string_view address) override {
    const std::string name = StripScheme(address);
    auto backlog = std::make_shared<BlockingQueue<ConnectionPtr>>();
    {
      MutexLock lock(network_->impl().mu);  // analyze:lock(SimNetwork::mu)
      auto [it, inserted] =
          network_->impl().listeners.emplace(name, backlog);
      if (!inserted) {
        return AlreadyExistsError("sim listener already at " + name);
      }
    }
    return ListenerPtr(
        std::make_unique<SimListener>(name, backlog, network_));
  }

  std::string_view scheme() const override { return "sim"; }

 private:
  static std::string StripScheme(std::string_view address) {
    constexpr std::string_view kPrefix = "sim://";
    if (address.substr(0, kPrefix.size()) == kPrefix) {
      address.remove_prefix(kPrefix.size());
    }
    return std::string(address);
  }

  SimNetworkPtr network_;
};

}  // namespace

TransportPtr MakeSimTransport(SimNetworkPtr network) {
  return std::make_shared<SimTransport>(std::move(network));
}

}  // namespace dmemo
