#include "transport/socket_transport.h"

#include "transport/transport_metrics.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <vector>

namespace dmemo {

namespace {

Status Errno(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

Status SetNonBlockingFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

// Listen backlog: the kernel default cap unless DMEMO_LISTEN_BACKLOG
// overrides it. The old hardcoded 128 silently dropped connection bursts
// under high-connection loads before the accept path ever saw them.
int ListenBacklog() {
  return static_cast<int>(EnvInt("DMEMO_LISTEN_BACKLOG", SOMAXCONN));
}

// Warn (once per process) when the fd budget cannot cover the configured
// connection target. DMEMO_CONNECTION_TARGET is set by deployments (and
// the loadgen connection sweep) to the expected peak concurrent
// connections of this process; 0 disables the check.
void WarnIfNofileBelowTarget() {
  static const bool once = [] {
    const std::int64_t target = EnvInt("DMEMO_CONNECTION_TARGET", 0);
    if (target <= 0) return false;
    struct rlimit rl{};
    if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
    // Listener, epoll, eventfd, stdio, WAL and snapshot files need
    // headroom on top of one fd per connection.
    const auto needed = static_cast<rlim_t>(target) + 64;
    if (rl.rlim_cur != RLIM_INFINITY && rl.rlim_cur < needed) {
      DMEMO_LOG(kWarn) << "RLIMIT_NOFILE soft limit " << rl.rlim_cur
                       << " is below the configured connection target "
                       << target << " (+64 fds of headroom); raise it with"
                       << " `ulimit -n` or lower DMEMO_CONNECTION_TARGET";
    }
    return true;
  }();
  (void)once;
}

// Retries on EINTR; UNAVAILABLE on EOF or error.
Status FullRead(int fd, std::uint8_t* dst, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, dst, n);
    if (r == 0) return UnavailableError("connection closed by peer");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    dst += r;
    n -= static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

Status FullWrite(int fd, const std::uint8_t* src, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, src, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    src += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Gather-write the whole iovec array, advancing past partial writes.
// sendmsg rather than writev so MSG_NOSIGNAL keeps a closed peer an error
// instead of SIGPIPE, matching FullWrite.
Status FullWritev(int fd, struct iovec* iov, std::size_t n) {
  while (n > 0) {
    const std::size_t batch =
        n < static_cast<std::size_t>(IOV_MAX) ? n
                                              : static_cast<std::size_t>(
                                                    IOV_MAX);
    struct msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = batch;
    ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("sendmsg");
    }
    // Consume fully written entries (including zero-length ones), then trim
    // the partially written head.
    while (n > 0 && static_cast<std::size_t>(w) >= iov->iov_len) {
      w -= static_cast<ssize_t>(iov->iov_len);
      ++iov;
      --n;
    }
    if (n > 0 && w > 0) {
      iov->iov_base = static_cast<std::uint8_t*>(iov->iov_base) + w;
      iov->iov_len -= static_cast<std::size_t>(w);
    }
  }
  return Status::Ok();
}

class FdConnection final : public Connection {
 public:
  FdConnection(int fd, std::string description,
               const TransportMetrics* metrics)
      : fd_(fd), description_(std::move(description)), metrics_(metrics) {}

  ~FdConnection() override { Close(); }

  Status Send(std::span<const std::uint8_t> frame) override {
    MutexLock lock(send_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    std::uint8_t header[4] = {
        static_cast<std::uint8_t>(frame.size() >> 24),
        static_cast<std::uint8_t>(frame.size() >> 16),
        static_cast<std::uint8_t>(frame.size() >> 8),
        static_cast<std::uint8_t>(frame.size()),
    };
    DMEMO_RETURN_IF_ERROR(FullWrite(fd_, header, sizeof(header)));
    DMEMO_RETURN_IF_ERROR(FullWrite(fd_, frame.data(), frame.size()));
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(frame.size() + sizeof(header));
    return Status::Ok();
  }

  // Native scatter-gather: length header + every slice go out through one
  // writev-style call without coalescing into a contiguous buffer.
  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    MutexLock lock(send_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    std::uint8_t header[4] = {
        static_cast<std::uint8_t>(total >> 24),
        static_cast<std::uint8_t>(total >> 16),
        static_cast<std::uint8_t>(total >> 8),
        static_cast<std::uint8_t>(total),
    };
    std::vector<struct iovec> iov;
    iov.reserve(slices.size() + 1);
    iov.push_back({header, sizeof(header)});
    for (const auto& s : slices) {
      if (s.empty()) continue;
      iov.push_back({const_cast<std::uint8_t*>(s.data()), s.size()});
    }
    DMEMO_RETURN_IF_ERROR(FullWritev(fd_, iov.data(), iov.size()));
    metrics_->writevs->Increment();
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(total + sizeof(header));
    return Status::Ok();
  }

  Result<IoBuf> Receive() override {
    MutexLock lock(recv_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    std::uint8_t header[4];
    DMEMO_RETURN_IF_ERROR(FullRead(fd_, header, sizeof(header)));
    const std::uint32_t len = (std::uint32_t(header[0]) << 24) |
                              (std::uint32_t(header[1]) << 16) |
                              (std::uint32_t(header[2]) << 8) |
                              std::uint32_t(header[3]);
    if (len > kMaxFrameBytes) {
      return DataLossError("frame length " + std::to_string(len) +
                           " exceeds limit");
    }
    Bytes payload(len);
    DMEMO_RETURN_IF_ERROR(FullRead(fd_, payload.data(), len));
    metrics_->frames_received->Increment();
    metrics_->bytes_received->Add(len + sizeof(header));
    // Adopt the read buffer; downstream decoding aliases it slice-wise.
    return IoBuf::FromBytes(std::move(payload));
  }

  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    {
      MutexLock lock(recv_mu_);
      if (fd_ < 0) return UnavailableError("connection closed");
      struct pollfd pfd{fd_, POLLIN, 0};
      int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      if (r < 0) return Errno("poll");
      if (r == 0) return std::optional<IoBuf>(std::nullopt);
    }
    DMEMO_ASSIGN_OR_RETURN(IoBuf frame, Receive());
    return std::optional<IoBuf>(std::move(frame));
  }

  void Close() override {
    // shutdown() wakes a peer blocked in read; close under both locks would
    // deadlock against a blocked Receive, so shut down first and let the
    // reader observe EOF.
    int fd = fd_;
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      MutexLock send_lock(send_mu_);  // canonical order: send before recv
      MutexLock recv_lock(recv_mu_);
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
    }
  }

  std::string description() const override { return description_; }

  // ---- readiness API --------------------------------------------------
  //
  // Once SetNonBlocking succeeds the connection must be driven through
  // TryReceive/TrySendBuf/FlushPending only; the blocking Send/Receive
  // path would misread the resumption state.

  int readiness_fd() const override {
    MutexLock lock(recv_mu_);
    return fd_;
  }

  Status SetNonBlocking() override {
    MutexLock send_lock(send_mu_);  // canonical order: send before recv
    MutexLock recv_lock(recv_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    return SetNonBlockingFd(fd_);
  }

  Result<std::optional<IoBuf>> TryReceive() override {
    MutexLock lock(recv_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    // Resume (or start) the 4-byte length header.
    while (recv_header_have_ < sizeof(recv_header_)) {
      ssize_t r = ::read(fd_, recv_header_ + recv_header_have_,
                         sizeof(recv_header_) - recv_header_have_);
      if (r == 0) return UnavailableError("connection closed by peer");
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return std::optional<IoBuf>(std::nullopt);
        }
        return Errno("read");
      }
      recv_header_have_ += static_cast<std::size_t>(r);
    }
    const std::uint32_t len = (std::uint32_t(recv_header_[0]) << 24) |
                              (std::uint32_t(recv_header_[1]) << 16) |
                              (std::uint32_t(recv_header_[2]) << 8) |
                              std::uint32_t(recv_header_[3]);
    if (len > kMaxFrameBytes) {
      return DataLossError("frame length " + std::to_string(len) +
                           " exceeds limit");
    }
    if (recv_body_.size() != len) recv_body_.resize(len);
    // Resume the body; a partial read stays in recv_body_ for next time.
    while (recv_body_have_ < len) {
      ssize_t r = ::read(fd_, recv_body_.data() + recv_body_have_,
                         len - recv_body_have_);
      if (r == 0) return UnavailableError("connection closed by peer");
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return std::optional<IoBuf>(std::nullopt);
        }
        return Errno("read");
      }
      recv_body_have_ += static_cast<std::size_t>(r);
    }
    metrics_->frames_received->Increment();
    metrics_->bytes_received->Add(len + sizeof(recv_header_));
    Bytes payload = std::move(recv_body_);
    recv_body_ = Bytes();
    recv_body_have_ = 0;
    recv_header_have_ = 0;
    return std::optional<IoBuf>(IoBuf::FromBytes(std::move(payload)));
  }

  Result<bool> TrySendBuf(IoBuf frame) override {
    MutexLock lock(send_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    const std::size_t total = frame.size();
    PendingSend p;
    p.header[0] = static_cast<std::uint8_t>(total >> 24);
    p.header[1] = static_cast<std::uint8_t>(total >> 16);
    p.header[2] = static_cast<std::uint8_t>(total >> 8);
    p.header[3] = static_cast<std::uint8_t>(total);
    p.frame = std::move(frame);
    send_queue_.push_back(std::move(p));
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(total + 4);
    return FlushLocked();
  }

  Result<bool> FlushPending() override {
    MutexLock lock(send_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    return FlushLocked();
  }

  bool HasPendingSend() const override {
    MutexLock lock(send_mu_);
    return !send_queue_.empty();
  }

 private:
  // One queued outbound frame: the 4-byte length prefix plus the payload
  // chain, with `offset` counting bytes of (header + payload) already
  // handed to the kernel. The IoBuf keeps its slices alive, so a buffered
  // partial write never copies payload bytes.
  struct PendingSend {
    std::uint8_t header[4];
    IoBuf frame;
    std::size_t offset = 0;
  };

  // Gather-write the queue until it drains (true) or the descriptor would
  // block (false, caller waits for writable).
  Result<bool> FlushLocked() DMEMO_REQUIRES(send_mu_) {
    while (!send_queue_.empty()) {
      PendingSend& p = send_queue_.front();
      std::vector<struct iovec> iov;
      iov.reserve(p.frame.slice_count() + 1);
      std::size_t skip = p.offset;
      if (skip < sizeof(p.header)) {
        iov.push_back({p.header + skip, sizeof(p.header) - skip});
        skip = 0;
      } else {
        skip -= sizeof(p.header);
      }
      for (std::size_t i = 0;
           i < p.frame.slice_count() &&
           iov.size() < static_cast<std::size_t>(IOV_MAX);
           ++i) {
        auto s = p.frame.slice_span(i);
        if (skip >= s.size()) {
          skip -= s.size();
          continue;
        }
        iov.push_back(
            {const_cast<std::uint8_t*>(s.data()) + skip, s.size() - skip});
        skip = 0;
      }
      struct msghdr msg{};
      msg.msg_iov = iov.data();
      msg.msg_iovlen = iov.size();
      ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
        return Errno("sendmsg");
      }
      p.offset += static_cast<std::size_t>(w);
      if (p.offset >= sizeof(p.header) + p.frame.size()) {
        metrics_->writevs->Increment();
        send_queue_.pop_front();
      }
    }
    return true;
  }

  // Acquired send_mu_ before recv_mu_ when both are needed (Close only).
  mutable Mutex send_mu_{"FdConnection::send_mu"};
  mutable Mutex recv_mu_{"FdConnection::recv_mu"};
  // Guarded by *either* mutex: Send checks it under send_mu_, Receive under
  // recv_mu_, and Close clears it under both — so no single GUARDED_BY fits.
  int fd_;
  std::string description_;
  const TransportMetrics* metrics_;
  // Non-blocking receive resumption state.
  std::uint8_t recv_header_[4] DMEMO_GUARDED_BY(recv_mu_) = {0, 0, 0, 0};
  std::size_t recv_header_have_ DMEMO_GUARDED_BY(recv_mu_) = 0;
  Bytes recv_body_ DMEMO_GUARDED_BY(recv_mu_);
  std::size_t recv_body_have_ DMEMO_GUARDED_BY(recv_mu_) = 0;
  // Non-blocking send buffering.
  std::deque<PendingSend> send_queue_ DMEMO_GUARDED_BY(send_mu_);
};

class FdListener final : public Listener {
 public:
  FdListener(int fd, std::string address, const TransportMetrics* metrics)
      : fd_(fd), address_(std::move(address)), metrics_(metrics) {}

  ~FdListener() override { Close(); }

  Result<ConnectionPtr> Accept() override {
    for (;;) {
      int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) {
        int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        metrics_->accepts->Increment();
        return ConnectionPtr(std::make_unique<FdConnection>(
            client, "accept:" + address_, metrics_));
      }
      if (errno == EINTR) continue;
      return Errno("accept on " + address_);
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::string address() const override { return address_; }

  int readiness_fd() const override { return fd_; }

  Status SetNonBlocking() override {
    if (fd_ < 0) return UnavailableError("listener closed");
    return SetNonBlockingFd(fd_);
  }

  Result<std::optional<ConnectionPtr>> TryAccept() override {
    for (;;) {
      if (fd_ < 0) return UnavailableError("listener closed");
      int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) {
        int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        metrics_->accepts->Increment();
        return std::optional<ConnectionPtr>(std::make_unique<FdConnection>(
            client, "accept:" + address_, metrics_));
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return std::optional<ConnectionPtr>(std::nullopt);
      }
      return Errno("accept on " + address_);
    }
  }

 private:
  int fd_;
  std::string address_;
  const TransportMetrics* metrics_;
};

Result<std::pair<std::string, std::uint16_t>> SplitHostPort(
    std::string_view hostport) {
  auto colon = hostport.find_last_of(':');
  if (colon == std::string_view::npos) {
    return InvalidArgumentError("tcp address needs host:port, got '" +
                                std::string(hostport) + "'");
  }
  std::string host(hostport.substr(0, colon));
  int port = 0;
  for (char c : hostport.substr(colon + 1)) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("bad port in '" + std::string(hostport) +
                                  "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) return InvalidArgumentError("port out of range");
  }
  return std::make_pair(std::move(host), static_cast<std::uint16_t>(port));
}

std::string StripScheme(std::string_view address, std::string_view scheme) {
  std::string prefix = std::string(scheme) + "://";
  if (address.substr(0, prefix.size()) == prefix) {
    address.remove_prefix(prefix.size());
  }
  return std::string(address);
}

class TcpTransport final : public Transport {
 public:
  Result<ConnectionPtr> Dial(std::string_view address) override {
    DMEMO_ASSIGN_OR_RETURN(auto hostport,
                           SplitHostPort(StripScheme(address, "tcp")));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(hostport.second);
    if (::inet_pton(AF_INET, hostport.first.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("tcp transport accepts IPv4 literals, got '" +
                                  hostport.first + "'");
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("connect to " + std::string(address));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    metrics_->dials->Increment();
    return ConnectionPtr(std::make_unique<FdConnection>(
        fd, "tcp:" + std::string(address), metrics_));
  }

  Result<ListenerPtr> Listen(std::string_view address) override {
    DMEMO_ASSIGN_OR_RETURN(auto hostport,
                           SplitHostPort(StripScheme(address, "tcp")));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(hostport.second);
    if (::inet_pton(AF_INET, hostport.first.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("tcp transport accepts IPv4 literals");
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("bind " + std::string(address));
    }
    WarnIfNofileBelowTarget();
    if (::listen(fd, ListenBacklog()) != 0) {
      ::close(fd);
      return Errno("listen");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    char ip[INET_ADDRSTRLEN];
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    std::string bound = "tcp://" + std::string(ip) + ":" +
                        std::to_string(ntohs(addr.sin_port));
    return ListenerPtr(std::make_unique<FdListener>(fd, bound, metrics_));
  }

  std::string_view scheme() const override { return "tcp"; }

 private:
  const TransportMetrics* metrics_ = GetTransportMetrics("tcp");
};

class UnixTransport final : public Transport {
 public:
  Result<ConnectionPtr> Dial(std::string_view address) override {
    const std::string path = StripScheme(address, "unix");
    struct sockaddr_un addr{};
    DMEMO_RETURN_IF_ERROR(FillPath(addr, path));
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("connect to " + path);
    }
    metrics_->dials->Increment();
    return ConnectionPtr(
        std::make_unique<FdConnection>(fd, "unix:" + path, metrics_));
  }

  Result<ListenerPtr> Listen(std::string_view address) override {
    const std::string path = StripScheme(address, "unix");
    struct sockaddr_un addr{};
    DMEMO_RETURN_IF_ERROR(FillPath(addr, path));
    ::unlink(path.c_str());  // stale socket from a previous run
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("bind " + path);
    }
    WarnIfNofileBelowTarget();
    if (::listen(fd, ListenBacklog()) != 0) {
      ::close(fd);
      return Errno("listen");
    }
    return ListenerPtr(
        std::make_unique<FdListener>(fd, "unix://" + path, metrics_));
  }

  std::string_view scheme() const override { return "unix"; }

 private:
  const TransportMetrics* metrics_ = GetTransportMetrics("unix");

  static Status FillPath(struct sockaddr_un& addr, const std::string& path) {
    if (path.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError("unix socket path too long: " + path);
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return Status::Ok();
  }
};

}  // namespace

TransportPtr MakeTcpTransport() { return std::make_shared<TcpTransport>(); }
TransportPtr MakeUnixTransport() { return std::make_shared<UnixTransport>(); }

}  // namespace dmemo
