#include "transport/socket_transport.h"

#include "transport/transport_metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace dmemo {

namespace {

Status Errno(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

// Retries on EINTR; UNAVAILABLE on EOF or error.
Status FullRead(int fd, std::uint8_t* dst, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, dst, n);
    if (r == 0) return UnavailableError("connection closed by peer");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    dst += r;
    n -= static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

Status FullWrite(int fd, const std::uint8_t* src, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, src, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    src += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Gather-write the whole iovec array, advancing past partial writes.
// sendmsg rather than writev so MSG_NOSIGNAL keeps a closed peer an error
// instead of SIGPIPE, matching FullWrite.
Status FullWritev(int fd, struct iovec* iov, std::size_t n) {
  while (n > 0) {
    const std::size_t batch =
        n < static_cast<std::size_t>(IOV_MAX) ? n
                                              : static_cast<std::size_t>(
                                                    IOV_MAX);
    struct msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = batch;
    ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("sendmsg");
    }
    // Consume fully written entries (including zero-length ones), then trim
    // the partially written head.
    while (n > 0 && static_cast<std::size_t>(w) >= iov->iov_len) {
      w -= static_cast<ssize_t>(iov->iov_len);
      ++iov;
      --n;
    }
    if (n > 0 && w > 0) {
      iov->iov_base = static_cast<std::uint8_t*>(iov->iov_base) + w;
      iov->iov_len -= static_cast<std::size_t>(w);
    }
  }
  return Status::Ok();
}

class FdConnection final : public Connection {
 public:
  FdConnection(int fd, std::string description,
               const TransportMetrics* metrics)
      : fd_(fd), description_(std::move(description)), metrics_(metrics) {}

  ~FdConnection() override { Close(); }

  Status Send(std::span<const std::uint8_t> frame) override {
    MutexLock lock(send_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    std::uint8_t header[4] = {
        static_cast<std::uint8_t>(frame.size() >> 24),
        static_cast<std::uint8_t>(frame.size() >> 16),
        static_cast<std::uint8_t>(frame.size() >> 8),
        static_cast<std::uint8_t>(frame.size()),
    };
    DMEMO_RETURN_IF_ERROR(FullWrite(fd_, header, sizeof(header)));
    DMEMO_RETURN_IF_ERROR(FullWrite(fd_, frame.data(), frame.size()));
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(frame.size() + sizeof(header));
    return Status::Ok();
  }

  // Native scatter-gather: length header + every slice go out through one
  // writev-style call without coalescing into a contiguous buffer.
  Status Send(std::span<const std::span<const std::uint8_t>> slices) override {
    std::size_t total = 0;
    for (const auto& s : slices) total += s.size();
    MutexLock lock(send_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    std::uint8_t header[4] = {
        static_cast<std::uint8_t>(total >> 24),
        static_cast<std::uint8_t>(total >> 16),
        static_cast<std::uint8_t>(total >> 8),
        static_cast<std::uint8_t>(total),
    };
    std::vector<struct iovec> iov;
    iov.reserve(slices.size() + 1);
    iov.push_back({header, sizeof(header)});
    for (const auto& s : slices) {
      if (s.empty()) continue;
      iov.push_back({const_cast<std::uint8_t*>(s.data()), s.size()});
    }
    DMEMO_RETURN_IF_ERROR(FullWritev(fd_, iov.data(), iov.size()));
    metrics_->writevs->Increment();
    metrics_->frames_sent->Increment();
    metrics_->bytes_sent->Add(total + sizeof(header));
    return Status::Ok();
  }

  Result<IoBuf> Receive() override {
    MutexLock lock(recv_mu_);
    if (fd_ < 0) return UnavailableError("connection closed");
    std::uint8_t header[4];
    DMEMO_RETURN_IF_ERROR(FullRead(fd_, header, sizeof(header)));
    const std::uint32_t len = (std::uint32_t(header[0]) << 24) |
                              (std::uint32_t(header[1]) << 16) |
                              (std::uint32_t(header[2]) << 8) |
                              std::uint32_t(header[3]);
    if (len > kMaxFrameBytes) {
      return DataLossError("frame length " + std::to_string(len) +
                           " exceeds limit");
    }
    Bytes payload(len);
    DMEMO_RETURN_IF_ERROR(FullRead(fd_, payload.data(), len));
    metrics_->frames_received->Increment();
    metrics_->bytes_received->Add(len + sizeof(header));
    // Adopt the read buffer; downstream decoding aliases it slice-wise.
    return IoBuf::FromBytes(std::move(payload));
  }

  Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) override {
    {
      MutexLock lock(recv_mu_);
      if (fd_ < 0) return UnavailableError("connection closed");
      struct pollfd pfd{fd_, POLLIN, 0};
      int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      if (r < 0) return Errno("poll");
      if (r == 0) return std::optional<IoBuf>(std::nullopt);
    }
    DMEMO_ASSIGN_OR_RETURN(IoBuf frame, Receive());
    return std::optional<IoBuf>(std::move(frame));
  }

  void Close() override {
    // shutdown() wakes a peer blocked in read; close under both locks would
    // deadlock against a blocked Receive, so shut down first and let the
    // reader observe EOF.
    int fd = fd_;
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      MutexLock send_lock(send_mu_);  // canonical order: send before recv
      MutexLock recv_lock(recv_mu_);
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
    }
  }

  std::string description() const override { return description_; }

 private:
  // Acquired send_mu_ before recv_mu_ when both are needed (Close only).
  Mutex send_mu_{"FdConnection::send_mu"};
  Mutex recv_mu_{"FdConnection::recv_mu"};
  // Guarded by *either* mutex: Send checks it under send_mu_, Receive under
  // recv_mu_, and Close clears it under both — so no single GUARDED_BY fits.
  int fd_;
  std::string description_;
  const TransportMetrics* metrics_;
};

class FdListener final : public Listener {
 public:
  FdListener(int fd, std::string address, const TransportMetrics* metrics)
      : fd_(fd), address_(std::move(address)), metrics_(metrics) {}

  ~FdListener() override { Close(); }

  Result<ConnectionPtr> Accept() override {
    for (;;) {
      int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) {
        int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        metrics_->accepts->Increment();
        return ConnectionPtr(std::make_unique<FdConnection>(
            client, "accept:" + address_, metrics_));
      }
      if (errno == EINTR) continue;
      return Errno("accept on " + address_);
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::string address() const override { return address_; }

 private:
  int fd_;
  std::string address_;
  const TransportMetrics* metrics_;
};

Result<std::pair<std::string, std::uint16_t>> SplitHostPort(
    std::string_view hostport) {
  auto colon = hostport.find_last_of(':');
  if (colon == std::string_view::npos) {
    return InvalidArgumentError("tcp address needs host:port, got '" +
                                std::string(hostport) + "'");
  }
  std::string host(hostport.substr(0, colon));
  int port = 0;
  for (char c : hostport.substr(colon + 1)) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("bad port in '" + std::string(hostport) +
                                  "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) return InvalidArgumentError("port out of range");
  }
  return std::make_pair(std::move(host), static_cast<std::uint16_t>(port));
}

std::string StripScheme(std::string_view address, std::string_view scheme) {
  std::string prefix = std::string(scheme) + "://";
  if (address.substr(0, prefix.size()) == prefix) {
    address.remove_prefix(prefix.size());
  }
  return std::string(address);
}

class TcpTransport final : public Transport {
 public:
  Result<ConnectionPtr> Dial(std::string_view address) override {
    DMEMO_ASSIGN_OR_RETURN(auto hostport,
                           SplitHostPort(StripScheme(address, "tcp")));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(hostport.second);
    if (::inet_pton(AF_INET, hostport.first.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("tcp transport accepts IPv4 literals, got '" +
                                  hostport.first + "'");
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("connect to " + std::string(address));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    metrics_->dials->Increment();
    return ConnectionPtr(std::make_unique<FdConnection>(
        fd, "tcp:" + std::string(address), metrics_));
  }

  Result<ListenerPtr> Listen(std::string_view address) override {
    DMEMO_ASSIGN_OR_RETURN(auto hostport,
                           SplitHostPort(StripScheme(address, "tcp")));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(hostport.second);
    if (::inet_pton(AF_INET, hostport.first.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("tcp transport accepts IPv4 literals");
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("bind " + std::string(address));
    }
    if (::listen(fd, 128) != 0) {
      ::close(fd);
      return Errno("listen");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    char ip[INET_ADDRSTRLEN];
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    std::string bound = "tcp://" + std::string(ip) + ":" +
                        std::to_string(ntohs(addr.sin_port));
    return ListenerPtr(std::make_unique<FdListener>(fd, bound, metrics_));
  }

  std::string_view scheme() const override { return "tcp"; }

 private:
  const TransportMetrics* metrics_ = GetTransportMetrics("tcp");
};

class UnixTransport final : public Transport {
 public:
  Result<ConnectionPtr> Dial(std::string_view address) override {
    const std::string path = StripScheme(address, "unix");
    struct sockaddr_un addr{};
    DMEMO_RETURN_IF_ERROR(FillPath(addr, path));
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("connect to " + path);
    }
    metrics_->dials->Increment();
    return ConnectionPtr(
        std::make_unique<FdConnection>(fd, "unix:" + path, metrics_));
  }

  Result<ListenerPtr> Listen(std::string_view address) override {
    const std::string path = StripScheme(address, "unix");
    struct sockaddr_un addr{};
    DMEMO_RETURN_IF_ERROR(FillPath(addr, path));
    ::unlink(path.c_str());  // stale socket from a previous run
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Errno("bind " + path);
    }
    if (::listen(fd, 128) != 0) {
      ::close(fd);
      return Errno("listen");
    }
    return ListenerPtr(
        std::make_unique<FdListener>(fd, "unix://" + path, metrics_));
  }

  std::string_view scheme() const override { return "unix"; }

 private:
  const TransportMetrics* metrics_ = GetTransportMetrics("unix");

  static Status FillPath(struct sockaddr_un& addr, const std::string& path) {
    if (path.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError("unix socket path too long: " + path);
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return Status::Ok();
  }
};

}  // namespace

TransportPtr MakeTcpTransport() { return std::make_shared<TcpTransport>(); }
TransportPtr MakeUnixTransport() { return std::make_shared<UnixTransport>(); }

}  // namespace dmemo
