// Network communication foundation (paper Sec. 3.1.1).
//
// "It is fundamentally important to establish a connection between two
// processes, located on any two machines or the same machine... The notion
// of a Connection allows processes in the system to connect to other
// processes by a logical network address."
//
// Connection is a reliable, bidirectional, *message-framed* channel: Send
// delivers one frame, Receive yields one frame. A Transport derivation maps
// logical addresses onto a concrete mechanism:
//
//   sim://name        in-process simulated network (tests, local engine)
//   tcp://host:port   TCP sockets (inter-process / inter-machine)
//   unix://path       Unix-domain sockets (inter-process, one host)
//   chan+<url>        blocking rendezvous channel (Transputer model)
//   frag+<url>        fragmenting virtual-connection overlay (Sec. 3.1.1's
//                     proposed derived transport)
//
// "The class provides the ability to simultaneously interact with different
// protocols in an application": TransportMux dispatches a dial by scheme.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/bytes.h"
#include "util/iobuf.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

class Connection {
 public:
  virtual ~Connection() = default;

  // Deliver one frame. Blocking until the frame is handed to the transport
  // (which may mean fully transmitted, for rendezvous-style derivations).
  virtual Status Send(std::span<const std::uint8_t> frame) = 0;

  // Scatter-gather Send: deliver ONE frame whose bytes are the
  // concatenation of `slices`, in order. The base implementation flattens
  // into a contiguous buffer (a counted payload copy) and delegates to the
  // single-span Send; native transports override it (writev on sockets,
  // per-slice chunking on shm, gather fragmentation on frag+) so the
  // header/payload split of the zero-copy pipeline reaches the wire
  // without a coalescing memcpy.
  virtual Status Send(std::span<const std::span<const std::uint8_t>> slices);

  // Convenience: gather-send an IoBuf chain as one frame. (Named SendBuf —
  // a Send overload would be ambiguous with Send(span) for Bytes
  // arguments, since IoBuf converts implicitly from Bytes.)
  Status SendBuf(const IoBuf& frame);

  // Block until one frame arrives; UNAVAILABLE after the peer closes. The
  // frame's slices alias the transport's read buffer — the IoBuf shares
  // ownership, so it stays valid independent of later receives.
  virtual Result<IoBuf> Receive() = 0;

  // Bounded wait: nullopt on timeout, frame otherwise.
  virtual Result<std::optional<IoBuf>> ReceiveFor(
      std::chrono::milliseconds timeout) = 0;

  // Half-close for sending; wakes the peer's Receive with UNAVAILABLE once
  // in-flight frames drain. Idempotent.
  virtual void Close() = 0;

  // Diagnostics label, e.g. "tcp:127.0.0.1:4711".
  virtual std::string description() const = 0;

  // ---- readiness API (reactor core) ----------------------------------
  //
  // Fd-backed transports expose a pollable descriptor plus non-blocking
  // frame I/O so an event loop can drive thousands of connections without
  // a thread each. The base implementations report "not supported"
  // (readiness_fd() == -1), which makes the reactor fall back to the
  // threaded core for sim://, shm and overlay transports.

  // Descriptor to register with epoll/poll, or -1 when the connection has
  // no kernel-pollable handle.
  virtual int readiness_fd() const { return -1; }

  // Switch the descriptor to non-blocking mode. Required before
  // TryReceive/TrySendBuf are used.
  virtual Status SetNonBlocking() {
    return UnimplementedError("connection has no non-blocking mode");
  }

  // Non-blocking receive: one complete frame, nullopt when the descriptor
  // would block (a partial header/body read is retained and resumed by the
  // next call), UNAVAILABLE once the peer closes.
  virtual Result<std::optional<IoBuf>> TryReceive() {
    return UnimplementedError("connection has no non-blocking receive");
  }

  // Non-blocking gather-send. Returns true when the frame (and any
  // previously buffered partial write) fully reached the kernel; false
  // when a tail remains buffered — the caller must call FlushPending once
  // the descriptor signals writable. Buffered tails share the IoBuf's
  // slices (no payload copy).
  virtual Result<bool> TrySendBuf(IoBuf frame) {
    (void)frame;
    return UnimplementedError("connection has no non-blocking send");
  }

  // Push buffered partial writes; true when the send queue drained.
  virtual Result<bool> FlushPending() { return true; }

  // Whether buffered partial writes are waiting for the descriptor to
  // become writable (i.e. the reactor should watch EPOLLOUT).
  virtual bool HasPendingSend() const { return false; }
};

using ConnectionPtr = std::unique_ptr<Connection>;

class Listener {
 public:
  virtual ~Listener() = default;

  // Block for the next inbound connection; UNAVAILABLE after Close.
  virtual Result<ConnectionPtr> Accept() = 0;

  // Stop accepting; unblocks pending Accept calls.
  virtual void Close() = 0;

  // The concrete dialable address (e.g. with the ephemeral port resolved).
  virtual std::string address() const = 0;

  // ---- readiness API (reactor core) ----------------------------------

  // Descriptor to register with epoll/poll, or -1 when accepting has no
  // kernel-pollable handle (sim://).
  virtual int readiness_fd() const { return -1; }

  // Switch the listening descriptor to non-blocking mode.
  virtual Status SetNonBlocking() {
    return UnimplementedError("listener has no non-blocking mode");
  }

  // Non-blocking accept: nullopt when no connection is pending,
  // UNAVAILABLE after Close.
  virtual Result<std::optional<ConnectionPtr>> TryAccept() {
    return UnimplementedError("listener has no non-blocking accept");
  }
};

using ListenerPtr = std::unique_ptr<Listener>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<ConnectionPtr> Dial(std::string_view address) = 0;
  virtual Result<ListenerPtr> Listen(std::string_view address) = 0;

  // Scheme this transport serves ("sim", "tcp", "unix", ...).
  virtual std::string_view scheme() const = 0;
};

using TransportPtr = std::shared_ptr<Transport>;

// Split "scheme://rest" -> {scheme, rest}; INVALID_ARGUMENT without "://".
struct ParsedAddress {
  std::string scheme;
  std::string rest;
};
Result<ParsedAddress> ParseAddress(std::string_view url);

// Scheme-dispatching facade: register transports, dial/listen full URLs.
// One application can hold TCP, Unix and simulated links at once.
class TransportMux final : public Transport {
 public:
  Status RegisterTransport(TransportPtr transport);

  Result<ConnectionPtr> Dial(std::string_view url) override;
  Result<ListenerPtr> Listen(std::string_view url) override;
  std::string_view scheme() const override { return "mux"; }

  // Mux with tcp:// and unix:// registered (sim:// needs an explicit
  // SimNetwork, so callers add it themselves).
  static std::shared_ptr<TransportMux> CreateDefault();

 private:
  mutable Mutex mu_{"TransportMux::mu"};
  std::unordered_map<std::string, TransportPtr> by_scheme_
      DMEMO_GUARDED_BY(mu_);
};

}  // namespace dmemo
