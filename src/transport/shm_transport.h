// Shared-memory transport: Figure 1's intra-machine path, for real.
//
// On one machine the paper connects application processes and servers
// through shared memory rather than the network stack. This transport
// implements that: each connection is a pair of ring buffers living in
// POSIX shared-memory segments managed by the SharedMemory foundation
// (Sec. 3.1.2) and synchronized with process-shared mutexes/condvars.
// Only the connection *handshake* uses a Unix socket (to exchange segment
// names); every data byte thereafter moves through memory.
//
// Addresses: shm://<path> — the handshake socket's filesystem path.
// Frames of any size are supported (writers chunk across ring wraps).
#pragma once

#include "transport/transport.h"

namespace dmemo {

struct ShmTransportOptions {
  // Per-direction ring capacity. Larger rings absorb bigger bursts; any
  // frame size works regardless (chunked transfer).
  std::size_t ring_bytes = 1 << 20;
};

TransportPtr MakeShmTransport(ShmTransportOptions options = {});

}  // namespace dmemo
