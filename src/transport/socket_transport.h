// Socket transports: TCP (tcp://host:port) and Unix-domain (unix://path).
//
// Both share one framed-connection implementation over a file descriptor:
// each frame is a 4-byte big-endian length followed by the payload. TCP with
// port 0 binds an ephemeral port which Listener::address() reports, so tests
// never collide.
#pragma once

#include "transport/transport.h"

namespace dmemo {

TransportPtr MakeTcpTransport();
TransportPtr MakeUnixTransport();

// Cap on a single frame; a larger announced length is treated as a protocol
// violation (DATA_LOSS) rather than an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;  // 256 MiB

}  // namespace dmemo
