// The Transputer story (paper Sec. 3.1.1), as two Connection decorators.
//
// "INMOS Transputers... When one wants to send a message, a channel is
// opened and the message is sent into it. This, however, results in poor
// performance. Compute-bound processes that are ready to use the CPU are
// blocked until the long-winded communication is ended. A derived transport
// layer that supports packet fragmentation and virtual connections would
// allow the communication cost to be amortized over time and allow some
// useful processing to be done in the process."
//
// BlockingChannelConnection models the raw channel: Send synchronously
// transmits the whole message at the configured channel bandwidth — the
// caller is blocked for the full transmission time.
//
// FragmentingConnection is the proposed derived transport: Send splits the
// message into packets tagged with a virtual-connection id and sequence
// number, queues them, and returns immediately; a background pump thread
// transmits packet-by-packet, interleaving packets of concurrent logical
// streams, while the caller computes. The receiving side reassembles per
// virtual connection. bench_transport (experiment E7) compares the two.
#pragma once

#include <memory>

#include "transport/transport.h"

namespace dmemo {

// Bandwidth model shared by both decorators, so the comparison is about
// *structure* (blocking vs pipelined), not about one side cheating on cost.
struct ChannelProfile {
  std::uint64_t bytes_per_ms = 10'000;  // ~10 MB/s: a fast 1994 link
  std::size_t packet_bytes = 4096;      // fragment size (fragmenting only)
};

// Wrap `inner`: Send blocks for size/bandwidth before forwarding the frame.
ConnectionPtr MakeBlockingChannel(ConnectionPtr inner,
                                  ChannelProfile profile);

// Wrap `inner` with fragmentation + virtual connections. Send enqueues and
// returns; Receive reassembles. Multiple FragmentingConnections can share
// one inner connection via distinct vc ids — create them through
// FragmentingMux when that is needed; this helper makes vc id 0.
ConnectionPtr MakeFragmentingChannel(ConnectionPtr inner,
                                     ChannelProfile profile);

// Multiplexes several virtual connections over one physical connection.
// Both endpoints construct a mux over their end and open matching vc ids.
class FragmentingMux {
 public:
  FragmentingMux(ConnectionPtr inner, ChannelProfile profile);
  ~FragmentingMux();

  FragmentingMux(const FragmentingMux&) = delete;
  FragmentingMux& operator=(const FragmentingMux&) = delete;

  // Open virtual connection `vc`. Frames sent on it arrive at the peer's
  // stream with the same id. A vc id may be opened once per side.
  Result<ConnectionPtr> OpenVirtual(std::uint32_t vc);

  // Packets actually transmitted (white-box metric for tests/benches).
  std::uint64_t packets_sent() const;

  struct Impl;

 private:
  std::shared_ptr<Impl> impl_;
};

}  // namespace dmemo
