// dmemo-server: one memo server for one (simulated) machine.
//
// The launcher starts one of these per ADF host when none is running (the
// paper's inetd role). Applications register their ADFs over the wire
// (Op::kRegisterApp), so the server needs no ADF at startup — only its host
// identity, its listen URL and the host->URL peer map.
//
//   dmemo-server --host glen-ellyn.iit.edu
//                --listen unix:///tmp/dmemo-server-glen-ellyn.iit.edu.sock
//                --peer glen-ellyn.iit.edu=unix:///tmp/...
//                --peer aurora.iit.edu=unix:///tmp/...
//   (one command line; broken here for readability)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "server/memo_server.h"
#include "transport/transport.h"
#include "util/log.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --host NAME --listen URL [--peer NAME=URL]...\n"
               "       [--persist-dir DIR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dmemo::MemoServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.host = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.listen_url = v;
    } else if (arg == "--persist-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.persist_dir = v;
    } else if (arg == "--peer") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return Usage(argv[0]);
      options.peers.emplace(std::string(v, eq), std::string(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.host.empty() || options.listen_url.empty()) {
    return Usage(argv[0]);
  }
  // The server's own address must be in the peer map too (self-routing).
  options.peers.emplace(options.host, options.listen_url);

  auto transport = dmemo::TransportMux::CreateDefault();
  auto server = dmemo::MemoServer::Start(transport, options);
  if (!server.ok()) {
    std::fprintf(stderr, "dmemo-server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(stderr, "dmemo-server: %s listening at %s\n",
               options.host.c_str(), (*server)->address().c_str());
  while (g_stop == 0) {
    struct timespec ts{0, 100'000'000};
    ::nanosleep(&ts, nullptr);
  }
  (*server)->Shutdown();
  return 0;
}
