// dmemo-top: live terminal dashboard over Op::kMetrics.
//
//   dmemo-top [--interval SECONDS] [--once] [--no-clear] URL...
//
// Polls every server's metrics endpoint and renders a top(1)-style screen:
// per-server ops/s, a per-op latency table (rate plus p50/p99 computed over
// the *last interval's* bucket deltas, so a stall shows up immediately
// instead of being averaged into process-lifetime numbers), worker queue
// depths, WAL lag, and RPC retry/reconnect counters. All percentile math is
// the shared util/metrics.h HistogramPercentile.
//
// A server restart mid-watch makes counters go backwards; like
// `dmemo-stat --watch`, rates clamp to 0 for that round and the host line
// is tagged [restarted]. An unreachable server stays on screen as DOWN and
// rejoins when it answers again. --once prints a single frame and exits
// (CI smoke uses it); --no-clear appends frames instead of redrawing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/transport.h"
#include "util/metrics.h"

namespace {

struct Options {
  double interval_s = 2.0;
  bool once = false;
  bool no_clear = false;
  std::vector<std::string> urls;
};

// One metric series as fetched this round.
struct Series {
  std::string kind;
  std::int64_t value = 0;        // counter / gauge
  std::uint64_t count = 0;       // histogram
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;
};

struct ServerSnapshot {
  bool up = false;
  bool restarted = false;  // some monotone series went backwards
  std::string host;
  std::string error;
  // name + '\x01' + labels -> series
  std::map<std::string, Series> series;
};

std::uint64_t U64Field(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? 0
             : std::static_pointer_cast<dmemo::TUInt64>(v)->value();
}

std::int64_t I64Field(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? 0
             : std::static_pointer_cast<dmemo::TInt64>(v)->value();
}

std::string StrField(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? std::string()
             : std::static_pointer_cast<dmemo::TString>(v)->value();
}

std::vector<std::uint64_t> U64List(const dmemo::TRecord& rec,
                                   const char* name) {
  std::vector<std::uint64_t> out;
  auto list = std::static_pointer_cast<dmemo::TList>(rec.Get(name));
  if (list == nullptr) return out;
  out.reserve(list->items().size());
  for (const auto& item : list->items()) {
    out.push_back(std::static_pointer_cast<dmemo::TUInt64>(item)->value());
  }
  return out;
}

dmemo::Result<std::shared_ptr<dmemo::TRecord>> FetchMetrics(
    const std::string& url) {
  auto transport = dmemo::TransportMux::CreateDefault();
  DMEMO_ASSIGN_OR_RETURN(auto conn, transport->Dial(url));
  auto channel = dmemo::RpcChannel::Create(std::move(conn), nullptr, nullptr);
  dmemo::Request req;
  req.op = dmemo::Op::kMetrics;
  auto resp = channel->Call(req);
  channel->Close();
  DMEMO_RETURN_IF_ERROR(resp.status());
  DMEMO_RETURN_IF_ERROR(resp->ToStatus());
  if (!resp->has_value) {
    return dmemo::InternalError("response carried no payload");
  }
  DMEMO_ASSIGN_OR_RETURN(auto decoded,
                         dmemo::DecodeGraphFromBytes(resp->value));
  return std::static_pointer_cast<dmemo::TRecord>(decoded);
}

ServerSnapshot Snapshot(const std::string& url) {
  ServerSnapshot snap;
  auto root = FetchMetrics(url);
  if (!root.ok()) {
    snap.error = root.status().ToString();
    return snap;
  }
  snap.up = true;
  snap.host = StrField(**root, "host");
  auto metrics =
      std::static_pointer_cast<dmemo::TList>((*root)->Get("metrics"));
  if (metrics == nullptr) return snap;
  for (const auto& item : metrics->items()) {
    auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
    Series s;
    s.kind = StrField(*rec, "kind");
    if (s.kind == "histogram") {
      s.count = U64Field(*rec, "count");
      s.sum = U64Field(*rec, "sum");
      s.buckets = U64List(*rec, "buckets");
    } else {
      s.value = I64Field(*rec, "value");
    }
    snap.series.emplace(
        StrField(*rec, "name") + '\x01' + StrField(*rec, "labels"),
        std::move(s));
  }
  return snap;
}

// Monotone delta with restart clamping: a value below the previous round
// means the server restarted; report 0 and flag it.
std::uint64_t MonotoneDelta(std::uint64_t now, std::uint64_t prev,
                            bool* restarted) {
  if (now < prev) {
    *restarted = true;
    return 0;
  }
  return now - prev;
}

// `labels` is the preformatted `k="v",...` string; extract one value.
std::string LabelValue(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const std::size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = labels.find('"', begin);
  if (end == std::string::npos) return "";
  return labels.substr(begin, end - begin);
}

std::string HumanBytes(std::int64_t v) {
  char buf[32];
  const double d = static_cast<double>(v);
  if (v >= 10LL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", d / (1024.0 * 1024.0));
  } else if (v >= 10 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", d / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", (long long)v);
  }
  return buf;
}

// Renders one server's panel from this round's and the previous round's
// snapshots. `dt_s` is the wall time between them (0 on the first round:
// rates are suppressed, cumulative percentiles shown instead).
void RenderServer(const std::string& url, const ServerSnapshot& now,
                  const ServerSnapshot& prev, double dt_s) {
  if (!now.up) {
    std::printf("%s  DOWN  %s\n\n", url.c_str(), now.error.c_str());
    return;
  }
  bool restarted = false;

  // Mid-watch failover: a dmemo_fs_epoch gauge that ADVANCED between
  // rounds means a partition was promoted (or re-recovered) under us. Tag
  // the panel; the delta clamping below already keeps the rates sane.
  bool failed_over = false;
  for (const auto& [key, s] : now.series) {
    if (s.kind != "gauge" ||
        key.compare(0, 14, "dmemo_fs_epoch") != 0) {
      continue;
    }
    auto it = prev.series.find(key);
    if (it != prev.series.end() && prev.up && s.value > it->second.value) {
      failed_over = true;
    }
  }

  // Total ops/s: sum of per-op latency histogram count deltas.
  std::uint64_t ops_delta = 0;
  for (const auto& [key, s] : now.series) {
    if (s.kind != "histogram" ||
        key.compare(0, 26, "dmemo_server_op_latency_us") != 0) {
      continue;
    }
    auto it = prev.series.find(key);
    const std::uint64_t before =
        it == prev.series.end() ? 0 : it->second.count;
    ops_delta += MonotoneDelta(s.count, before, &restarted);
  }
  const double ops_rate = dt_s > 0 ? ops_delta / dt_s : 0;

  std::printf("%s  (%s)  %.0f op/s%s%s\n", now.host.c_str(), url.c_str(),
              ops_rate, restarted ? "  [restarted]" : "",
              failed_over ? "  [failed-over]" : "");

  // Per-op latency over the last interval (delta buckets), skipping ops
  // that saw no traffic.
  std::printf("  %-12s %10s %9s %9s %9s\n", "op", "op/s", "p50(us)",
              "p99(us)", "p99(cum)");
  for (const auto& [key, s] : now.series) {
    if (s.kind != "histogram" ||
        key.compare(0, 26, "dmemo_server_op_latency_us") != 0) {
      continue;
    }
    const std::string labels = key.substr(key.find('\x01') + 1);
    const std::string op = LabelValue(labels, "op");
    auto it = prev.series.find(key);
    const Series* before = it == prev.series.end() ? nullptr : &it->second;
    bool reset = before != nullptr && s.count < before->count;
    std::vector<std::uint64_t> delta = s.buckets;
    if (before != nullptr && !reset &&
        before->buckets.size() == delta.size()) {
      for (std::size_t i = 0; i < delta.size(); ++i) {
        delta[i] -= std::min(before->buckets[i], delta[i]);
      }
    }
    std::uint64_t count_delta = 0;
    for (std::uint64_t b : delta) count_delta += b;
    if (count_delta == 0 && dt_s > 0) continue;  // idle op this round
    const double rate = dt_s > 0 ? count_delta / dt_s : 0;
    std::printf("  %-12s %10.0f %9llu %9llu %9llu%s\n", op.c_str(), rate,
                (unsigned long long)dmemo::HistogramPercentile(delta, 0.50),
                (unsigned long long)dmemo::HistogramPercentile(delta, 0.99),
                (unsigned long long)dmemo::HistogramPercentile(s.buckets,
                                                               0.99),
                reset ? " [restarted]" : "");
  }

  // Gauges: worker queue depth and WAL lag per labeled instance.
  for (const auto& [key, s] : now.series) {
    if (s.kind != "gauge") continue;
    if (key.compare(0, 23, "dmemo_worker_queue_depth") == 0) {
      std::printf("  queue  %-22s depth=%lld\n",
                  key.substr(key.find('\x01') + 1).c_str(),
                  (long long)s.value);
    } else if (key.compare(0, 18, "dmemo_wal_lag_bytes") == 0) {
      std::printf("  wal    %-22s lag=%s\n",
                  key.substr(key.find('\x01') + 1).c_str(),
                  HumanBytes(s.value).c_str());
    } else if (key.compare(0, 14, "dmemo_fs_epoch") == 0) {
      auto it = prev.series.find(key);
      const bool advanced =
          it != prev.series.end() && prev.up && s.value > it->second.value;
      std::printf("  epoch  %-22s e=%lld%s\n",
                  key.substr(key.find('\x01') + 1).c_str(),
                  (long long)s.value, advanced ? " [failed-over]" : "");
    }
  }

  // Link health counters, rate-form.
  std::uint64_t retries = 0, reconnects = 0, fenced = 0, failovers = 0;
  for (const auto& [key, s] : now.series) {
    if (s.kind != "counter") continue;
    auto it = prev.series.find(key);
    const std::uint64_t before =
        it == prev.series.end()
            ? 0
            : static_cast<std::uint64_t>(it->second.value);
    const std::uint64_t d = MonotoneDelta(
        static_cast<std::uint64_t>(s.value), before, &restarted);
    if (key.compare(0, 23, "dmemo_rpc_retries_total") == 0) retries += d;
    if (key.compare(0, 26, "dmemo_rpc_reconnects_total") == 0) {
      reconnects += d;
    }
    if (key.compare(0, 27, "dmemo_fenced_requests_total") == 0) fenced += d;
    if (key.compare(0, 20, "dmemo_failover_total") == 0) failovers += d;
  }
  std::printf(
      "  link   retries=+%llu reconnects=+%llu fenced=+%llu "
      "failovers=+%llu\n\n",
      (unsigned long long)retries, (unsigned long long)reconnects,
      (unsigned long long)fenced, (unsigned long long)failovers);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--interval SECONDS] [--once] [--no-clear] "
               "SERVER_URL...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval") {
      if (i + 1 >= argc) return Usage(argv[0]);
      opts.interval_s = std::strtod(argv[++i], nullptr);
      if (opts.interval_s <= 0) return Usage(argv[0]);
    } else if (arg == "--once") {
      opts.once = true;
    } else if (arg == "--no-clear") {
      opts.no_clear = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      opts.urls.push_back(arg);
    }
  }
  if (opts.urls.empty()) return Usage(argv[0]);

  using Clock = std::chrono::steady_clock;
  std::map<std::string, ServerSnapshot> previous;
  Clock::time_point prev_at = Clock::now();
  bool first = true;
  for (;;) {
    std::map<std::string, ServerSnapshot> current;
    for (const std::string& url : opts.urls) {
      current.emplace(url, Snapshot(url));
    }
    const Clock::time_point at = Clock::now();
    const double dt_s =
        first ? 0
              : std::chrono::duration<double>(at - prev_at).count();

    if (!opts.no_clear && !opts.once) {
      std::printf("\x1b[H\x1b[2J");  // cursor home + clear screen
    }
    int up = 0;
    for (const auto& [url, snap] : current) up += snap.up ? 1 : 0;
    std::printf("dmemo-top  %d/%zu servers up  interval=%.1fs%s\n\n", up,
                current.size(), opts.interval_s,
                first ? "  (first sample: cumulative)" : "");
    for (const std::string& url : opts.urls) {
      RenderServer(url, current.at(url), previous[url], dt_s);
    }
    std::fflush(stdout);

    if (opts.once) return up == 0 ? 1 : 0;
    previous = std::move(current);
    prev_at = at;
    first = false;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts.interval_s));
  }
}
