// memo: the application launcher CLI (paper Sec. 4.4: "the user enters
// 'memo adf' on the command line").
//
//   memo app.adf [--server-binary PATH] [--socket-dir DIR] [--make]
//
// Parses the ADF (missing sections default per Sec. 4.3), ensures a memo
// server per host, registers the application with each, spawns the boss and
// worker processes with the DMEMO_* environment, and waits for them.
#include <cstdio>
#include <string>

#include "adf/adf.h"
#include "runtime/launcher.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s ADF_FILE [--server-binary PATH] [--socket-dir DIR]\n"
                 "       [--pump-dir DIR] [--persist-dir DIR] [--make] [--stop-servers]\n",
                 argv[0]);
    return 2;
  }
  const std::string adf_path = argv[1];
  dmemo::LaunchOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--server-binary" && i + 1 < argc) {
      options.server_binary = argv[++i];
    } else if (arg == "--socket-dir" && i + 1 < argc) {
      options.socket_dir = argv[++i];
    } else if (arg == "--make") {
      options.run_make = true;
    } else if (arg == "--pump-dir" && i + 1 < argc) {
      options.pump_dir = argv[++i];
    } else if (arg == "--persist-dir" && i + 1 < argc) {
      options.server_persist_dir = argv[++i];
    } else if (arg == "--stop-servers") {
      options.stop_spawned_servers = true;
    } else {
      std::fprintf(stderr, "memo: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  auto parsed = dmemo::ParseAdfFile(adf_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "memo: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  dmemo::AppDescription adf =
      dmemo::MergeWithDefault(*parsed, dmemo::SystemDefaultAdf());

  auto report = dmemo::RunApplication(adf, options);
  if (!report.ok()) {
    std::fprintf(stderr, "memo: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (const auto& proc : report->processes) {
    std::fprintf(stderr, "memo: process %d (%s) exited %d\n", proc.proc_id,
                 proc.executable.c_str(), proc.exit_code);
  }
  return report->AllSucceeded() ? 0 : 1;
}
