#include "runtime/launcher.h"

#include <algorithm>
#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <cstring>
#include <thread>

#include "core/remote_engine.h"
#include "locking/lock.h"
#include "server/rpc_channel.h"
#include "transferable/machine_profile.h"
#include "util/log.h"

namespace dmemo {

namespace {

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool IsExecutable(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

// Fork-exec with argv + extra environment; returns the child pid.
Result<pid_t> Spawn(const std::string& executable,
                    const std::vector<std::string>& args,
                    const std::vector<std::string>& env_extra) {
  pid_t pid = ::fork();
  if (pid < 0) return UnavailableError("fork failed");
  if (pid > 0) return pid;
  // Child.
  std::vector<std::string> argv_store;
  argv_store.push_back(executable);
  for (const auto& a : args) argv_store.push_back(a);
  std::vector<char*> argv;
  for (auto& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);
  for (const auto& kv : env_extra) {
    // kv is "KEY=VALUE"; putenv requires storage that outlives exec — the
    // child's copy of this string lives until execv replaces the image.
    ::putenv(::strdup(kv.c_str()));
  }
  ::execv(executable.c_str(), argv.data());
  std::perror("execv");
  ::_exit(127);
}

Status PingServer(TransportPtr transport, const std::string& url,
                  std::chrono::milliseconds timeout) {
  auto conn = transport->Dial(url);
  if (!conn.ok()) return conn.status();
  auto channel = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  Request ping;
  ping.op = Op::kPing;
  auto resp = channel->CallFor(ping, timeout);
  channel->Close();
  if (!resp.ok()) return resp.status();
  if (!resp->has_value() && !(*resp).has_value()) {
    return TimedOutError("server at " + url + " did not answer ping");
  }
  return Status::Ok();
}

// Copy `executable` into <pump_dir>/<host>/ (the per-machine local disk)
// unless an up-to-date copy is already there. Returns the pumped path.
Result<std::string> PumpExecutable(const std::string& executable,
                                   const std::string& pump_dir,
                                   const std::string& host) {
  const std::string host_dir = pump_dir + "/" + host;
  ::mkdir(pump_dir.c_str(), 0755);
  if (::mkdir(host_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return UnavailableError("cannot create pump directory " + host_dir);
  }
  auto base = executable.find_last_of('/');
  const std::string target =
      host_dir + "/" +
      (base == std::string::npos ? executable : executable.substr(base + 1));
  struct stat src{}, dst{};
  if (::stat(executable.c_str(), &src) != 0) {
    return NotFoundError("pump source missing: " + executable);
  }
  // Skip the copy when the target is already current (same size & mtime).
  if (::stat(target.c_str(), &dst) == 0 && dst.st_size == src.st_size &&
      dst.st_mtime >= src.st_mtime) {
    return target;
  }
  std::ifstream in(executable, std::ios::binary);
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  if (!in || !out) {
    return UnavailableError("pump copy failed for " + executable);
  }
  out << in.rdbuf();
  out.close();
  if (::chmod(target.c_str(), 0755) != 0) {
    return UnavailableError("pump chmod failed for " + target);
  }
  return target;
}

}  // namespace

std::string ServerUrlFor(const std::string& socket_dir,
                         const std::string& host) {
  // Host names may contain dots; they are fine in socket paths.
  return "unix://" + socket_dir + "/dmemo-server-" + host + ".sock";
}

Result<int> EnsureServerRunning(TransportPtr transport,
                                const std::string& host,
                                const std::string& url,
                                const std::vector<std::string>& peer_args,
                                const LaunchOptions& options) {
  if (PingServer(transport, url, std::chrono::milliseconds(500)).ok()) {
    return 0;
  }
  if (options.server_binary.empty()) {
    return UnavailableError("no memo server at " + url +
                            " and on-demand start disabled");
  }
  // inetd substitute: serialize concurrent starters with a file lock so two
  // launchers racing on the same host start exactly one server.
  DMEMO_ASSIGN_OR_RETURN(
      auto lock,
      MakeLock(LockKind::kFile,
               options.socket_dir + "/dmemo-server-" + host + ".lock"));
  // This is a cross-process file lock, not an in-process Mutex; it has no
  // analyze:allow(lock-rank) no entry in lock_ranks.def by design
  ScopedLock guard(*lock);
  if (PingServer(transport, url, std::chrono::milliseconds(500)).ok()) {
    return 0;  // the race loser finds the server already up
  }
  std::vector<std::string> args{"--host", host, "--listen", url};
  if (!options.server_persist_dir.empty()) {
    args.push_back("--persist-dir");
    args.push_back(options.server_persist_dir);
  }
  for (const auto& peer : peer_args) {
    args.push_back("--peer");
    args.push_back(peer);
  }
  DMEMO_ASSIGN_OR_RETURN(pid_t pid,
                         Spawn(options.server_binary, args, {}));
  DMEMO_LOG(kInfo) << "started dmemo-server for " << host << " (pid " << pid
                   << ")";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(options.server_start_timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (PingServer(transport, url, std::chrono::milliseconds(250)).ok()) {
      return static_cast<int>(pid);
    }
    // Holding the start lock across the ping-retry sleep is the point:
    // analyze:allow(blocking-under-lock) racing launchers wait for the winner
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return TimedOutError("spawned server for " + host +
                       " never became reachable at " + url);
}

Result<LaunchReport> RunApplication(const AppDescription& adf,
                                    const LaunchOptions& options) {
  DMEMO_RETURN_IF_ERROR(adf.Validate());
  auto transport = TransportMux::CreateDefault();

  // 1. Rebuild out-of-date binaries ("each source code directory listed in
  //    the ADF should contain a makefile").
  if (options.run_make) {
    std::vector<std::string> built;
    for (const auto& proc : adf.processes) {
      if (std::find(built.begin(), built.end(), proc.directory) !=
          built.end()) {
        continue;
      }
      built.push_back(proc.directory);
      if (FileExists(proc.directory + "/Makefile")) {
        const std::string cmd = "make -C '" + proc.directory + "' >/dev/null";
        // NOLINTNEXTLINE(cert-env33-c): the paper's NFS-era "rebuild before
        // spawn" hook is a shell command by contract (DESIGN.md §2); the
        // directory comes from the operator's ADF, not from the network.
        if (std::system(cmd.c_str()) != 0) {
          return FailedPreconditionError("make failed in " + proc.directory);
        }
      }
    }
  }

  // 2. Ensure a memo server per host (inetd substitute), then register the
  //    application with all of them (Sec. 4.4: "it will register itself
  //    with all the memo servers it will interact [with]").
  std::vector<std::string> peer_args;
  for (const auto& host : adf.hosts) {
    peer_args.push_back(host.name + "=" +
                        ServerUrlFor(options.socket_dir, host.name));
  }
  const std::string adf_text = FormatAdf(adf);
  std::vector<pid_t> spawned_servers;
  for (const auto& host : adf.hosts) {
    const std::string url = ServerUrlFor(options.socket_dir, host.name);
    DMEMO_ASSIGN_OR_RETURN(
        int server_pid,
        EnsureServerRunning(transport, host.name, url, peer_args, options));
    if (server_pid > 0) spawned_servers.push_back(server_pid);
    DMEMO_RETURN_IF_ERROR(RegisterAppWith(transport, url, adf_text));
  }

  // 3. Spawn the application processes with the environment contract.
  struct Child {
    pid_t pid;
    ProcessResult result;
  };
  std::vector<Child> children;
  for (const auto& proc : adf.processes) {
    // Paper convention: standard executable names `boss` and `worker`; the
    // boss is process 0 when its directory provides one.
    std::string executable = proc.directory + "/worker";
    if (proc.id == 0 && IsExecutable(proc.directory + "/boss")) {
      executable = proc.directory + "/boss";
    }
    if (!IsExecutable(executable)) {
      return NotFoundError("no executable for process " +
                           std::to_string(proc.id) + " at " + executable);
    }
    if (!options.pump_dir.empty()) {
      DMEMO_ASSIGN_OR_RETURN(
          executable, PumpExecutable(executable, options.pump_dir, proc.host));
    }
    const HostSpec* host = adf.FindHost(proc.host);
    std::vector<std::string> env{
        std::string(kEnvApp) + "=" + adf.app_name,
        std::string(kEnvHost) + "=" + proc.host,
        std::string(kEnvServerUrl) + "=" +
            ServerUrlFor(options.socket_dir, proc.host),
        std::string(kEnvProcId) + "=" + std::to_string(proc.id),
        std::string(kEnvArch) + "=" + host->arch,
    };
    DMEMO_ASSIGN_OR_RETURN(pid_t pid, Spawn(executable, {}, env));
    children.push_back(
        Child{pid, ProcessResult{proc.id, executable, -1}});
  }

  // 4. Wait for completion.
  LaunchReport report;
  for (auto& child : children) {
    int status = 0;
    ::waitpid(child.pid, &status, 0);
    child.result.exit_code =
        WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
    report.processes.push_back(child.result);
  }
  if (options.stop_spawned_servers) {
    for (pid_t pid : spawned_servers) {
      ::kill(pid, SIGTERM);
      ::waitpid(pid, nullptr, 0);
    }
  }
  return report;
}

Result<Memo> ConnectFromEnvironment() {
  const char* app = std::getenv(kEnvApp);
  const char* url = std::getenv(kEnvServerUrl);
  const char* host = std::getenv(kEnvHost);
  const char* arch = std::getenv(kEnvArch);
  if (app == nullptr || url == nullptr) {
    return FailedPreconditionError(
        "DMEMO_APP / DMEMO_SERVER_URL not set: process was not started by "
        "the memo launcher");
  }
  RemoteEngineOptions opts;
  opts.app = app;
  opts.host = host != nullptr ? host : "";
  opts.profile =
      arch != nullptr ? ProfileForArch(arch) : MachineProfile::Universal();
  auto transport = TransportMux::CreateDefault();
  DMEMO_ASSIGN_OR_RETURN(MemoEnginePtr engine,
                         MakeRemoteEngine(transport, url, opts));
  return Memo(std::move(engine));
}

int ProcessIdFromEnvironment() {
  const char* id = std::getenv(kEnvProcId);
  if (id == nullptr) return -1;
  char* end = nullptr;
  const long v = std::strtol(id, &end, 10);
  return (end != id && *end == '\0') ? static_cast<int>(v) : -1;
}

}  // namespace dmemo
