#include "runtime/cluster.h"

#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "server/rpc_channel.h"
#include "transport/socket_transport.h"
#include "util/log.h"

namespace dmemo {

Result<std::unique_ptr<Cluster>> Cluster::StartLoopbackTcp(
    const AppDescription& adf) {
  auto transport = MakeTcpTransport();
  // Probe a free port per host: bind :0, record the resolved address,
  // release. SO_REUSEADDR makes the immediate rebind safe; the window in
  // which another process could steal the port is acceptable for tests.
  std::map<std::string, std::string> urls;
  for (const auto& host : adf.hosts) {
    DMEMO_ASSIGN_OR_RETURN(ListenerPtr probe,
                           transport->Listen("tcp://127.0.0.1:0"));
    urls[host.name] = probe->address();
    probe->Close();
  }
  return Start(adf, transport,
               [urls](const std::string& host) { return urls.at(host); });
}

Result<std::unique_ptr<Cluster>> Cluster::Start(const AppDescription& adf) {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  DMEMO_ASSIGN_OR_RETURN(
      auto cluster,
      Start(adf, transport,
            [](const std::string& host) { return "sim://" + host; }));
  cluster->network_ = network;
  return cluster;
}

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const AppDescription& adf, TransportPtr transport,
    const std::function<std::string(const std::string&)>& url_for) {
  DMEMO_RETURN_IF_ERROR(adf.Validate());
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->adf_ = adf;
  cluster->transport_ = transport;

  std::unordered_map<std::string, std::string> peers;
  for (const auto& host : adf.hosts) {
    peers[host.name] = url_for(host.name);
  }
  for (const auto& host : adf.hosts) {
    MemoServerOptions opts;
    opts.host = host.name;
    opts.listen_url = peers[host.name];
    opts.peers = peers;
    DMEMO_ASSIGN_OR_RETURN(auto server,
                           MemoServer::Start(transport, opts));
    // The listener may have resolved an ephemeral port; the peer map given
    // to later servers must use the resolved address. For sim:// and
    // unix:// they are identical; for tcp://...:0 callers should pass
    // concrete ports in url_for. Record the resolved address regardless.
    cluster->urls_[host.name] = server->address();
    cluster->servers_[host.name] = std::move(server);
  }
  DMEMO_RETURN_IF_ERROR(cluster->RegisterApp(adf));
  return cluster;
}

Cluster::~Cluster() { Shutdown(); }

Status Cluster::RegisterApp(const AppDescription& adf) {
  // Two passes: re-registration triggers dynamic data migration, and a
  // server migrating early may find its destination still holding the old
  // routing table (the move bounces and the memo stays local). Once every
  // server has the new table, the second pass re-runs migration and sweeps
  // any bounced memos. Both passes are idempotent.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& [name, server] : servers_) {
      DMEMO_RETURN_IF_ERROR(server->RegisterApp(adf));
    }
  }
  return Status::Ok();
}

Result<Memo> Cluster::Client(const std::string& host) {
  const HostSpec* spec = adf_.FindHost(host);
  if (spec == nullptr) return NotFoundError("host " + host + " not in ADF");
  return Client(host, ProfileForArch(spec->arch));
}

Result<Memo> Cluster::Client(const std::string& host, MachineProfile profile,
                             bool strict_domains) {
  auto it = urls_.find(host);
  if (it == urls_.end()) return NotFoundError("host " + host + " not in ADF");
  RemoteEngineOptions opts;
  opts.app = adf_.app_name;
  opts.host = host;
  opts.profile = std::move(profile);
  opts.strict_domains = strict_domains;
  DMEMO_ASSIGN_OR_RETURN(MemoEnginePtr engine,
                         MakeRemoteEngine(transport_, it->second, opts));
  return Memo(std::move(engine));
}

void Cluster::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& [name, server] : servers_) server->Shutdown();
}

// --- ProcessCluster -------------------------------------------------------

namespace {

// launcher.cc keeps its Spawn/PingServer helpers file-static; these are the
// cluster-local equivalents (child stderr goes to a per-host log file so
// chaos-test output stays readable).
Result<pid_t> SpawnWithLog(const std::string& executable,
                           const std::vector<std::string>& args,
                           const std::string& log_path) {
  pid_t pid = ::fork();
  if (pid < 0) return UnavailableError("fork failed");
  if (pid > 0) return pid;
  // Child.
  int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, 1);
    ::dup2(log_fd, 2);
    if (log_fd > 2) ::close(log_fd);
  }
  std::vector<std::string> argv_store;
  argv_store.push_back(executable);
  for (const auto& a : args) argv_store.push_back(a);
  std::vector<char*> argv;
  for (auto& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(executable.c_str(), argv.data());
  std::perror("execv");
  ::_exit(127);
}

Status PingUrl(const TransportPtr& transport, const std::string& url,
               std::chrono::milliseconds timeout) {
  auto conn = transport->Dial(url);
  if (!conn.ok()) return conn.status();
  auto channel = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  Request ping;
  ping.op = Op::kPing;
  auto resp = channel->CallFor(ping, timeout);
  channel->Close();
  return resp.status();
}

}  // namespace

Result<std::unique_ptr<ProcessCluster>> ProcessCluster::Start(
    const AppDescription& adf, ProcessClusterOptions options) {
  DMEMO_RETURN_IF_ERROR(adf.Validate());
  if (options.server_binary.empty() ||
      ::access(options.server_binary.c_str(), X_OK) != 0) {
    return NotFoundError("dmemo-server binary not executable: " +
                         options.server_binary);
  }
  if (::mkdir(options.work_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return UnavailableError("cannot create work dir " + options.work_dir);
  }
  auto cluster = std::unique_ptr<ProcessCluster>(new ProcessCluster());
  cluster->options_ = std::move(options);
  cluster->adf_ = adf;
  cluster->transport_ = TransportMux::CreateDefault();
  for (const auto& host : adf.hosts) {
    cluster->urls_[host.name] = "unix://" + cluster->options_.work_dir +
                                "/dmemo-server-" + host.name + ".sock";
  }
  for (const auto& host : adf.hosts) {
    DMEMO_RETURN_IF_ERROR(cluster->SpawnHost(host.name));
  }
  for (const auto& host : adf.hosts) {
    DMEMO_RETURN_IF_ERROR(cluster->WaitReachable(host.name));
  }
  cluster->adf_texts_.push_back(FormatAdf(adf));
  DMEMO_RETURN_IF_ERROR(cluster->RegisterApp(adf));
  return cluster;
}

ProcessCluster::~ProcessCluster() { Shutdown(); }

Status ProcessCluster::SpawnHost(const std::string& host) {
  auto url_it = urls_.find(host);
  if (url_it == urls_.end()) {
    return NotFoundError("host " + host + " not in ADF");
  }
  const std::string persist_dir = options_.work_dir + "/persist-" + host;
  if (::mkdir(persist_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return UnavailableError("cannot create persist dir " + persist_dir);
  }
  std::vector<std::string> args{"--host", host, "--listen", url_it->second,
                                "--persist-dir", persist_dir};
  for (const auto& [peer, url] : urls_) {
    args.push_back("--peer");
    args.push_back(peer + "=" + url);
  }
  DMEMO_ASSIGN_OR_RETURN(
      pid_t pid,
      SpawnWithLog(options_.server_binary, args,
                   options_.work_dir + "/server-" + host + ".log"));
  pids_[host] = pid;
  return Status::Ok();
}

Status ProcessCluster::WaitReachable(const std::string& host) {
  const std::string& url = urls_.at(host);
  const auto deadline =
      std::chrono::steady_clock::now() + options_.start_timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (PingUrl(transport_, url, std::chrono::milliseconds(250)).ok()) {
      return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return TimedOutError("server for " + host + " never became reachable at " +
                       url);
}

Result<Memo> ProcessCluster::Client(const std::string& host) {
  const HostSpec* spec = adf_.FindHost(host);
  if (spec == nullptr) return NotFoundError("host " + host + " not in ADF");
  RemoteEngineOptions opts;
  opts.app = adf_.app_name;
  opts.host = host;
  opts.profile = ProfileForArch(spec->arch);
  DMEMO_ASSIGN_OR_RETURN(
      MemoEnginePtr engine,
      MakeRemoteEngine(transport_, urls_.at(host), opts));
  return Memo(std::move(engine));
}

std::string ProcessCluster::url(const std::string& host) const {
  auto it = urls_.find(host);
  return it == urls_.end() ? std::string() : it->second;
}

pid_t ProcessCluster::pid(const std::string& host) const {
  auto it = pids_.find(host);
  return it == pids_.end() ? -1 : it->second;
}

Status ProcessCluster::KillServer(const std::string& host) {
  auto it = pids_.find(host);
  if (it == pids_.end() || it->second < 0) {
    return FailedPreconditionError("no live server for " + host);
  }
  ::kill(it->second, SIGKILL);
  ::waitpid(it->second, nullptr, 0);
  it->second = -1;
  DMEMO_LOG(kInfo) << "chaos: SIGKILLed server for " << host;
  return Status::Ok();
}

Status ProcessCluster::RestartServer(const std::string& host) {
  auto it = pids_.find(host);
  if (it != pids_.end() && it->second >= 0) {
    return FailedPreconditionError("server for " + host + " still running");
  }
  DMEMO_RETURN_IF_ERROR(SpawnHost(host));
  DMEMO_RETURN_IF_ERROR(WaitReachable(host));
  // A respawned server has empty routing tables; replay every known app.
  for (const std::string& text : adf_texts_) {
    DMEMO_RETURN_IF_ERROR(
        RegisterAppWith(transport_, urls_.at(host), text));
  }
  DMEMO_LOG(kInfo) << "chaos: restarted server for " << host;
  return Status::Ok();
}

Status ProcessCluster::RegisterApp(const AppDescription& adf) {
  const std::string text = FormatAdf(adf);
  if (std::find(adf_texts_.begin(), adf_texts_.end(), text) ==
      adf_texts_.end()) {
    adf_texts_.push_back(text);
  }
  // Two passes, same reason as Cluster::RegisterApp: migration triggered by
  // a re-registration may bounce until every server holds the new table.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& [host, url] : urls_) {
      if (pids_.count(host) != 0 && pids_.at(host) < 0) continue;  // down
      DMEMO_RETURN_IF_ERROR(RegisterAppWith(transport_, url, text));
    }
  }
  return Status::Ok();
}

void ProcessCluster::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& [host, pid] : pids_) {
    if (pid < 0) continue;
    ::kill(pid, SIGTERM);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }
}

}  // namespace dmemo
