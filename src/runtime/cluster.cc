#include "runtime/cluster.h"

#include "transport/socket_transport.h"

namespace dmemo {

Result<std::unique_ptr<Cluster>> Cluster::StartLoopbackTcp(
    const AppDescription& adf) {
  auto transport = MakeTcpTransport();
  // Probe a free port per host: bind :0, record the resolved address,
  // release. SO_REUSEADDR makes the immediate rebind safe; the window in
  // which another process could steal the port is acceptable for tests.
  std::map<std::string, std::string> urls;
  for (const auto& host : adf.hosts) {
    DMEMO_ASSIGN_OR_RETURN(ListenerPtr probe,
                           transport->Listen("tcp://127.0.0.1:0"));
    urls[host.name] = probe->address();
    probe->Close();
  }
  return Start(adf, transport,
               [urls](const std::string& host) { return urls.at(host); });
}

Result<std::unique_ptr<Cluster>> Cluster::Start(const AppDescription& adf) {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  DMEMO_ASSIGN_OR_RETURN(
      auto cluster,
      Start(adf, transport,
            [](const std::string& host) { return "sim://" + host; }));
  cluster->network_ = network;
  return cluster;
}

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const AppDescription& adf, TransportPtr transport,
    const std::function<std::string(const std::string&)>& url_for) {
  DMEMO_RETURN_IF_ERROR(adf.Validate());
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->adf_ = adf;
  cluster->transport_ = transport;

  std::unordered_map<std::string, std::string> peers;
  for (const auto& host : adf.hosts) {
    peers[host.name] = url_for(host.name);
  }
  for (const auto& host : adf.hosts) {
    MemoServerOptions opts;
    opts.host = host.name;
    opts.listen_url = peers[host.name];
    opts.peers = peers;
    DMEMO_ASSIGN_OR_RETURN(auto server,
                           MemoServer::Start(transport, opts));
    // The listener may have resolved an ephemeral port; the peer map given
    // to later servers must use the resolved address. For sim:// and
    // unix:// they are identical; for tcp://...:0 callers should pass
    // concrete ports in url_for. Record the resolved address regardless.
    cluster->urls_[host.name] = server->address();
    cluster->servers_[host.name] = std::move(server);
  }
  DMEMO_RETURN_IF_ERROR(cluster->RegisterApp(adf));
  return cluster;
}

Cluster::~Cluster() { Shutdown(); }

Status Cluster::RegisterApp(const AppDescription& adf) {
  // Two passes: re-registration triggers dynamic data migration, and a
  // server migrating early may find its destination still holding the old
  // routing table (the move bounces and the memo stays local). Once every
  // server has the new table, the second pass re-runs migration and sweeps
  // any bounced memos. Both passes are idempotent.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& [name, server] : servers_) {
      DMEMO_RETURN_IF_ERROR(server->RegisterApp(adf));
    }
  }
  return Status::Ok();
}

Result<Memo> Cluster::Client(const std::string& host) {
  const HostSpec* spec = adf_.FindHost(host);
  if (spec == nullptr) return NotFoundError("host " + host + " not in ADF");
  return Client(host, ProfileForArch(spec->arch));
}

Result<Memo> Cluster::Client(const std::string& host, MachineProfile profile,
                             bool strict_domains) {
  auto it = urls_.find(host);
  if (it == urls_.end()) return NotFoundError("host " + host + " not in ADF");
  RemoteEngineOptions opts;
  opts.app = adf_.app_name;
  opts.host = host;
  opts.profile = std::move(profile);
  opts.strict_domains = strict_domains;
  DMEMO_ASSIGN_OR_RETURN(MemoEnginePtr engine,
                         MakeRemoteEngine(transport_, it->second, opts));
  return Memo(std::move(engine));
}

void Cluster::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& [name, server] : servers_) server->Shutdown();
}

}  // namespace dmemo
