// In-process cluster: one memo server per ADF host, all inside this
// process, connected over a simulated network (or any transport). This is
// the deployment tests, examples and benchmarks use when they want the full
// server/routing/wire path without forking: every byte still crosses the
// Connection abstraction exactly as in the multi-process deployment.
#pragma once

#include <map>
#include <memory>

#include "adf/adf.h"
#include "core/memo.h"
#include "core/remote_engine.h"
#include "server/memo_server.h"
#include "transport/simnet.h"

namespace dmemo {

class Cluster {
 public:
  // Starts a memo server for every host in `adf` on a fresh SimNetwork and
  // registers the application everywhere.
  static Result<std::unique_ptr<Cluster>> Start(const AppDescription& adf);

  // As above but over the given transport; `url_for` names each host's
  // listen address.
  static Result<std::unique_ptr<Cluster>> Start(
      const AppDescription& adf, TransportPtr transport,
      const std::function<std::string(const std::string&)>& url_for);

  // Real TCP on 127.0.0.1: probes a free port per host first (ephemeral
  // ports cannot go into the peer map unresolved). Integration tests use
  // this to exercise the genuine kernel socket path.
  static Result<std::unique_ptr<Cluster>> StartLoopbackTcp(
      const AppDescription& adf);

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // A Memo handle connected to `host`'s memo server, with the machine
  // profile implied by the host's ADF arch (or an explicit one).
  Result<Memo> Client(const std::string& host);
  Result<Memo> Client(const std::string& host, MachineProfile profile,
                      bool strict_domains = true);

  MemoServer& server(const std::string& host) { return *servers_.at(host); }
  const AppDescription& adf() const { return adf_; }
  TransportPtr transport() { return transport_; }
  // The simulated network backing the default Start (null when an external
  // transport was supplied). Fault-injection tests partition and heal it.
  SimNetworkPtr network() { return network_; }

  // Register a further application on every server.
  Status RegisterApp(const AppDescription& adf);

  void Shutdown();

 private:
  Cluster() = default;

  AppDescription adf_;
  SimNetworkPtr network_;  // null when an external transport was supplied
  TransportPtr transport_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
  std::map<std::string, std::string> urls_;
  bool shutdown_ = false;
};

}  // namespace dmemo
