// In-process cluster: one memo server per ADF host, all inside this
// process, connected over a simulated network (or any transport). This is
// the deployment tests, examples and benchmarks use when they want the full
// server/routing/wire path without forking: every byte still crosses the
// Connection abstraction exactly as in the multi-process deployment.
//
// ProcessCluster is the out-of-process variant: one dmemo-server child per
// ADF host over unix:// sockets, each with its own persist dir. It exists
// for the crash-durability chaos harness (DESIGN.md "Durability &
// liveness"): KillServer delivers SIGKILL — no destructors, no flush, the
// genuine article — and RestartServer respawns the host so recovery
// (snapshot + WAL replay under a bumped epoch) runs for real.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adf/adf.h"
#include "core/memo.h"
#include "core/remote_engine.h"
#include "server/memo_server.h"
#include "transport/simnet.h"

namespace dmemo {

class Cluster {
 public:
  // Starts a memo server for every host in `adf` on a fresh SimNetwork and
  // registers the application everywhere.
  static Result<std::unique_ptr<Cluster>> Start(const AppDescription& adf);

  // As above but over the given transport; `url_for` names each host's
  // listen address.
  static Result<std::unique_ptr<Cluster>> Start(
      const AppDescription& adf, TransportPtr transport,
      const std::function<std::string(const std::string&)>& url_for);

  // Real TCP on 127.0.0.1: probes a free port per host first (ephemeral
  // ports cannot go into the peer map unresolved). Integration tests use
  // this to exercise the genuine kernel socket path.
  static Result<std::unique_ptr<Cluster>> StartLoopbackTcp(
      const AppDescription& adf);

  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // A Memo handle connected to `host`'s memo server, with the machine
  // profile implied by the host's ADF arch (or an explicit one).
  Result<Memo> Client(const std::string& host);
  Result<Memo> Client(const std::string& host, MachineProfile profile,
                      bool strict_domains = true);

  MemoServer& server(const std::string& host) { return *servers_.at(host); }
  const AppDescription& adf() const { return adf_; }
  TransportPtr transport() { return transport_; }
  // The simulated network backing the default Start (null when an external
  // transport was supplied). Fault-injection tests partition and heal it.
  SimNetworkPtr network() { return network_; }

  // Register a further application on every server.
  Status RegisterApp(const AppDescription& adf);

  void Shutdown();

 private:
  Cluster() = default;

  AppDescription adf_;
  SimNetworkPtr network_;  // null when an external transport was supplied
  TransportPtr transport_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
  std::map<std::string, std::string> urls_;
  bool shutdown_ = false;
};

struct ProcessClusterOptions {
  // Path to the dmemo-server binary (tests get it from the build system
  // via the DMEMO_SERVER_BINARY compile definition).
  std::string server_binary;
  // Sockets, per-host persist dirs and server logs all live under here.
  std::string work_dir;
  std::chrono::seconds start_timeout{10};
};

class ProcessCluster {
 public:
  // Spawns one dmemo-server child per ADF host, waits until every one
  // answers a ping, then registers the application with all of them.
  static Result<std::unique_ptr<ProcessCluster>> Start(
      const AppDescription& adf, ProcessClusterOptions options);

  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  // A Memo handle dialing `host`'s server over its unix socket.
  Result<Memo> Client(const std::string& host);

  TransportPtr transport() { return transport_; }
  // Dialable URL of `host`'s server (empty if unknown).
  std::string url(const std::string& host) const;
  // The child's pid, or -1 when the host is currently down.
  pid_t pid(const std::string& host) const;

  // Chaos harness. KillServer is SIGKILL: the child gets no chance to
  // flush, snapshot or even run a destructor. RestartServer respawns it on
  // the same socket and persist dir and re-registers every known app, so
  // the recovery path (snapshot + WAL replay, epoch bump) runs end to end.
  Status KillServer(const std::string& host);
  Status RestartServer(const std::string& host);

  // Register a further application with every live server.
  Status RegisterApp(const AppDescription& adf);

  // Graceful stop: SIGTERM + wait (the servers checkpoint their WALs).
  void Shutdown();

 private:
  ProcessCluster() = default;

  Status SpawnHost(const std::string& host);
  Status WaitReachable(const std::string& host);

  ProcessClusterOptions options_;
  AppDescription adf_;
  TransportPtr transport_;
  std::map<std::string, std::string> urls_;
  std::map<std::string, pid_t> pids_;  // -1 while a host is down
  // ADF texts to replay into a respawned server.
  std::vector<std::string> adf_texts_;
  bool shutdown_ = false;
};

}  // namespace dmemo
