// Application launch & registration (paper Sec. 4.4).
//
// "To start the registration process, the user enters 'memo adf' on the
// command line... If the binaries are out of date, they will be recompiled.
// The ADF tables will then be registered with each appropriate memo server.
// Once the application has been registered with the system, the requested
// number of application processes will be started on each of the host
// machines. ... If one or more of the servers are not running, they will be
// started up by the system inetd daemon."
//
// Substitutions on one Linux host (see DESIGN.md): every ADF "machine" is a
// process; memo servers listen on per-host Unix-domain sockets; the inetd
// role is played by EnsureServerRunning, which probes the socket and forks
// a `dmemo-server` if nothing answers; `make` is invoked in each source
// directory that has a Makefile.
//
// Worker/boss processes find their identity through environment variables
// (set by the launcher, read by ConnectFromEnvironment):
//   DMEMO_APP, DMEMO_HOST, DMEMO_SERVER_URL, DMEMO_PROC_ID, DMEMO_ARCH
#pragma once

#include <string>
#include <vector>

#include "adf/adf.h"
#include "core/memo.h"
#include "transport/transport.h"

namespace dmemo {

// Environment variable names (the worker-side contract).
inline constexpr const char* kEnvApp = "DMEMO_APP";
inline constexpr const char* kEnvHost = "DMEMO_HOST";
inline constexpr const char* kEnvServerUrl = "DMEMO_SERVER_URL";
inline constexpr const char* kEnvProcId = "DMEMO_PROC_ID";
inline constexpr const char* kEnvArch = "DMEMO_ARCH";

struct LaunchOptions {
  // Directory where per-host server sockets live.
  std::string socket_dir = "/tmp";
  // Path to the dmemo-server binary for on-demand starts; empty disables
  // the inetd substitute (servers must already run).
  std::string server_binary;
  // Run `make` in each process source directory before spawning.
  bool run_make = false;
  // Seconds to wait for a spawned server to answer pings.
  int server_start_timeout_s = 5;
  // Terminate the servers RunApplication itself spawned once the
  // application exits. Off by default: servers are shared infrastructure
  // that outlives one application (Sec. 4.4); tests turn this on.
  bool stop_spawned_servers = false;
  // Forwarded to each spawned dmemo-server as --persist-dir (folder-space
  // snapshots on shutdown, restore on start). Empty = no persistence.
  std::string server_persist_dir;
  // Executable pumping (the paper's announced follow-up: "a pumping method
  // to get them to the appropriate remote host if NFS is not available").
  // When non-empty, each process's executable is copied ("pumped") into
  // <pump_dir>/<host>/ and executed from there, modelling a per-machine
  // local filesystem instead of a shared one.
  std::string pump_dir;
};

// The Unix-socket URL the launcher assigns to `host`'s memo server.
std::string ServerUrlFor(const std::string& socket_dir,
                         const std::string& host);

// Probe `url`; when nothing answers and `options.server_binary` is set,
// fork-exec a dmemo-server for `host` and wait until it answers. A file
// lock serializes concurrent starters (two launchers, one server).
// Returns the spawned server's pid, or 0 when a server already answered.
Result<int> EnsureServerRunning(TransportPtr transport,
                                const std::string& host,
                                const std::string& url,
                                const std::vector<std::string>& peer_args,
                                const LaunchOptions& options);

// Result of one spawned application process.
struct ProcessResult {
  int proc_id = 0;
  std::string executable;
  int exit_code = -1;
};

struct LaunchReport {
  std::vector<ProcessResult> processes;
  bool AllSucceeded() const {
    for (const auto& p : processes) {
      if (p.exit_code != 0) return false;
    }
    return true;
  }
};

// The full Sec. 4.4 sequence: (re)build binaries, ensure servers, register
// the ADF with every memo server, spawn boss/worker processes with the
// environment contract, wait for all to exit.
//
// Executable resolution follows the paper's convention: each PROCESSES
// entry names a directory; process 0 runs `<dir>/boss` if present, else
// `<dir>/worker`; others run `<dir>/worker`.
Result<LaunchReport> RunApplication(const AppDescription& adf,
                                    const LaunchOptions& options);

// Worker-side helper: build a Memo from the DMEMO_* environment (the
// machine profile comes from DMEMO_ARCH).
Result<Memo> ConnectFromEnvironment();
// The numeric process name assigned by the launcher (-1 if unset).
int ProcessIdFromEnvironment();

}  // namespace dmemo
