// dmemo-stat: print a memo server's statistics and metrics.
//
//   dmemo-stat [--metrics] [--spans] [--text] [--health] [--watch SECONDS]
//              [--trace-dump] [--trace-id HEX] [--trace-out FILE]
//              URL...
//
// Default mode prints the classic Op::kStats summary. --metrics switches to
// Op::kMetrics and renders the full metrics tree (counters, gauges, per-op
// latency histograms with p50/p99 estimates and bucket exemplar trace ids);
// --spans additionally dumps the server's trace-span ring; --text prints
// the server's raw Prometheus exposition. --health prints the
// durability/liveness view: each folder server's fencing epoch and WAL lag
// plus the failure detector's per-peer verdict. --watch N re-polls every N
// seconds and annotates counters and histogram counts with the delta since
// the previous round; a counter that went *backwards* (server restarted
// mid-watch) is clamped to +0 and tagged [restarted] instead of printing a
// huge wrapped delta.
//
// --trace-dump collects every server's span ring and emits it as Chrome
// trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev):
// one "process" lane per dmemo component, one complete X event per span.
// --trace-id HEX (as printed by --spans or a histogram exemplar) restricts
// the dump to one trace — the exemplar workflow in docs/OBSERVABILITY.md.
// Span timestamps are each process's monotonic-since-start clock, so lanes
// from different *processes* are mutually offset; hop order and durations
// are exact.
//
// When several URLs are given, a failing server does not stop the run: the
// remaining URLs are still queried and a per-URL summary is printed at exit
// (exit status 1 if any URL failed).
//
// The Sec.-5 distribution policy is observable here: after running an
// application, the per-folder-server request counts show how the
// cost-weighted hashing spread the memo traffic.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/transport.h"
#include "util/metrics.h"

namespace {

struct Options {
  bool metrics = false;
  bool spans = false;
  bool text = false;
  bool health = false;
  bool trace_dump = false;
  std::uint64_t trace_id = 0;   // 0 = all traces
  std::string trace_out;        // empty = stdout
  int watch_seconds = 0;  // 0 = single shot
  std::vector<std::string> urls;
};

// Previous-round counter/histogram-count values, keyed by
// url + '\x01' + name + '\x01' + labels; drives the --watch deltas.
std::map<std::string, std::uint64_t> g_prev;

std::uint64_t U64Field(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? 0
             : std::static_pointer_cast<dmemo::TUInt64>(v)->value();
}

std::int64_t I64Field(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? 0
             : std::static_pointer_cast<dmemo::TInt64>(v)->value();
}

std::string StrField(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? std::string()
             : std::static_pointer_cast<dmemo::TString>(v)->value();
}

// One round trip; any failure comes back as a status message.
dmemo::Result<std::shared_ptr<dmemo::TRecord>> Fetch(const std::string& url,
                                                     dmemo::Op op) {
  auto transport = dmemo::TransportMux::CreateDefault();
  DMEMO_ASSIGN_OR_RETURN(auto conn, transport->Dial(url));
  auto channel = dmemo::RpcChannel::Create(std::move(conn), nullptr, nullptr);
  dmemo::Request req;
  req.op = op;
  auto resp = channel->Call(req);
  channel->Close();
  DMEMO_RETURN_IF_ERROR(resp.status());
  DMEMO_RETURN_IF_ERROR(resp->ToStatus());
  if (!resp->has_value) {
    return dmemo::InternalError("response carried no payload");
  }
  DMEMO_ASSIGN_OR_RETURN(auto decoded,
                         dmemo::DecodeGraphFromBytes(resp->value));
  return std::static_pointer_cast<dmemo::TRecord>(decoded);
}

// --watch: returns " (+N)" vs. the previous round for monotone series. A
// value below the previous round means the counter restarted from zero
// (server restart mid-watch): the delta is clamped to 0 and annotated, and
// the new value becomes the baseline for the next round.
std::string Delta(const std::string& url, const std::string& series,
                  std::uint64_t now, bool watching) {
  if (!watching) return "";
  const std::string key = url + '\x01' + series;
  auto it = g_prev.find(key);
  const bool first = it == g_prev.end();
  const std::uint64_t prev = first ? 0 : it->second;
  g_prev[key] = now;
  if (first) return "";
  if (now < prev) return " (+0) [restarted]";
  char buf[32];
  std::snprintf(buf, sizeof(buf), " (+%llu)",
                (unsigned long long)(now - prev));
  return buf;
}

// Decodes a TList of TUInt64 into a vector (empty when absent).
std::vector<std::uint64_t> U64List(const dmemo::TRecord& rec,
                                   const char* name) {
  std::vector<std::uint64_t> out;
  auto list = std::static_pointer_cast<dmemo::TList>(rec.Get(name));
  if (list == nullptr) return out;
  out.reserve(list->items().size());
  for (const auto& item : list->items()) {
    out.push_back(std::static_pointer_cast<dmemo::TUInt64>(item)->value());
  }
  return out;
}

void PrintHistogram(const dmemo::TRecord& rec) {
  const std::uint64_t count = U64Field(rec, "count");
  const std::uint64_t sum = U64Field(rec, "sum");
  std::printf("count=%llu sum_us=%llu", (unsigned long long)count,
              (unsigned long long)sum);
  if (count > 0) {
    std::printf(" mean_us=%.1f", double(sum) / double(count));
  }
  const std::vector<std::uint64_t> counts = U64List(rec, "buckets");
  if (counts.empty() || count == 0) return;
  std::printf(" p50=%llu p99=%llu p999=%llu",
              (unsigned long long)dmemo::HistogramPercentile(counts, 0.50),
              (unsigned long long)dmemo::HistogramPercentile(counts, 0.99),
              (unsigned long long)dmemo::HistogramPercentile(counts, 0.999));
  const std::vector<std::uint64_t> exemplars = U64List(rec, "exemplars");
  const auto& bounds = dmemo::Histogram::BucketBounds();
  std::printf("\n      ");
  bool any = false;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t n = counts[i];
    if (n == 0) continue;
    if (any) std::printf(" ");
    if (i < bounds.size()) {
      std::printf("le%llu:%llu", (unsigned long long)bounds[i],
                  (unsigned long long)n);
    } else {
      std::printf("overflow:%llu", (unsigned long long)n);
    }
    // The bucket's most recent sampled trace id: feed it to
    // `dmemo-stat --trace-dump --trace-id <id>` to see that request's
    // hop-by-hop timeline.
    if (i < exemplars.size() && exemplars[i] != 0) {
      std::printf("[ex=%016llx]", (unsigned long long)exemplars[i]);
    }
    any = true;
  }
}

dmemo::Status PrintMetrics(const std::string& url, const Options& opts) {
  DMEMO_ASSIGN_OR_RETURN(auto root, Fetch(url, dmemo::Op::kMetrics));
  std::printf("server %s (%s)\n", StrField(*root, "host").c_str(),
              url.c_str());
  if (opts.text) {
    std::printf("%s", StrField(*root, "text").c_str());
    return dmemo::Status::Ok();
  }
  const bool watching = opts.watch_seconds > 0;
  auto metrics = std::static_pointer_cast<dmemo::TList>(root->Get("metrics"));
  std::string last_name;
  for (const auto& item : metrics->items()) {
    auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
    const std::string name = StrField(*rec, "name");
    const std::string labels = StrField(*rec, "labels");
    const std::string kind = StrField(*rec, "kind");
    if (name != last_name) {
      std::printf("  %s\n", name.c_str());
      last_name = name;
    }
    std::printf("    %s: ", labels.empty() ? "(no labels)" : labels.c_str());
    if (kind == "histogram") {
      PrintHistogram(*rec);
      std::printf("%s\n",
                  Delta(url, name + '\x01' + labels, U64Field(*rec, "count"),
                        watching)
                      .c_str());
    } else {
      const std::int64_t value = I64Field(*rec, "value");
      std::printf("%lld", (long long)value);
      if (kind == "counter" && value >= 0) {
        std::printf("%s", Delta(url, name + '\x01' + labels,
                                static_cast<std::uint64_t>(value), watching)
                              .c_str());
      }
      std::printf("\n");
    }
  }
  if (opts.spans) {
    auto spans = std::static_pointer_cast<dmemo::TList>(root->Get("spans"));
    std::printf("  spans (%llu recorded, %zu retained)\n",
                (unsigned long long)U64Field(*root, "spans_total"),
                spans->items().size());
    for (const auto& item : spans->items()) {
      auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
      auto ok = rec->Get("ok");
      const bool span_ok =
          ok != nullptr && std::static_pointer_cast<dmemo::TBool>(ok)->value();
      std::printf("    trace=%016llx hop=%d %-18s %-12s %8llu us %s\n",
                  (unsigned long long)U64Field(*rec, "trace_id"),
                  std::static_pointer_cast<dmemo::TInt32>(rec->Get("hop"))
                      ->value(),
                  StrField(*rec, "component").c_str(),
                  StrField(*rec, "op").c_str(),
                  (unsigned long long)U64Field(*rec, "duration_us"),
                  span_ok ? "ok" : "ERR");
    }
  }
  return dmemo::Status::Ok();
}

dmemo::Status PrintStats(const std::string& url) {
  DMEMO_ASSIGN_OR_RETURN(auto root, Fetch(url, dmemo::Op::kStats));
  std::printf("server %s (%s)\n", StrField(*root, "host").c_str(),
              url.c_str());
  std::printf("  requests=%llu local=%llu forwarded=%llu relayed=%llu "
              "apps=%llu\n",
              (unsigned long long)U64Field(*root, "requests"),
              (unsigned long long)U64Field(*root, "local_handled"),
              (unsigned long long)U64Field(*root, "forwarded"),
              (unsigned long long)U64Field(*root, "relayed"),
              (unsigned long long)U64Field(*root, "apps_registered"));
  auto pool = std::static_pointer_cast<dmemo::TRecord>(root->Get("pool"));
  std::printf("  threads: spawned=%llu expired=%llu tasks=%llu "
              "cache_hits=%llu\n",
              (unsigned long long)U64Field(*pool, "threads_spawned"),
              (unsigned long long)U64Field(*pool, "threads_expired"),
              (unsigned long long)U64Field(*pool, "tasks_executed"),
              (unsigned long long)U64Field(*pool, "cache_hits"));
  auto folders =
      std::static_pointer_cast<dmemo::TList>(root->Get("folder_servers"));
  for (const auto& item : folders->items()) {
    auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
    std::printf("  folder-server %d: served=%llu puts=%llu gets=%llu "
                "delayed=%llu blocked=%llu folders(+%llu/-%llu)\n",
                std::static_pointer_cast<dmemo::TInt32>(rec->Get("id"))
                    ->value(),
                (unsigned long long)U64Field(*rec, "requests_served"),
                (unsigned long long)U64Field(*rec, "puts"),
                (unsigned long long)U64Field(*rec, "gets"),
                (unsigned long long)U64Field(*rec, "delayed_puts"),
                (unsigned long long)U64Field(*rec, "blocked_waits"),
                (unsigned long long)U64Field(*rec, "folders_created"),
                (unsigned long long)U64Field(*rec, "folders_vanished"));
  }
  return dmemo::Status::Ok();
}

// Mid-watch epoch bookkeeping: an epoch that ADVANCED between rounds means
// the partition failed over (or recovered) while we were looking — tag it
// and let the round's counter deltas clamp via the [restarted] rule rather
// than printing a garbage negative rate.
std::string EpochTag(const std::string& url, int fs_id, std::uint64_t epoch,
                     bool watching) {
  if (!watching) return "";
  const std::string key = url + "\x01" + "fs_epoch:" + std::to_string(fs_id);
  auto it = g_prev.find(key);
  const bool first = it == g_prev.end();
  const std::uint64_t prev = first ? 0 : it->second;
  g_prev[key] = epoch;
  if (!first && epoch > prev) return " [failed-over]";
  return "";
}

dmemo::Status PrintHealth(const std::string& url, bool watching) {
  DMEMO_ASSIGN_OR_RETURN(auto root, Fetch(url, dmemo::Op::kStats));
  std::printf("server %s (%s)\n", StrField(*root, "host").c_str(),
              url.c_str());
  auto folders =
      std::static_pointer_cast<dmemo::TList>(root->Get("folder_servers"));
  if (folders != nullptr) {
    for (const auto& item : folders->items()) {
      auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
      const int id =
          std::static_pointer_cast<dmemo::TInt32>(rec->Get("id"))->value();
      const std::uint64_t epoch = U64Field(*rec, "epoch");
      std::printf("  folder-server %d: epoch=%llu wal_lag_bytes=%llu%s\n",
                  id, (unsigned long long)epoch,
                  (unsigned long long)U64Field(*rec, "wal_lag"),
                  EpochTag(url, id, epoch, watching).c_str());
    }
  }
  auto standbys =
      std::static_pointer_cast<dmemo::TList>(root->Get("standbys"));
  if (standbys != nullptr) {
    for (const auto& item : standbys->items()) {
      auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
      std::printf("  standby fs%d: primary=%s epoch=%llu next_seq=%llu\n",
                  std::static_pointer_cast<dmemo::TInt32>(rec->Get("id"))
                      ->value(),
                  StrField(*rec, "primary").c_str(),
                  (unsigned long long)U64Field(*rec, "epoch"),
                  (unsigned long long)U64Field(*rec, "next_seq"));
    }
  }
  auto health = std::static_pointer_cast<dmemo::TList>(root->Get("health"));
  if (health == nullptr || health->items().empty()) {
    std::printf("  peers: (no heartbeat data)\n");
    return dmemo::Status::Ok();
  }
  for (const auto& item : health->items()) {
    auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
    auto alive = rec->Get("alive");
    const bool is_alive =
        alive != nullptr &&
        std::static_pointer_cast<dmemo::TBool>(alive)->value();
    std::printf("  peer %-20s %s misses=%d last_seen_us=%llu",
                StrField(*rec, "host").c_str(),
                is_alive ? "ALIVE" : "DEAD ",
                std::static_pointer_cast<dmemo::TInt32>(rec->Get("misses"))
                    ->value(),
                (unsigned long long)U64Field(*rec, "last_seen_us"));
    auto epochs =
        std::static_pointer_cast<dmemo::TList>(rec->Get("folder_servers"));
    if (epochs != nullptr) {
      for (const auto& eitem : epochs->items()) {
        auto erec = std::static_pointer_cast<dmemo::TRecord>(eitem);
        std::printf(" fs%d@e%llu",
                    std::static_pointer_cast<dmemo::TInt32>(erec->Get("id"))
                        ->value(),
                    (unsigned long long)U64Field(*erec, "epoch"));
      }
    }
    std::printf("\n");
  }
  return dmemo::Status::Ok();
}

// ---- --trace-dump: Chrome trace_event JSON from the servers' span rings.

struct DumpSpan {
  std::uint64_t trace_id = 0;
  std::string component;
  std::string op;
  int hop = 0;
  bool ok = true;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

// Minimal JSON string escape (component/op names are plain identifiers,
// but a hostile ADF host name must not break the dump).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

dmemo::Status CollectSpans(const std::string& url,
                           std::vector<DumpSpan>* out) {
  DMEMO_ASSIGN_OR_RETURN(auto root, Fetch(url, dmemo::Op::kMetrics));
  auto spans = std::static_pointer_cast<dmemo::TList>(root->Get("spans"));
  if (spans == nullptr) return dmemo::Status::Ok();
  for (const auto& item : spans->items()) {
    auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
    DumpSpan span;
    span.trace_id = U64Field(*rec, "trace_id");
    span.component = StrField(*rec, "component");
    span.op = StrField(*rec, "op");
    span.hop =
        std::static_pointer_cast<dmemo::TInt32>(rec->Get("hop"))->value();
    auto ok = rec->Get("ok");
    span.ok = ok != nullptr &&
              std::static_pointer_cast<dmemo::TBool>(ok)->value();
    span.start_us = U64Field(*rec, "start_us");
    span.duration_us = U64Field(*rec, "duration_us");
    out->push_back(std::move(span));
  }
  return dmemo::Status::Ok();
}

// Renders the collected spans as Chrome trace_event JSON: one trace lane
// ("process") per dmemo component, spans as complete (ph:"X") events with
// the trace id in args. Timestamps are per-*OS-process* monotonic clocks;
// components served by one server share a time base.
void WriteChromeTrace(const std::vector<DumpSpan>& spans, std::FILE* out) {
  std::map<std::string, int> pids;
  for (const DumpSpan& span : spans) {
    pids.emplace(span.component, static_cast<int>(pids.size()) + 1);
  }
  std::fprintf(out, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (const auto& [component, pid] : pids) {
    std::fprintf(out,
                 "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 first ? "" : ",", pid, JsonEscape(component).c_str());
    first = false;
  }
  for (const DumpSpan& span : spans) {
    char id[24];
    std::snprintf(id, sizeof(id), "%016llx",
                  (unsigned long long)span.trace_id);
    std::fprintf(out,
                 "%s\n{\"name\":\"%s\",\"cat\":\"dmemo\",\"ph\":\"X\","
                 "\"ts\":%llu,\"dur\":%llu,\"pid\":%d,\"tid\":%d,"
                 "\"args\":{\"trace_id\":\"%s\",\"hop\":%d,\"ok\":%s}}",
                 first ? "" : ",", JsonEscape(span.op).c_str(),
                 (unsigned long long)span.start_us,
                 (unsigned long long)span.duration_us,
                 pids.at(span.component), span.hop, id, span.hop,
                 span.ok ? "true" : "false");
    first = false;
  }
  std::fprintf(out, "\n]}\n");
}

int RunTraceDump(const Options& opts) {
  std::vector<DumpSpan> spans;
  int reachable = 0;
  for (const std::string& url : opts.urls) {
    dmemo::Status status = CollectSpans(url, &spans);
    if (!status.ok()) {
      std::fprintf(stderr, "dmemo-stat: %s: %s\n", url.c_str(),
                   status.ToString().c_str());
    } else {
      ++reachable;
    }
  }
  if (reachable == 0) return 1;
  if (opts.trace_id != 0) {
    std::erase_if(spans, [&](const DumpSpan& span) {
      return span.trace_id != opts.trace_id;
    });
    if (spans.empty()) {
      std::fprintf(stderr,
                   "dmemo-stat: no spans for trace %016llx (ring may have "
                   "wrapped, or the trace was not sampled)\n",
                   (unsigned long long)opts.trace_id);
      return 1;
    }
  }
  std::FILE* out = stdout;
  if (!opts.trace_out.empty()) {
    out = std::fopen(opts.trace_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "dmemo-stat: cannot write %s\n",
                   opts.trace_out.c_str());
      return 1;
    }
  }
  WriteChromeTrace(spans, out);
  if (out != stdout) std::fclose(out);
  std::fprintf(stderr, "dmemo-stat: dumped %zu spans from %d server%s\n",
               spans.size(), reachable, reachable == 1 ? "" : "s");
  return 0;
}

// One pass over every URL; failures are reported but never stop the pass.
// Returns the number of URLs that failed.
int RunRound(const Options& opts,
             std::map<std::string, std::string>* last_error) {
  int failed = 0;
  for (const std::string& url : opts.urls) {
    dmemo::Status status = opts.health
                               ? PrintHealth(url, opts.watch_seconds > 0)
                           : opts.metrics ? PrintMetrics(url, opts)
                                          : PrintStats(url);
    if (!status.ok()) {
      std::fprintf(stderr, "dmemo-stat: %s: %s\n", url.c_str(),
                   status.ToString().c_str());
      (*last_error)[url] = status.ToString();
      ++failed;
    } else {
      last_error->erase(url);
    }
  }
  return failed;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--metrics] [--spans] [--text] [--health] "
               "[--watch SECONDS]\n"
               "       [--trace-dump] [--trace-id HEX] [--trace-out FILE] "
               "SERVER_URL...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--spans") {
      opts.metrics = true;
      opts.spans = true;
    } else if (arg == "--text") {
      opts.metrics = true;
      opts.text = true;
    } else if (arg == "--health") {
      opts.health = true;
    } else if (arg == "--trace-dump") {
      opts.trace_dump = true;
    } else if (arg == "--trace-id") {
      if (i + 1 >= argc) return Usage(argv[0]);
      char* end = nullptr;
      opts.trace_id = std::strtoull(argv[++i], &end, 16);
      if (end == nullptr || *end != '\0' || opts.trace_id == 0) {
        return Usage(argv[0]);
      }
      opts.trace_dump = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) return Usage(argv[0]);
      opts.trace_out = argv[++i];
      opts.trace_dump = true;
    } else if (arg == "--watch") {
      if (i + 1 >= argc) return Usage(argv[0]);
      char* end = nullptr;
      opts.watch_seconds = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == nullptr || *end != '\0' || opts.watch_seconds <= 0) {
        return Usage(argv[0]);
      }
      opts.metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      opts.urls.push_back(arg);
    }
  }
  if (opts.urls.empty()) return Usage(argv[0]);
  if (opts.trace_dump) return RunTraceDump(opts);

  std::map<std::string, std::string> last_error;
  int failed = RunRound(opts, &last_error);
  while (opts.watch_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(opts.watch_seconds));
    std::printf("---\n");
    failed = RunRound(opts, &last_error);
  }

  // Per-URL exit summary: one line per URL so a partially-degraded farm is
  // obvious at a glance.
  if (opts.urls.size() > 1 || failed > 0) {
    std::fprintf(stderr, "dmemo-stat: %zu/%zu servers answered\n",
                 opts.urls.size() - static_cast<std::size_t>(failed),
                 opts.urls.size());
    for (const std::string& url : opts.urls) {
      auto it = last_error.find(url);
      if (it == last_error.end()) {
        std::fprintf(stderr, "  ok   %s\n", url.c_str());
      } else {
        std::fprintf(stderr, "  FAIL %s: %s\n", url.c_str(),
                     it->second.c_str());
      }
    }
  }
  return failed > 0 ? 1 : 0;
}
