// dmemo-stat: print a memo server's statistics.
//
//   dmemo-stat unix:///tmp/dmemo-server-host.sock [more urls...]
//
// The Sec.-5 distribution policy is observable here: after running an
// application, the per-folder-server request counts show how the
// cost-weighted hashing spread the memo traffic.
#include <cstdio>
#include <string>

#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/transport.h"

namespace {

std::uint64_t U64Field(const dmemo::TRecord& rec, const char* name) {
  auto v = rec.Get(name);
  return v == nullptr
             ? 0
             : std::static_pointer_cast<dmemo::TUInt64>(v)->value();
}

int PrintStats(const std::string& url) {
  auto transport = dmemo::TransportMux::CreateDefault();
  auto conn = transport->Dial(url);
  if (!conn.ok()) {
    std::fprintf(stderr, "dmemo-stat: %s: %s\n", url.c_str(),
                 conn.status().ToString().c_str());
    return 1;
  }
  auto channel = dmemo::RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  dmemo::Request req;
  req.op = dmemo::Op::kStats;
  auto resp = channel->Call(req);
  channel->Close();
  if (!resp.ok() || resp->code != dmemo::StatusCode::kOk ||
      !resp->has_value) {
    std::fprintf(stderr, "dmemo-stat: %s: stats request failed\n",
                 url.c_str());
    return 1;
  }
  auto decoded = dmemo::DecodeGraphFromBytes(resp->value);
  if (!decoded.ok()) {
    std::fprintf(stderr, "dmemo-stat: bad stats payload\n");
    return 1;
  }
  auto root = std::static_pointer_cast<dmemo::TRecord>(*decoded);
  std::printf("server %s (%s)\n",
              std::static_pointer_cast<dmemo::TString>(root->Get("host"))
                  ->value()
                  .c_str(),
              url.c_str());
  std::printf("  requests=%llu local=%llu forwarded=%llu relayed=%llu "
              "apps=%llu\n",
              (unsigned long long)U64Field(*root, "requests"),
              (unsigned long long)U64Field(*root, "local_handled"),
              (unsigned long long)U64Field(*root, "forwarded"),
              (unsigned long long)U64Field(*root, "relayed"),
              (unsigned long long)U64Field(*root, "apps_registered"));
  auto pool = std::static_pointer_cast<dmemo::TRecord>(root->Get("pool"));
  std::printf("  threads: spawned=%llu expired=%llu tasks=%llu "
              "cache_hits=%llu\n",
              (unsigned long long)U64Field(*pool, "threads_spawned"),
              (unsigned long long)U64Field(*pool, "threads_expired"),
              (unsigned long long)U64Field(*pool, "tasks_executed"),
              (unsigned long long)U64Field(*pool, "cache_hits"));
  auto folders =
      std::static_pointer_cast<dmemo::TList>(root->Get("folder_servers"));
  for (const auto& item : folders->items()) {
    auto rec = std::static_pointer_cast<dmemo::TRecord>(item);
    std::printf("  folder-server %d: served=%llu puts=%llu gets=%llu "
                "delayed=%llu blocked=%llu folders(+%llu/-%llu)\n",
                std::static_pointer_cast<dmemo::TInt32>(rec->Get("id"))
                    ->value(),
                (unsigned long long)U64Field(*rec, "requests_served"),
                (unsigned long long)U64Field(*rec, "puts"),
                (unsigned long long)U64Field(*rec, "gets"),
                (unsigned long long)U64Field(*rec, "delayed_puts"),
                (unsigned long long)U64Field(*rec, "blocked_waits"),
                (unsigned long long)U64Field(*rec, "folders_created"),
                (unsigned long long)U64Field(*rec, "folders_vanished"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s SERVER_URL...\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= PrintStats(argv[i]);
  }
  return rc;
}
