// Linda tuple space baseline (paper Sec. 7, [6] Gelernter 1985).
//
// "The Linda research was used to create the illusion of a virtual machine,
// wherein an arbitrary number of processes communicated via a virtual shared
// memory known as a tuple space. We believe that this tuple space is just 'a
// flat directory of unordered queues'."
//
// This is the comparator for experiment E9: Linda retrieves by *structural
// matching* against every tuple (anti-tuples with typed wildcards), whereas
// D-Memo retrieves by hashing an exact folder key. We provide the honest
// naive space and a first-field-indexed variant (the classic optimization
// real Linda kernels used), so the comparison is not a strawman.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "util/status.h"

namespace dmemo::linda {

// Tuple field values: the scalar types classic Linda examples use.
using Value = std::variant<std::int64_t, double, std::string>;
using Tuple = std::vector<Value>;

// Anti-tuple field: either an actual (exact match) or a formal (typed
// wildcard that binds any value of that type).
struct Formal {
  enum class Type { kInt, kFloat, kString };
  Type type;
};
using TemplateField = std::variant<Value, Formal>;
using Template = std::vector<TemplateField>;

// Helpers to build templates tersely: V(actual), F*() formals.
inline TemplateField V(std::int64_t v) { return TemplateField(Value(v)); }
inline TemplateField V(double v) { return TemplateField(Value(v)); }
inline TemplateField V(std::string v) {
  return TemplateField(Value(std::move(v)));
}
inline TemplateField V(const char* v) {
  return TemplateField(Value(std::string(v)));
}
inline TemplateField FInt() { return Formal{Formal::Type::kInt}; }
inline TemplateField FFloat() { return Formal{Formal::Type::kFloat}; }
inline TemplateField FString() { return Formal{Formal::Type::kString}; }

// Does `tuple` match `anti` (same arity, actuals equal, formals type-match)?
bool Matches(const Template& anti, const Tuple& tuple);

class TupleSpace {
 public:
  // index_first_field: maintain a hash index on arity + first-actual so
  // retrieval scans only the matching bucket (set false for pure Linda).
  explicit TupleSpace(bool index_first_field = false);

  // out: deposit a tuple. Never blocks.
  Status Out(Tuple tuple);

  // in: blocking destructive retrieval of a matching tuple.
  Result<Tuple> In(const Template& anti);

  // inp: non-blocking in; nullopt when nothing matches.
  Result<std::optional<Tuple>> Inp(const Template& anti);

  // rd: blocking non-destructive read.
  Result<Tuple> Rd(const Template& anti);

  // rdp: non-blocking rd.
  Result<std::optional<Tuple>> Rdp(const Template& anti);

  std::size_t size() const;
  // Tuples examined by matching scans (the E9 cost metric).
  std::uint64_t tuples_scanned() const;

  void Close();  // wake blocked in/rd with CANCELLED

 private:
  struct Stored {
    Tuple tuple;
    std::uint64_t bucket;  // index key when indexing is on
  };

  std::uint64_t BucketFor(const Tuple& tuple) const;
  // Bucket of an anti-tuple, or nullopt when its first field is a formal
  // (then every bucket must be scanned — the index cannot help).
  std::optional<std::uint64_t> BucketFor(const Template& anti) const;

  // Scan for a match; removes it when `take`. Caller holds the lock.
  std::optional<Tuple> FindLocked(const Template& anti, bool take);

  const bool indexed_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  // Unindexed storage: one list. Indexed: per-bucket lists.
  std::list<Stored> tuples_;
  std::unordered_map<std::uint64_t, std::list<Stored>> buckets_;
  mutable std::uint64_t scanned_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dmemo::linda
