#include "baselines/linda.h"

#include "util/hash.h"

namespace dmemo::linda {

namespace {

bool TypeMatches(Formal::Type type, const Value& value) {
  switch (type) {
    case Formal::Type::kInt:
      return std::holds_alternative<std::int64_t>(value);
    case Formal::Type::kFloat:
      return std::holds_alternative<double>(value);
    case Formal::Type::kString:
      return std::holds_alternative<std::string>(value);
  }
  return false;
}

std::uint64_t HashValue(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return Mix64(static_cast<std::uint64_t>(*i) ^ 0x1111);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return Mix64(std::hash<double>{}(*d) ^ 0x2222);
  }
  return Fnv1a64(std::get<std::string>(value)) ^ 0x3333;
}

}  // namespace

bool Matches(const Template& anti, const Tuple& tuple) {
  if (anti.size() != tuple.size()) return false;
  for (std::size_t i = 0; i < anti.size(); ++i) {
    if (const auto* actual = std::get_if<Value>(&anti[i])) {
      if (*actual != tuple[i]) return false;
    } else {
      if (!TypeMatches(std::get<Formal>(anti[i]).type, tuple[i])) {
        return false;
      }
    }
  }
  return true;
}

TupleSpace::TupleSpace(bool index_first_field)
    : indexed_(index_first_field) {}

std::uint64_t TupleSpace::BucketFor(const Tuple& tuple) const {
  std::uint64_t h = Mix64(tuple.size());
  if (!tuple.empty()) h = HashCombine(h, HashValue(tuple[0]));
  return h;
}

std::optional<std::uint64_t> TupleSpace::BucketFor(
    const Template& anti) const {
  if (anti.empty()) return Mix64(0);
  if (const auto* actual = std::get_if<Value>(&anti[0])) {
    return HashCombine(Mix64(anti.size()), HashValue(*actual));
  }
  return std::nullopt;  // formal first field: index is useless
}

Status TupleSpace::Out(Tuple tuple) {
  std::unique_lock lock(mu_);
  if (closed_) return CancelledError("tuple space closed");
  Stored stored{std::move(tuple), 0};
  if (indexed_) {
    stored.bucket = BucketFor(stored.tuple);
    buckets_[stored.bucket].push_back(std::move(stored));
  } else {
    tuples_.push_back(std::move(stored));
  }
  ++count_;
  cv_.notify_all();
  return Status::Ok();
}

std::optional<Tuple> TupleSpace::FindLocked(const Template& anti,
                                            bool take) {
  auto scan = [&](std::list<Stored>& list) -> std::optional<Tuple> {
    for (auto it = list.begin(); it != list.end(); ++it) {
      ++scanned_;
      if (Matches(anti, it->tuple)) {
        Tuple found = it->tuple;
        if (take) {
          list.erase(it);
          --count_;
        }
        return found;
      }
    }
    return std::nullopt;
  };

  if (!indexed_) return scan(tuples_);

  if (auto bucket = BucketFor(anti)) {
    auto it = buckets_.find(*bucket);
    if (it == buckets_.end()) return std::nullopt;
    return scan(it->second);
  }
  // Formal first field: fall back to scanning every bucket.
  for (auto& [key, list] : buckets_) {
    if (auto found = scan(list)) return found;
  }
  return std::nullopt;
}

Result<Tuple> TupleSpace::In(const Template& anti) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (closed_) return CancelledError("tuple space closed");
    if (auto found = FindLocked(anti, /*take=*/true)) return *found;
    cv_.wait(lock);
  }
}

Result<std::optional<Tuple>> TupleSpace::Inp(const Template& anti) {
  std::unique_lock lock(mu_);
  if (closed_) return CancelledError("tuple space closed");
  return FindLocked(anti, /*take=*/true);
}

Result<Tuple> TupleSpace::Rd(const Template& anti) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (closed_) return CancelledError("tuple space closed");
    if (auto found = FindLocked(anti, /*take=*/false)) return *found;
    cv_.wait(lock);
  }
}

Result<std::optional<Tuple>> TupleSpace::Rdp(const Template& anti) {
  std::unique_lock lock(mu_);
  if (closed_) return CancelledError("tuple space closed");
  return FindLocked(anti, /*take=*/false);
}

std::size_t TupleSpace::size() const {
  std::unique_lock lock(mu_);
  return count_;
}

std::uint64_t TupleSpace::tuples_scanned() const {
  std::unique_lock lock(mu_);
  return scanned_;
}

void TupleSpace::Close() {
  std::unique_lock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

}  // namespace dmemo::linda
