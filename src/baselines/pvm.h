// PVM-style message passing baseline (paper Sec. 7, [11]).
//
// "Parallel Virtual Machine (PVM) is a low-level approach... The routines in
// the subroutine library allow processes to communicate with one another
// without knowing the details of communicating with the system service."
//
// The model: named tasks, direct typed sends, tag-filtered receives — no
// shared structures, no decoupling in space or time. This is the comparator
// for experiment E10: raw point-to-point messaging has less overhead per
// message than folder traffic, but static work distribution cannot
// re-balance when workers differ in speed, which is where the job jar wins.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "util/bytes.h"
#include "util/status.h"

namespace dmemo::pvm {

using TaskId = std::uint32_t;
inline constexpr std::int32_t kAnyTag = -1;

struct Message {
  TaskId source = 0;
  std::int32_t tag = 0;
  Bytes body;
};

// A virtual machine of tasks with mailboxes. Threads enroll to obtain a
// TaskId; sends append to the destination mailbox; receives filter by tag.
class VirtualMachine {
 public:
  VirtualMachine() = default;
  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  // Register a task; ids are dense from 0 (like pvm_mytid conceptually).
  TaskId Enroll();

  // pvm_send: deliver to `dest`'s mailbox. Fails if dest unknown.
  Status Send(TaskId source, TaskId dest, std::int32_t tag, Bytes body);

  // pvm_recv: blocking receive of the first message whose tag matches
  // (kAnyTag matches all).
  Result<Message> Receive(TaskId self, std::int32_t tag = kAnyTag);

  // pvm_nrecv: non-blocking variant.
  Result<std::optional<Message>> TryReceive(TaskId self,
                                            std::int32_t tag = kAnyTag);

  // pvm_mcast: send to many destinations (still unicast per destination —
  // no broadcast fabric, matching what 1990s PVM did over TCP).
  Status Multicast(TaskId source, const std::vector<TaskId>& dests,
                   std::int32_t tag, Bytes body);

  std::uint64_t messages_sent() const;

  void Close();  // wake all blocked receivers with CANCELLED

 private:
  struct Mailbox {
    std::deque<Message> messages;
    std::condition_variable cv;
  };

  mutable std::mutex mu_;
  std::unordered_map<TaskId, std::unique_ptr<Mailbox>> mailboxes_;
  TaskId next_id_ = 0;
  std::uint64_t sent_ = 0;
  bool closed_ = false;
};

}  // namespace dmemo::pvm
