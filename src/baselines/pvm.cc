#include "baselines/pvm.h"

namespace dmemo::pvm {

TaskId VirtualMachine::Enroll() {
  std::unique_lock lock(mu_);
  TaskId id = next_id_++;
  mailboxes_.emplace(id, std::make_unique<Mailbox>());
  return id;
}

Status VirtualMachine::Send(TaskId source, TaskId dest, std::int32_t tag,
                            Bytes body) {
  std::unique_lock lock(mu_);
  if (closed_) return CancelledError("pvm closed");
  auto it = mailboxes_.find(dest);
  if (it == mailboxes_.end()) {
    return NotFoundError("no task " + std::to_string(dest));
  }
  it->second->messages.push_back(Message{source, tag, std::move(body)});
  ++sent_;
  it->second->cv.notify_all();
  return Status::Ok();
}

namespace {

std::optional<Message> TakeMatching(std::deque<Message>& box,
                                    std::int32_t tag) {
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (tag == kAnyTag || it->tag == tag) {
      Message msg = std::move(*it);
      box.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

}  // namespace

Result<Message> VirtualMachine::Receive(TaskId self, std::int32_t tag) {
  std::unique_lock lock(mu_);
  auto it = mailboxes_.find(self);
  if (it == mailboxes_.end()) {
    return NotFoundError("no task " + std::to_string(self));
  }
  Mailbox& box = *it->second;
  for (;;) {
    if (closed_) return CancelledError("pvm closed");
    if (auto msg = TakeMatching(box.messages, tag)) return std::move(*msg);
    box.cv.wait(lock);
  }
}

Result<std::optional<Message>> VirtualMachine::TryReceive(TaskId self,
                                                          std::int32_t tag) {
  std::unique_lock lock(mu_);
  if (closed_) return CancelledError("pvm closed");
  auto it = mailboxes_.find(self);
  if (it == mailboxes_.end()) {
    return NotFoundError("no task " + std::to_string(self));
  }
  return TakeMatching(it->second->messages, tag);
}

Status VirtualMachine::Multicast(TaskId source,
                                 const std::vector<TaskId>& dests,
                                 std::int32_t tag, Bytes body) {
  for (TaskId dest : dests) {
    DMEMO_RETURN_IF_ERROR(Send(source, dest, tag, body));
  }
  return Status::Ok();
}

std::uint64_t VirtualMachine::messages_sent() const {
  std::unique_lock lock(mu_);
  return sent_;
}

void VirtualMachine::Close() {
  std::unique_lock lock(mu_);
  closed_ = true;
  for (auto& [id, box] : mailboxes_) box->cv.notify_all();
}

}  // namespace dmemo::pvm
