#include "util/worker_pool.h"

#include <utility>

#include "util/metrics.h"

namespace dmemo {

namespace {

// Queued-but-not-yet-running tasks, summed over every pool in the process —
// the backlog signal the ISSUE's scaling PRs watch.
Gauge* QueueDepthGauge() {
  static Gauge* gauge =
      MetricsRegistry::Global().GetGauge("dmemo_worker_queue_depth");
  return gauge;
}

Counter* TasksSubmittedCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("dmemo_worker_tasks_total");
  return counter;
}

}  // namespace

WorkerPool::WorkerPool() : WorkerPool(Options{}) {}

WorkerPool::WorkerPool(Options options) : options_(options) {}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::Submit(std::function<void()> task) {
  MutexLock lock(mu_);
  if (shutdown_) return false;
  tasks_.push_back(std::move(task));
  QueueDepthGauge()->Add(1);
  TasksSubmittedCounter()->Increment();
  if (idle_ >= tasks_.size()) {
    // A lingering thread will pick this up: the paper's cache hit.
    ++stat_cache_hits_;
    work_cv_.NotifyOne();
  } else if (options_.max_threads == 0 || live_ < options_.max_threads) {
    SpawnLocked();
  } else {
    // All threads busy and at cap; task waits until one frees up.
    work_cv_.NotifyOne();
  }
  return true;
}

void WorkerPool::SpawnLocked() {
  ++live_;
  ++stat_spawned_;
  threads_.emplace_back([this] { WorkerLoop(); });
}

void WorkerPool::WorkerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    if (tasks_.empty()) {
      // Transaction done: set the timer and wait for additional requests.
      ++idle_;
      bool got_work = false;
      if (options_.cache_ttl.count() > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() + options_.cache_ttl;
        for (;;) {
          if (shutdown_ || !tasks_.empty()) {
            got_work = true;
            break;
          }
          if (work_cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
            got_work = shutdown_ || !tasks_.empty();
            break;
          }
        }
      }
      // cache_ttl == 0: caching disabled, terminate immediately.
      --idle_;
      if (!got_work || (shutdown_ && tasks_.empty())) {
        if (!shutdown_) ++stat_expired_;
        --live_;
        drain_cv_.NotifyAll();
        return;
      }
      if (tasks_.empty()) continue;  // another worker won the race
    }
    auto task = std::move(tasks_.front());
    tasks_.pop_front();
    QueueDepthGauge()->Add(-1);
    ++running_;
    lock.Unlock();
    task();
    lock.Lock();
    --running_;
    ++stat_tasks_;
    if (tasks_.empty() && running_ == 0) drain_cv_.NotifyAll();
  }
}

void WorkerPool::Drain() {
  MutexLock lock(mu_);
  while (!(tasks_.empty() && running_ == 0)) {
    // Queued work with zero live threads can only happen transiently while a
    // spawn is in flight, so live_ > 0 covers it; running_ covers execution.
    drain_cv_.Wait(mu_);
  }
}

void WorkerPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    if (shutdown_ && threads_.empty()) return;
    shutdown_ = true;
    work_cv_.NotifyAll();
    // Remaining queued tasks are still executed by live threads; if none are
    // live, run them here so Shutdown never drops work.
    while (live_ == 0 && !tasks_.empty()) {
      auto task = std::move(tasks_.front());
      tasks_.pop_front();
      QueueDepthGauge()->Add(-1);
      lock.Unlock();
      task();
      lock.Lock();
      ++stat_tasks_;
    }
    to_join.swap(threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
}

WorkerPool::Stats WorkerPool::GetStats() const {
  MutexLock lock(mu_);
  Stats s;
  s.threads_spawned = stat_spawned_;
  s.threads_expired = stat_expired_;
  s.tasks_executed = stat_tasks_;
  s.cache_hits = stat_cache_hits_;
  s.live_threads = live_;
  s.idle_threads = idle_;
  return s;
}

}  // namespace dmemo
