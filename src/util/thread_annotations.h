// Clang thread-safety (capability) annotation macros.
//
// The concurrency-correctness layer rests on three legs; this header is the
// static one. Under Clang, the macros expand to capability attributes that
// `-Wthread-safety` checks at compile time: a member annotated
// DMEMO_GUARDED_BY(mu_) may only be touched while mu_ is held, a method
// annotated DMEMO_REQUIRES(mu_) may only be called with mu_ held, and so on.
// Under GCC (which has no such analysis) everything expands to nothing, so
// the annotations are free documentation.
//
// std::mutex carries no capability attribute, so annotated code must use the
// dmemo::Mutex / dmemo::MutexLock / dmemo::CondVar wrappers (util/mutex.h)
// or the abstract dmemo::Lock (locking/lock.h) — both are declared
// capabilities here and double as hook points for the runtime lock-order
// detector (locking/lock_order.h), the dynamic leg of the layer.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define DMEMO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DMEMO_THREAD_ANNOTATION(x)  // no-op: GCC, MSVC, SWIG
#endif

// Class is a capability (a lock). The string names the capability kind in
// diagnostics, e.g. "mutex".
#define DMEMO_CAPABILITY(x) DMEMO_THREAD_ANNOTATION(capability(x))

// RAII class whose lifetime equals a critical section.
#define DMEMO_SCOPED_CAPABILITY DMEMO_THREAD_ANNOTATION(scoped_lockable)

// Data member may only be accessed while holding the given capability.
#define DMEMO_GUARDED_BY(x) DMEMO_THREAD_ANNOTATION(guarded_by(x))

// Pointer member: the pointed-to data is protected by the capability.
#define DMEMO_PT_GUARDED_BY(x) DMEMO_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capability (or capabilities) to be held on entry,
// and does not release them.
#define DMEMO_REQUIRES(...) \
  DMEMO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function acquires the capability; caller must not already hold it.
#define DMEMO_ACQUIRE(...) \
  DMEMO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function releases the capability; caller must hold it.
#define DMEMO_RELEASE(...) \
  DMEMO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function attempts to acquire; first argument is the return value that
// signals success.
#define DMEMO_TRY_ACQUIRE(...) \
  DMEMO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called while holding the capability (deadlock guard
// for non-reentrant locks).
#define DMEMO_EXCLUDES(...) DMEMO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Declare a static acquisition order between two capabilities.
#define DMEMO_ACQUIRED_BEFORE(...) \
  DMEMO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DMEMO_ACQUIRED_AFTER(...) \
  DMEMO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function returns a reference to the given capability.
#define DMEMO_RETURN_CAPABILITY(x) DMEMO_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions that manage capabilities in ways the analysis
// cannot follow (the lock wrappers' own bodies, adopt/handoff paths).
#define DMEMO_NO_THREAD_SAFETY_ANALYSIS \
  DMEMO_THREAD_ANNOTATION(no_thread_safety_analysis)
