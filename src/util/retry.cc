#include "util/retry.h"

#include <algorithm>
#include <cstdlib>

namespace dmemo {

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return fallback;
  return static_cast<std::int64_t>(v);
}

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(std::max<std::int64_t>(
      1, EnvInt("DMEMO_RPC_RETRIES", policy.max_attempts)));
  policy.initial_backoff = std::chrono::milliseconds(
      EnvInt("DMEMO_RPC_BACKOFF_MS", policy.initial_backoff.count()));
  policy.max_backoff = std::chrono::milliseconds(
      EnvInt("DMEMO_RPC_BACKOFF_MAX_MS", policy.max_backoff.count()));
  policy.attempt_timeout = std::chrono::milliseconds(
      EnvInt("DMEMO_RPC_ATTEMPT_TIMEOUT_MS", policy.attempt_timeout.count()));
  return policy;
}

std::chrono::milliseconds RetryPolicy::BackoffFor(int attempt,
                                                  SplitMix64& rng) const {
  if (attempt < 1) attempt = 1;
  double backoff = static_cast<double>(initial_backoff.count());
  for (int i = 1; i < attempt; ++i) backoff *= multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff.count()));
  if (jitter > 0.0) {
    const double j = std::clamp(jitter, 0.0, 1.0);
    backoff *= (1.0 - j) + j * rng.NextUnit();
  }
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(std::max(backoff, 0.0)));
}

std::chrono::milliseconds CallTimeoutFromEnv() {
  return std::chrono::milliseconds(EnvInt("DMEMO_RPC_TIMEOUT_MS", 0));
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace dmemo
