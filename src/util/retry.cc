#include "util/retry.h"

#include <algorithm>
#include <cstdlib>

namespace dmemo {

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return fallback;
  return static_cast<std::int64_t>(v);
}

RetryPolicy RetryPolicy::FromEnv() {
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(std::max<std::int64_t>(
      1, EnvInt("DMEMO_RPC_RETRIES", policy.max_attempts)));
  policy.initial_backoff = std::chrono::milliseconds(
      EnvInt("DMEMO_RPC_BACKOFF_MS", policy.initial_backoff.count()));
  policy.max_backoff = std::chrono::milliseconds(
      EnvInt("DMEMO_RPC_BACKOFF_MAX_MS", policy.max_backoff.count()));
  policy.attempt_timeout = std::chrono::milliseconds(
      EnvInt("DMEMO_RPC_ATTEMPT_TIMEOUT_MS", policy.attempt_timeout.count()));
  return policy;
}

std::chrono::milliseconds RetryPolicy::BackoffFor(int attempt,
                                                  SplitMix64& rng) const {
  if (attempt < 1) attempt = 1;
  const double cap = static_cast<double>(max_backoff.count());
  double backoff = static_cast<double>(initial_backoff.count());
  // Clamp inside the loop: growing first and clamping after overflows the
  // double to inf at high attempt counts (and the cast below would be UB).
  // Once the cap is reached no further doubling can matter, so short-
  // circuit — BackoffFor(1000) costs the same as BackoffFor(10).
  for (int i = 1; i < attempt && backoff < cap; ++i) {
    backoff = std::min(backoff * multiplier, cap);
  }
  backoff = std::min(backoff, cap);
  if (jitter > 0.0) {
    const double j = std::clamp(jitter, 0.0, 1.0);
    backoff *= (1.0 - j) + j * rng.NextUnit();
  }
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(std::max(backoff, 0.0)));
}

std::chrono::milliseconds CallTimeoutFromEnv() {
  return std::chrono::milliseconds(EnvInt("DMEMO_RPC_TIMEOUT_MS", 0));
}

std::optional<std::uint32_t> RemainingBudgetMs(
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline) {
  if (deadline <= now) return std::nullopt;
  const std::int64_t remaining_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  if (remaining_ms <= 0) return std::nullopt;  // sub-ms remainder: expired
  return static_cast<std::uint32_t>(
      std::min<std::int64_t>(remaining_ms, 0xffffffffLL));
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace dmemo
