#include "util/iobuf.h"

#include <cassert>
#include <cstring>

#include "util/metrics.h"

namespace dmemo {

namespace {

// Every user-space memcpy of message payload bytes performed by the
// pipeline funnels through here, so the counter is an upper bound a bench
// can diff across an operation.
Counter* PayloadCopies() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_pipeline_payload_copies_total");
  return c;
}

}  // namespace

void CountPayloadCopyBytes(std::size_t bytes) {
  if (bytes > 0) PayloadCopies()->Add(bytes);
}

std::uint64_t PayloadCopyBytesTotal() { return PayloadCopies()->Value(); }

IoBuf IoBuf::FromBytes(Bytes bytes) {
  IoBuf out;
  if (bytes.empty()) return out;
  auto owner = std::make_shared<const Bytes>(std::move(bytes));
  const std::uint8_t* data = owner->data();
  const std::size_t len = owner->size();
  out.slices_.push_back(Slice{std::move(owner), data, len});
  out.size_ = len;
  return out;
}

IoBuf IoBuf::FromChunks(std::vector<Bytes> chunks) {
  IoBuf out;
  for (Bytes& chunk : chunks) {
    if (chunk.empty()) continue;
    auto owner = std::make_shared<const Bytes>(std::move(chunk));
    const std::uint8_t* data = owner->data();
    const std::size_t len = owner->size();
    out.size_ += len;
    out.slices_.push_back(Slice{std::move(owner), data, len});
  }
  return out;
}

IoBuf IoBuf::CopyOf(std::span<const std::uint8_t> data) {
  CountPayloadCopyBytes(data.size());
  return FromBytes(Bytes(data.begin(), data.end()));
}

IoBuf IoBuf::Wrap(std::shared_ptr<const Bytes> owner,
                  const std::uint8_t* data, std::size_t len) {
  IoBuf out;
  if (len == 0) return out;
  out.slices_.push_back(Slice{std::move(owner), data, len});
  out.size_ = len;
  return out;
}

void IoBuf::Append(IoBuf other) {
  size_ += other.size_;
  slices_.insert(slices_.end(),
                 std::make_move_iterator(other.slices_.begin()),
                 std::make_move_iterator(other.slices_.end()));
  other.slices_.clear();
  other.size_ = 0;
}

IoBuf IoBuf::Share(std::size_t offset, std::size_t len) const {
  assert(offset + len <= size_ && "IoBuf::Share range out of bounds");
  IoBuf out;
  if (len == 0) return out;
  std::size_t skipped = 0;
  for (const Slice& s : slices_) {
    if (offset >= skipped + s.len) {
      skipped += s.len;
      continue;
    }
    const std::size_t start = offset - skipped;
    const std::size_t take = std::min(len - out.size_, s.len - start);
    out.slices_.push_back(Slice{s.owner, s.data + start, take});
    out.size_ += take;
    if (out.size_ == len) break;
    // Subsequent slices continue from their first byte.
    offset = skipped + s.len;
    skipped += s.len;
  }
  return out;
}

Bytes IoBuf::Flatten() const {
  CountPayloadCopyBytes(size_);
  Bytes out;
  out.reserve(size_);
  for (const Slice& s : slices_) out.insert(out.end(), s.data, s.data + s.len);
  return out;
}

std::span<const std::uint8_t> IoBuf::ContiguousView(Bytes& scratch) const {
  if (slices_.size() == 1) return slice_span(0);
  if (slices_.empty()) return {};
  scratch = Flatten();
  return scratch;
}

void IoBuf::CopyTo(ByteWriter& out) const {
  CountPayloadCopyBytes(size_);
  for (const Slice& s : slices_) out.raw({s.data, s.len});
}

bool IoBuf::operator==(const IoBuf& other) const {
  if (size_ != other.size_) return false;
  // Walk both chains byte-wise without flattening (and without charging the
  // copy meter — comparison moves no payload).
  std::size_t i = 0, j = 0, ioff = 0, joff = 0;
  while (i < slices_.size() && j < other.slices_.size()) {
    const std::size_t n = std::min(slices_[i].len - ioff,
                                   other.slices_[j].len - joff);
    if (std::memcmp(slices_[i].data + ioff, other.slices_[j].data + joff,
                    n) != 0) {
      return false;
    }
    ioff += n;
    joff += n;
    if (ioff == slices_[i].len) {
      ++i;
      ioff = 0;
    }
    if (joff == other.slices_[j].len) {
      ++j;
      joff = 0;
    }
  }
  return true;
}

bool IoBuf::operator==(std::span<const std::uint8_t> other) const {
  if (size_ != other.size()) return false;
  std::size_t off = 0;
  for (const Slice& s : slices_) {
    if (std::memcmp(s.data, other.data() + off, s.len) != 0) return false;
    off += s.len;
  }
  return true;
}

IoBufReader::IoBufReader(const IoBuf& buf) : reader_(data_) {
  if (buf.slice_count() == 1) {
    owner_ = buf.slice(0).owner;
    data_ = buf.slice_span(0);
  } else if (buf.slice_count() > 1) {
    owner_ = std::make_shared<const Bytes>(buf.Flatten());  // counted
    data_ = {owner_->data(), owner_->size()};
  }
  reader_ = ByteReader(data_);
}

Result<IoBuf> IoBufReader::bytes_shared() {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, reader_.varint());
  const auto len = static_cast<std::size_t>(n);
  const std::size_t pos = reader_.position();
  DMEMO_RETURN_IF_ERROR(reader_.skip(len));
  return IoBuf::Wrap(owner_, data_.data() + pos, len);
}

}  // namespace dmemo
