// Retry policy: exponential backoff with decorrelated jitter.
//
// Every client-side link in the system (application -> memo server, memo
// server -> peer memo server) re-dials dead connections and re-issues
// calls through one policy object, so operators tune a single set of env
// knobs instead of per-subsystem magic numbers:
//
//   DMEMO_RPC_RETRIES             max attempts per call     (default 4)
//   DMEMO_RPC_BACKOFF_MS          first backoff             (default 5)
//   DMEMO_RPC_BACKOFF_MAX_MS      backoff ceiling           (default 200)
//   DMEMO_RPC_ATTEMPT_TIMEOUT_MS  per-attempt bound; 0 = unbounded
//   DMEMO_RPC_TIMEOUT_MS          whole-call deadline; 0 = unbounded
//
// Retrying a non-idempotent operation is only safe together with the
// at-most-once request ids of the RPC layer (server/completion_cache.h);
// ResilientChannel ties the two halves together.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "util/rng.h"
#include "util/status.h"

namespace dmemo {

struct RetryPolicy {
  // Total attempts, including the first one. 1 = never retry.
  int max_attempts = 4;
  std::chrono::milliseconds initial_backoff{5};
  std::chrono::milliseconds max_backoff{200};
  double multiplier = 2.0;
  // Fraction of the computed backoff replaced by a uniform random draw in
  // [1 - jitter, 1], so synchronized clients do not reconnect in lockstep.
  double jitter = 0.5;
  // Bound on a single attempt's wait for a response. Zero = wait until the
  // response arrives or the channel dies. A timed-out attempt is retried
  // (safe: the request id dedupes re-execution server-side).
  std::chrono::milliseconds attempt_timeout{0};

  // Policy with every field overridable from the environment (above).
  static RetryPolicy FromEnv();

  // Backoff to sleep after attempt `attempt` (1-based) failed, jittered
  // with `rng`. attempt <= 0 is treated as 1.
  std::chrono::milliseconds BackoffFor(int attempt, SplitMix64& rng) const;
};

// Whole-call deadline from DMEMO_RPC_TIMEOUT_MS; zero means unbounded
// (the default — blocking gets may legitimately park for a long time).
std::chrono::milliseconds CallTimeoutFromEnv();

// Remaining budget of a bounded call at `now`, in the wire encoding of
// Request::deadline_ms (u32 whole milliseconds, saturated at the field's
// max). nullopt = the deadline has passed (or under 1 ms remains): the
// caller must fail with TIMED_OUT instead of transmitting. Check and stamp
// share the one `now` sample on purpose — deciding "not expired" against
// one clock read and casting a remainder computed from a later one lets a
// negative remainder wrap into a ~49-day budget that never times out
// downstream.
std::optional<std::uint32_t> RemainingBudgetMs(
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline);

// Transient failures worth re-dialing for: UNAVAILABLE (peer or channel
// died, possibly mid-call) only. Server-reported application errors
// (NOT_FOUND, INVALID_ARGUMENT, ...) travel inside an OK transport result
// and never reach this predicate.
bool IsRetryableStatus(const Status& status);

// Parse a non-negative integer env var; `fallback` when unset/garbage.
std::int64_t EnvInt(const char* name, std::int64_t fallback);

}  // namespace dmemo
