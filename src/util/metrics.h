// Process-wide metrics registry: counters, gauges and fixed-bucket latency
// histograms for every layer of the system (transports, RPC channels, memo
// and folder servers, worker pools).
//
// Design constraints, in order:
//   1. The hot path (a counter Add or histogram Observe inside a request)
//      must be a handful of relaxed atomic operations — no locks, no
//      allocation, no map lookups. Counters shard their cells across cache
//      lines so concurrent request threads do not bounce one line.
//   2. Handles are resolved once (registry mutex + string key) and stay
//      valid for the life of the process, so call sites hoist the lookup
//      into a constructor or a function-local static.
//   3. Snapshots and the Prometheus-style text exposition never stop
//      writers; they read the same relaxed atomics, so a snapshot is
//      per-cell consistent, monotone across snapshots, but not a global
//      atomic cut (documented in DESIGN.md "Observability").
//
// Naming scheme (see DESIGN.md): dmemo_<component>_<what>_<unit-or-total>,
// with Prometheus-style labels preformatted by the call site, e.g.
// GetHistogram("dmemo_server_op_latency_us", "host=\"a\",op=\"put\"").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dmemo {

// Counter cells per counter. Threads pick a cell by a cheap thread-local
// index, so up to this many threads increment without sharing a cache line.
inline constexpr std::size_t kMetricShards = 8;

namespace metrics_internal {
// Stable per-thread shard index in [0, kMetricShards).
std::size_t ShardIndex();
}  // namespace metrics_internal

// Monotonically increasing sum. Add is wait-free; Value sums the shards
// (each relaxed, so concurrent adds may or may not be visible — never
// double-counted, never lost).
class Counter {
 public:
  void Add(std::uint64_t n) noexcept {
    shards_[metrics_internal::ShardIndex()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }

  std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Point-in-time signed value (queue depth, folder count).
class Gauge {
 public:
  void Set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket latency histogram. Values are microseconds; the bounds span
// 1 µs .. 10 s (exponential 1-2.5-5 ladder) plus an overflow bucket, which
// covers everything from an in-process folder hit to a parked blocking get.
//
// Each bucket additionally holds one *exemplar*: the trace id of the most
// recent sampled observation that landed there. That is the link from a
// latency outlier to its hop-by-hop timeline — read the p999 bucket's
// exemplar, then `dmemo-stat --trace-dump --trace-id <id>` renders the
// trace (docs/OBSERVABILITY.md "Exemplar workflow"). Exemplar stores are
// relaxed and last-writer-wins; a snapshot may pair a bucket count with an
// exemplar from a racing later observation, which is fine for diagnostics.
class Histogram {
 public:
  static constexpr std::size_t kBounds = 22;   // finite upper bounds
  static constexpr std::size_t kBuckets = kBounds + 1;  // + overflow

  // Inclusive upper bounds (Prometheus `le`), in microseconds.
  static const std::array<std::uint64_t, kBounds>& BucketBounds();

  // `exemplar_trace_id` nonzero attaches the observation's trace id to the
  // landing bucket (callers pass it only for trace-sampled requests, so an
  // exemplar always points at a trace retained in some TraceRing).
  void Observe(std::uint64_t value_us,
               std::uint64_t exemplar_trace_id = 0) noexcept;

  std::uint64_t Count() const noexcept;          // total observations
  std::uint64_t Sum() const noexcept {           // sum of observed values
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t BucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Most recent sampled trace id that landed in bucket i (0 = none yet).
  std::uint64_t ExemplarTraceId(std::size_t i) const noexcept {
    return exemplars_[i].load(std::memory_order_relaxed);
  }

  // Estimated q-quantile of the live buckets (see HistogramPercentile).
  [[nodiscard]] std::uint64_t Percentile(double q) const noexcept;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplars_{};
  std::atomic<std::uint64_t> sum_{0};
};

// Estimated q-quantile (q in [0, 1]) in microseconds from *non-cumulative*
// per-bucket counts laid out like Histogram's buckets (BucketBounds order
// plus the trailing overflow bucket; shorter spans are treated as
// zero-padded). Linearly interpolates within the winning bucket; the
// overflow bucket reports the largest finite bound (a floor, since its true
// extent is unknown). Returns 0 for an empty histogram. This is the one
// shared bucket→percentile derivation: loadgen, dmemo-top and dmemo-stat
// all call it instead of re-deriving bucket math.
[[nodiscard]] std::uint64_t HistogramPercentile(
    std::span<const std::uint64_t> buckets, double q) noexcept;

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view MetricKindName(MetricKind kind);

// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  std::string labels;  // preformatted `k="v",k2="v2"`, may be empty
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;                // counter / gauge
  std::uint64_t count = 0;               // histogram observations
  std::uint64_t sum = 0;                 // histogram sum (µs)
  std::vector<std::uint64_t> buckets;    // per-bucket (non-cumulative)
  // Per-bucket exemplar trace ids (0 = none); parallel to `buckets`.
  std::vector<std::uint64_t> exemplars;
};

// Registry of named metrics. Global() is the process-wide instance every
// subsystem registers into; separate instances exist only for tests.
class MetricsRegistry {
 public:
  // Both out of line: Entry is incomplete here, and the entries_ map's
  // destructor (reachable from either) needs it complete.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  // Find-or-create; the returned pointer lives as long as the registry.
  // The same (name, labels) pair always yields the same handle.
  Counter* GetCounter(std::string_view name, std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view labels = "");
  Histogram* GetHistogram(std::string_view name,
                          std::string_view labels = "");

  // All metrics, sorted by (name, labels).
  std::vector<MetricSample> Snapshot() const;

  // Prometheus text exposition (# TYPE lines, cumulative `le` buckets,
  // _sum/_count series), appended to `out`.
  void WriteText(std::string& out) const;

 private:
  struct Entry;
  Entry* FindOrCreate(std::string_view name, std::string_view labels,
                      MetricKind kind);

  mutable Mutex mu_{"MetricsRegistry::mu"};
  // Key: name + '\x01' + labels. std::map so snapshots come out sorted.
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> entries_
      DMEMO_GUARDED_BY(mu_);
};

// If DMEMO_METRICS_EXPORT names a file, arrange for the global registry's
// text exposition to be written there at clean process exit (atexit). Called
// lazily by MetricsRegistry::Global(); safe to call repeatedly.
void InitMetricsExportFromEnv();

}  // namespace dmemo
