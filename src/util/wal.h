// Write-ahead log for folder-server durability.
//
// A WriteAheadLog is a per-folder-server append-only file of mutation
// records. Every directory mutation is appended (and made durable per the
// sync mode) *before* it is acknowledged to the client; after a crash the
// log is replayed on top of the last snapshot, so an acknowledged memo is
// never lost and — because records carry the PR-3 request_ids — a client
// retransmit that crosses the crash is still answered at-most-once
// (DESIGN.md "Durability & liveness").
//
// On-disk format (all integers big-endian, matching the wire protocol):
//
//   header   u32 magic  u8 version  u64 epoch
//   record   u32 body_len  u32 crc32(body)  body
//   body     u8 op  u64 request_id  bytes key  bytes key2  bytes payload
//
// The epoch in the header is the fencing epoch the log was opened under;
// recovery reads it with ReadEpoch, replays, and re-opens the log at
// epoch + 1 so a zombie process still writing under the old epoch can be
// rejected. A torn tail (partial final record, the normal result of
// kill -9 mid-append) is not an error: Replay stops cleanly at the last
// complete record. A CRC mismatch *inside* the record stream is real
// corruption and fails replay loudly with DATA_LOSS.
//
// Concurrency: Append serializes on an internal mutex and does not sync;
// Commit(offset) makes everything up to `offset` durable and group-commits
// naturally — a committer that finds its offset already durable (a
// concurrent committer's fsync covered it) returns without syncing.
// Lock ranks: sync_mu_ before mu_; neither is ever held while calling out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/bytes.h"
#include "util/iobuf.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

// CRC32 (IEEE 802.3, reflected — the zlib polynomial). Chainable:
// Crc32Update(Crc32Update(0, a), b) == Crc32(a ++ b), which is how a
// record split across header bytes and payload slices is summed without
// first flattening it.
std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> d);
inline std::uint32_t Crc32(std::span<const std::uint8_t> d) {
  return Crc32Update(0, d);
}

// One logged mutation. The key bytes are opaque to the log (the folder
// server stores encoded QualifiedKeys), and the payload is an IoBuf so the
// zero-copy pipeline's slices are written with one gathered writev, never
// flattened.
struct WalRecord {
  std::uint8_t op = 0;           // Op the folder server applied
  std::uint64_t request_id = 0;  // at-most-once identity; 0 = untracked
  Bytes key;                     // encoded folder key
  Bytes key2;                    // put_delayed destination; empty otherwise
  IoBuf payload;                 // memo value bytes
};

enum class WalSyncMode : std::uint8_t {
  kAlways,   // fsync before every ack — the zero-acked-loss guarantee
  kGrouped,  // fsync when >= sync_bytes accumulate or sync_interval passes
  kNever,    // never fsync (tests / expendable data)
};

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kAlways;
  std::uint64_t sync_bytes = 256 * 1024;          // kGrouped threshold
  std::chrono::milliseconds sync_interval{5};     // kGrouped threshold
  std::string metric_labels;                      // e.g. fs="0@hostA"

  // DMEMO_WAL_SYNC_MODE=always|grouped|never, DMEMO_WAL_SYNC_BYTES,
  // DMEMO_WAL_SYNC_INTERVAL_MS.
  static WalOptions FromEnv();
};

struct WalReplayStats {
  std::uint64_t records = 0;      // complete records delivered to apply
  std::uint64_t bytes = 0;        // bytes consumed (header + records)
  std::uint64_t epoch = 0;        // epoch stored in the header
  bool truncated_tail = false;    // log ended mid-record (torn final write)
};

class WriteAheadLog {
 public:
  // Creates (or truncates) the log and writes a durable header stamped
  // with `epoch`. Truncation is deliberate: the one caller recovers by
  // snapshotting *first*, so the old records are already folded in.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     std::uint64_t epoch,
                                                     WalOptions options);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Append one record without forcing durability; returns the log offset
  // past the record, which Commit() takes. A failed write poisons the log
  // (a torn record may be on disk), so every later append fails too.
  Result<std::uint64_t> Append(const WalRecord& record);

  // Make everything up to `offset` durable per the sync mode. Under
  // kAlways this is where the group commit happens: concurrent committers
  // whose records were covered by another thread's fsync return free.
  Status Commit(std::uint64_t offset);

  // Unconditional fsync of everything appended so far.
  Status Sync();

  // Compaction: truncate to a fresh durable header at `new_epoch`. The
  // caller must have snapshotted the state the old records produced.
  Status Reset(std::uint64_t new_epoch);

  // Stream the log at `path` through `apply` in append order. Stops
  // cleanly (OK, stats->truncated_tail) at a torn tail; fails with
  // DATA_LOSS on a bad magic/version or a CRC mismatch, with every record
  // before the corruption already applied. NOT_FOUND if no log exists.
  static Status Replay(const std::string& path,
                       const std::function<Status(const WalRecord&)>& apply,
                       WalReplayStats* stats);

  // Epoch stored in the header of the log at `path`; NOT_FOUND if absent.
  static Result<std::uint64_t> ReadEpoch(const std::string& path);

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

  // Bytes of logged-but-not-compacted records — the "WAL lag" a restart
  // would have to replay (also exported as dmemo_wal_lag_bytes).
  std::uint64_t size_bytes() const;

 private:
  WriteAheadLog(std::string path, int fd, std::uint64_t epoch,
                WalOptions options);

  Status SyncTo(std::uint64_t offset);

  const std::string path_;
  const WalOptions options_;
  std::atomic<std::uint64_t> epoch_;

  Counter* appends_;
  Counter* fsyncs_;
  Counter* compactions_;
  Gauge* lag_;

  // Group-commit leader lock; ranked before mu_.
  Mutex sync_mu_{"WriteAheadLog::sync_mu"};
  std::uint64_t durable_offset_ DMEMO_GUARDED_BY(sync_mu_) = 0;
  std::chrono::steady_clock::time_point last_sync_ DMEMO_GUARDED_BY(sync_mu_);

  // Serializes appends and guards the file offset.
  mutable Mutex mu_{"WriteAheadLog::mu"};
  int fd_ DMEMO_GUARDED_BY(mu_) = -1;
  std::uint64_t offset_ DMEMO_GUARDED_BY(mu_) = 0;
  bool poisoned_ DMEMO_GUARDED_BY(mu_) = false;
};

// Durable atomic file publish, shared by the snapshot writer: write
// `path`.tmp, fsync it, keep any existing `path` as `path`.prev (the
// fall-back generation LoadFrom uses when the primary is corrupt), rename
// tmp over `path`, and fsync the directory so the rename itself survives
// power loss.
Status AtomicWriteFileDurably(const std::string& path,
                              std::span<const std::uint8_t> data);

}  // namespace dmemo
