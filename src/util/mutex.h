// Annotated mutex / condition-variable wrappers.
//
// std::mutex and std::condition_variable carry no Clang capability
// attributes, so code using them is invisible to `-Wthread-safety` — and to
// the runtime lock-order detector. These thin wrappers fix both at once:
//
//   * Mutex is a DMEMO_CAPABILITY, so members can be DMEMO_GUARDED_BY it
//     and internal helpers DMEMO_REQUIRES it;
//   * MutexLock is the scoped guard (with explicit Unlock/Lock for the
//     drop-the-lock-around-work pattern the worker pool uses);
//   * CondVar waits on a held Mutex without giving up the annotations;
//   * in debug builds (DMEMO_LOCK_ORDER_CHECKS) every acquisition and
//     release is reported to the lock-order detector, which aborts on an
//     inverted acquisition order instead of deadlocking in production.
//
// In release builds the wrappers compile down to the std primitives: no
// name storage, no hooks, no extra state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "locking/lock_order.h"
#include "util/thread_annotations.h"

namespace dmemo {

class DMEMO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // `name` must be a string literal (or otherwise outlive the mutex); it
  // appears in lock-order inversion reports.
  explicit Mutex(const char* name) {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    name_ = name;
#else
    (void)name;
#endif
  }

#ifdef DMEMO_LOCK_ORDER_CHECKS
  ~Mutex() { lock_order::OnDestroy(this); }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DMEMO_ACQUIRE() DMEMO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(this, name_);
#endif
    mu_.lock();
  }

  void Unlock() DMEMO_RELEASE() DMEMO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnRelease(this);
#endif
    mu_.unlock();
  }

  [[nodiscard]] bool TryLock() DMEMO_TRY_ACQUIRE(true) DMEMO_NO_THREAD_SAFETY_ANALYSIS {
    const bool taken = mu_.try_lock();
#ifdef DMEMO_LOCK_ORDER_CHECKS
    if (taken) lock_order::OnTryAcquired(this, name_);
#endif
    return taken;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef DMEMO_LOCK_ORDER_CHECKS
  const char* name_ = nullptr;
#endif
};

// RAII critical section over a Mutex. Unlock()/Lock() allow temporarily
// dropping the mutex mid-scope (the destructor releases only if held).
class DMEMO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DMEMO_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }

  ~MutexLock() DMEMO_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() DMEMO_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  void Lock() DMEMO_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable bound to a Mutex at each wait. Predicate loops are
// written at the call site (`while (!pred()) cv.Wait(mu);`) so the analysis
// sees the guarded reads under the held mutex instead of inside an opaque
// lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and reacquires `mu` before returning.
  // The caller must hold `mu` (typically via a MutexLock in scope).
  void Wait(Mutex& mu) DMEMO_REQUIRES(mu) DMEMO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnRelease(&mu);
#endif
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // ownership stays with the caller's guard
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(&mu, mu.name_);
#endif
  }

  // Bounded wait; returns std::cv_status::timeout once `deadline` passes.
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      DMEMO_REQUIRES(mu) DMEMO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnRelease(&mu);
#endif
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, deadline);
    inner.release();
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(&mu, mu.name_);
#endif
    return status;
  }

  std::cv_status WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      DMEMO_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dmemo
