// Small deterministic PRNG (splitmix64).
//
// Folders are *unordered* queues: extraction order is unspecified. We make
// it deterministic-pseudorandom per folder so that semantics stay honest
// ("don't rely on order") while tests and benchmarks remain reproducible.
#pragma once

#include <cstdint>

#include "util/hash.h"

namespace dmemo {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return Mix64(state_);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for bound << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  double NextUnit() { return HashToUnit(Next()); }

 private:
  std::uint64_t state_;
};

}  // namespace dmemo
