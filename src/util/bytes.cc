#include "util/bytes.h"

#include <bit>
#include <cassert>

namespace dmemo {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  MaybeSeal();
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  MaybeSeal();
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f32(float v) {
  static_assert(sizeof(float) == 4);
  u32(std::bit_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
  MaybeSeal();
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
  MaybeSeal();
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  MaybeSeal();
}

void ByteWriter::Seal() {
  sealed_bytes_ += buf_.size();
  chunks_.push_back(std::move(buf_));
  buf_ = Bytes();
}

std::vector<Bytes> ByteWriter::TakeChunks() {
  if (!buf_.empty()) Seal();
  sealed_bytes_ = 0;
  return std::move(chunks_);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > size()) {
    assert(false && "ByteWriter::patch_u32 offset out of range");
    return;  // release builds: clamp to a no-op rather than scribble
  }
  std::uint8_t be[4] = {static_cast<std::uint8_t>(v >> 24),
                        static_cast<std::uint8_t>(v >> 16),
                        static_cast<std::uint8_t>(v >> 8),
                        static_cast<std::uint8_t>(v)};
  std::size_t written = 0;
  std::size_t base = 0;
  auto patch_in = [&](Bytes& block, std::size_t block_base) {
    while (written < 4) {
      const std::size_t global = offset + written;
      if (global < block_base || global >= block_base + block.size()) return;
      block[global - block_base] = be[written];
      ++written;
    }
  };
  for (Bytes& chunk : chunks_) {
    patch_in(chunk, base);
    base += chunk.size();
    if (written == 4) return;
  }
  patch_in(buf_, base);
}

Status ByteReader::Need(std::size_t n) const {
  if (remaining() < n) {
    return DataLossError("truncated buffer: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

Result<std::uint8_t> ByteReader::u8() {
  DMEMO_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  DMEMO_RETURN_IF_ERROR(Need(2));
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  DMEMO_RETURN_IF_ERROR(Need(4));
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  DMEMO_ASSIGN_OR_RETURN(std::uint32_t hi, u32());
  DMEMO_ASSIGN_OR_RETURN(std::uint32_t lo, u32());
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

Result<std::int8_t> ByteReader::i8() {
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t v, u8());
  return static_cast<std::int8_t>(v);
}
Result<std::int16_t> ByteReader::i16() {
  DMEMO_ASSIGN_OR_RETURN(std::uint16_t v, u16());
  return static_cast<std::int16_t>(v);
}
Result<std::int32_t> ByteReader::i32() {
  DMEMO_ASSIGN_OR_RETURN(std::uint32_t v, u32());
  return static_cast<std::int32_t>(v);
}
Result<std::int64_t> ByteReader::i64() {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t v, u64());
  return static_cast<std::int64_t>(v);
}

Result<float> ByteReader::f32() {
  DMEMO_ASSIGN_OR_RETURN(std::uint32_t v, u32());
  return std::bit_cast<float>(v);
}

Result<double> ByteReader::f64() {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t v, u64());
  return std::bit_cast<double>(v);
}

Result<std::uint64_t> ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    DMEMO_ASSIGN_OR_RETURN(std::uint8_t b, u8());
    if (shift >= 64 || (shift == 63 && (b & 0x7f) > 1)) {
      return DataLossError("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<Bytes> ByteReader::bytes() {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, varint());
  return raw(static_cast<std::size_t>(n));
}

Result<std::string> ByteReader::str() {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, varint());
  DMEMO_RETURN_IF_ERROR(Need(static_cast<std::size_t>(n)));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

Result<Bytes> ByteReader::raw(std::size_t n) {
  DMEMO_RETURN_IF_ERROR(Need(n));
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Status ByteReader::skip(std::size_t n) {
  DMEMO_RETURN_IF_ERROR(Need(n));
  pos_ += n;
  return Status::Ok();
}

std::string HexEncode(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace dmemo
