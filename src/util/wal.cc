#include "util/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "util/retry.h"

namespace dmemo {
namespace {

constexpr std::uint32_t kWalMagic = 0xd3ed1109;
constexpr std::uint8_t kWalVersion = 1;
constexpr std::size_t kWalHeaderBytes = 4 + 1 + 8;
constexpr std::size_t kFrameBytes = 4 + 4;  // body_len + crc32

Status Errno(const std::string& what, const std::string& path) {
  return UnavailableError(what + " " + path + ": " + std::strerror(errno));
}

// Full-write loop over an iovec array, resuming after short writes and
// EINTR. The iovecs are consumed destructively.
Status WritevFull(int fd, std::vector<::iovec>& iov, const std::string& path) {
  std::size_t idx = 0;
  while (idx < iov.size()) {
    const int cnt = static_cast<int>(std::min<std::size_t>(
        iov.size() - idx, 64));  // well under every IOV_MAX
    const ssize_t n = ::writev(fd, iov.data() + idx, cnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write failed:", path);
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (idx < iov.size() && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iov.size() && left > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return Status::Ok();
}

Status WriteFull(int fd, std::span<const std::uint8_t> data,
                 const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed:", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<Bytes> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("no file at " + path);
    return Errno("cannot open", path);
  }
  Bytes data;
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status err = Errno("cannot read", path);
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    data.insert(data.end(), buf.data(), buf.data() + n);
  }
  ::close(fd);
  return data;
}

Bytes EncodeWalHeader(std::uint64_t epoch) {
  ByteWriter out;
  out.u32(kWalMagic);
  out.u8(kWalVersion);
  out.u64(epoch);
  return out.take();
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc,
                          std::span<const std::uint8_t> d) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc ^= 0xffffffffu;
  for (const std::uint8_t b : d) {
    crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

WalOptions WalOptions::FromEnv() {
  WalOptions opts;
  if (const char* mode = std::getenv("DMEMO_WAL_SYNC_MODE")) {
    if (std::strcmp(mode, "grouped") == 0) {
      opts.sync_mode = WalSyncMode::kGrouped;
    } else if (std::strcmp(mode, "never") == 0) {
      opts.sync_mode = WalSyncMode::kNever;
    } else {
      opts.sync_mode = WalSyncMode::kAlways;
    }
  }
  opts.sync_bytes = static_cast<std::uint64_t>(
      EnvInt("DMEMO_WAL_SYNC_BYTES",
             static_cast<std::int64_t>(opts.sync_bytes)));
  opts.sync_interval = std::chrono::milliseconds(
      EnvInt("DMEMO_WAL_SYNC_INTERVAL_MS", opts.sync_interval.count()));
  return opts;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, std::uint64_t epoch, WalOptions options) {
  const int fd = ::open(path.c_str(),
                        O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open WAL", path);
  const Bytes header = EncodeWalHeader(epoch);
  Status written = WriteFull(fd, header, path);
  if (written.ok() && ::fsync(fd) != 0) written = Errno("wal fsync", path);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, epoch, std::move(options)));
}

WriteAheadLog::WriteAheadLog(std::string path, int fd, std::uint64_t epoch,
                             WalOptions options)
    : path_(std::move(path)),
      options_(std::move(options)),
      epoch_(epoch),
      last_sync_(std::chrono::steady_clock::now()) {
  auto& registry = MetricsRegistry::Global();
  appends_ =
      registry.GetCounter("dmemo_wal_appends_total", options_.metric_labels);
  fsyncs_ =
      registry.GetCounter("dmemo_wal_fsyncs_total", options_.metric_labels);
  compactions_ = registry.GetCounter("dmemo_wal_compactions_total",
                                     options_.metric_labels);
  lag_ = registry.GetGauge("dmemo_wal_lag_bytes", options_.metric_labels);
  fd_ = fd;
  offset_ = kWalHeaderBytes;
  durable_offset_ = kWalHeaderBytes;
  lag_->Set(0);
}

WriteAheadLog::~WriteAheadLog() {
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<std::uint64_t> WriteAheadLog::Append(const WalRecord& record) {
  // Body bytes before the payload; the payload's slices are gathered into
  // the same writev so the zero-copy pipeline's buffers are never
  // flattened on the way to disk.
  ByteWriter body;
  body.u8(record.op);
  body.u64(record.request_id);
  body.bytes(record.key);
  body.bytes(record.key2);
  body.varint(record.payload.size());
  const Bytes& pre = body.data();
  const std::size_t body_len = pre.size() + record.payload.size();

  std::uint32_t crc = Crc32Update(0, pre);
  for (std::size_t i = 0; i < record.payload.slice_count(); ++i) {
    crc = Crc32Update(crc, record.payload.slice_span(i));
  }
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body_len));
  frame.u32(crc);
  const Bytes& head = frame.data();

  std::vector<::iovec> iov;
  iov.reserve(2 + record.payload.slice_count());
  iov.push_back({const_cast<std::uint8_t*>(head.data()), head.size()});
  iov.push_back({const_cast<std::uint8_t*>(pre.data()), pre.size()});
  for (std::size_t i = 0; i < record.payload.slice_count(); ++i) {
    const auto span = record.payload.slice_span(i);
    iov.push_back({const_cast<std::uint8_t*>(span.data()), span.size()});
  }

  MutexLock lock(mu_);
  if (fd_ < 0) return FailedPreconditionError("WAL closed: " + path_);
  if (poisoned_) {
    return DataLossError("WAL poisoned by an earlier failed write: " + path_);
  }
  Status written = WritevFull(fd_, iov, path_);
  if (!written.ok()) {
    // A torn record may be on disk; appending after it would misalign the
    // record stream, so refuse everything from here on.
    poisoned_ = true;
    return written;
  }
  offset_ += kFrameBytes + body_len;
  appends_->Increment();
  lag_->Set(static_cast<std::int64_t>(offset_ - kWalHeaderBytes));
  return offset_;
}

Status WriteAheadLog::Commit(std::uint64_t offset) {
  switch (options_.sync_mode) {
    case WalSyncMode::kNever:
      return Status::Ok();
    case WalSyncMode::kAlways:
      return SyncTo(offset);
    case WalSyncMode::kGrouped: {
      MutexLock lock(sync_mu_);
      if (durable_offset_ >= offset) return Status::Ok();
      std::uint64_t appended;
      {
        MutexLock inner(mu_);
        appended = offset_;
      }
      const auto now = std::chrono::steady_clock::now();
      if (appended - durable_offset_ < options_.sync_bytes &&
          now - last_sync_ < options_.sync_interval) {
        // Group window still open: the ack goes out with the record only
        // buffered — the documented trade of kGrouped.
        return Status::Ok();
      }
      lock.Unlock();
      return SyncTo(offset);
    }
  }
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  std::uint64_t appended;
  {
    MutexLock lock(mu_);
    appended = offset_;
  }
  return SyncTo(appended);
}

Status WriteAheadLog::SyncTo(std::uint64_t offset) {
  MutexLock lock(sync_mu_);
  if (durable_offset_ >= offset) return Status::Ok();  // free ride
  std::uint64_t appended;
  int fd;
  {
    MutexLock inner(mu_);
    if (fd_ < 0) return FailedPreconditionError("WAL closed: " + path_);
    appended = offset_;
    fd = fd_;
  }
  // Group-commit leader: fsync runs under sync_mu_ only (mu_ released above)
  // analyze:allow(blocking-under-lock) so appenders keep making progress
  if (::fsync(fd) != 0) return Errno("wal fsync", path_);
  fsyncs_->Increment();
  durable_offset_ = appended;
  last_sync_ = std::chrono::steady_clock::now();
  return Status::Ok();
}

Status WriteAheadLog::Reset(std::uint64_t new_epoch) {
  MutexLock sync_lock(sync_mu_);
  MutexLock lock(mu_);
  if (fd_ < 0) return FailedPreconditionError("WAL closed: " + path_);
  if (::ftruncate(fd_, 0) != 0) return Errno("wal truncate", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) return Errno("wal seek", path_);
  const Bytes header = EncodeWalHeader(new_epoch);
  DMEMO_RETURN_IF_ERROR(WriteFull(fd_, header, path_));
  // Epoch reset is a full stop-the-WAL barrier; everything must wait
  // analyze:allow(blocking-under-lock) for the truncate+header+fsync
  if (::fsync(fd_) != 0) return Errno("wal fsync", path_);
  epoch_.store(new_epoch, std::memory_order_relaxed);
  offset_ = kWalHeaderBytes;
  durable_offset_ = kWalHeaderBytes;
  poisoned_ = false;
  last_sync_ = std::chrono::steady_clock::now();
  compactions_->Increment();
  fsyncs_->Increment();
  lag_->Set(0);
  return Status::Ok();
}

std::uint64_t WriteAheadLog::size_bytes() const {
  MutexLock lock(mu_);
  return offset_ - kWalHeaderBytes;
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply,
    WalReplayStats* stats) {
  DMEMO_ASSIGN_OR_RETURN(Bytes data, ReadWholeFile(path));
  ByteReader in(data);
  DMEMO_ASSIGN_OR_RETURN(std::uint32_t magic, in.u32());
  if (magic != kWalMagic) return DataLossError("not a WAL file: " + path);
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t version, in.u8());
  if (version != kWalVersion) {
    return DataLossError("unsupported WAL version " +
                         std::to_string(version) + ": " + path);
  }
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t epoch, in.u64());
  if (stats != nullptr) stats->epoch = epoch;

  while (!in.exhausted()) {
    if (in.remaining() < kFrameBytes) {
      if (stats != nullptr) stats->truncated_tail = true;
      break;
    }
    const std::size_t record_start = in.position();
    DMEMO_ASSIGN_OR_RETURN(std::uint32_t body_len, in.u32());
    DMEMO_ASSIGN_OR_RETURN(std::uint32_t crc, in.u32());
    if (body_len > in.remaining()) {
      // The record's frame header landed but (some of) its body did not:
      // the torn final write of a crash, not corruption.
      if (stats != nullptr) stats->truncated_tail = true;
      break;
    }
    const std::span<const std::uint8_t> body(data.data() + in.position(),
                                             body_len);
    if (Crc32(body) != crc) {
      return DataLossError("WAL CRC mismatch at offset " +
                           std::to_string(record_start) + ": " + path);
    }
    ByteReader rec(body);
    WalRecord record;
    DMEMO_ASSIGN_OR_RETURN(record.op, rec.u8());
    DMEMO_ASSIGN_OR_RETURN(record.request_id, rec.u64());
    DMEMO_ASSIGN_OR_RETURN(record.key, rec.bytes());
    DMEMO_ASSIGN_OR_RETURN(record.key2, rec.bytes());
    DMEMO_ASSIGN_OR_RETURN(Bytes payload, rec.bytes());
    record.payload = IoBuf::FromBytes(std::move(payload));
    DMEMO_RETURN_IF_ERROR(in.skip(body_len));
    DMEMO_RETURN_IF_ERROR(apply(record));
    if (stats != nullptr) {
      ++stats->records;
      stats->bytes = in.position();
    }
  }
  return Status::Ok();
}

Result<std::uint64_t> WriteAheadLog::ReadEpoch(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("no WAL at " + path);
    return Errno("cannot open WAL", path);
  }
  std::array<std::uint8_t, kWalHeaderBytes> header;
  std::size_t done = 0;
  while (done < header.size()) {
    const ssize_t n = ::read(fd, header.data() + done, header.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (done < header.size()) {
    return DataLossError("WAL header truncated: " + path);
  }
  ByteReader in{std::span<const std::uint8_t>(header)};
  DMEMO_ASSIGN_OR_RETURN(std::uint32_t magic, in.u32());
  if (magic != kWalMagic) return DataLossError("not a WAL file: " + path);
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t version, in.u8());
  if (version != kWalVersion) {
    return DataLossError("unsupported WAL version " +
                         std::to_string(version) + ": " + path);
  }
  return in.u64();
}

Status AtomicWriteFileDurably(const std::string& path,
                              std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open", tmp);
  Status written = WriteFull(fd, data, tmp);
  // The temp file must be durable before the rename publishes it, or a
  // crash after the rename can expose a torn or empty snapshot.
  if (written.ok() && ::fsync(fd) != 0) written = Errno("fsync", tmp);
  if (::close(fd) != 0 && written.ok()) written = Errno("close", tmp);
  if (!written.ok()) return written;

  // Keep the outgoing generation as `.prev` — the corrupt-primary
  // fall-back. ENOENT just means there was no previous generation.
  if (std::rename(path.c_str(), (path + ".prev").c_str()) != 0 &&
      errno != ENOENT) {
    return Errno("cannot rotate previous generation of", path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("cannot publish", path);
  }

  // The renames live in the directory; fsync it so they survive power
  // loss too.
  std::string dir = path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) return Errno("cannot open directory", dir);
  const int rc = ::fsync(dirfd);
  ::close(dirfd);
  if (rc != 0) return Errno("fsync directory", dir);
  return Status::Ok();
}

}  // namespace dmemo
