#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace dmemo {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

std::string_view LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  std::string s = stream_.str();
  std::fwrite(s.data(), 1, s.size(), stderr);
  if (level_ >= LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace dmemo
