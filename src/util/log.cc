#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

namespace dmemo {
namespace {

int InitialLevel() {
  const char* env = std::getenv("DMEMO_LOG_LEVEL");
  if (env != nullptr) {
    if (auto level = ParseLogLevel(env)) return static_cast<int>(*level);
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{InitialLevel()};

std::string_view LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

// Small sequential thread id (1, 2, ...) in assignment order — far more
// readable in merged logs than pthread handles.
int ThreadLogId() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    if (ca != b[i]) return false;
  }
  return true;
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  if (EqualsIgnoreCase(text, "debug") || text == "0") return LogLevel::kDebug;
  if (EqualsIgnoreCase(text, "info") || text == "1") return LogLevel::kInfo;
  if (EqualsIgnoreCase(text, "warn") || EqualsIgnoreCase(text, "warning") ||
      text == "2") {
    return LogLevel::kWarn;
  }
  if (EqualsIgnoreCase(text, "error") || text == "3") return LogLevel::kError;
  return std::nullopt;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : level_(level) {
  struct timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm{};
  ::localtime_r(&ts.tv_sec, &tm);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%02d%02d %02d:%02d:%02d.%03ld",
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                ts.tv_nsec / 1'000'000);
  stream_ << "[" << LevelTag(level) << " " << stamp << " t" << ThreadLogId()
          << " " << Basename(file) << ":" << line << "] ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  std::string s = stream_.str();
  std::fwrite(s.data(), 1, s.size(), stderr);
  if (level_ >= LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace dmemo
