// Reference-counted chunked buffers for the zero-copy message pipeline.
//
// An IoBuf is an ordered chain of slices, each aliasing an immutable,
// shared-ownership byte block. Appending, sharing a subrange, and copying
// an IoBuf move slice descriptors, never payload bytes — so a memo payload
// is encoded once and then threaded through protocol encode, transport
// send, relay, completion cache and directory storage without another
// memcpy. The explicit copy points (Flatten, CopyOf, CopyTo, and a
// multi-slice ContiguousView) each feed the process-wide
// dmemo_pipeline_payload_copies_total counter, which is how the zero-copy
// claim is *measured* rather than asserted (bench/bench_zero_copy.cc).
//
// Ownership / lifetime rule: a slice keeps a shared_ptr to the block it
// aliases, so an IoBuf sliced out of a transport receive buffer stays
// valid after the receive buffer's IoBuf is destroyed. Blocks are
// immutable once inside an IoBuf; "copying" a value therefore never needs
// a deep copy (DESIGN.md "Message pipeline").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/bytes.h"

namespace dmemo {

// Count `bytes` payload bytes memcpy'd by the message pipeline
// (dmemo_pipeline_payload_copies_total). Exposed so transports can charge
// their inherent copies (simnet queue hand-off, gather-flatten fallback)
// to the same meter the IoBuf copy points use.
void CountPayloadCopyBytes(std::size_t bytes);

// Process-total of the counter above, for benches and tests that measure
// copies across an operation without scraping the registry text.
std::uint64_t PayloadCopyBytesTotal();

class IoBuf {
 public:
  struct Slice {
    std::shared_ptr<const Bytes> owner;  // keeps `data` alive
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
  };

  IoBuf() = default;

  // Implicit on purpose: `request.value = EncodeGraphToBytes(...)` adopts
  // the vector as a single slice without copying (rvalues) or with one
  // deliberate, counted copy (lvalues forced through the by-value param).
  IoBuf(Bytes bytes) { *this = FromBytes(std::move(bytes)); }  // NOLINT

  // Adopt an owned buffer as one slice. Zero-copy.
  static IoBuf FromBytes(Bytes bytes);

  // One slice per chunk, adopting each without copying (the tail of a
  // chunk-emitting ByteWriter, see ByteWriter::TakeChunks).
  static IoBuf FromChunks(std::vector<Bytes> chunks);

  // Counted copy of `data` into a fresh owned slice.
  static IoBuf CopyOf(std::span<const std::uint8_t> data);

  // Alias `len` bytes at `data` inside `owner`. Zero-copy.
  static IoBuf Wrap(std::shared_ptr<const Bytes> owner,
                    const std::uint8_t* data, std::size_t len);

  // Splice `other`'s slices onto the end. Zero-copy.
  void Append(IoBuf other);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t slice_count() const { return slices_.size(); }
  const Slice& slice(std::size_t i) const { return slices_[i]; }
  std::span<const std::uint8_t> slice_span(std::size_t i) const {
    return {slices_[i].data, slices_[i].len};
  }

  // Zero-copy alias of the byte range [offset, offset + len); the result
  // shares ownership of the underlying blocks. offset + len must be within
  // size().
  IoBuf Share(std::size_t offset, std::size_t len) const;

  // Contiguous copy of the whole chain (counted).
  Bytes Flatten() const;

  // Contiguous view: a single-slice buffer is returned as-is (zero-copy);
  // a multi-slice chain is flattened into `scratch` (counted). The span is
  // valid while both *this and `scratch` are alive and unmodified.
  std::span<const std::uint8_t> ContiguousView(Bytes& scratch) const;

  // Raw-append every slice to `out` (counted) — the legacy single-buffer
  // encode path.
  void CopyTo(ByteWriter& out) const;

  // Content equality (byte-wise, ignoring the slice structure).
  bool operator==(const IoBuf& other) const;
  bool operator==(std::span<const std::uint8_t> other) const;
  bool operator==(const Bytes& other) const {
    return *this == std::span<const std::uint8_t>(other);
  }

 private:
  std::vector<Slice> slices_;
  std::size_t size_ = 0;
};

// Bounds-checked sequential reader over an IoBuf. The dominant receive
// path hands over a single-slice buffer, which is read in place; a
// multi-slice chain is flattened once on construction (counted). The
// reader holds shared ownership of the bytes it reads, so values sliced
// out via bytes_shared() — and the reader itself — stay valid after the
// source IoBuf is destroyed.
class IoBufReader {
 public:
  explicit IoBufReader(const IoBuf& buf);

  // The full ByteReader primitive set, reading from the (possibly
  // flattened) contiguous view.
  ByteReader& base() { return reader_; }

  // Length-prefixed (varint) byte string as a zero-copy alias of the
  // backing block — the zero-copy counterpart of ByteReader::bytes().
  Result<IoBuf> bytes_shared();

  std::size_t remaining() const { return reader_.remaining(); }

 private:
  std::shared_ptr<const Bytes> owner_;
  std::span<const std::uint8_t> data_;
  ByteReader reader_;
};

}  // namespace dmemo
