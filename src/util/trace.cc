#include "util/trace.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/rng.h"

namespace dmemo {

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();  // never destroyed
  return *ring;
}

void TraceRing::Record(SpanRecord span) {
  MutexLock lock(mu_);
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(span));
  } else {
    slots_[next_] = std::move(span);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(slots_.size());
  if (slots_.size() < capacity_) {
    out = slots_;
  } else {
    // next_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      out.push_back(slots_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceRing::TotalRecorded() const {
  MutexLock lock(mu_);
  return total_;
}

std::uint64_t NextTraceId() {
  // Seed mixes a process-wide counter, the thread id and the clock so ids
  // from different processes on one machine do not collide in practice.
  static std::atomic<std::uint64_t> process_salt{
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count())};
  thread_local SplitMix64 rng(
      process_salt.fetch_add(0x9e3779b97f4a7c15ULL,
                             std::memory_order_relaxed) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1));
  std::uint64_t id;
  do {
    id = rng.Next();
  } while (id == 0);  // 0 means "untraced" on the wire
  return id;
}

std::uint64_t MonotonicMicros() {
  static const std::chrono::steady_clock::time_point process_start =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_start)
          .count());
}

namespace {

std::int64_t InitialSlowOpMs() {
  const char* env = std::getenv("DMEMO_SLOW_OP_MS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) return v;
  }
  return 100;
}

std::atomic<std::int64_t>& SlowOpMs() {
  static std::atomic<std::int64_t> ms{InitialSlowOpMs()};
  return ms;
}

}  // namespace

std::chrono::milliseconds SlowOpThreshold() {
  return std::chrono::milliseconds(
      SlowOpMs().load(std::memory_order_relaxed));
}

void SetSlowOpThreshold(std::chrono::milliseconds threshold) {
  SlowOpMs().store(threshold.count(), std::memory_order_relaxed);
}

namespace {

double ClampRate(double rate) {
  if (!(rate >= 0.0)) return 0.0;  // NaN and negatives record nothing
  return rate > 1.0 ? 1.0 : rate;
}

double InitialTraceSampleRate() {
  const char* env = std::getenv("DMEMO_TRACE_SAMPLE_RATE");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0') return ClampRate(v);
  }
  return 1.0;
}

std::atomic<double>& TraceRate() {
  static std::atomic<double> rate{InitialTraceSampleRate()};
  return rate;
}

}  // namespace

double TraceSampleRate() {
  return TraceRate().load(std::memory_order_relaxed);
}

void SetTraceSampleRate(double rate) {
  TraceRate().store(ClampRate(rate), std::memory_order_relaxed);
}

bool TraceSampled(std::uint64_t trace_id) {
  const double rate = TraceSampleRate();
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Deterministic per id: remix (ids are already SplitMix64 outputs, but a
  // server-assigned id could be anything) and compare against the rate's
  // share of the 64-bit space. Every process computes the same verdict.
  return HashToUnit(Mix64(trace_id ^ 0x5ca1ab1e5ca1ab1eULL)) < rate;
}

}  // namespace dmemo
