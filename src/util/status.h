// Status / Result error model for D-Memo.
//
// The library reports recoverable failures (bad ADF syntax, unreachable
// peers, lossy domain mappings, protocol violations) through Status values
// rather than exceptions, so that server event loops can handle them without
// unwinding, and so that every fallible public API is explicit about it.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dmemo {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity (folder, host, symbol) does not exist
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// object not in the required state
  kOutOfRange,        // index / size out of bounds
  kResourceExhausted, // pool / buffer / fd limits
  kUnavailable,       // peer or server unreachable (possibly transient)
  kDataLoss,          // lossy domain mapping or truncated frame
  kInternal,          // invariant violated inside the library
  kCancelled,         // operation aborted by shutdown
  kTimedOut,          // deadline expired
  kUnimplemented,     // feature not supported by this derivation
};

std::string_view StatusCodeName(StatusCode code);

// A cheap value type: ok() Statuses carry no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Render "CODE: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status CancelledError(std::string message);
Status TimedOutError(std::string message);
Status UnimplementedError(std::string message);

// Result<T> = Status | T. Move-friendly; access value() only when ok().
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  // Move the value out, or return `fallback` when this holds an error.
  T value_or(T fallback) && {
    return ok() ? *std::move(value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors up the call stack:  DMEMO_RETURN_IF_ERROR(DoThing());
#define DMEMO_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::dmemo::Status dmemo_status_ = (expr);          \
    if (!dmemo_status_.ok()) return dmemo_status_;   \
  } while (false)

// Unwrap a Result or propagate:  DMEMO_ASSIGN_OR_RETURN(auto v, MakeV());
#define DMEMO_ASSIGN_OR_RETURN(decl, expr)                 \
  DMEMO_ASSIGN_OR_RETURN_IMPL_(                            \
      DMEMO_STATUS_CONCAT_(dmemo_result_, __LINE__), decl, expr)
#define DMEMO_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  decl = std::move(tmp).value()
#define DMEMO_STATUS_CONCAT_(a, b) DMEMO_STATUS_CONCAT_IMPL_(a, b)
#define DMEMO_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace dmemo
