// Minimal leveled logging.
//
// Servers are multi-threaded; each log line is assembled in a thread-local
// stream and emitted with a single write so lines never interleave. Every
// line carries a wall-clock timestamp and a short per-thread id so logs
// from multi-process runs can be merged and read.
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace dmemo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are discarded (default kWarn so tests
// and benchmarks stay quiet). The DMEMO_LOG_LEVEL environment variable
// ("debug" | "info" | "warn" | "error", or 0-3) sets the initial threshold
// at process start, so server verbosity changes without recompiling.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// "debug"/"info"/"warn"/"error" (any case) or "0".."3"; nullopt otherwise.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DMEMO_LOG(level)                                              \
  if (::dmemo::LogLevel::level < ::dmemo::GetLogLevel()) {            \
  } else                                                              \
    ::dmemo::internal::LogLine(::dmemo::LogLevel::level, __FILE__, __LINE__)

}  // namespace dmemo
