// Cross-process request tracing.
//
// Every Request carries a 64-bit trace id (minted by the originating client,
// or by the first memo server to see an untraced request). Each component a
// request passes through — memo server, relay, folder server — records a
// SpanRecord into its process's global TraceRing, so after the fact one
// deposit can be followed client → memo server → folder server → extractor
// across processes: the id is the join key, `hop` orders the relay chain,
// and Op::kMetrics dumps each process's ring (rendered by dmemo-stat).
//
// The ring is bounded and overwrites oldest-first; tracing is a diagnostic
// window, not an audit log. Recording takes a mutex: one short critical
// section per *request* (not per byte) is noise next to the request itself.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dmemo {

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::string component;  // "memo:<host>", "fs:<id>@<host>", "client"
  std::string op;         // OpName of the request
  std::uint8_t hop = 0;   // request hop count when the span was recorded
  bool ok = true;         // response carried OK
  std::uint64_t start_us = 0;     // MonotonicMicros at entry
  std::uint64_t duration_us = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Process-wide ring every server component records into.
  static TraceRing& Global();

  void Record(SpanRecord span);

  // Retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  // Spans ever recorded (≥ retained count once the ring has wrapped).
  std::uint64_t TotalRecorded() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{"TraceRing::mu"};
  std::vector<SpanRecord> slots_ DMEMO_GUARDED_BY(mu_);
  std::size_t next_ DMEMO_GUARDED_BY(mu_) = 0;
  std::uint64_t total_ DMEMO_GUARDED_BY(mu_) = 0;
};

// Fresh nonzero trace id; thread-local generator, no coordination.
std::uint64_t NextTraceId();

// Microseconds on the steady clock since process start (span timestamps).
std::uint64_t MonotonicMicros();

// Folder-server requests slower than this are logged at kWarn (satellite:
// slow-op warning). Default 100 ms; override with DMEMO_SLOW_OP_MS or
// programmatically (tests).
std::chrono::milliseconds SlowOpThreshold();
void SetSlowOpThreshold(std::chrono::milliseconds threshold);

// ---- trace sampling ----
//
// Under production load, recording every span would cycle the TraceRing in
// milliseconds and the window would never contain an outlier's full story.
// DMEMO_TRACE_SAMPLE_RATE in [0, 1] (default 1: record everything, the
// diagnostic-friendly small-deployment default) selects the fraction of
// traces recorded. The decision is a pure function of the trace id — every
// hop of one trace, in every process, agrees without coordination — so a
// sampled trace is always complete end to end, never a fragment.

// Current sample rate, clamped to [0, 1].
double TraceSampleRate();
// Programmatic override (tests, dmemo-loadgen phases).
void SetTraceSampleRate(double rate);

// True iff spans for this trace id should be recorded at the current rate.
// Rate 1 keeps every trace (including id 0, "untraced"); rate 0 keeps none.
[[nodiscard]] bool TraceSampled(std::uint64_t trace_id);

}  // namespace dmemo
