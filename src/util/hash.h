// Deterministic hashing used by the folder-name -> folder-server mapping.
//
// Determinism across processes matters: every machine in an application must
// hash the same folder key to the same folder server without communicating
// (the paper's "no broadcasting is done by the system"). std::hash gives no
// cross-process guarantee, so we use FNV-1a and splitmix64 explicitly.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace dmemo {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t Fnv1a64(std::string_view s,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                             std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

// splitmix64 finalizer: turns correlated inputs into well-mixed outputs.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Map a 64-bit hash to a double in [0, 1), uniformly.
constexpr double HashToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace dmemo
