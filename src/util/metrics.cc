#include "util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dmemo {

namespace metrics_internal {

std::size_t ShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

}  // namespace metrics_internal

const std::array<std::uint64_t, Histogram::kBounds>&
Histogram::BucketBounds() {
  // 1-2.5-5 ladder from 1 µs to 10 s. A folder hit lands in the first few
  // buckets, a socket round trip mid-ladder, a parked get near the top.
  static const std::array<std::uint64_t, kBounds> kBoundsArray = {
      1,       2,       5,        10,       25,       50,        100,
      250,     500,     1'000,    2'500,    5'000,    10'000,    25'000,
      50'000,  100'000, 250'000,  500'000,  1'000'000, 2'500'000, 5'000'000,
      10'000'000};
  return kBoundsArray;
}

void Histogram::Observe(std::uint64_t value_us,
                        std::uint64_t exemplar_trace_id) noexcept {
  const auto& bounds = BucketBounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value_us);
  const std::size_t idx = static_cast<std::size_t>(it - bounds.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_us, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplars_[idx].store(exemplar_trace_id, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::Percentile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return HistogramPercentile(counts, q);
}

std::uint64_t HistogramPercentile(std::span<const std::uint64_t> buckets,
                                  double q) noexcept {
  const auto& bounds = Histogram::BucketBounds();
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile observation, 1-based; q=0 asks for the first.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  const std::size_t n = std::min<std::size_t>(buckets.size(),
                                              Histogram::kBuckets);
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: its upper edge is unknown; report the largest
      // finite bound as a floor.
      return bounds.back();
    }
    const std::uint64_t lower = i == 0 ? 0 : bounds[i - 1];
    const std::uint64_t upper = bounds[i];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lower + static_cast<std::uint64_t>(
                       static_cast<double>(upper - lower) * within + 0.5);
  }
  return bounds.back();
}

std::uint64_t Histogram::Count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string labels;
  MetricKind kind;
  // Exactly one is used, per kind; separate members keep the hot-path
  // objects trivially reachable without a variant dispatch.
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();  // never destroyed: handles outlive exit
    InitMetricsExportFromEnv();
    return r;
  }();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    std::string_view name, std::string_view labels, MetricKind kind) {
  std::string key;
  key.reserve(name.size() + labels.size() + 1);
  key.append(name);
  key.push_back('\x01');
  key.append(labels);
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->name = std::string(name);
    entry->labels = std::string(labels);
    entry->kind = kind;
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  return &FindOrCreate(name, labels, MetricKind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  return &FindOrCreate(name, labels, MetricKind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels) {
  return &FindOrCreate(name, labels, MetricKind::kHistogram)->histogram;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.labels = entry->labels;
    sample.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<std::int64_t>(entry->counter.Value());
        break;
      case MetricKind::kGauge:
        sample.value = entry->gauge.Value();
        break;
      case MetricKind::kHistogram: {
        sample.buckets.resize(Histogram::kBuckets);
        sample.exemplars.resize(Histogram::kBuckets);
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          sample.buckets[i] = entry->histogram.BucketCount(i);
          sample.exemplars[i] = entry->histogram.ExemplarTraceId(i);
          count += sample.buckets[i];
        }
        // Count derived from the buckets, so count == Σ buckets holds in
        // every snapshot even while writers race.
        sample.count = count;
        sample.sum = entry->histogram.Sum();
        break;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

namespace {

std::string Series(const std::string& name, const std::string& labels,
                   std::string_view extra = "") {
  std::string s = name;
  if (!labels.empty() || !extra.empty()) {
    s.push_back('{');
    s.append(labels);
    if (!labels.empty() && !extra.empty()) s.push_back(',');
    s.append(extra);
    s.push_back('}');
  }
  return s;
}

}  // namespace

void MetricsRegistry::WriteText(std::string& out) const {
  std::string last_typed;
  for (const MetricSample& m : Snapshot()) {
    if (m.name != last_typed) {
      out.append("# TYPE ").append(m.name).append(" ");
      out.append(MetricKindName(m.kind)).append("\n");
      last_typed = m.name;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out.append(Series(m.name, m.labels))
            .append(" ")
            .append(std::to_string(m.value))
            .append("\n");
        break;
      case MetricKind::kHistogram: {
        const auto& bounds = Histogram::BucketBounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cumulative += m.buckets[i];
          const std::string le = i < bounds.size()
                                     ? std::to_string(bounds[i])
                                     : std::string("+Inf");
          out.append(Series(m.name + "_bucket", m.labels,
                            "le=\"" + le + "\""))
              .append(" ")
              .append(std::to_string(cumulative))
              .append("\n");
        }
        out.append(Series(m.name + "_sum", m.labels))
            .append(" ")
            .append(std::to_string(m.sum))
            .append("\n");
        out.append(Series(m.name + "_count", m.labels))
            .append(" ")
            .append(std::to_string(m.count))
            .append("\n");
        break;
      }
    }
  }
}

void InitMetricsExportFromEnv() {
  static const bool registered = [] {
    const char* path = std::getenv("DMEMO_METRICS_EXPORT");
    if (path == nullptr || *path == '\0') return false;
    static std::string export_path;  // atexit callback needs static storage
    export_path = path;
    std::atexit([] {
      std::string text;
      MetricsRegistry::Global().WriteText(text);
      std::FILE* f = std::fopen(export_path.c_str(), "w");
      if (f == nullptr) return;
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    });
    return true;
  }();
  (void)registered;
}

}  // namespace dmemo
