// Bounded-optional blocking MPMC queue used by server event loops and the
// worker pool. Close() wakes all waiters; subsequent pops drain remaining
// items, then report closure.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dmemo {

template <typename T>
class BlockingQueue {
 public:
  // capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  // Returns false if the queue is closed.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  // Like Pop but gives up after `timeout`.
  std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return PopLocked();
  }

  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    return PopLocked();
  }

  void Close() {
    std::unique_lock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::unique_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::unique_lock lock(mu_);
    return items_.size();
  }

 private:
  std::optional<T> PopLocked() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dmemo
