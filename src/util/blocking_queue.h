// Bounded-optional blocking MPMC queue used by server event loops and the
// worker pool. Close() wakes all waiters; subsequent pops drain remaining
// items, then report closure.
//
// Thread-safe; all state is guarded by mu_ and annotated for Clang's
// -Wthread-safety. Lock-order rank (see DESIGN.md "Concurrency
// invariants"): queue — acquired after directory/server locks, before
// transport locks.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dmemo {

template <typename T>
class BlockingQueue {
 public:
  // capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0)
      : mu_("BlockingQueue::mu"), capacity_(capacity) {}

  // Returns false if the queue is closed.
  [[nodiscard]] bool Push(T item) {
    MutexLock lock(mu_);
    while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
      not_full_.Wait(mu_);
    }
    if (closed_) {
      // A push that loses the race against Close() adds nothing, but the
      // Close()-time notify_all may already have been consumed by waiters
      // that went back to sleep (e.g. a popper that re-checked between
      // closed_ = true and the broadcast). Re-notify so every not_empty_
      // waiter re-examines closed_ and drains out.
      not_empty_.NotifyAll();
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  [[nodiscard]] std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      not_empty_.Wait(mu_);
    }
    return PopLocked();
  }

  // Like Pop but gives up after `timeout`.
  [[nodiscard]] std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!closed_ && items_.empty()) {
      if (not_empty_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        return PopLocked();
      }
    }
    return PopLocked();
  }

  [[nodiscard]] std::optional<T> TryPop() {
    MutexLock lock(mu_);
    return PopLocked();
  }

  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  std::optional<T> PopLocked() DMEMO_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ DMEMO_GUARDED_BY(mu_);
  const std::size_t capacity_;
  bool closed_ DMEMO_GUARDED_BY(mu_) = false;
};

}  // namespace dmemo
