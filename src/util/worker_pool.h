// Thread-caching worker pool (paper Sec. 4.1).
//
// Each server request is handled by a thread. To avoid per-request thread
// creation, a thread that finishes its transaction "sets a timer and waits
// for additional requests. If a request comes in, the thread will handle it.
// If not, it will terminate." This class reproduces exactly that policy:
//
//   Submit(task):
//     - if an idle cached thread exists, it picks the task up (cache hit);
//     - otherwise a new thread is spawned (unless max_threads is reached,
//       in which case the task queues until a thread frees up).
//   worker loop:
//     - run task, then wait up to `cache_ttl` for another; expire if none.
//
// Caching can be disabled (cache_ttl == 0) to get thread-per-request
// behaviour, which bench_thread_caching uses as the ablation baseline.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dmemo {

class WorkerPool {
 public:
  struct Options {
    // How long a finished thread lingers waiting for more work before it
    // terminates. Zero disables caching (thread-per-request).
    std::chrono::milliseconds cache_ttl{250};
    // Hard cap on live threads; 0 = unbounded.
    std::size_t max_threads = 0;
  };

  struct Stats {
    std::size_t threads_spawned = 0;  // total threads ever created
    std::size_t threads_expired = 0;  // threads that timed out and exited
    std::size_t tasks_executed = 0;
    std::size_t cache_hits = 0;       // tasks picked up by a lingering thread
    std::size_t live_threads = 0;
    std::size_t idle_threads = 0;
  };

  WorkerPool();  // default options
  explicit WorkerPool(Options options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueue a task. Returns false after Shutdown().
  [[nodiscard]] bool Submit(std::function<void()> task);

  // Block until all queued and running tasks have finished.
  void Drain();

  // Stop accepting tasks, finish what is queued, join every thread.
  void Shutdown();

  Stats GetStats() const;

 private:
  void WorkerLoop();
  void SpawnLocked() DMEMO_REQUIRES(mu_);

  Options options_;

  mutable Mutex mu_{"WorkerPool::mu"};
  CondVar work_cv_;   // workers wait here for tasks
  CondVar drain_cv_;  // Drain() waits here
  std::deque<std::function<void()>> tasks_ DMEMO_GUARDED_BY(mu_);
  // Every thread ever spawned (joined at shutdown; exited ones join
  // instantly).
  std::vector<std::thread> threads_ DMEMO_GUARDED_BY(mu_);
  std::size_t idle_ DMEMO_GUARDED_BY(mu_) = 0;
  std::size_t live_ DMEMO_GUARDED_BY(mu_) = 0;
  // Tasks currently executing.
  std::size_t running_ DMEMO_GUARDED_BY(mu_) = 0;
  bool shutdown_ DMEMO_GUARDED_BY(mu_) = false;

  // Stats counters.
  std::size_t stat_spawned_ DMEMO_GUARDED_BY(mu_) = 0;
  std::size_t stat_expired_ DMEMO_GUARDED_BY(mu_) = 0;
  std::size_t stat_tasks_ DMEMO_GUARDED_BY(mu_) = 0;
  std::size_t stat_cache_hits_ DMEMO_GUARDED_BY(mu_) = 0;
};

}  // namespace dmemo
