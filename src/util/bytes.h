// Endian-safe byte buffers.
//
// All D-Memo wire traffic and all Transferable encodings use network byte
// order (big-endian), independent of the host, so that heterogeneous machine
// profiles interoperate. ByteWriter appends; ByteReader consumes with bounds
// checking and reports truncation as DATA_LOSS.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dmemo {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;

  // Chunk-emitting mode: the writer seals its buffer into an owned chunk
  // whenever it reaches `chunk_bytes`, so a long encode (a big transferable
  // graph) never reallocates-and-copies a monolithic vector. Drain with
  // TakeChunks() — typically via IoBuf::FromChunks, which adopts each chunk
  // as a slice without copying. data()/take() see only the unsealed tail in
  // this mode.
  explicit ByteWriter(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {}

  void u8(std::uint8_t v) {
    buf_.push_back(v);
    MaybeSeal();
  }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  // Unsigned LEB128; compact for the small counts that dominate headers.
  void varint(std::uint64_t v);
  // Length-prefixed (varint) byte string.
  void bytes(std::span<const std::uint8_t> data);
  void str(std::string_view s);
  // Raw append with no length prefix.
  void raw(std::span<const std::uint8_t> data);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return sealed_bytes_ + buf_.size(); }

  // Drain every sealed chunk plus the tail, in write order. Resets the
  // writer. Meaningful for chunked and plain writers alike (a plain writer
  // yields one chunk).
  std::vector<Bytes> TakeChunks();

  // Patch a previously written u32 at `offset` (frame-length back-fill).
  // Offsets are global across sealed chunks. An out-of-range offset is a
  // caller bug: asserts in debug builds, and is clamped to a no-op in
  // release builds instead of scribbling past the buffer.
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  void MaybeSeal() {
    if (chunk_bytes_ > 0 && buf_.size() >= chunk_bytes_) Seal();
  }
  void Seal();

  Bytes buf_;
  std::vector<Bytes> chunks_;        // sealed, in write order
  std::size_t sealed_bytes_ = 0;     // total bytes across chunks_
  std::size_t chunk_bytes_ = 0;      // 0 = plain single-buffer mode
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int8_t> i8();
  Result<std::int16_t> i16();
  Result<std::int32_t> i32();
  Result<std::int64_t> i64();
  Result<float> f32();
  Result<double> f64();
  Result<std::uint64_t> varint();
  Result<Bytes> bytes();
  Result<std::string> str();
  // Consume exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);
  // Advance past n bytes without copying them (zero-copy slicing).
  Status skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  Status Need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Hex dump (lowercase, no separators) — used in logs and test diagnostics.
std::string HexEncode(std::span<const std::uint8_t> data);

}  // namespace dmemo
