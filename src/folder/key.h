// Folder names (paper Sec. 6.1.1).
//
// "A key is defined to be symbol, S, followed by a vector of unsigned
// integers, X." The departure from string keys is deliberate: the integer
// vector makes array-like shared structures cheap (element a[i,j] lives in
// folder {S=a, X=[i,j,0]}).
//
// A Symbol is a 64-bit value. create_symbol() mints process-unique fresh
// symbols; SymbolFromName() derives a stable cross-process symbol from a
// string, which is how cooperating processes agree on well-known folders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"
#include "util/status.h"

namespace dmemo {

using Symbol = std::uint64_t;

// Stable: every process hashing the same name gets the same symbol.
inline Symbol SymbolFromName(std::string_view name) {
  return Fnv1a64(name);
}

struct Key {
  Symbol S = 0;
  std::vector<std::uint32_t> X;

  Key() = default;
  explicit Key(Symbol s) : S(s) {}
  Key(Symbol s, std::vector<std::uint32_t> x) : S(s), X(std::move(x)) {}

  // Convenience: named folder, optionally with indices.
  static Key Named(std::string_view name) {
    return Key(SymbolFromName(name));
  }
  static Key Named(std::string_view name, std::vector<std::uint32_t> x) {
    return Key(SymbolFromName(name), std::move(x));
  }

  friend bool operator==(const Key& a, const Key& b) {
    return a.S == b.S && a.X == b.X;
  }

  std::uint64_t Hash() const {
    std::uint64_t h = Mix64(S);
    for (std::uint32_t x : X) h = HashCombine(h, x);
    return h;
  }

  void EncodeTo(ByteWriter& out) const {
    out.u64(S);
    out.varint(X.size());
    for (std::uint32_t x : X) out.varint(x);
  }

  static Result<Key> DecodeFrom(ByteReader& in) {
    Key key;
    DMEMO_ASSIGN_OR_RETURN(key.S, in.u64());
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, in.varint());
    key.X.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 64)));
    for (std::uint64_t i = 0; i < n; ++i) {
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t x, in.varint());
      if (x > 0xffffffffULL) return DataLossError("key index exceeds u32");
      key.X.push_back(static_cast<std::uint32_t>(x));
    }
    return key;
  }

  std::string DebugString() const {
    std::string out = "key(" + std::to_string(S);
    for (std::uint32_t x : X) out += "," + std::to_string(x);
    return out + ")";
  }
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(k.Hash());
  }
};

// Application-qualified key: "the servers prepend the application's name
// with each requested folder name" (Sec. 4.3), so one server farm hosts many
// applications without collisions.
struct QualifiedKey {
  std::string app;
  Key key;

  friend bool operator==(const QualifiedKey& a, const QualifiedKey& b) {
    return a.app == b.app && a.key == b.key;
  }

  std::uint64_t Hash() const { return HashCombine(Fnv1a64(app), key.Hash()); }

  void EncodeTo(ByteWriter& out) const {
    out.str(app);
    key.EncodeTo(out);
  }

  static Result<QualifiedKey> DecodeFrom(ByteReader& in) {
    QualifiedKey qk;
    DMEMO_ASSIGN_OR_RETURN(qk.app, in.str());
    DMEMO_ASSIGN_OR_RETURN(qk.key, Key::DecodeFrom(in));
    return qk;
  }

  Bytes ToBytes() const {
    ByteWriter out;
    EncodeTo(out);
    return out.take();
  }

  std::string DebugString() const {
    return app + ":" + key.DebugString();
  }
};

struct QualifiedKeyHash {
  std::size_t operator()(const QualifiedKey& k) const {
    return static_cast<std::size_t>(k.Hash());
  }
};

}  // namespace dmemo
