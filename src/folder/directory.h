// The directory of unordered queues (paper Sec. 2 / 6).
//
// A folder is an unordered queue of memos; the directory maps keys to
// folders, creating folders on first use and letting them vanish when they
// become empty with nothing pending (the paper's future semantics: "the
// folder will vanish once the memo is removed").
//
// FolderDirectory is a template over the stored value type:
//   * FolderDirectory<TransferablePtr> backs the in-process engine (values
//     move by pointer, get_copy deep-copies via the codec);
//   * FolderDirectory<Bytes> backs folder servers (values arrive encoded).
// The synchronization, delayed-put and unordered-extraction semantics are
// identical, which is the point of sharing the implementation.
//
// Unordered extraction is deterministic-pseudorandom (seeded per directory)
// so "order must not be relied upon" is enforced while tests reproduce.
//
// Sharding (DESIGN.md §14): the directory is internally split into
// per-core shards by key hash. Each shard owns its own mutex, condvar,
// folder map, rng and stats, so concurrent puts/gets on different keys
// take no contended lock. A key always lives in exactly one shard; the
// only cross-shard traffic is a delayed-put release whose destination
// hashes elsewhere, which is re-dispatched as an ordinary put ("spill").
// DMEMO_DIR_SHARDS overrides the shard count (default: min(cores, 8)).
//
// Waiter continuations: GetAsync parks a callback instead of a thread.
// A later Put (or RestoreFrom) delivers the value straight to the parked
// continuation — take-waiters consume it before it ever lands in the
// folder, copy-waiters observe it — and Close cancels every waiter with
// CANCELLED. Callbacks are invoked with no directory lock held, but
// possibly from inside a mutation whose caller holds outer locks (the
// folder server's WAL apply path runs Put under wal_mu_): a continuation
// must therefore never acquire the WAL lock inline — defer that work to
// an executor (the reactor does; see src/server/reactor.h).
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "folder/key.h"
#include "transferable/codec.h"
#include "transferable/transferable.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

// Copy and serialization policy per stored value type (get_copy, and the
// persistence snapshots of Sec. 3.1.3's "persistent data structures").
template <typename T>
struct MemoValueTraits;

template <>
struct MemoValueTraits<Bytes> {
  static Result<Bytes> Copy(const Bytes& v) { return v; }
  static void Encode(const Bytes& v, ByteWriter& out) { out.bytes(v); }
  static Result<Bytes> Decode(ByteReader& in) { return in.bytes(); }
  static bool Equal(const Bytes& a, const Bytes& b) { return a == b; }
};

// Folder servers store memos as IoBuf refs: the stored value shares the
// receive buffer's slices, a get_copy shares them again (slices are
// immutable, so "copy" is a descriptor copy), and only the persistence
// snapshot writes the bytes out.
template <>
struct MemoValueTraits<IoBuf> {
  static Result<IoBuf> Copy(const IoBuf& v) { return v; }
  static void Encode(const IoBuf& v, ByteWriter& out) {
    out.varint(v.size());
    v.CopyTo(out);
  }
  static Result<IoBuf> Decode(ByteReader& in) {
    DMEMO_ASSIGN_OR_RETURN(Bytes b, in.bytes());
    return IoBuf::FromBytes(std::move(b));
  }
  static bool Equal(const IoBuf& a, const IoBuf& b) { return a == b; }
};

template <>
struct MemoValueTraits<TransferablePtr> {
  static Result<TransferablePtr> Copy(const TransferablePtr& v) {
    if (v == nullptr) return TransferablePtr(nullptr);
    return CloneTransferable(*v);
  }
  static void Encode(const TransferablePtr& v, ByteWriter& out) {
    out.bytes(EncodeGraphToBytes(v));
  }
  static Result<TransferablePtr> Decode(ByteReader& in) {
    DMEMO_ASSIGN_OR_RETURN(Bytes encoded, in.bytes());
    return DecodeGraphFromBytes(encoded);
  }
  // Structural equality via the codec: the same graph encodes to the same
  // bytes, which is the identity WAL replay removes extractions by.
  static bool Equal(const TransferablePtr& a, const TransferablePtr& b) {
    if (a == nullptr || b == nullptr) return a == b;
    return EncodeGraphToBytes(a) == EncodeGraphToBytes(b);
  }
};

struct DirectoryStats {
  std::uint64_t puts = 0;
  std::uint64_t delayed_puts = 0;
  std::uint64_t delayed_releases = 0;
  std::uint64_t gets = 0;           // successful extractions
  std::uint64_t copies = 0;         // get_copy successes
  std::uint64_t blocked_waits = 0;  // times a get had to block or park
  std::uint64_t folders_created = 0;
  std::uint64_t folders_vanished = 0;
};

namespace folder_internal {
// Process-wide shard/waiter observability (OBSERVABILITY.md).
inline Gauge* ShardCountGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("dmemo_dir_shard_count");
  return g;
}
inline Counter* WaitersParkedTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_dir_shard_waiters_parked_total");
  return c;
}
inline Counter* WaitersDeliveredTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_dir_shard_waiters_delivered_total");
  return c;
}
inline Counter* WaitersCancelledTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_dir_shard_waiters_cancelled_total");
  return c;
}
inline Counter* ShardSpillsTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_dir_shard_spills_total");
  return c;
}
}  // namespace folder_internal

template <typename T>
class FolderDirectory {
 public:
  // A parked get's continuation: OK + (key, value) on delivery, CANCELLED
  // + nullopt when the directory closes before a value arrives, or a copy
  // failure's status. Invoked with no directory lock held; see the header
  // comment for the WAL re-entrance rule.
  using WaiterCallback =
      std::function<void(Status, std::optional<std::pair<QualifiedKey, T>>)>;

  // `shard_count` 0 selects DMEMO_DIR_SHARDS, else min(cores, 8).
  explicit FolderDirectory(std::uint64_t seed = 0xd3ed0ULL,
                           std::size_t shard_count = 0)
      : seed_(seed) {
    const std::size_t n =
        shard_count > 0 ? shard_count : DefaultShardCount();
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(
          std::make_unique<Shard>(seed + i * 0x9e3779b97f4a7c15ULL));
    }
    folder_internal::ShardCountGauge()->Set(
        static_cast<std::int64_t>(n));
  }

  FolderDirectory(const FolderDirectory&) = delete;
  FolderDirectory& operator=(const FolderDirectory&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  // put: deposit and return immediately. Also releases any delayed memos
  // parked on this folder (Sec. 6.1.2 put_delayed trigger), which may
  // chain — across shards, each cross-shard release re-enters the loop as
  // an ordinary put on its own shard.
  Status Put(const QualifiedKey& key, T value) {
    std::vector<Delivery> deliveries;
    std::vector<std::pair<QualifiedKey, T>> work;
    work.emplace_back(key, std::move(value));
    Status st = Status::Ok();
    while (!work.empty()) {
      auto [k, v] = std::move(work.back());
      work.pop_back();
      const std::size_t idx = ShardOf(k);
      Shard& s = *shards_[idx];
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      if (s.closed) {
        st = CancelledError("directory closed");
        break;
      }
      PutChainLocked(s, idx, std::move(k), std::move(v), work, deliveries);
      s.cv.NotifyAll();
    }
    FireDeliveries(deliveries);
    return st;
  }

  // put_delayed: hide `value` in key1 until the next memo arrives there,
  // then deposit it in key2. The hidden value is not extractable from key1.
  Status PutDelayed(const QualifiedKey& key1, const QualifiedKey& key2,
                    T value) {
    Shard& s = ShardFor(key1);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    if (s.closed) return CancelledError("directory closed");
    Folder& f = FolderFor(s, key1);
    f.delayed.emplace_back(key2, std::move(value));
    ++s.stats.delayed_puts;
    return Status::Ok();
  }

  // get: blocking extraction.
  Result<T> Get(const QualifiedKey& key) {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    bool counted = false;
    for (;;) {
      if (s.closed) return CancelledError("directory closed");
      if (auto v = TakeLocked(s, key)) return std::move(*v);
      if (!counted) {
        ++s.stats.blocked_waits;
        counted = true;
      }
      s.cv.Wait(s.mu);
    }
  }

  // get with a deadline (used by servers to bound parked requests).
  Result<std::optional<T>> GetFor(const QualifiedKey& key,
                                  std::chrono::milliseconds timeout) {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    bool counted = false;
    for (;;) {
      if (s.closed) return CancelledError("directory closed");
      if (auto v = TakeLocked(s, key)) return std::optional<T>(std::move(*v));
      if (!counted) {
        ++s.stats.blocked_waits;
        counted = true;
      }
      if (s.cv.WaitUntil(s.mu, deadline) == std::cv_status::timeout) {
        if (auto v = TakeLocked(s, key)) {
          return std::optional<T>(std::move(*v));
        }
        return std::optional<T>(std::nullopt);
      }
    }
  }

  // get_skip: non-blocking; nullopt when the folder has no memo.
  Result<std::optional<T>> GetSkip(const QualifiedKey& key) {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    if (s.closed) return CancelledError("directory closed");
    if (auto v = TakeLocked(s, key)) return std::optional<T>(std::move(*v));
    return std::optional<T>(std::nullopt);
  }

  // get_copy: blocking examine; the memo stays in the folder.
  Result<T> GetCopy(const QualifiedKey& key) {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    bool counted = false;
    for (;;) {
      if (s.closed) return CancelledError("directory closed");
      if (auto v = PeekLocked(s, key)) {
        DMEMO_ASSIGN_OR_RETURN(T copy, MemoValueTraits<T>::Copy(*v));
        ++s.stats.copies;
        return copy;
      }
      if (!counted) {
        ++s.stats.blocked_waits;
        counted = true;
      }
      s.cv.Wait(s.mu);
    }
  }

  Result<std::optional<T>> GetCopyFor(const QualifiedKey& key,
                                      std::chrono::milliseconds timeout) {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (s.closed) return CancelledError("directory closed");
      if (auto v = PeekLocked(s, key)) {
        DMEMO_ASSIGN_OR_RETURN(T copy, MemoValueTraits<T>::Copy(*v));
        ++s.stats.copies;
        return std::optional<T>(std::move(copy));
      }
      if (s.cv.WaitUntil(s.mu, deadline) == std::cv_status::timeout) {
        return std::optional<T>(std::nullopt);
      }
    }
  }

  // get_alt: blocking extraction from any one of `keys`; when several are
  // eligible the choice is nondeterministic (pseudorandom). Keys in one
  // shard wait on that shard's condvar; a cross-shard alternative set
  // parks a waiter continuation and bridges it back to a blocking wait.
  Result<std::pair<QualifiedKey, T>> GetAlt(
      std::span<const QualifiedKey> keys) {
    if (SameShard(keys)) {
      Shard& s = ShardFor(keys.front());
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      bool counted = false;
      for (;;) {
        if (s.closed) return CancelledError("directory closed");
        if (auto v = TakeAltLocked(s, keys)) return std::move(*v);
        if (!counted) {
          ++s.stats.blocked_waits;
          counted = true;
        }
        s.cv.Wait(s.mu);
      }
    }
    auto bridge = std::make_shared<Bridge>();
    (void)GetAsync(keys, /*copy=*/false, BridgeCallback(bridge));
    MutexLock lock(bridge->mu);  // analyze:lock(FolderDirectory::bridge_mu)
    while (!bridge->fired) bridge->cv.Wait(bridge->mu);
    if (!bridge->st.ok()) return bridge->st;
    return std::move(*bridge->val);
  }

  Result<std::optional<std::pair<QualifiedKey, T>>> GetAltFor(
      std::span<const QualifiedKey> keys, std::chrono::milliseconds timeout) {
    if (SameShard(keys)) {
      Shard& s = ShardFor(keys.front());
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      for (;;) {
        if (s.closed) return CancelledError("directory closed");
        if (auto v = TakeAltLocked(s, keys)) {
          return std::optional<std::pair<QualifiedKey, T>>(std::move(*v));
        }
        if (s.cv.WaitUntil(s.mu, deadline) == std::cv_status::timeout) {
          if (auto v = TakeAltLocked(s, keys)) {
            return std::optional<std::pair<QualifiedKey, T>>(std::move(*v));
          }
          return std::optional<std::pair<QualifiedKey, T>>(std::nullopt);
        }
      }
    }
    auto bridge = std::make_shared<Bridge>();
    const std::uint64_t id =
        GetAsync(keys, /*copy=*/false, BridgeCallback(bridge));
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(bridge->mu);  // analyze:lock(FolderDirectory::bridge_mu)
    while (!bridge->fired) {
      if (bridge->cv.WaitUntil(bridge->mu, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (!bridge->fired) {
      lock.Unlock();
      if (id != 0 && CancelWaiter(id)) {
        return std::optional<std::pair<QualifiedKey, T>>(std::nullopt);
      }
      // Delivery raced the timeout: the value is ours, wait for it.
      lock.Lock();
      while (!bridge->fired) bridge->cv.Wait(bridge->mu);
    }
    if (!bridge->st.ok()) return bridge->st;
    return std::optional<std::pair<QualifiedKey, T>>(std::move(*bridge->val));
  }

  // get_alt_skip: non-blocking variant.
  Result<std::optional<std::pair<QualifiedKey, T>>> GetAltSkip(
      std::span<const QualifiedKey> keys) {
    if (SameShard(keys)) {
      Shard& s = ShardFor(keys.front());
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      if (s.closed) return CancelledError("directory closed");
      if (auto v = TakeAltLocked(s, keys)) {
        return std::optional<std::pair<QualifiedKey, T>>(std::move(*v));
      }
      return std::optional<std::pair<QualifiedKey, T>>(std::nullopt);
    }
    // Probe shards in a pseudorandom rotation so an all-eligible set does
    // not always yield the first key (the alt choice stays
    // nondeterministic across shards).
    const std::size_t start = AltRotation(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const QualifiedKey& key = keys[(start + i) % keys.size()];
      Shard& s = ShardFor(key);
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      if (s.closed) return CancelledError("directory closed");
      if (auto v = TakeLocked(s, key)) {
        return std::optional<std::pair<QualifiedKey, T>>(
            std::make_pair(key, std::move(*v)));
      }
    }
    return std::optional<std::pair<QualifiedKey, T>>(std::nullopt);
  }

  // ---- waiter continuations (reactor core) ----------------------------

  // Try a non-blocking extraction (copy=false) or copy (copy=true) from
  // any of `keys`; when nothing is eligible, park `done` as a waiter
  // continuation fired by a future Put/RestoreFrom delivery or by Close.
  // Returns 0 when `done` already ran inline, else a waiter id for
  // CancelWaiter. The callback runs exactly once (delivery, close, or
  // never after a successful CancelWaiter).
  std::uint64_t GetAsync(std::span<const QualifiedKey> keys, bool copy,
                         WaiterCallback done) {
    auto w = std::make_shared<Waiter>();
    w->id = next_waiter_id_.fetch_add(1, std::memory_order_relaxed);
    w->copy = copy;
    w->done = std::move(done);
    {
      MutexLock lock(waiters_mu_);
      registry_[w->id] = w;
    }
    // One pass: probe each key's shard; on a hit claim and deliver inline,
    // otherwise register the waiter on that folder's list. A concurrent
    // put may claim the waiter between registrations — the claimed flag
    // makes delivery exactly-once, stale registrations are pruned lazily.
    Status inline_status = Status::Ok();
    std::optional<std::pair<QualifiedKey, T>> inline_value;
    bool delivered_inline = false;
    bool parked = false;
    const std::size_t start = keys.size() > 1 ? AltRotation(keys.size()) : 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const QualifiedKey& key = keys[(start + i) % keys.size()];
      Shard& s = ShardFor(key);
      const std::size_t idx = ShardOf(key);
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      if (s.closed) {
        if (!w->claimed.exchange(true)) {
          delivered_inline = true;
          inline_status = CancelledError("directory closed");
        }
        break;
      }
      if (copy) {
        if (auto* v = PeekLocked(s, key)) {
          if (!w->claimed.exchange(true)) {
            delivered_inline = true;
            auto c = MemoValueTraits<T>::Copy(*v);
            if (c.ok()) {
              ++s.stats.copies;
              inline_value.emplace(key, std::move(*c));
            } else {
              inline_status = c.status();
            }
          }
          break;
        }
      } else if (auto v = TakeLocked(s, key)) {
        if (!w->claimed.exchange(true)) {
          delivered_inline = true;
          inline_value.emplace(key, std::move(*v));
        } else {
          // Claimed by a racing cancel/close between registrations: the
          // extraction must not be lost — put the value back.
          PutChainBackLocked(s, idx, key, std::move(*v));
        }
        break;
      }
      auto& list = s.waiters[key];
      PruneClaimedLocked(list);
      list.push_back(w);
      w->regs.emplace_back(idx, key);
      if (!parked) {
        parked = true;
        ++s.stats.blocked_waits;
      }
    }
    if (delivered_inline) {
      {
        MutexLock lock(waiters_mu_);
        registry_.erase(w->id);
      }
      w->done(inline_status, std::move(inline_value));
      return 0;
    }
    if (!parked) {
      // Claimed concurrently before any registration stuck — the racing
      // deliverer fires the callback; report as parked so the caller
      // tracks the id (cancel will simply lose the race).
      return w->id;
    }
    folder_internal::WaitersParkedTotal()->Increment();
    return w->id;
  }

  // Prevent a parked continuation from firing. True when the cancel won
  // (the callback will never run); false when delivery, close or a prior
  // cancel got there first.
  bool CancelWaiter(std::uint64_t id) {
    WaiterPtr w;
    {
      MutexLock lock(waiters_mu_);
      auto it = registry_.find(id);
      if (it == registry_.end()) return false;
      w = it->second;
    }
    if (w->claimed.exchange(true)) return false;
    for (const auto& [idx, key] : w->regs) {
      Shard& s = *shards_[idx];
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      auto it = s.waiters.find(key);
      if (it == s.waiters.end()) continue;
      auto& list = it->second;
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const WaiterPtr& p) { return p == w; }),
                 list.end());
      if (list.empty()) s.waiters.erase(it);
    }
    {
      MutexLock lock(waiters_mu_);
      registry_.erase(id);
    }
    folder_internal::WaitersCancelledTotal()->Increment();
    return true;
  }

  // Parked waiters right now (registry size; includes in-flight claims).
  std::size_t PendingWaiters() const {
    MutexLock lock(waiters_mu_);
    return registry_.size();
  }

  // Remove one memo content-equal to `value` from `key`; false when no
  // match is present. WAL replay uses this to redo a logged extraction:
  // which element the pseudorandom take picked is recorded by value, not
  // by index, so replay removes the same *content* regardless of rng
  // state. Folders are multisets, so removing any equal element is the
  // same state.
  bool TakeEqual(const QualifiedKey& key, const T& value) {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    auto it = s.folders.find(key);
    if (it == s.folders.end()) return false;
    auto& visible = it->second.visible;
    for (std::size_t i = 0; i < visible.size(); ++i) {
      if (!MemoValueTraits<T>::Equal(visible[i], value)) continue;
      std::swap(visible[i], visible.back());
      visible.pop_back();
      ++s.stats.gets;
      VanishIfEmpty(s, it);
      return true;
    }
    return false;
  }

  // Number of extractable memos in the folder (0 when it vanished).
  std::size_t Count(const QualifiedKey& key) const {
    Shard& s = ShardFor(key);
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    auto it = s.folders.find(key);
    return it == s.folders.end() ? 0 : it->second.visible.size();
  }

  // Folders currently materialized (extractable or with parked memos).
  std::size_t FolderCount() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      MutexLock lock(s->mu);  // analyze:lock(FolderDirectory::Shard::mu)
      n += s->folders.size();
    }
    return n;
  }

  // Keys of all materialized folders belonging to `app` (any app when
  // empty). Used by the dynamic-data-migration path when an application's
  // folder-server placement changes.
  std::vector<QualifiedKey> Keys(const std::string& app = "") const {
    std::vector<QualifiedKey> out;
    for (const auto& s : shards_) {
      MutexLock lock(s->mu);  // analyze:lock(FolderDirectory::Shard::mu)
      for (const auto& [key, folder] : s->folders) {
        if (app.empty() || key.app == app) out.push_back(key);
      }
    }
    return out;
  }

  DirectoryStats GetStats() const {
    DirectoryStats total;
    for (const auto& s : shards_) {
      MutexLock lock(s->mu);  // analyze:lock(FolderDirectory::Shard::mu)
      total.puts += s->stats.puts;
      total.delayed_puts += s->stats.delayed_puts;
      total.delayed_releases += s->stats.delayed_releases;
      total.gets += s->stats.gets;
      total.copies += s->stats.copies;
      total.blocked_waits += s->stats.blocked_waits;
      total.folders_created += s->stats.folders_created;
      total.folders_vanished += s->stats.folders_vanished;
    }
    return total;
  }

  // ---- persistence (Sec. 3.1.3: "support for persistent data structures
  // is essential") -----------------------------------------------------
  //
  // Snapshot the whole directory — visible memos AND parked delayed puts —
  // into a byte stream; RestoreFrom rebuilds it (into an empty or
  // populated directory; restored memos add to what is there).

  // The snapshot is *canonical*: folders are ordered by encoded key and
  // each folder's contents by encoded bytes, so two directories holding
  // the same memo multisets snapshot to identical bytes even though
  // hashing, shard count, map iteration and swap-with-last extraction
  // scramble the in-memory order. Crash-recovery tests rely on this to
  // compare a recovered directory byte-for-byte against the pre-crash
  // one. Shards are visited one at a time, so the caller must quiesce
  // mutations for a point-in-time image — the durable path does (the
  // checkpoint holds the WAL lock that serializes every mutation).
  void SnapshotTo(ByteWriter& out) const {
    std::vector<std::pair<Bytes, Bytes>> ordered;  // (key bytes, folder body)
    for (const auto& sp : shards_) {
      MutexLock lock(sp->mu);  // analyze:lock(FolderDirectory::Shard::mu)
      for (const auto& [key, folder] : sp->folders) {
        ByteWriter k;
        key.EncodeTo(k);
        ByteWriter body;
        std::vector<Bytes> visible;
        visible.reserve(folder.visible.size());
        for (const T& v : folder.visible) {
          ByteWriter w;
          MemoValueTraits<T>::Encode(v, w);
          visible.push_back(w.take());
        }
        std::sort(visible.begin(), visible.end());
        body.varint(visible.size());
        for (const Bytes& v : visible) body.raw(v);
        std::vector<Bytes> delayed;
        delayed.reserve(folder.delayed.size());
        for (const auto& [dest, v] : folder.delayed) {
          ByteWriter w;
          dest.EncodeTo(w);
          MemoValueTraits<T>::Encode(v, w);
          delayed.push_back(w.take());
        }
        std::sort(delayed.begin(), delayed.end());
        body.varint(delayed.size());
        for (const Bytes& d : delayed) body.raw(d);
        ordered.emplace_back(k.take(), body.take());
      }
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.u32(kSnapshotMagic);
    out.u8(kSnapshotVersion);
    out.varint(ordered.size());
    for (const auto& [key_bytes, body] : ordered) {
      out.raw(key_bytes);
      out.raw(body);
    }
  }

  Status RestoreFrom(ByteReader& in) {
    DMEMO_ASSIGN_OR_RETURN(std::uint32_t magic, in.u32());
    if (magic != kSnapshotMagic) {
      return DataLossError("not a folder-directory snapshot");
    }
    DMEMO_ASSIGN_OR_RETURN(std::uint8_t version, in.u8());
    if (version != kSnapshotVersion) {
      return UnimplementedError("unsupported snapshot version " +
                                std::to_string(version));
    }
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_folders, in.varint());
    std::vector<Delivery> deliveries;
    for (std::uint64_t f = 0; f < n_folders; ++f) {
      DMEMO_ASSIGN_OR_RETURN(QualifiedKey key, QualifiedKey::DecodeFrom(in));
      Shard& s = ShardFor(key);
      MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
      if (s.closed) return CancelledError("directory closed");
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_visible, in.varint());
      for (std::uint64_t i = 0; i < n_visible; ++i) {
        DMEMO_ASSIGN_OR_RETURN(T v, MemoValueTraits<T>::Decode(in));
        ++s.stats.puts;
        // Restored memos may satisfy parked continuations directly.
        if (!OfferToWaitersLocked(s, key, v, deliveries)) {
          FolderFor(s, key).visible.push_back(std::move(v));
        }
      }
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_delayed, in.varint());
      for (std::uint64_t i = 0; i < n_delayed; ++i) {
        DMEMO_ASSIGN_OR_RETURN(QualifiedKey dest,
                               QualifiedKey::DecodeFrom(in));
        DMEMO_ASSIGN_OR_RETURN(T v, MemoValueTraits<T>::Decode(in));
        FolderFor(s, key).delayed.emplace_back(std::move(dest), std::move(v));
        ++s.stats.delayed_puts;
      }
      // A snapshot never contains an empty folder (they vanish), but a
      // merge target (or a fully waiter-consumed restore) might end up
      // one; keep the invariant.
      auto it = s.folders.find(key);
      if (it != s.folders.end() && it->second.visible.empty() &&
          it->second.delayed.empty()) {
        s.folders.erase(it);
      }
      s.cv.NotifyAll();  // restored memos may satisfy parked gets
    }
    FireDeliveries(deliveries);
    return Status::Ok();
  }

  // Wake every blocked get with CANCELLED, cancel every parked waiter
  // continuation, and refuse further operations.
  void Close() {
    std::vector<Delivery> cancelled;
    for (const auto& sp : shards_) {
      MutexLock lock(sp->mu);  // analyze:lock(FolderDirectory::Shard::mu)
      sp->closed = true;
      for (auto& [key, list] : sp->waiters) {
        for (WaiterPtr& w : list) {
          if (!w->claimed.exchange(true)) {
            cancelled.push_back(Delivery{
                w, CancelledError("directory closed"), std::nullopt});
          }
        }
      }
      sp->waiters.clear();
      sp->cv.NotifyAll();
    }
    FireDeliveries(cancelled);
  }

  bool closed() const {
    Shard& s = *shards_.front();
    MutexLock lock(s.mu);  // analyze:lock(FolderDirectory::Shard::mu)
    return s.closed;
  }

 private:
  static constexpr std::uint32_t kSnapshotMagic = 0xd3ed0f01;
  static constexpr std::uint8_t kSnapshotVersion = 1;

  struct Folder {
    std::vector<T> visible;
    std::vector<std::pair<QualifiedKey, T>> delayed;
  };

  struct Waiter {
    std::uint64_t id = 0;
    bool copy = false;
    // Exactly-once delivery: whoever flips claimed owns the callback.
    std::atomic<bool> claimed{false};
    WaiterCallback done;
    // Registration sites for targeted removal by CancelWaiter; written
    // only by the registering thread before the id escapes GetAsync.
    std::vector<std::pair<std::size_t, QualifiedKey>> regs;
  };
  using WaiterPtr = std::shared_ptr<Waiter>;

  struct Delivery {
    WaiterPtr w;
    Status st;
    std::optional<std::pair<QualifiedKey, T>> val;
  };

  struct Shard {
    explicit Shard(std::uint64_t seed) : rng(seed) {}
    mutable Mutex mu{"FolderDirectory::Shard::mu"};
    CondVar cv;
    std::unordered_map<QualifiedKey, Folder, QualifiedKeyHash> folders
        DMEMO_GUARDED_BY(mu);
    std::unordered_map<QualifiedKey, std::vector<WaiterPtr>, QualifiedKeyHash>
        waiters DMEMO_GUARDED_BY(mu);
    SplitMix64 rng DMEMO_GUARDED_BY(mu);
    DirectoryStats stats DMEMO_GUARDED_BY(mu);
    bool closed DMEMO_GUARDED_BY(mu) = false;
  };

  // Blocking bridge for cross-shard alt waits: a parked continuation
  // signals a local condvar.
  struct Bridge {
    Mutex mu{"FolderDirectory::bridge_mu"};
    CondVar cv;
    bool fired DMEMO_GUARDED_BY(mu) = false;
    Status st DMEMO_GUARDED_BY(mu) = Status::Ok();
    std::optional<std::pair<QualifiedKey, T>> val DMEMO_GUARDED_BY(mu);
  };

  WaiterCallback BridgeCallback(std::shared_ptr<Bridge> bridge) {
    return [bridge](Status st,
                    std::optional<std::pair<QualifiedKey, T>> val) {
      MutexLock lock(bridge->mu);  // analyze:lock(FolderDirectory::bridge_mu)
      bridge->st = std::move(st);
      bridge->val = std::move(val);
      bridge->fired = true;
      bridge->cv.NotifyAll();
    };
  }

  static std::size_t DefaultShardCount() {
    const std::int64_t env = EnvInt("DMEMO_DIR_SHARDS", 0);
    if (env > 0) {
      return static_cast<std::size_t>(std::min<std::int64_t>(env, 256));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, std::min(hw, 8u));
  }

  std::size_t ShardOf(const QualifiedKey& key) const {
    return Mix64(QualifiedKeyHash{}(key)) % shards_.size();
  }
  Shard& ShardFor(const QualifiedKey& key) const {
    return *shards_[ShardOf(key)];
  }

  bool SameShard(std::span<const QualifiedKey> keys) const {
    if (keys.empty()) return true;
    const std::size_t first = ShardOf(keys.front());
    for (const QualifiedKey& k : keys) {
      if (ShardOf(k) != first) return false;
    }
    return true;
  }

  // Pseudorandom rotation start for cross-shard alt probing; seeded so
  // tests reproduce, advanced per call so the choice varies within a run.
  std::size_t AltRotation(std::size_t n) {
    const std::uint64_t seq =
        alt_seq_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::size_t>(
        Mix64(seed_ + seq * 0x9e3779b97f4a7c15ULL) % n);
  }

  Folder& FolderFor(Shard& s, const QualifiedKey& key)
      DMEMO_REQUIRES(s.mu) {
    auto [it, inserted] = s.folders.try_emplace(key);
    if (inserted) ++s.stats.folders_created;
    return it->second;
  }

  static void PruneClaimedLocked(std::vector<WaiterPtr>& list) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [](const WaiterPtr& w) {
                                return w->claimed.load(
                                    std::memory_order_relaxed);
                              }),
               list.end());
  }

  // Offer a just-deposited value to parked waiters on `key`: every
  // unclaimed copy-waiter observes it, the first unclaimed take-waiter
  // consumes it (returns true — the value must not land in the folder).
  // Deliveries are collected for invocation outside the lock.
  bool OfferToWaitersLocked(Shard& s, const QualifiedKey& key, T& value,
                            std::vector<Delivery>& out)
      DMEMO_REQUIRES(s.mu) {
    auto it = s.waiters.find(key);
    if (it == s.waiters.end()) return false;
    auto& list = it->second;
    // Copy-waiters first, while the value is still intact.
    for (WaiterPtr& w : list) {
      if (!w->copy || w->claimed.load(std::memory_order_relaxed)) continue;
      if (w->claimed.exchange(true)) continue;
      auto copy = MemoValueTraits<T>::Copy(value);
      if (copy.ok()) {
        ++s.stats.copies;
        out.push_back(Delivery{
            w, Status::Ok(),
            std::make_pair(key, std::move(*copy))});
      } else {
        out.push_back(Delivery{w, copy.status(), std::nullopt});
      }
    }
    bool consumed = false;
    for (WaiterPtr& w : list) {
      if (w->copy || w->claimed.load(std::memory_order_relaxed)) continue;
      if (w->claimed.exchange(true)) continue;
      ++s.stats.gets;
      out.push_back(Delivery{
          w, Status::Ok(), std::make_pair(key, std::move(value))});
      consumed = true;
      break;
    }
    PruneClaimedLocked(list);
    if (list.empty()) s.waiters.erase(it);
    return consumed;
  }

  // Deposit (key, value) plus every same-shard delayed release it
  // triggers; cross-shard releases go to `spill` for the caller's loop.
  void PutChainLocked(Shard& s, std::size_t idx, QualifiedKey key, T value,
                      std::vector<std::pair<QualifiedKey, T>>& spill,
                      std::vector<Delivery>& deliveries)
      DMEMO_REQUIRES(s.mu) {
    std::vector<std::pair<QualifiedKey, T>> work;
    work.emplace_back(std::move(key), std::move(value));
    while (!work.empty()) {
      auto [k, v] = std::move(work.back());
      work.pop_back();
      ++s.stats.puts;
      const bool consumed = OfferToWaitersLocked(s, k, v, deliveries);
      if (!consumed) FolderFor(s, k).visible.push_back(std::move(v));
      auto it = s.folders.find(k);
      if (it != s.folders.end() && !it->second.delayed.empty()) {
        // Arrival of a memo releases every memo parked on this folder.
        s.stats.delayed_releases += it->second.delayed.size();
        auto released = std::move(it->second.delayed);
        it->second.delayed.clear();
        for (auto& [dest, dv] : released) {
          if (ShardOf(dest) == idx) {
            work.emplace_back(std::move(dest), std::move(dv));
          } else {
            folder_internal::ShardSpillsTotal()->Increment();
            spill.emplace_back(std::move(dest), std::move(dv));
          }
        }
      }
      if (it != s.folders.end()) VanishIfEmpty(s, it);
    }
  }

  // Re-deposit an extraction that lost its waiter to a racing claim; no
  // waiter offers, no delayed release (the original deposit already ran
  // them).
  void PutChainBackLocked(Shard& s, std::size_t idx, const QualifiedKey& key,
                          T value) DMEMO_REQUIRES(s.mu) {
    (void)idx;
    FolderFor(s, key).visible.push_back(std::move(value));
  }

  void FireDeliveries(std::vector<Delivery>& deliveries) {
    if (deliveries.empty()) return;
    {
      MutexLock lock(waiters_mu_);
      for (const Delivery& d : deliveries) registry_.erase(d.w->id);
    }
    for (Delivery& d : deliveries) {
      if (d.st.ok()) {
        folder_internal::WaitersDeliveredTotal()->Increment();
      } else {
        folder_internal::WaitersCancelledTotal()->Increment();
      }
      d.w->done(std::move(d.st), std::move(d.val));
    }
  }

  std::optional<T> TakeLocked(Shard& s, const QualifiedKey& key)
      DMEMO_REQUIRES(s.mu) {
    auto it = s.folders.find(key);
    if (it == s.folders.end() || it->second.visible.empty()) {
      return std::nullopt;
    }
    auto& visible = it->second.visible;
    // Unordered: extract a pseudorandom element (swap-with-last removal).
    const std::size_t idx =
        static_cast<std::size_t>(s.rng.NextBelow(visible.size()));
    std::swap(visible[idx], visible.back());
    T value = std::move(visible.back());
    visible.pop_back();
    ++s.stats.gets;
    VanishIfEmpty(s, it);
    return value;
  }

  const T* PeekLocked(Shard& s, const QualifiedKey& key)
      DMEMO_REQUIRES(s.mu) {
    auto it = s.folders.find(key);
    if (it == s.folders.end() || it->second.visible.empty()) return nullptr;
    auto& visible = it->second.visible;
    const std::size_t idx =
        static_cast<std::size_t>(s.rng.NextBelow(visible.size()));
    return &visible[idx];
  }

  std::optional<std::pair<QualifiedKey, T>> TakeAltLocked(
      Shard& s, std::span<const QualifiedKey> keys) DMEMO_REQUIRES(s.mu) {
    // Collect eligible alternatives, then pick one pseudorandomly
    // ("nondeterministically return a value from an eligible folder").
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto it = s.folders.find(keys[i]);
      if (it != s.folders.end() && !it->second.visible.empty()) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) return std::nullopt;
    const std::size_t pick =
        eligible[static_cast<std::size_t>(s.rng.NextBelow(eligible.size()))];
    auto value = TakeLocked(s, keys[pick]);
    return std::make_pair(keys[pick], std::move(*value));
  }

  void VanishIfEmpty(
      Shard& s,
      typename std::unordered_map<QualifiedKey, Folder,
                                  QualifiedKeyHash>::iterator it)
      DMEMO_REQUIRES(s.mu) {
    if (it->second.visible.empty() && it->second.delayed.empty()) {
      s.folders.erase(it);
      ++s.stats.folders_vanished;
    }
  }

  const std::uint64_t seed_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> alt_seq_{0};
  std::atomic<std::uint64_t> next_waiter_id_{1};
  mutable Mutex waiters_mu_{"FolderDirectory::waiters_mu"};
  std::unordered_map<std::uint64_t, WaiterPtr> registry_
      DMEMO_GUARDED_BY(waiters_mu_);
};

}  // namespace dmemo
