// The directory of unordered queues (paper Sec. 2 / 6).
//
// A folder is an unordered queue of memos; the directory maps keys to
// folders, creating folders on first use and letting them vanish when they
// become empty with nothing pending (the paper's future semantics: "the
// folder will vanish once the memo is removed").
//
// FolderDirectory is a template over the stored value type:
//   * FolderDirectory<TransferablePtr> backs the in-process engine (values
//     move by pointer, get_copy deep-copies via the codec);
//   * FolderDirectory<Bytes> backs folder servers (values arrive encoded).
// The synchronization, delayed-put and unordered-extraction semantics are
// identical, which is the point of sharing the implementation.
//
// Unordered extraction is deterministic-pseudorandom (seeded per directory)
// so "order must not be relied upon" is enforced while tests reproduce.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "folder/key.h"
#include "transferable/codec.h"
#include "transferable/transferable.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

// Copy and serialization policy per stored value type (get_copy, and the
// persistence snapshots of Sec. 3.1.3's "persistent data structures").
template <typename T>
struct MemoValueTraits;

template <>
struct MemoValueTraits<Bytes> {
  static Result<Bytes> Copy(const Bytes& v) { return v; }
  static void Encode(const Bytes& v, ByteWriter& out) { out.bytes(v); }
  static Result<Bytes> Decode(ByteReader& in) { return in.bytes(); }
  static bool Equal(const Bytes& a, const Bytes& b) { return a == b; }
};

// Folder servers store memos as IoBuf refs: the stored value shares the
// receive buffer's slices, a get_copy shares them again (slices are
// immutable, so "copy" is a descriptor copy), and only the persistence
// snapshot writes the bytes out.
template <>
struct MemoValueTraits<IoBuf> {
  static Result<IoBuf> Copy(const IoBuf& v) { return v; }
  static void Encode(const IoBuf& v, ByteWriter& out) {
    out.varint(v.size());
    v.CopyTo(out);
  }
  static Result<IoBuf> Decode(ByteReader& in) {
    DMEMO_ASSIGN_OR_RETURN(Bytes b, in.bytes());
    return IoBuf::FromBytes(std::move(b));
  }
  static bool Equal(const IoBuf& a, const IoBuf& b) { return a == b; }
};

template <>
struct MemoValueTraits<TransferablePtr> {
  static Result<TransferablePtr> Copy(const TransferablePtr& v) {
    if (v == nullptr) return TransferablePtr(nullptr);
    return CloneTransferable(*v);
  }
  static void Encode(const TransferablePtr& v, ByteWriter& out) {
    out.bytes(EncodeGraphToBytes(v));
  }
  static Result<TransferablePtr> Decode(ByteReader& in) {
    DMEMO_ASSIGN_OR_RETURN(Bytes encoded, in.bytes());
    return DecodeGraphFromBytes(encoded);
  }
  // Structural equality via the codec: the same graph encodes to the same
  // bytes, which is the identity WAL replay removes extractions by.
  static bool Equal(const TransferablePtr& a, const TransferablePtr& b) {
    if (a == nullptr || b == nullptr) return a == b;
    return EncodeGraphToBytes(a) == EncodeGraphToBytes(b);
  }
};

struct DirectoryStats {
  std::uint64_t puts = 0;
  std::uint64_t delayed_puts = 0;
  std::uint64_t delayed_releases = 0;
  std::uint64_t gets = 0;           // successful extractions
  std::uint64_t copies = 0;         // get_copy successes
  std::uint64_t blocked_waits = 0;  // times a get had to block
  std::uint64_t folders_created = 0;
  std::uint64_t folders_vanished = 0;
};

template <typename T>
class FolderDirectory {
 public:
  explicit FolderDirectory(std::uint64_t seed = 0xd3ed0ULL) : rng_(seed) {}

  FolderDirectory(const FolderDirectory&) = delete;
  FolderDirectory& operator=(const FolderDirectory&) = delete;

  // put: deposit and return immediately. Also releases any delayed memos
  // parked on this folder (Sec. 6.1.2 put_delayed trigger), which may chain.
  Status Put(const QualifiedKey& key, T value) {
    MutexLock lock(mu_);
    if (closed_) return CancelledError("directory closed");
    PutLocked(key, std::move(value));
    cv_.NotifyAll();
    return Status::Ok();
  }

  // put_delayed: hide `value` in key1 until the next memo arrives there,
  // then deposit it in key2. The hidden value is not extractable from key1.
  Status PutDelayed(const QualifiedKey& key1, const QualifiedKey& key2,
                    T value) {
    MutexLock lock(mu_);
    if (closed_) return CancelledError("directory closed");
    Folder& f = FolderFor(key1);
    f.delayed.emplace_back(key2, std::move(value));
    ++stats_.delayed_puts;
    return Status::Ok();
  }

  // get: blocking extraction.
  Result<T> Get(const QualifiedKey& key) {
    MutexLock lock(mu_);
    bool counted = false;
    for (;;) {
      if (closed_) return CancelledError("directory closed");
      if (auto v = TakeLocked(key)) return std::move(*v);
      if (!counted) {
        ++stats_.blocked_waits;
        counted = true;
      }
      cv_.Wait(mu_);
    }
  }

  // get with a deadline (used by servers to bound parked requests).
  Result<std::optional<T>> GetFor(const QualifiedKey& key,
                                  std::chrono::milliseconds timeout) {
    MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    bool counted = false;
    for (;;) {
      if (closed_) return CancelledError("directory closed");
      if (auto v = TakeLocked(key)) return std::optional<T>(std::move(*v));
      if (!counted) {
        ++stats_.blocked_waits;
        counted = true;
      }
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        if (auto v = TakeLocked(key)) return std::optional<T>(std::move(*v));
        return std::optional<T>(std::nullopt);
      }
    }
  }

  // get_skip: non-blocking; nullopt when the folder has no memo.
  Result<std::optional<T>> GetSkip(const QualifiedKey& key) {
    MutexLock lock(mu_);
    if (closed_) return CancelledError("directory closed");
    if (auto v = TakeLocked(key)) return std::optional<T>(std::move(*v));
    return std::optional<T>(std::nullopt);
  }

  // get_copy: blocking examine; the memo stays in the folder.
  Result<T> GetCopy(const QualifiedKey& key) {
    MutexLock lock(mu_);
    bool counted = false;
    for (;;) {
      if (closed_) return CancelledError("directory closed");
      if (auto v = PeekLocked(key)) {
        DMEMO_ASSIGN_OR_RETURN(T copy, MemoValueTraits<T>::Copy(*v));
        ++stats_.copies;
        return copy;
      }
      if (!counted) {
        ++stats_.blocked_waits;
        counted = true;
      }
      cv_.Wait(mu_);
    }
  }

  Result<std::optional<T>> GetCopyFor(const QualifiedKey& key,
                                      std::chrono::milliseconds timeout) {
    MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (closed_) return CancelledError("directory closed");
      if (auto v = PeekLocked(key)) {
        DMEMO_ASSIGN_OR_RETURN(T copy, MemoValueTraits<T>::Copy(*v));
        ++stats_.copies;
        return std::optional<T>(std::move(copy));
      }
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        return std::optional<T>(std::nullopt);
      }
    }
  }

  // get_alt: blocking extraction from any one of `keys`; when several are
  // eligible the choice is nondeterministic (pseudorandom).
  Result<std::pair<QualifiedKey, T>> GetAlt(
      std::span<const QualifiedKey> keys) {
    MutexLock lock(mu_);
    bool counted = false;
    for (;;) {
      if (closed_) return CancelledError("directory closed");
      if (auto v = TakeAltLocked(keys)) return std::move(*v);
      if (!counted) {
        ++stats_.blocked_waits;
        counted = true;
      }
      cv_.Wait(mu_);
    }
  }

  Result<std::optional<std::pair<QualifiedKey, T>>> GetAltFor(
      std::span<const QualifiedKey> keys, std::chrono::milliseconds timeout) {
    MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (closed_) return CancelledError("directory closed");
      if (auto v = TakeAltLocked(keys)) {
        return std::optional<std::pair<QualifiedKey, T>>(std::move(*v));
      }
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        if (auto v = TakeAltLocked(keys)) {
          return std::optional<std::pair<QualifiedKey, T>>(std::move(*v));
        }
        return std::optional<std::pair<QualifiedKey, T>>(std::nullopt);
      }
    }
  }

  // get_alt_skip: non-blocking variant.
  Result<std::optional<std::pair<QualifiedKey, T>>> GetAltSkip(
      std::span<const QualifiedKey> keys) {
    MutexLock lock(mu_);
    if (closed_) return CancelledError("directory closed");
    if (auto v = TakeAltLocked(keys)) {
      return std::optional<std::pair<QualifiedKey, T>>(std::move(*v));
    }
    return std::optional<std::pair<QualifiedKey, T>>(std::nullopt);
  }

  // Remove one memo content-equal to `value` from `key`; false when no
  // match is present. WAL replay uses this to redo a logged extraction:
  // which element the pseudorandom take picked is recorded by value, not
  // by index, so replay removes the same *content* regardless of rng
  // state. Folders are multisets, so removing any equal element is the
  // same state.
  bool TakeEqual(const QualifiedKey& key, const T& value) {
    MutexLock lock(mu_);
    auto it = folders_.find(key);
    if (it == folders_.end()) return false;
    auto& visible = it->second.visible;
    for (std::size_t i = 0; i < visible.size(); ++i) {
      if (!MemoValueTraits<T>::Equal(visible[i], value)) continue;
      std::swap(visible[i], visible.back());
      visible.pop_back();
      ++stats_.gets;
      VanishIfEmpty(it);
      return true;
    }
    return false;
  }

  // Number of extractable memos in the folder (0 when it vanished).
  std::size_t Count(const QualifiedKey& key) const {
    MutexLock lock(mu_);
    auto it = folders_.find(key);
    return it == folders_.end() ? 0 : it->second.visible.size();
  }

  // Folders currently materialized (extractable or with parked memos).
  std::size_t FolderCount() const {
    MutexLock lock(mu_);
    return folders_.size();
  }

  // Keys of all materialized folders belonging to `app` (any app when
  // empty). Used by the dynamic-data-migration path when an application's
  // folder-server placement changes.
  std::vector<QualifiedKey> Keys(const std::string& app = "") const {
    MutexLock lock(mu_);
    std::vector<QualifiedKey> out;
    for (const auto& [key, folder] : folders_) {
      if (app.empty() || key.app == app) out.push_back(key);
    }
    return out;
  }

  DirectoryStats GetStats() const {
    MutexLock lock(mu_);
    return stats_;
  }

  // ---- persistence (Sec. 3.1.3: "support for persistent data structures
  // is essential") -----------------------------------------------------
  //
  // Snapshot the whole directory — visible memos AND parked delayed puts —
  // into a byte stream; RestoreFrom rebuilds it (into an empty or
  // populated directory; restored memos add to what is there).

  // The snapshot is *canonical*: folders are ordered by encoded key and
  // each folder's contents by encoded bytes, so two directories holding
  // the same memo multisets snapshot to identical bytes even though
  // unordered_map iteration and swap-with-last extraction scramble the
  // in-memory order. Crash-recovery tests rely on this to compare a
  // recovered directory byte-for-byte against the pre-crash one; it costs
  // nothing semantically because folders are unordered and RestoreFrom is
  // order-agnostic.
  void SnapshotTo(ByteWriter& out) const {
    MutexLock lock(mu_);
    out.u32(kSnapshotMagic);
    out.u8(kSnapshotVersion);
    out.varint(folders_.size());
    std::vector<std::pair<Bytes, const Folder*>> ordered;
    ordered.reserve(folders_.size());
    for (const auto& [key, folder] : folders_) {
      ByteWriter k;
      key.EncodeTo(k);
      ordered.emplace_back(k.take(), &folder);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key_bytes, folder] : ordered) {
      out.raw(key_bytes);
      std::vector<Bytes> visible;
      visible.reserve(folder->visible.size());
      for (const T& v : folder->visible) {
        ByteWriter w;
        MemoValueTraits<T>::Encode(v, w);
        visible.push_back(w.take());
      }
      std::sort(visible.begin(), visible.end());
      out.varint(visible.size());
      for (const Bytes& v : visible) out.raw(v);
      std::vector<Bytes> delayed;
      delayed.reserve(folder->delayed.size());
      for (const auto& [dest, v] : folder->delayed) {
        ByteWriter w;
        dest.EncodeTo(w);
        MemoValueTraits<T>::Encode(v, w);
        delayed.push_back(w.take());
      }
      std::sort(delayed.begin(), delayed.end());
      out.varint(delayed.size());
      for (const Bytes& d : delayed) out.raw(d);
    }
  }

  Status RestoreFrom(ByteReader& in) {
    DMEMO_ASSIGN_OR_RETURN(std::uint32_t magic, in.u32());
    if (magic != kSnapshotMagic) {
      return DataLossError("not a folder-directory snapshot");
    }
    DMEMO_ASSIGN_OR_RETURN(std::uint8_t version, in.u8());
    if (version != kSnapshotVersion) {
      return UnimplementedError("unsupported snapshot version " +
                                std::to_string(version));
    }
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_folders, in.varint());
    MutexLock lock(mu_);
    if (closed_) return CancelledError("directory closed");
    for (std::uint64_t f = 0; f < n_folders; ++f) {
      DMEMO_ASSIGN_OR_RETURN(QualifiedKey key, QualifiedKey::DecodeFrom(in));
      Folder& folder = FolderFor(key);
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_visible, in.varint());
      for (std::uint64_t i = 0; i < n_visible; ++i) {
        DMEMO_ASSIGN_OR_RETURN(T v, MemoValueTraits<T>::Decode(in));
        folder.visible.push_back(std::move(v));
        ++stats_.puts;
      }
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_delayed, in.varint());
      for (std::uint64_t i = 0; i < n_delayed; ++i) {
        DMEMO_ASSIGN_OR_RETURN(QualifiedKey dest,
                               QualifiedKey::DecodeFrom(in));
        DMEMO_ASSIGN_OR_RETURN(T v, MemoValueTraits<T>::Decode(in));
        folder.delayed.emplace_back(std::move(dest), std::move(v));
        ++stats_.delayed_puts;
      }
      // A snapshot never contains an empty folder (they vanish), but a
      // merge target might end up one; keep the invariant.
      if (folder.visible.empty() && folder.delayed.empty()) {
        folders_.erase(folders_.find(key));
      }
    }
    cv_.NotifyAll();  // restored memos may satisfy parked gets
    return Status::Ok();
  }

  // Wake every blocked get with CANCELLED and refuse further operations.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  static constexpr std::uint32_t kSnapshotMagic = 0xd3ed0f01;
  static constexpr std::uint8_t kSnapshotVersion = 1;

  struct Folder {
    std::vector<T> visible;
    std::vector<std::pair<QualifiedKey, T>> delayed;
  };

  Folder& FolderFor(const QualifiedKey& key) DMEMO_REQUIRES(mu_) {
    auto [it, inserted] = folders_.try_emplace(key);
    if (inserted) ++stats_.folders_created;
    return it->second;
  }

  void PutLocked(const QualifiedKey& key, T value) DMEMO_REQUIRES(mu_) {
    // Iterative release: a deposit may release delayed memos whose arrival
    // in key2 releases further delayed memos — a dataflow chain. A work
    // list avoids recursion while the lock is held.
    std::vector<std::pair<QualifiedKey, T>> work;
    work.emplace_back(key, std::move(value));
    while (!work.empty()) {
      auto [k, v] = std::move(work.back());
      work.pop_back();
      Folder& f = FolderFor(k);
      f.visible.push_back(std::move(v));
      ++stats_.puts;
      if (!f.delayed.empty()) {
        stats_.delayed_releases += f.delayed.size();
        // Arrival of a memo releases every memo parked on this folder.
        auto released = std::move(f.delayed);
        f.delayed.clear();
        for (auto& entry : released) work.push_back(std::move(entry));
      }
    }
  }

  std::optional<T> TakeLocked(const QualifiedKey& key)
      DMEMO_REQUIRES(mu_) {
    auto it = folders_.find(key);
    if (it == folders_.end() || it->second.visible.empty()) {
      return std::nullopt;
    }
    auto& visible = it->second.visible;
    // Unordered: extract a pseudorandom element (swap-with-last removal).
    const std::size_t idx =
        static_cast<std::size_t>(rng_.NextBelow(visible.size()));
    std::swap(visible[idx], visible.back());
    T value = std::move(visible.back());
    visible.pop_back();
    ++stats_.gets;
    VanishIfEmpty(it);
    return value;
  }

  const T* PeekLocked(const QualifiedKey& key) DMEMO_REQUIRES(mu_) {
    auto it = folders_.find(key);
    if (it == folders_.end() || it->second.visible.empty()) return nullptr;
    auto& visible = it->second.visible;
    const std::size_t idx =
        static_cast<std::size_t>(rng_.NextBelow(visible.size()));
    return &visible[idx];
  }

  std::optional<std::pair<QualifiedKey, T>> TakeAltLocked(
      std::span<const QualifiedKey> keys) DMEMO_REQUIRES(mu_) {
    // Collect eligible alternatives, then pick one pseudorandomly
    // ("nondeterministically return a value from an eligible folder").
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto it = folders_.find(keys[i]);
      if (it != folders_.end() && !it->second.visible.empty()) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) return std::nullopt;
    const std::size_t pick =
        eligible[static_cast<std::size_t>(rng_.NextBelow(eligible.size()))];
    auto value = TakeLocked(keys[pick]);
    return std::make_pair(keys[pick], std::move(*value));
  }

  void VanishIfEmpty(
      typename std::unordered_map<QualifiedKey, Folder,
                                  QualifiedKeyHash>::iterator it)
      DMEMO_REQUIRES(mu_) {
    if (it->second.visible.empty() && it->second.delayed.empty()) {
      folders_.erase(it);
      ++stats_.folders_vanished;
    }
  }

  mutable Mutex mu_{"FolderDirectory::mu"};
  CondVar cv_;
  std::unordered_map<QualifiedKey, Folder, QualifiedKeyHash> folders_
      DMEMO_GUARDED_BY(mu_);
  SplitMix64 rng_ DMEMO_GUARDED_BY(mu_);
  DirectoryStats stats_ DMEMO_GUARDED_BY(mu_);
  bool closed_ DMEMO_GUARDED_BY(mu_) = false;
};

}  // namespace dmemo
