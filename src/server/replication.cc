#include "server/replication.h"

#include <algorithm>
#include <cstdlib>

#include "util/hash.h"
#include "util/log.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/trace.h"

namespace dmemo {
namespace {

constexpr std::uint8_t kReplPayloadVersion = 1;

// Bound a decoder accepts for one append batch; a malformed count past
// this is DATA_LOSS, not an allocation.
constexpr std::uint64_t kMaxReplBatchWire = 65536;

}  // namespace

ReplMode ReplModeFromEnv() {
  const char* v = std::getenv("DMEMO_REPL_MODE");
  if (v == nullptr || *v == '\0') return ReplMode::kOff;
  const std::string s(v);
  if (s == "off") return ReplMode::kOff;
  if (s == "async") return ReplMode::kAsync;
  if (s == "semisync") return ReplMode::kSemiSync;
  DMEMO_LOG(kWarn) << "DMEMO_REPL_MODE='" << s
                   << "' not recognized (off|async|semisync); using off";
  return ReplMode::kOff;
}

std::chrono::milliseconds ReplTimeoutFromEnv() {
  return std::chrono::milliseconds(EnvInt("DMEMO_REPL_TIMEOUT_MS", 1000));
}

std::string_view ReplModeName(ReplMode mode) {
  switch (mode) {
    case ReplMode::kOff: return "off";
    case ReplMode::kAsync: return "async";
    case ReplMode::kSemiSync: return "semisync";
  }
  return "unknown";
}

IoBuf EncodeReplSnapshot(const ReplSnapshotPayload& payload) {
  ByteWriter out;
  out.u8(kReplPayloadVersion);
  out.varint(static_cast<std::uint64_t>(payload.fs_id));
  out.str(payload.primary_host);
  out.u64(payload.epoch);
  out.u64(payload.watermark);
  out.bytes(payload.snapshot);
  return IoBuf::FromBytes(out.take());
}

Result<ReplSnapshotPayload> DecodeReplSnapshot(const IoBuf& value) {
  // analyze:allow(zero-copy) control path; decoded once, not relayed
  const Bytes flat = value.Flatten();
  ByteReader in(flat);
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t version, in.u8());
  if (version != kReplPayloadVersion) {
    return DataLossError("unknown repl_snapshot payload version " +
                         std::to_string(version));
  }
  ReplSnapshotPayload payload;
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t fs_id, in.varint());
  payload.fs_id = static_cast<int>(fs_id);
  DMEMO_ASSIGN_OR_RETURN(payload.primary_host, in.str());
  DMEMO_ASSIGN_OR_RETURN(payload.epoch, in.u64());
  DMEMO_ASSIGN_OR_RETURN(payload.watermark, in.u64());
  DMEMO_ASSIGN_OR_RETURN(payload.snapshot, in.bytes());
  return payload;
}

IoBuf EncodeReplAppend(const ReplAppendPayload& payload) {
  ByteWriter out;
  out.u8(kReplPayloadVersion);
  out.varint(static_cast<std::uint64_t>(payload.fs_id));
  out.str(payload.primary_host);
  out.u64(payload.epoch);
  out.varint(payload.records.size());
  for (const ReplRecord& r : payload.records) {
    out.u64(r.seq);
    out.u8(r.record.op);
    out.u64(r.record.request_id);
    out.bytes(r.record.key);
    out.bytes(r.record.key2);
    out.varint(r.record.payload.size());
    r.record.payload.CopyTo(out);
  }
  return IoBuf::FromBytes(out.take());
}

Result<ReplAppendPayload> DecodeReplAppend(const IoBuf& value) {
  // analyze:allow(zero-copy) control path; applied once onto the standby
  const Bytes flat = value.Flatten();
  ByteReader in(flat);
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t version, in.u8());
  if (version != kReplPayloadVersion) {
    return DataLossError("unknown repl_append payload version " +
                         std::to_string(version));
  }
  ReplAppendPayload payload;
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t fs_id, in.varint());
  payload.fs_id = static_cast<int>(fs_id);
  DMEMO_ASSIGN_OR_RETURN(payload.primary_host, in.str());
  DMEMO_ASSIGN_OR_RETURN(payload.epoch, in.u64());
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t count, in.varint());
  if (count > kMaxReplBatchWire) {
    return DataLossError("repl_append declares " + std::to_string(count) +
                         " records");
  }
  payload.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ReplRecord r;
    DMEMO_ASSIGN_OR_RETURN(r.seq, in.u64());
    DMEMO_ASSIGN_OR_RETURN(r.record.op, in.u8());
    DMEMO_ASSIGN_OR_RETURN(r.record.request_id, in.u64());
    DMEMO_ASSIGN_OR_RETURN(r.record.key, in.bytes());
    DMEMO_ASSIGN_OR_RETURN(r.record.key2, in.bytes());
    DMEMO_ASSIGN_OR_RETURN(Bytes body, in.bytes());
    r.record.payload = IoBuf::FromBytes(std::move(body));
    payload.records.push_back(std::move(r));
  }
  return payload;
}

ReplicationShipper::ReplicationShipper(Options options, TransmitFn transmit,
                                       SnapshotFn snapshot, EpochFn epoch)
    : options_(std::move(options)),
      transmit_(std::move(transmit)),
      snapshot_(std::move(snapshot)),
      epoch_(std::move(epoch)) {
  const std::string labels = "fs=\"" + std::to_string(options_.fs_id) + "@" +
                             options_.primary_host + "\",peer=\"" +
                             options_.backup_host + "\"";
  auto& registry = MetricsRegistry::Global();
  records_shipped_ =
      registry.GetCounter("dmemo_repl_records_shipped_total", labels);
  batches_ = registry.GetCounter("dmemo_repl_batches_total", labels);
  snapshots_ =
      registry.GetCounter("dmemo_repl_snapshots_shipped_total", labels);
  semisync_waits_ =
      registry.GetCounter("dmemo_repl_semisync_waits_total", labels);
  degraded_ = registry.GetCounter("dmemo_repl_degraded_total", labels);
  overflows_ =
      registry.GetCounter("dmemo_repl_queue_overflows_total", labels);
}

ReplicationShipper::~ReplicationShipper() { Stop(); }

void ReplicationShipper::Start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { Loop(); });
}

void ReplicationShipper::Stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    work_cv_.NotifyAll();
    shipped_cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
}

std::uint64_t ReplicationShipper::Enqueue(const WalRecord& record) {
  MutexLock lock(mu_);
  const std::uint64_t seq = ++last_seq_;
  if (stop_ || fenced_) return seq;
  // While a snapshot bootstrap is pending, the record is already applied
  // to the primary directory, so the snapshot's watermark will cover it —
  // queueing it too would double-apply on the backup.
  if (needs_snapshot_) return seq;
  if (queue_.size() >= options_.max_queue) {
    queue_.clear();
    needs_snapshot_ = true;
    overflows_->Increment();
    DMEMO_LOG(kWarn) << "repl fs " << options_.fs_id << "@"
                     << options_.primary_host << " -> "
                     << options_.backup_host << ": queue overflowed at "
                     << options_.max_queue
                     << " records; re-bootstrapping from snapshot";
    work_cv_.NotifyAll();
    return seq;
  }
  ReplRecord r;
  r.seq = seq;
  r.record = record;  // keys copy; the IoBuf payload shares slices
  queue_.push_back(std::move(r));
  work_cv_.NotifyAll();
  return seq;
}

void ReplicationShipper::WaitShipped(std::uint64_t seq) {
  if (options_.mode != ReplMode::kSemiSync || seq == 0) return;
  semisync_waits_->Increment();
  const auto deadline =
      std::chrono::steady_clock::now() + options_.semisync_timeout;
  MutexLock lock(mu_);
  while (!stop_ && !fenced_ && shipped_seq_ < seq) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      degraded_->Increment();
      DMEMO_LOG(kWarn) << "repl fs " << options_.fs_id << "@"
                       << options_.primary_host
                       << ": semisync ack degraded to async (record " << seq
                       << " not shipped to " << options_.backup_host
                       << " within "
                       << options_.semisync_timeout.count() << "ms)";
      return;
    }
    shipped_cv_.WaitFor(mu_, now >= deadline
                                 ? std::chrono::nanoseconds(0)
                                 : std::chrono::duration_cast<
                                       std::chrono::nanoseconds>(deadline -
                                                                 now));
  }
}

std::uint64_t ReplicationShipper::last_seq() const {
  MutexLock lock(mu_);
  return last_seq_;
}

std::uint64_t ReplicationShipper::shipped_seq() const {
  MutexLock lock(mu_);
  return shipped_seq_;
}

bool ReplicationShipper::fenced() const {
  MutexLock lock(mu_);
  return fenced_;
}

void ReplicationShipper::Loop() {
  SplitMix64 rng(Mix64(static_cast<std::uint64_t>(options_.fs_id) ^
                       std::hash<std::string>{}(options_.backup_host)));
  for (;;) {
    bool do_snapshot = false;
    std::vector<ReplRecord> batch;
    {
      MutexLock lock(mu_);
      while (!stop_ && !fenced_ && !needs_snapshot_ && queue_.empty()) {
        work_cv_.Wait(mu_);
      }
      if (stop_ || fenced_) return;
      do_snapshot = needs_snapshot_;
      if (!do_snapshot) {
        while (!queue_.empty() && batch.size() < options_.max_batch) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }
    const bool ok =
        do_snapshot ? ShipSnapshot() : ShipBatch(std::move(batch));
    if (!ok) {
      // Jittered backoff (±25%) so N shippers chasing one recovering
      // backup do not re-dial in lockstep.
      const auto base = std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.retry_backoff);
      const auto wait = std::chrono::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(base.count()) * (0.75 + 0.5 * rng.NextUnit())));
      MutexLock lock(mu_);
      if (stop_ || fenced_) return;
      work_cv_.WaitFor(mu_, wait);
    }
  }
}

ReplicationShipper::Answer ReplicationShipper::Classify(
    const Result<Response>& resp) {
  if (!resp.ok()) return Answer::kRetry;  // transport error / timeout
  switch (resp->code) {
    case StatusCode::kOk:
      return Answer::kOk;
    case StatusCode::kFailedPrecondition:
      return Answer::kFenced;
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return Answer::kRebootstrap;
    default:
      return Answer::kRetry;
  }
}

void ReplicationShipper::Fence(const std::string& detail) {
  {
    MutexLock lock(mu_);
    if (fenced_) return;
    fenced_ = true;
    queue_.clear();
    work_cv_.NotifyAll();
    shipped_cv_.NotifyAll();
  }
  DMEMO_LOG(kWarn) << "repl fs " << options_.fs_id << "@"
                   << options_.primary_host << ": backup "
                   << options_.backup_host
                   << " fenced this primary off (it promoted under a higher "
                      "epoch); shipping stops permanently: "
                   << detail;
}

bool ReplicationShipper::ShipSnapshot() {
  auto payload = snapshot_();
  if (!payload.ok()) {
    DMEMO_LOG(kWarn) << "repl fs " << options_.fs_id << "@"
                     << options_.primary_host << ": snapshot for backup "
                     << options_.backup_host
                     << " failed: " << payload.status().ToString();
    return false;
  }
  const std::uint64_t watermark = payload->watermark;
  Request req;
  req.op = Op::kReplSnapshot;
  req.trace_id = NextTraceId();
  req.value = EncodeReplSnapshot(*payload);
  auto resp = transmit_(std::move(req));
  switch (Classify(resp)) {
    case Answer::kOk: {
      {
        MutexLock lock(mu_);
        needs_snapshot_ = false;
        while (!queue_.empty() && queue_.front().seq <= watermark) {
          queue_.pop_front();
        }
        if (watermark > shipped_seq_) shipped_seq_ = watermark;
        shipped_cv_.NotifyAll();
      }
      snapshots_->Increment();
      DMEMO_LOG(kInfo) << "repl fs " << options_.fs_id << "@"
                       << options_.primary_host << ": bootstrapped backup "
                       << options_.backup_host << " at watermark "
                       << watermark;
      return true;
    }
    case Answer::kFenced:
      Fence(resp.ok() ? resp->message : resp.status().ToString());
      return true;
    case Answer::kRebootstrap:
    case Answer::kRetry:
      return false;
  }
  return false;
}

bool ReplicationShipper::ShipBatch(std::vector<ReplRecord> batch) {
  if (batch.empty()) return true;
  ReplAppendPayload payload;
  payload.fs_id = options_.fs_id;
  payload.primary_host = options_.primary_host;
  payload.epoch = epoch_();
  const std::uint64_t high = batch.back().seq;
  payload.records = std::move(batch);
  Request req;
  req.op = Op::kReplAppend;
  req.trace_id = NextTraceId();
  req.value = EncodeReplAppend(payload);
  auto resp = transmit_(std::move(req));
  switch (Classify(resp)) {
    case Answer::kOk: {
      {
        MutexLock lock(mu_);
        if (high > shipped_seq_) shipped_seq_ = high;
        shipped_cv_.NotifyAll();
      }
      records_shipped_->Add(payload.records.size());
      batches_->Increment();
      return true;
    }
    case Answer::kFenced:
      Fence(resp.ok() ? resp->message : resp.status().ToString());
      return true;
    case Answer::kRebootstrap: {
      // The backup lost (or never had) the standby, or saw a sequence gap
      // (a torn shipped tail): these records are already folded into the
      // primary directory, so the fresh snapshot covers them — drop the
      // batch and bootstrap.
      MutexLock lock(mu_);
      needs_snapshot_ = true;
      return true;
    }
    case Answer::kRetry: {
      // Transport trouble: put the batch back in order and back off.
      MutexLock lock(mu_);
      if (!stop_ && !fenced_ && !needs_snapshot_) {
        for (auto it = payload.records.rbegin();
             it != payload.records.rend(); ++it) {
          queue_.push_front(std::move(*it));
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace dmemo
