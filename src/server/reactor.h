// Event-driven server core (DESIGN.md §14).
//
// One epoll thread drives every inbound connection: non-blocking accept,
// non-blocking frame reads, asynchronous dispatch through
// MemoServer::HandleAsync, and non-blocking gather writes with EPOLLOUT
// resumption. Each in-flight request is a small state machine — decoded,
// dispatched, parked (as a directory waiter continuation or a peer-channel
// completion), answered — instead of a thread blocked per connection, so
// the core sustains tens of thousands of idle-or-parked connections with a
// single thread.
//
// Completions arrive from anywhere (inline on the loop, a depositing
// thread's directory delivery, a peer reader thread, a pool worker); a
// mutex-protected queue plus an eventfd marshals them back onto the loop,
// which owns all connection state. Responses produced in one loop pass
// coalesce per connection: replies to requests that arrived in a packed
// kind-3 frame leave as a packed frame, single-op requests answer as
// single frames (the same contract as the threaded RpcChannel).
//
// The io_uring backend is stubbed behind the DMEMO_IO_URING build flag:
// the container toolchain has no liburing, so the flag only logs intent
// and the epoll loop serves (see reactor.cc).
//
// Lock ranking: mu_ is a leaf — the loop and every producer take it only
// around queue/flag flips, never while calling out.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "transport/transport.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

class MemoServer;

class Reactor {
 public:
  // `server` and `listener` must outlive the reactor; the listener must
  // expose a pollable descriptor (readiness_fd() >= 0).
  Reactor(MemoServer* server, Listener* listener);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Set up epoll + the wake eventfd, switch the listener non-blocking, and
  // start the loop thread.
  Status Start();

  // Stop the loop, join it, cancel every parked request, close every
  // inbound connection. Idempotent.
  void Shutdown();

 private:
  // One response waiting to leave with the current loop pass.
  struct PendingResponse {
    std::uint64_t rpc_id = 0;
    bool batched = false;  // arrived inside a kind-3 frame
    Response response;
  };

  // Per-connection request state. Owned and touched by the loop thread
  // only (completions cross over via the queue).
  struct Conn {
    std::uint64_t id = 0;
    ConnectionPtr conn;
    int fd = -1;
    bool want_write = false;  // EPOLLOUT armed (buffered partial send)
    // rpc id -> revocation hook for requests parked in the server (a
    // directory waiter or an at-most-once claim). Hook returns true when
    // the revoke won and no response will ever arrive.
    std::unordered_map<std::uint64_t, std::function<bool()>> parked;
    // Responses accumulated this pass, flushed before the next wait.
    std::vector<PendingResponse> out;
  };

  // A completed request crossing threads back onto the loop.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t rpc_id = 0;
    bool batched = false;
    Response response;
  };

  void Loop();
  void OnAccept();
  void OnReadable(Conn& c);
  void OnWritable(Conn& c);
  // Decode one wire frame (kind 1 request, kind 3 packed) and dispatch.
  void HandleFrame(Conn& c, const IoBuf& frame);
  void Dispatch(Conn& c, std::uint64_t rpc_id, const Request& request,
                bool batched);
  // Thread-safe completion entry point (the `done` continuation).
  void QueueResponse(std::uint64_t conn_id, std::uint64_t rpc_id,
                     bool batched, Response response);
  // Move queued completions into their connections' out lists.
  void DrainCompletions();
  // Append a response on the loop thread and mark the conn dirty.
  void PlaceResponse(std::uint64_t conn_id, std::uint64_t rpc_id,
                     bool batched, Response response);
  // Encode and send everything in dirty conns' out lists.
  void FlushDirty();
  void FlushConn(Conn& c);
  void UpdateEvents(Conn& c);
  void CloseConn(std::uint64_t conn_id);
  void FireDeadlines();
  int NextTimeoutMs() const;
  // Accept failed outright (fd exhaustion, not an empty backlog): a
  // level-triggered listener would re-trigger every pass and spin the loop
  // hot, so unregister it and schedule a re-arm via the deadline heap.
  void DisarmListener();
  void RearmListener();

  MemoServer* server_;
  Listener* listener_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::atomic<std::thread::id> loop_tid_{};

  // Loop-thread state (no lock: single owner).
  bool listener_armed_ = true;  // false while backing off a failed accept
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<std::uint64_t> dirty_;  // conns with queued responses
  // (expiry, conn id, rpc id) min-heap for request deadlines.
  using Deadline = std::tuple<std::chrono::steady_clock::time_point,
                              std::uint64_t, std::uint64_t>;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<Deadline>>
      deadlines_;

  // Cross-thread completion queue.
  mutable Mutex mu_{"Reactor::mu"};
  std::vector<Completion> completions_ DMEMO_GUARDED_BY(mu_);
  bool wake_closed_ DMEMO_GUARDED_BY(mu_) = false;

  // dmemo_reactor_* observability handles (docs/OBSERVABILITY.md).
  Gauge* connections_ = nullptr;
  Gauge* parked_waiters_ = nullptr;
  Counter* accepts_total_ = nullptr;
  Counter* frames_total_ = nullptr;
  Counter* requests_total_ = nullptr;
  Counter* wakeups_total_ = nullptr;
  Counter* deadline_expirations_total_ = nullptr;
};

}  // namespace dmemo
