// D-Memo wire protocol.
//
// Every peer link (application <-> memo server, memo server <-> memo server)
// carries length-framed messages of two kinds: requests and responses,
// correlated by a channel-local id so many requests — including parked
// blocking gets — can be in flight on one connection at once.
//
// A request names the application, the operation, and (for relayed traffic)
// the destination machine; intermediate memo servers increment hop_count as
// they relay along the ADF topology, which is how the topology experiments
// observe real hop counts.
//
// Trace context (util/trace.h): every request carries a 64-bit trace id,
// minted by the originating client (or by the first memo server to see an
// untraced request) and preserved across relays; each component records a
// span keyed by it, and the response echoes it back so callers can confirm
// which trace served them.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "folder/key.h"
#include "util/bytes.h"
#include "util/iobuf.h"
#include "util/status.h"

namespace dmemo {

// ---- RPC frame kinds (PROTOCOL.md §2) ----
//
// A frame is `u8 kind, u64 id, body`. Kinds 1/2 carry one Request/Response
// correlated by `id`. Kind 3 is the packed multi-op frame produced by the
// rpc-formation layer (server/rpc_formation.h): `id` holds the entry count
// and the body is that many entries of `u8 kind (1|2), u64 id, varint len,
// len body bytes` — each entry body byte-identical to the body of the
// equivalent single-op frame, so packing never re-encodes a message.
inline constexpr std::uint8_t kFrameKindRequest = 1;
inline constexpr std::uint8_t kFrameKindResponse = 2;
inline constexpr std::uint8_t kFrameKindBatch = 3;

// Upper bound a decoder accepts for the declared entry count of one batch
// frame; a malformed count past this is DATA_LOSS, not an allocation.
inline constexpr std::uint64_t kMaxBatchEntriesWire = 65536;

// One message riding a packed frame: the kind/id pair it would have carried
// as a standalone frame, plus its encoded body (shared slices, not copied).
struct BatchEntry {
  std::uint8_t kind = kFrameKindRequest;
  std::uint64_t id = 0;
  IoBuf body;
};

// Packs `entries` into one kind-3 frame: a header buffer chained to each
// entry's header bytes and shared body slices. Payload bytes are referenced,
// never copied, so the gather send path emits them from their original
// blocks. Requires at least one entry.
IoBuf EncodeBatchFrame(std::span<const BatchEntry> entries);

// Decodes the entries of a batch frame whose `u8 kind, u64 id` prefix was
// already consumed (`declared_count` is that id). Entry bodies alias the
// frame's backing block — zero-copy, same contract as Request::DecodeFrom.
Result<std::vector<BatchEntry>> DecodeBatchEntries(
    IoBufReader& in, std::uint64_t declared_count);

enum class Op : std::uint8_t {
  kPut = 1,
  kPutDelayed,
  kGet,
  kGetCopy,
  kGetSkip,
  kGetAlt,
  kGetAltSkip,
  kCount,        // extractable memos in a folder (diagnostics)
  kRegisterApp,  // store the app's ADF / routing table (Sec. 4.4)
  kPing,         // liveness probe
  kStats,        // server introspection: stats as an encoded TRecord
  kMetrics,      // structured metrics + trace spans as an encoded TRecord
  kHeartbeat,    // liveness + epoch gossip between memo servers; request
                 // and response value are an encoded TRecord of the
                 // sender's folder-server epochs (DESIGN.md "Durability &
                 // liveness")
  kReplSnapshot, // primary -> backup cold bootstrap: folder-server id,
                 // epoch, replication watermark and a full directory
                 // snapshot (server/replication.h framing, raw ByteWriter)
  kReplAppend,   // primary -> backup WAL record batch: sequenced records
                 // applied into the warm standby directory in log order
  kGossip,       // SWIM membership exchange: direct ping or ping-req
                 // indirection; value is an encoded TRecord carrying the
                 // sender's incarnation plus piggybacked membership
                 // updates and folder-server epochs (DESIGN.md §15)
};

std::string_view OpName(Op op);

// Ops that deposit or extract memos. Exactly these are unsafe to blindly
// re-execute on a retransmit, so clients mint a request id for them and
// servers run them through the at-most-once completion cache
// (server/completion_cache.h). kGetCopy does not mutate but can park, so a
// retry must join the in-flight call instead of parking a second handler.
bool OpNeedsAtMostOnce(Op op);

// Ops whose handler can park indefinitely on folder state (a blocking get
// against an empty folder). Exactly these need a worker thread of their own
// when a packed frame is dispatched; everything else returns promptly (a
// relay hop at worst) and can share one sequential worker — on small
// machines that keeps a 64-op frame from fanning out into 64 context
// switches, and it makes the responses land in the formation queue
// back-to-back so they coalesce by size instead of fragmenting across
// deadline flushes.
bool OpMayPark(Op op);

// Fresh nonzero request id (client-side mint; thread-local generator, no
// coordination — same construction as NextTraceId).
std::uint64_t NextRequestId();

struct Request {
  Op op = Op::kPing;
  std::string app;
  std::string target_host;  // owning machine; "" = resolve at first server
  std::uint8_t hop_count = 0;
  std::uint64_t trace_id = 0;  // 0 = untraced; first server assigns one
  // At-most-once identity, minted by the originating client and preserved
  // verbatim across retransmits and relays. 0 = fire-and-forget (no dedupe:
  // idempotent ops, legacy clients).
  std::uint64_t request_id = 0;
  // Remaining whole-call budget in milliseconds, refreshed by the client on
  // every (re)transmit; servers use it to bound forwarding waits. 0 = no
  // deadline.
  std::uint32_t deadline_ms = 0;
  // Fencing epoch the sender believes the target folder server is serving
  // under. 0 = unfenced (normal client traffic; always accepted). A nonzero
  // epoch that does not match the folder server's current epoch is rejected
  // with FAILED_PRECONDITION, so a zombie process holding a pre-failover
  // epoch can never double-apply a mutation. Relays preserve it verbatim.
  std::uint64_t epoch = 0;

  Key key;                 // put/get/...; put_delayed's key1
  Key key2;                // put_delayed's destination folder
  std::vector<Key> alts;   // get_alt / get_alt_skip
  IoBuf value;             // encoded transferable graph (puts); shared slices
  std::string text;        // ADF text (register_app)

  // Legacy single-buffer encode: appends the whole message (payload copy
  // included) to `out`. Wire format identical to EncodeToIoBuf.
  void EncodeTo(ByteWriter& out) const;
  // Zero-copy encode: a small header buffer chained to the shared payload
  // slices (plus a tail buffer for the fields after `value`). The payload
  // bytes are referenced, not copied.
  IoBuf EncodeToIoBuf() const;
  static Result<Request> DecodeFrom(ByteReader& in);
  // Zero-copy decode: `value` aliases the reader's backing block.
  static Result<Request> DecodeFrom(IoBufReader& in);
};

// Relay fast path (MemoServer::ForwardToward): restamp the routing fields a
// hop rewrites — target_host, hop_count, deadline_ms — without touching the
// payload. `request.value`'s slices still alias the bytes received from the
// upstream peer afterwards (asserted pointer-identical in property_test),
// so relaying re-encodes a few header bytes and gather-sends the original
// payload block. Byte-level in-place patching of an encoded frame is not
// possible in this wire format: deadline_ms is a varint (restamped on every
// transmit, so its length changes) and target_host is length-prefixed.
void PatchHeaderInPlace(Request& request, std::string_view target_host,
                        std::uint8_t hop_count, std::uint32_t deadline_ms);

struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool has_value = false;
  IoBuf value;
  bool has_key = false;  // get_alt: which folder supplied the value
  Key key;
  std::uint64_t count = 0;     // kCount result
  std::uint8_t hop_count = 0;  // hops the request travelled (diagnostics)
  std::uint64_t trace_id = 0;  // echo of the request's trace id

  void EncodeTo(ByteWriter& out) const;
  IoBuf EncodeToIoBuf() const;
  static Result<Response> DecodeFrom(ByteReader& in);
  static Result<Response> DecodeFrom(IoBufReader& in);

  static Response FromStatus(const Status& status);
  Status ToStatus() const;
};

// Continuation used by the reactor core's asynchronous handler chain
// (MemoServer::HandleAsync -> FolderServer::HandleAsync): invoked exactly
// once with the response, possibly on a different thread than the caller's
// (a directory-delivery thread, a peer reader thread, or inline). The
// callback must not block — it typically just enqueues the response on the
// reactor's completion queue.
using ResponseCallback = std::function<void(Response)>;

}  // namespace dmemo
