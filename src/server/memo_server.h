// Memo server (paper Sec. 4.1, Figures 1 and 2).
//
// One memo server per machine. It listens for connections from applications
// and from other memo servers; each request is handled on a cached thread
// (Sec. 4.1). For every registered application it holds that application's
// routing table (Sec. 4.4: "each memo server is loaded with unique routing
// tables for each application") and the folder servers the ADF places on
// this machine.
//
// Request flow: the folder key is hashed (cost-weighted, Sec. 5) to a folder
// server. If it is local, the request is served through a direct call — the
// Figure-1 intra-machine path. Otherwise the request is forwarded to the
// next memo server along the ADF topology's cheapest path (Figure 2);
// intermediate servers relay, incrementing hop_count, so logical topologies
// with intermediate hops behave as drawn.
//
// get_alt whose alternatives hash to different folder servers cannot park on
// a single directory; the origin server rotates bounded waits across the
// owning servers instead (documented deviation: the paper does not specify
// the cross-server case).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "routing/routing.h"
#include "server/completion_cache.h"
#include "server/folder_server.h"
#include "server/gossip.h"
#include "server/resilient_channel.h"
#include "server/rpc_channel.h"
#include "transport/transport.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"
#include "util/worker_pool.h"

namespace dmemo {

// DMEMO_HEARTBEAT_INTERVAL_MS (default 1000; 0 disables the detector) and
// DMEMO_HEARTBEAT_MISSES (default 3).
std::chrono::milliseconds HeartbeatIntervalFromEnv();
int HeartbeatMissesFromEnv();

class Reactor;

// Which I/O core drives inbound connections (DESIGN.md §14).
//   kThreads  thread-per-connection AcceptLoop + RpcChannel reader threads
//             (the paper's model; the legacy core during the transition)
//   kReactor  one epoll event loop, non-blocking I/O, request state
//             machines; parked gets become directory waiter continuations
enum class ServerCore { kThreads, kReactor };

// DMEMO_SERVER_CORE=threads|reactor (default threads). The reactor needs a
// pollable listener (tcp:// / unix://); sim:// falls back to threads.
ServerCore ServerCoreFromEnv();

struct MemoServerOptions {
  std::string host;        // this machine's name in ADF terms
  std::string listen_url;  // transport address to listen on
  // Machine name -> dialable memo-server URL for every machine that may
  // appear in a registered ADF (the system installation map).
  std::unordered_map<std::string, std::string> peers;
  WorkerPool::Options pool;
  // How long one rotation waits per folder-server group in the split
  // get_alt path.
  std::chrono::milliseconds alt_rotation{2};
  // Persistence (Sec. 3.1.3): when non-empty, each folder server loads
  // <persist_dir>/fs-<id>.dmemo at materialization and snapshots back on
  // shutdown, so the memo space survives server restarts.
  std::string persist_dir;
  // Reconnect/retry policy for the peer links this server dials when
  // forwarding (DESIGN.md "Fault tolerance"). Env-tunable by default.
  RetryPolicy forward_retry = RetryPolicy::FromEnv();
  // Failure detector (DESIGN.md §15): `heartbeat_interval` is now the SWIM
  // protocol period — each period this server probes ONE peer (Op::kGossip)
  // with ping-req indirection on a miss, so per-node load is independent of
  // the farm size. `heartbeat_misses` consecutive failed probes (or a
  // suspicion aging 2x that many periods unrefuted) declare a peer dead.
  // Interval 0 disables the detector. Op::kHeartbeat stays answered for
  // old probes and dmemo-stat.
  std::chrono::milliseconds heartbeat_interval = HeartbeatIntervalFromEnv();
  int heartbeat_misses = HeartbeatMissesFromEnv();
  // SWIM ping-req fanout on a direct probe miss. DMEMO_GOSSIP_INDIRECT.
  int gossip_indirect = GossipIndirectFromEnv();
  // Replication (DESIGN.md §15): when not kOff, every durable folder
  // server materialized here ships its WAL stream to a backup peer (its
  // ring successor among `peers`), and a peer death promotes whatever
  // standbys this server holds for it. DMEMO_REPL_MODE.
  ReplMode repl_mode = ReplModeFromEnv();
  // I/O core for inbound connections; see ServerCore.
  ServerCore core = ServerCoreFromEnv();
};

// What the failure detector knows about one peer memo server.
struct PeerHealthView {
  std::string host;
  bool alive = true;        // false once misses >= heartbeat_misses
  int misses = 0;           // consecutive failed beats
  std::int64_t last_seen_micros = 0;  // MonotonicMicros of last good beat
  // Folder-server id -> fencing epoch the peer reported in its last good
  // heartbeat response.
  std::unordered_map<int, std::uint64_t> epochs;
};

struct MemoServerStats {
  std::uint64_t requests = 0;        // requests entering Handle
  std::uint64_t local_handled = 0;   // served by a folder server here
  std::uint64_t forwarded = 0;       // sent toward the owning machine
  std::uint64_t relayed = 0;         // pass-through hops (we were neither
                                     // origin nor destination)
  std::uint64_t alt_rotations = 0;   // bounded waits in split get_alt
  std::uint64_t apps_registered = 0;
  std::uint64_t dedup_hits = 0;      // retransmits answered from the
                                     // completion cache (at-most-once)
};

struct PeerTraffic {
  std::string host;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class MemoServer {
 public:
  static Result<std::unique_ptr<MemoServer>> Start(TransportPtr transport,
                                                   MemoServerOptions options);
  ~MemoServer();

  MemoServer(const MemoServer&) = delete;
  MemoServer& operator=(const MemoServer&) = delete;

  // Resolved listen address (ephemeral ports resolved).
  const std::string& address() const { return address_; }
  const std::string& host() const { return options_.host; }

  // Local (in-process) registration — the launcher uses this on the machine
  // it starts servers on; remote machines receive Op::kRegisterApp.
  Status RegisterApp(const AppDescription& adf);

  // Serve one request. Public so intra-process deployments (the local
  // engine's machine fabric) can bypass the network exactly like the
  // shared-memory path in Figure 1.
  Response Handle(const Request& request);

  // Reactor-core entry point: Handle() as a state machine. `done` fires
  // exactly once — inline for prompt ops, from a directory-delivery thread
  // for parked gets, from a peer reader thread for forwarded traffic — and
  // must not block. Work that genuinely has to block (durable folder
  // servers' WAL writes, the split get_alt rotation, ADF registration, a
  // possibly-dialing forward) is pushed to the worker pool; the calling
  // reactor thread never parks. When the request parks locally and
  // `cancel` is non-null, *cancel receives a revocation hook (true = the
  // revoke won, `done` will never run) used for deadlines and dead
  // connections.
  void HandleAsync(const Request& request, ResponseCallback done,
                   std::function<bool()>* cancel = nullptr);

  void Shutdown();

  MemoServerStats stats() const;
  // Outbound links' traffic, one entry per peer this server dialed.
  std::vector<PeerTraffic> peer_traffic() const;
  // Failure-detector view of every peer (empty when heartbeats are off or
  // no beat has run yet).
  std::vector<PeerHealthView> peer_health() const;
  // SWIM membership view (introspection/tests).
  std::vector<MemberView> gossip_members() const {
    return gossip_.Snapshot();
  }

  // One warm standby partition this server keeps for a remote primary.
  struct StandbyView {
    int fs_id = 0;
    std::string primary_host;
    std::uint64_t epoch = 0;      // primary epoch the standby mirrors
    std::uint64_t next_seq = 1;   // next replication sequence expected
  };
  std::vector<StandbyView> standby_views() const;
  WorkerPool::Stats pool_stats() const { return pool_->GetStats(); }
  // Folder servers materialized on this machine (ids from ADFs).
  std::vector<int> folder_server_ids() const;
  const FolderServer* folder_server(int id) const;

 private:
  explicit MemoServer(MemoServerOptions options);

  void AcceptLoop();
  Result<ResilientChannelPtr> PeerChannel(const std::string& host);

  std::string SnapshotPath(int fs_id) const;
  std::string WalPath(int fs_id) const;
  void MigrateApp(const std::string& app, const RoutingTable& routing);
  // Handle() after trace-id assignment and around-the-request metrics:
  // runs the at-most-once completion cache (when this server is origin or
  // destination — never as a pure relay, so routing-loop detection keeps
  // working) around DispatchTraced.
  Response HandleTraced(const Request& request);
  // The pre-fault-tolerance dispatch body.
  Response DispatchTraced(const Request& request);
  Response HandleStats() const;
  Response HandleMetrics() const;
  Response HandleHeartbeat(const Request& request);
  // ---- replication & membership (DESIGN.md §15) -----------------------
  // Backup side: install/refresh a warm standby from a primary's snapshot.
  Response HandleReplSnapshot(const Request& request);
  // Backup side: apply a shipped WAL batch to the matching standby.
  Response HandleReplAppend(const Request& request);
  // Answer a SWIM ping / relay a ping-req / merge piggybacked claims.
  Response HandleGossip(const Request& request);
  // Failure-detector thread body: one SWIM protocol period per (jittered)
  // interval — probe one peer, indirect through k on a miss, age
  // suspicions, promote standbys of the newly dead.
  void GossipLoop();
  // Fold a gossip sender's evidence into peer_health_ / ownership_.
  void MergePeerEvidence(const GossipMessage& msg);
  // Everything piggybacked on an outgoing gossip message.
  std::vector<GossipFolderInfo> LocalFolderInfos() const;
  std::vector<OwnershipClaim> OwnershipClaims() const;
  void MergeOwners(const std::vector<OwnershipClaim>& owners);
  // Routing with failover overrides: ServerForKey, then substitute the
  // promoted owner for partitions that failed over (highest epoch wins).
  Result<FolderServerSpec> ResolveOwner(const RoutingTable& routing,
                                        const Bytes& key_bytes) const;
  struct StandbyPartition {
    std::string primary_host;
    std::uint64_t epoch = 0;
    std::uint64_t next_seq = 1;
    std::unique_ptr<FolderDirectory<IoBuf>> directory;
    // At-most-once dedupe across the shipped stream (mirror of replay).
    std::unordered_set<std::uint64_t> applied_ids;
  };
  // Promote every standby whose primary is in `hosts` (called with no
  // MemoServer lock held; extracts under repl_mu_, then promotes).
  void OnPeersDead(const std::vector<std::string>& hosts);
  void PromoteStandby(int fs_id, StandbyPartition standby);
  // Ring successor of this host among options_.peers — where this server
  // ships folder-partition replicas. Empty when no other peer exists.
  std::string BackupHost() const;
  // Create + start the WAL shipper for a durable folder server (no-op when
  // replication is off or no backup exists). Caller holds mu_.
  void AttachShipper(int fs_id, FolderServer* fs) DMEMO_REQUIRES(mu_);
  // Encoded TRecord carrying this server's folder-server epochs (the
  // kHeartbeat request/response payload).
  IoBuf EncodeHealthPayload() const;
  Response HandleDirected(const Request& request);
  Response HandleAlt(const Request& request, const RoutingTable& routing);
  // RequestClassifier for inbound channels: true when handling `request`
  // can block its worker — a park-capable op, or any key owned by another
  // machine (handling relays synchronously to the owner). Keeps relayed
  // ops off the shared sequential batch task.
  bool MayBlockWorker(const Request& request) const;
  Response ForwardToward(const std::string& target_host, Request request);
  Result<FolderServer*> LocalFolderServer(const RoutingTable& routing,
                                          const QualifiedKey& qk);

  // ---- reactor-core async dispatch (DESIGN.md §14) --------------------
  // The body of HandleAsync after tracing and at-most-once wrapping.
  void DispatchAsync(const Request& request, ResponseCallback done,
                     std::function<bool()>* cancel);
  // Local folder-server leg: continuation-based for parkable ops on
  // non-durable servers, pool-run for durable ones (WAL fsync must not
  // ride the reactor thread), inline otherwise.
  void DispatchLocalAsync(const Request& request, int fs_id,
                          ResponseCallback done,
                          std::function<bool()>* cancel);
  // Origin get_alt / get_alt_skip: single-group requests collapse into the
  // directed path; the split rotation runs on the pool like the threaded
  // core.
  void DispatchAltAsync(const Request& request, const RoutingTable& routing,
                        ResponseCallback done, std::function<bool()>* cancel);
  // Forward via ResilientChannel::CallAsync so relay traffic rides the
  // per-peer formation queue (packed kind-3 frames) with no thread parked
  // per hop. Issued from a pool task: a lazy dial may block.
  void ForwardTowardAsync(const std::string& target_host, Request request,
                          ResponseCallback done);
  // Run the synchronous dispatch body on the pool (inline if the pool is
  // shutting down); the escape hatch for work that must block.
  void SubmitDispatch(Request request, ResponseCallback done);

  MemoServerOptions options_;
  std::string address_;
  // Per-op request latency histograms, indexed by numeric Op value and
  // labelled host="<host>",op="<name>"; resolved once at construction so the
  // request path never touches the registry map (DESIGN.md "Observability").
  std::array<Histogram*, 17> op_latency_{};
  TransportPtr transport_;
  ListenerPtr listener_;
  std::unique_ptr<WorkerPool> pool_;
  std::thread acceptor_;
  // Event-loop core (ServerCore::kReactor); null under the threaded core.
  std::unique_ptr<Reactor> reactor_;

  // Canonical order (see DESIGN.md "Concurrency invariants"): mu_ may be
  // held while taking stats_mu_ or a directory lock, never the reverse.
  mutable Mutex mu_{"MemoServer::mu"};
  std::unordered_map<std::string, std::shared_ptr<RoutingTable>> apps_
      DMEMO_GUARDED_BY(mu_);
  // WAL shippers, keyed by folder-server id. Declared BEFORE
  // folder_servers_ on purpose: members destroy in reverse order, so every
  // FolderServer (which holds a raw ReplicationSink* into its shipper)
  // dies before the shipper it points at.
  std::map<int, std::shared_ptr<ReplicationShipper>> shippers_
      DMEMO_GUARDED_BY(mu_);
  std::map<int, std::unique_ptr<FolderServer>> folder_servers_
      DMEMO_GUARDED_BY(mu_);
  // One self-healing channel per peer host, created under mu_ (creation is
  // a cheap allocation — the dial is lazy inside ResilientChannel — so two
  // threads can no longer race to dial and strand the loser's reader
  // thread, the pre-fault-tolerance leak).
  std::unordered_map<std::string, ResilientChannelPtr> peer_channels_
      DMEMO_GUARDED_BY(mu_);
  std::vector<RpcChannelPtr> inbound_channels_ DMEMO_GUARDED_BY(mu_);
  bool shutdown_ DMEMO_GUARDED_BY(mu_) = false;

  // At-most-once dedupe for retransmitted requests. Own synchronization;
  // never held across request execution (see completion_cache.h).
  CompletionCache completions_;

  // Leaf lock for the hot stats counters; safe under mu_.
  mutable Mutex stats_mu_{"MemoServer::stats_mu"};
  MemoServerStats stats_ DMEMO_GUARDED_BY(stats_mu_);

  // Failure detector. health_mu_ is a leaf like stats_mu_: the heartbeat
  // thread takes mu_ only to snapshot the peer list, never while holding
  // health_mu_.
  std::thread heartbeat_;
  mutable Mutex health_mu_{"MemoServer::health_mu"};
  CondVar hb_cv_;
  bool hb_stop_ DMEMO_GUARDED_BY(health_mu_) = false;
  std::unordered_map<std::string, PeerHealthView> peer_health_
      DMEMO_GUARDED_BY(health_mu_);
  Counter* heartbeat_misses_total_ = nullptr;  // dmemo_heartbeat_misses_total

  // SWIM membership state machine (its internal mutex is a leaf).
  GossipMembership gossip_;

  // Warm standby partitions for remote primaries. repl_mu_ is taken with
  // no other MemoServer lock held; PromoteStandby extracts the standby
  // under repl_mu_, releases, and only then installs under mu_ (see
  // DESIGN.md §15 lock ranks).
  mutable Mutex repl_mu_{"MemoServer::repl_mu"};
  std::map<int, StandbyPartition> standbys_ DMEMO_GUARDED_BY(repl_mu_);

  // Failed-over partition owners learned from gossip: fs id -> the claim
  // with the highest epoch seen. Leaf lock (held only for map access).
  mutable Mutex ownership_mu_{"MemoServer::ownership_mu"};
  std::map<int, OwnershipClaim> ownership_ DMEMO_GUARDED_BY(ownership_mu_);

  Counter* repl_applied_ = nullptr;  // dmemo_repl_applied_records_total
  Counter* repl_snapshots_received_ =
      nullptr;                          // dmemo_repl_snapshots_received_total
  Counter* repl_epoch_rejects_ = nullptr;  // dmemo_repl_epoch_rejects_total
  Counter* repl_promotions_ = nullptr;     // dmemo_repl_promotions_total
  Counter* gossip_pings_ = nullptr;        // dmemo_gossip_pings_total
  Counter* gossip_ping_reqs_ = nullptr;    // dmemo_gossip_ping_reqs_total
};

}  // namespace dmemo
