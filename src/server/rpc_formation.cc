#include "server/rpc_formation.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/retry.h"

namespace dmemo {

namespace {

// Packed frames emitted (any trigger), and messages that rode them —
// ops/frames is the realized batching factor.
Counter* BatchFramesTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_batch_frames_total");
  return c;
}
Counter* BatchOpsTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_batch_ops_total");
  return c;
}
Counter* FlushSizeTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_batch_flush_size_total");
  return c;
}
Counter* FlushDeadlineTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_batch_flush_deadline_total");
  return c;
}
Counter* FlushUrgentTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_batch_flush_urgent_total");
  return c;
}
Counter* FlushDrainTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_batch_flush_drain_total");
  return c;
}

}  // namespace

FormationQueue::Options FormationQueue::Options::FromEnv() {
  Options options;
  options.max_bytes = static_cast<std::size_t>(std::max<std::int64_t>(
      1, EnvInt("DMEMO_RPC_BATCH_BYTES",
                static_cast<std::int64_t>(options.max_bytes))));
  options.max_ops = static_cast<std::size_t>(std::max<std::int64_t>(
      1, EnvInt("DMEMO_RPC_BATCH_OPS",
                static_cast<std::int64_t>(options.max_ops))));
  options.max_delay = std::chrono::microseconds(
      EnvInt("DMEMO_RPC_BATCH_DELAY_US", options.max_delay.count()));
  return options;
}

FormationQueue::FormationQueue(Options options, SendFrameFn send)
    : options_(std::move(options)), send_(std::move(send)) {}

FormationQueue::~FormationQueue() { Close(); }

bool FormationQueue::DeadlineUrgent(std::uint32_t deadline_ms) const {
  if (deadline_ms == 0) return false;  // unbounded: coalesce freely
  // Queueing costs up to max_delay; call it urgent once waiting could eat a
  // meaningful slice of the remaining budget. The 5 ms floor keeps
  // nearly-expired calls out of the queue even when max_delay is tiny.
  const auto budget = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::milliseconds(deadline_ms));
  return budget <= std::max(4 * options_.max_delay,
                            std::chrono::microseconds(5000));
}

void FormationQueue::Enqueue(std::uint8_t kind, std::uint64_t id, IoBuf body,
                             Urgency urgency) {
  std::vector<BatchEntry> batch;
  Trigger trigger = Trigger::kUrgent;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    const bool was_empty = queue_.empty();
    if (was_empty) oldest_enqueue_ = std::chrono::steady_clock::now();
    queued_bytes_ += body.size();
    queue_.push_back(BatchEntry{kind, id, std::move(body)});
    const bool threshold =
        queued_bytes_ >= options_.max_bytes || queue_.size() >= options_.max_ops;
    if (urgency == Urgency::kUrgent || threshold) {
      batch = TakeLocked();
      trigger = urgency == Urgency::kUrgent ? Trigger::kUrgent : Trigger::kSize;
    } else {
      if (!flusher_started_) {
        flusher_started_ = true;
        flusher_ = std::thread([this] { FlusherLoop(); });
      }
      // The flush deadline depends only on the oldest entry, so the timer
      // needs re-arming just on the empty→non-empty edge. Later entries of
      // a burst skip the wake — one futex signal per batch, not per op.
      if (was_empty) cv_.NotifyOne();
      return;
    }
  }
  SendBatch(std::move(batch), trigger);
}

void FormationQueue::FlushNow() {
  std::vector<BatchEntry> batch;
  {
    MutexLock lock(mu_);
    batch = TakeLocked();
  }
  if (!batch.empty()) SendBatch(std::move(batch), Trigger::kUrgent);
}

void FormationQueue::FlushDrained() {
  std::vector<BatchEntry> batch;
  {
    MutexLock lock(mu_);
    batch = TakeLocked();
  }
  if (!batch.empty()) SendBatch(std::move(batch), Trigger::kDrain);
}

void FormationQueue::Close() {
  std::vector<BatchEntry> rest;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    rest = TakeLocked();
    cv_.NotifyAll();
  }
  if (flusher_.joinable()) flusher_.join();
  // Best-effort final flush: the connection may already be dead, in which
  // case the sender's error path (reader-loop teardown) owns the callers.
  if (!rest.empty()) SendBatch(std::move(rest), Trigger::kUrgent);
}

std::vector<BatchEntry> FormationQueue::TakeLocked() {
  std::vector<BatchEntry> batch = std::move(queue_);
  queue_.clear();
  queued_bytes_ = 0;
  return batch;
}

void FormationQueue::FlusherLoop() {
  MutexLock lock(mu_);
  for (;;) {
    if (closed_) return;
    if (queue_.empty()) {
      cv_.Wait(mu_);
      continue;
    }
    const auto flush_at = oldest_enqueue_ + options_.max_delay;
    if (std::chrono::steady_clock::now() < flush_at) {
      (void)cv_.WaitUntil(mu_, flush_at);
      continue;  // re-evaluate: a threshold flush may have drained us
    }
    std::vector<BatchEntry> batch = TakeLocked();
    lock.Unlock();
    SendBatch(std::move(batch), Trigger::kDeadline);
    lock.Lock();
  }
}

void FormationQueue::SendBatch(std::vector<BatchEntry> batch,
                               Trigger trigger) {
  if (batch.empty()) return;
  IoBuf frame;
  if (batch.size() == 1) {
    // A batch of one goes out as a plain single-op frame, byte-identical
    // to the unbatched encoding (legacy interop; asserted in
    // formation_test and property_test).
    ByteWriter prefix;
    prefix.u8(batch.front().kind);
    prefix.u64(batch.front().id);
    frame = IoBuf::FromBytes(prefix.take());
    frame.Append(std::move(batch.front().body));
  } else {
    frame = EncodeBatchFrame(batch);
    BatchFramesTotal()->Increment();
    BatchOpsTotal()->Add(batch.size());
  }
  switch (trigger) {
    case Trigger::kSize:
      FlushSizeTotal()->Increment();
      break;
    case Trigger::kDeadline:
      FlushDeadlineTotal()->Increment();
      break;
    case Trigger::kUrgent:
      FlushUrgentTotal()->Increment();
      break;
    case Trigger::kDrain:
      FlushDrainTotal()->Increment();
      break;
  }
  frames_flushed_.fetch_add(1, std::memory_order_relaxed);
  ops_flushed_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (trigger == Trigger::kSize) {
    flushes_size_.fetch_add(1, std::memory_order_relaxed);
  } else if (trigger == Trigger::kDeadline) {
    flushes_deadline_.fetch_add(1, std::memory_order_relaxed);
  } else if (trigger == Trigger::kDrain) {
    flushes_drain_.fetch_add(1, std::memory_order_relaxed);
  } else {
    flushes_urgent_.fetch_add(1, std::memory_order_relaxed);
  }
  send_(std::move(frame));
}

std::uint64_t FormationQueue::frames_flushed() const {
  return frames_flushed_.load(std::memory_order_relaxed);
}
std::uint64_t FormationQueue::ops_flushed() const {
  return ops_flushed_.load(std::memory_order_relaxed);
}
std::uint64_t FormationQueue::flushes_size() const {
  return flushes_size_.load(std::memory_order_relaxed);
}
std::uint64_t FormationQueue::flushes_deadline() const {
  return flushes_deadline_.load(std::memory_order_relaxed);
}
std::uint64_t FormationQueue::flushes_urgent() const {
  return flushes_urgent_.load(std::memory_order_relaxed);
}
std::uint64_t FormationQueue::flushes_drain() const {
  return flushes_drain_.load(std::memory_order_relaxed);
}

}  // namespace dmemo
