#include "server/completion_cache.h"

#include "util/retry.h"
#include "util/status.h"

namespace dmemo {

std::size_t CompletionCache::CapacityFromEnv() {
  return static_cast<std::size_t>(
      EnvInt("DMEMO_COMPLETION_CACHE_SIZE", 1024));
}

CompletionCache::CompletionCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      dedup_hits_(MetricsRegistry::Global().GetCounter(
          "dmemo_server_dedup_hits_total")) {}

CompletionCache::BeginResult CompletionCache::Begin(
    std::uint64_t request_id) {
  MutexLock lock(mu_);
  for (;;) {
    if (shutdown_) {
      return BeginResult{
          false,
          Response::FromStatus(CancelledError("server shut down"))};
    }
    auto it = entries_.find(request_id);
    if (it == entries_.end()) {
      entries_.emplace(request_id, Entry{});
      return BeginResult{true, std::nullopt};
    }
    if (it->second.completed) {
      dedup_hits_->Increment();
      ++dedup_hits_local_;
      return BeginResult{false, it->second.response};
    }
    // In flight on another thread: this transmit is a duplicate. Park until
    // the owner completes or abandons (then re-examine from the top).
    cv_.Wait(mu_);
  }
}

CompletionCache::BeginResult CompletionCache::BeginAsync(
    std::uint64_t request_id, std::function<void(const Response&)> on_done) {
  MutexLock lock(mu_);
  if (shutdown_) {
    return BeginResult{
        false, Response::FromStatus(CancelledError("server shut down"))};
  }
  auto it = entries_.find(request_id);
  if (it == entries_.end()) {
    entries_.emplace(request_id, Entry{});
    return BeginResult{true, std::nullopt};
  }
  if (it->second.completed) {
    dedup_hits_->Increment();
    ++dedup_hits_local_;
    return BeginResult{false, it->second.response};
  }
  // In flight: park the continuation on the owner instead of the thread.
  it->second.async_waiters.push_back(std::move(on_done));
  return BeginResult{false, std::nullopt};
}

void CompletionCache::Complete(std::uint64_t request_id,
                               const Response& response) {
  std::vector<std::function<void(const Response&)>> waiters;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(request_id);
    if (it == entries_.end()) return;  // evicted under us; nothing to publish
    waiters = std::move(it->second.async_waiters);
    it->second.async_waiters.clear();
    if (response.code == StatusCode::kOk) {
      it->second.completed = true;
      it->second.response = response;
      completed_fifo_.push_back(request_id);
      EvictLocked();
    } else {
      // The execution mutated nothing; let a future retry run it again.
      entries_.erase(it);
    }
    cv_.NotifyAll();
  }
  for (auto& done : waiters) done(response);
}

void CompletionCache::Abandon(std::uint64_t request_id) {
  std::vector<std::function<void(const Response&)>> waiters;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(request_id);
    if (it != entries_.end() && !it->second.completed) {
      waiters = std::move(it->second.async_waiters);
      entries_.erase(it);
      cv_.NotifyAll();
    }
  }
  if (!waiters.empty()) {
    // Async duplicates can't re-execute (no request context); tell the
    // client to retry instead. The execution mutated nothing.
    const Response retry = Response::FromStatus(
        UnavailableError("execution abandoned; retry"));
    for (auto& done : waiters) done(retry);
  }
}

void CompletionCache::Seed(std::uint64_t request_id,
                           const Response& response) {
  if (request_id == 0) return;
  MutexLock lock(mu_);
  if (shutdown_) return;
  auto [it, inserted] = entries_.try_emplace(request_id);
  if (!inserted) return;  // a live execution got here first
  it->second.completed = true;
  it->second.response = response;
  completed_fifo_.push_back(request_id);
  EvictLocked();
}

void CompletionCache::Shutdown() {
  std::vector<std::function<void(const Response&)>> waiters;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    for (auto& [id, entry] : entries_) {
      for (auto& done : entry.async_waiters) waiters.push_back(std::move(done));
      entry.async_waiters.clear();
    }
    cv_.NotifyAll();
  }
  if (!waiters.empty()) {
    const Response cancelled =
        Response::FromStatus(CancelledError("server shut down"));
    for (auto& done : waiters) done(cancelled);
  }
}

std::uint64_t CompletionCache::dedup_hits() const {
  MutexLock lock(mu_);
  return dedup_hits_local_;
}

void CompletionCache::EvictLocked() {
  while (completed_fifo_.size() > capacity_) {
    auto it = entries_.find(completed_fifo_.front());
    completed_fifo_.pop_front();
    if (it != entries_.end() && it->second.completed) entries_.erase(it);
  }
}

}  // namespace dmemo
