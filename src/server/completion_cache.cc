#include "server/completion_cache.h"

#include "util/retry.h"
#include "util/status.h"

namespace dmemo {

std::size_t CompletionCache::CapacityFromEnv() {
  return static_cast<std::size_t>(
      EnvInt("DMEMO_COMPLETION_CACHE_SIZE", 1024));
}

CompletionCache::CompletionCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      dedup_hits_(MetricsRegistry::Global().GetCounter(
          "dmemo_server_dedup_hits_total")) {}

CompletionCache::BeginResult CompletionCache::Begin(
    std::uint64_t request_id) {
  MutexLock lock(mu_);
  for (;;) {
    if (shutdown_) {
      return BeginResult{
          false,
          Response::FromStatus(CancelledError("server shut down"))};
    }
    auto it = entries_.find(request_id);
    if (it == entries_.end()) {
      entries_.emplace(request_id, Entry{});
      return BeginResult{true, std::nullopt};
    }
    if (it->second.completed) {
      dedup_hits_->Increment();
      ++dedup_hits_local_;
      return BeginResult{false, it->second.response};
    }
    // In flight on another thread: this transmit is a duplicate. Park until
    // the owner completes or abandons (then re-examine from the top).
    cv_.Wait(mu_);
  }
}

void CompletionCache::Complete(std::uint64_t request_id,
                               const Response& response) {
  MutexLock lock(mu_);
  auto it = entries_.find(request_id);
  if (it == entries_.end()) return;  // evicted under us; nothing to publish
  if (response.code == StatusCode::kOk) {
    it->second.completed = true;
    it->second.response = response;
    completed_fifo_.push_back(request_id);
    EvictLocked();
  } else {
    // The execution mutated nothing; let a future retry run it again.
    entries_.erase(it);
  }
  cv_.NotifyAll();
}

void CompletionCache::Abandon(std::uint64_t request_id) {
  MutexLock lock(mu_);
  auto it = entries_.find(request_id);
  if (it != entries_.end() && !it->second.completed) {
    entries_.erase(it);
    cv_.NotifyAll();
  }
}

void CompletionCache::Seed(std::uint64_t request_id,
                           const Response& response) {
  if (request_id == 0) return;
  MutexLock lock(mu_);
  if (shutdown_) return;
  auto [it, inserted] = entries_.try_emplace(request_id);
  if (!inserted) return;  // a live execution got here first
  it->second.completed = true;
  it->second.response = response;
  completed_fifo_.push_back(request_id);
  EvictLocked();
}

void CompletionCache::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  cv_.NotifyAll();
}

std::uint64_t CompletionCache::dedup_hits() const {
  MutexLock lock(mu_);
  return dedup_hits_local_;
}

void CompletionCache::EvictLocked() {
  while (completed_fifo_.size() > capacity_) {
    auto it = entries_.find(completed_fifo_.front());
    completed_fifo_.pop_front();
    if (it != entries_.end() && it->second.completed) entries_.erase(it);
  }
}

}  // namespace dmemo
