#include "server/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <memory>
#include <span>
#include <utility>

#include "server/memo_server.h"
#include "util/bytes.h"
#include "util/log.h"

namespace dmemo {

namespace {

// epoll_event.data.u64 sentinels; real connections start at 2.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;

constexpr int kMaxEpollEvents = 256;
// Cap the wait so a missed wakeup can never park the loop forever.
constexpr int kIdleTimeoutMs = 1000;
// Accept-failure backoff: how long the listener stays unregistered after
// TryAccept errors out (typically EMFILE under fd exhaustion).
constexpr int kAcceptBackoffMs = 100;

}  // namespace

Reactor::Reactor(MemoServer* server, Listener* listener)
    : server_(server), listener_(listener) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  connections_ = reg.GetGauge("dmemo_reactor_connections");
  parked_waiters_ = reg.GetGauge("dmemo_reactor_parked_waiters");
  accepts_total_ = reg.GetCounter("dmemo_reactor_accepts_total");
  frames_total_ = reg.GetCounter("dmemo_reactor_frames_total");
  requests_total_ = reg.GetCounter("dmemo_reactor_requests_total");
  wakeups_total_ = reg.GetCounter("dmemo_reactor_wakeups_total");
  deadline_expirations_total_ =
      reg.GetCounter("dmemo_reactor_deadline_expirations_total");
}

Reactor::~Reactor() { Shutdown(); }

Status Reactor::Start() {
#ifdef DMEMO_IO_URING
  // The io_uring backend is a build-time stub: the toolchain image carries
  // no liburing, so the flag records intent and epoll serves identically.
  DMEMO_LOG(kInfo) << "reactor: built with DMEMO_IO_URING; io_uring backend "
                      "is stubbed, serving with epoll";
#endif
  if (listener_->readiness_fd() < 0) {
    return FailedPreconditionError(
        "reactor requires a pollable listener (readiness_fd() >= 0)");
  }
  DMEMO_RETURN_IF_ERROR(listener_->SetNonBlocking());
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return InternalError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return InternalError("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_->readiness_fd(), &ev) !=
      0) {
    return InternalError("epoll_ctl(listener) failed");
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return InternalError("epoll_ctl(wake eventfd) failed");
  }
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Reactor::Shutdown() {
  if (!started_) return;
  started_ = false;
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(mu_);
    if (!wake_closed_) {
      std::uint64_t one = 1;
      (void)::write(wake_fd_, &one, sizeof(one));
    }
  }
  if (thread_.joinable()) thread_.join();
  // The loop is gone; tear down every connection on this thread. Revocation
  // hooks run first so parked directory waiters / at-most-once claims are
  // released rather than leaked.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, c] : conns_) ids.push_back(id);
  for (std::uint64_t id : ids) CloseConn(id);
  {
    MutexLock lock(mu_);
    wake_closed_ = true;
    completions_.clear();
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void Reactor::Loop() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_release);
  std::array<epoll_event, kMaxEpollEvents> events;
  while (!stop_.load(std::memory_order_acquire)) {
    DrainCompletions();
    FlushDirty();
    const int n = ::epoll_wait(epoll_fd_, events.data(), kMaxEpollEvents,
                               NextTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      DMEMO_LOG(kWarn) << "reactor: epoll_wait failed, stopping loop";
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        OnAccept();
        continue;
      }
      if (tag == kWakeTag) {
        wakeups_total_->Increment();
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this pass
      Conn& c = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(tag);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        OnWritable(c);
        if (conns_.find(tag) == conns_.end()) continue;  // write error closed
      }
      if ((events[i].events & EPOLLIN) != 0) OnReadable(c);
    }
    FireDeadlines();
  }
  // Final drain so completions racing shutdown don't sit half-delivered.
  DrainCompletions();
  FlushDirty();
}

void Reactor::OnAccept() {
  for (;;) {
    auto accepted = listener_->TryAccept();
    if (!accepted.ok()) {
      // Closed listener (shutdown) or a hard failure like EMFILE. Either
      // way the descriptor stays readable, so back off instead of letting
      // the level-triggered loop spin on it.
      if (!stop_.load(std::memory_order_acquire)) {
        DMEMO_LOG(kWarn) << "reactor: accept failed ("
                         << accepted.status().ToString()
                         << "); pausing accepts for " << kAcceptBackoffMs
                         << "ms";
        DisarmListener();
      }
      return;
    }
    if (!accepted->has_value()) return;  // would block: drained the backlog
    ConnectionPtr conn = std::move(**accepted);
    Status nb = conn->SetNonBlocking();
    const int fd = conn->readiness_fd();
    if (!nb.ok() || fd < 0) {
      DMEMO_LOG(kWarn) << "reactor: dropping connection without non-blocking "
                          "support: "
                       << conn->description();
      conn->Close();
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    auto c = std::make_unique<Conn>();
    c->id = id;
    c->conn = std::move(conn);
    c->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      DMEMO_LOG(kWarn) << "reactor: epoll_ctl(ADD) failed for "
                       << c->conn->description();
      c->conn->Close();
      continue;
    }
    conns_.emplace(id, std::move(c));
    accepts_total_->Increment();
    connections_->Add(1);
  }
}

void Reactor::OnReadable(Conn& c) {
  const std::uint64_t id = c.id;
  for (;;) {
    auto frame = c.conn->TryReceive();
    if (!frame.ok()) {
      CloseConn(id);
      return;
    }
    if (!frame->has_value()) return;  // would block: partial frame retained
    frames_total_->Increment();
    HandleFrame(c, **frame);
    if (conns_.find(id) == conns_.end()) return;  // closed during dispatch
  }
}

void Reactor::OnWritable(Conn& c) {
  auto drained = c.conn->FlushPending();
  if (!drained.ok()) {
    CloseConn(c.id);
    return;
  }
  if (*drained && c.want_write) {
    c.want_write = false;
    UpdateEvents(c);
  }
}

void Reactor::HandleFrame(Conn& c, const IoBuf& frame) {
  IoBufReader reader(frame);
  ByteReader& in = reader.base();
  auto kind = in.u8();
  auto id = in.u64();
  if (!kind.ok() || !id.ok()) return;  // malformed frame: drop
  if (*kind == kFrameKindRequest) {
    auto req = Request::DecodeFrom(reader);
    if (!req.ok()) {
      DMEMO_LOG(kWarn) << "reactor: dropping malformed request on "
                       << c.conn->description() << ": "
                       << req.status().ToString();
      return;
    }
    Dispatch(c, *id, *req, /*batched=*/false);
  } else if (*kind == kFrameKindBatch) {
    auto entries = DecodeBatchEntries(reader, *id);
    if (!entries.ok()) {
      DMEMO_LOG(kWarn) << "reactor: dropping malformed batch frame on "
                       << c.conn->description() << ": "
                       << entries.status().ToString();
      return;
    }
    const std::uint64_t conn_id = c.id;
    for (BatchEntry& entry : *entries) {
      if (entry.kind != kFrameKindRequest) {
        DMEMO_LOG(kWarn) << "reactor: dropping batched response entry on "
                         << c.conn->description()
                         << " (servers only accept requests)";
        continue;
      }
      IoBufReader entry_reader(entry.body);
      auto req = Request::DecodeFrom(entry_reader);
      if (!req.ok()) {
        DMEMO_LOG(kWarn) << "reactor: dropping malformed batched request on "
                         << c.conn->description() << ": "
                         << req.status().ToString();
        continue;
      }
      Dispatch(c, entry.id, *req, /*batched=*/true);
      if (conns_.find(conn_id) == conns_.end()) return;
    }
  } else {
    DMEMO_LOG(kWarn) << "reactor: dropping unexpected frame kind "
                     << static_cast<int>(*kind) << " on "
                     << c.conn->description();
  }
}

void Reactor::Dispatch(Conn& c, std::uint64_t rpc_id, const Request& request,
                       bool batched) {
  requests_total_->Increment();
  const std::uint64_t conn_id = c.id;
  // `answered` closes the window between an inline completion and the
  // revocation hook being stored: the loop-thread direct path in
  // QueueResponse runs synchronously inside HandleAsync, so if it fired we
  // must not park a hook for an already-answered request.
  auto answered = std::make_shared<std::atomic<bool>>(false);
  std::function<bool()> cancel;
  server_->HandleAsync(
      request,
      [this, conn_id, rpc_id, batched, answered](Response resp) {
        answered->store(true, std::memory_order_release);
        QueueResponse(conn_id, rpc_id, batched, std::move(resp));
      },
      &cancel);
  if (cancel && !answered->load(std::memory_order_acquire)) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      // Connection died inside HandleAsync (shouldn't happen: dispatch
      // doesn't touch the conn) — release the parked state immediately.
      (void)cancel();
      return;
    }
    it->second->parked.emplace(rpc_id, std::move(cancel));
    parked_waiters_->Add(1);
    if (request.deadline_ms > 0) {
      deadlines_.emplace(std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(request.deadline_ms),
                         conn_id, rpc_id);
    }
  }
}

void Reactor::QueueResponse(std::uint64_t conn_id, std::uint64_t rpc_id,
                            bool batched, Response response) {
  if (std::this_thread::get_id() ==
      loop_tid_.load(std::memory_order_acquire)) {
    PlaceResponse(conn_id, rpc_id, batched, std::move(response));
    return;
  }
  MutexLock lock(mu_);
  if (wake_closed_) return;  // shutdown already tore the connections down
  completions_.push_back(
      Completion{conn_id, rpc_id, batched, std::move(response)});
  std::uint64_t one = 1;
  (void)::write(wake_fd_, &one, sizeof(one));
}

void Reactor::DrainCompletions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    PlaceResponse(done.conn_id, done.rpc_id, done.batched,
                  std::move(done.response));
  }
}

void Reactor::PlaceResponse(std::uint64_t conn_id, std::uint64_t rpc_id,
                            bool batched, Response response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client hung up before the answer
  Conn& c = *it->second;
  if (c.parked.erase(rpc_id) > 0) parked_waiters_->Add(-1);
  if (c.out.empty()) dirty_.push_back(conn_id);
  c.out.push_back(PendingResponse{rpc_id, batched, std::move(response)});
}

void Reactor::FlushDirty() {
  if (dirty_.empty()) return;
  std::vector<std::uint64_t> dirty;
  dirty.swap(dirty_);
  for (std::uint64_t id : dirty) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    FlushConn(*it->second);
  }
}

void Reactor::FlushConn(Conn& c) {
  if (c.out.empty()) return;
  std::vector<PendingResponse> out;
  out.swap(c.out);
  // Split the pass's responses by arrival framing: answers to requests that
  // came packed leave packed (one kind-3 frame), single-op answers leave as
  // individual kind-2 frames — a legacy peer never sees a packed frame
  // unless it sent one (PROTOCOL.md §2).
  std::vector<IoBuf> bodies;  // keeps batch entry bodies alive until encode
  std::vector<BatchEntry> packed;
  const std::uint64_t conn_id = c.id;
  auto send = [&](IoBuf frame) {
    auto sent = c.conn->TrySendBuf(std::move(frame));
    if (!sent.ok()) {
      CloseConn(conn_id);
      return false;
    }
    if (!*sent && !c.want_write) {
      c.want_write = true;
      UpdateEvents(c);
    }
    return true;
  };
  for (PendingResponse& pending : out) {
    if (pending.batched) {
      bodies.push_back(pending.response.EncodeToIoBuf());
      packed.push_back(
          BatchEntry{kFrameKindResponse, pending.rpc_id, bodies.back()});
      continue;
    }
    ByteWriter prefix;
    prefix.u8(kFrameKindResponse);
    prefix.u64(pending.rpc_id);
    IoBuf frame = IoBuf::FromBytes(prefix.take());
    frame.Append(pending.response.EncodeToIoBuf());
    if (!send(std::move(frame))) return;
  }
  if (packed.empty()) return;
  if (packed.size() == 1) {
    // A lone batched answer still fits a single frame; the peer's reader
    // accepts either framing for responses it solicited in a batch.
    ByteWriter prefix;
    prefix.u8(kFrameKindResponse);
    prefix.u64(packed.front().id);
    IoBuf frame = IoBuf::FromBytes(prefix.take());
    frame.Append(packed.front().body);
    (void)send(std::move(frame));
    return;
  }
  // Chunk by the wire cap; in practice one pass never approaches it.
  for (std::size_t begin = 0; begin < packed.size();
       begin += kMaxBatchEntriesWire) {
    const std::size_t count =
        std::min<std::size_t>(kMaxBatchEntriesWire, packed.size() - begin);
    if (!send(EncodeBatchFrame(
            std::span<const BatchEntry>(packed.data() + begin, count)))) {
      return;
    }
  }
}

void Reactor::UpdateEvents(Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0);
  ev.data.u64 = c.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) != 0) {
    DMEMO_LOG(kWarn) << "reactor: epoll_ctl(MOD) failed for "
                     << c.conn->description();
  }
}

void Reactor::CloseConn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  // Revoke every parked request so directory waiters and at-most-once
  // claims don't outlive the client. A hook returning false means a
  // delivery is already in flight; its completion gets dropped harmlessly
  // when PlaceResponse finds the connection gone.
  for (auto& [rpc_id, cancel] : c.parked) (void)cancel();
  if (!c.parked.empty()) {
    parked_waiters_->Add(-static_cast<std::int64_t>(c.parked.size()));
  }
  if (epoll_fd_ >= 0 && c.fd >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  }
  c.conn->Close();
  conns_.erase(it);
  connections_->Add(-1);
}

void Reactor::DisarmListener() {
  if (!listener_armed_) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_->readiness_fd(),
                    nullptr);
  listener_armed_ = false;
  deadlines_.emplace(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(kAcceptBackoffMs),
                     kListenerTag, 0);
}

void Reactor::RearmListener() {
  if (listener_armed_) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_->readiness_fd(), &ev) !=
      0) {
    // Still failing (listener closed mid-shutdown, or fds exhausted by the
    // epoll set itself): try again after another backoff.
    deadlines_.emplace(std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(kAcceptBackoffMs),
                       kListenerTag, 0);
    return;
  }
  listener_armed_ = true;
}

void Reactor::FireDeadlines() {
  const auto now = std::chrono::steady_clock::now();
  while (!deadlines_.empty() && std::get<0>(deadlines_.top()) <= now) {
    const auto [expiry, conn_id, rpc_id] = deadlines_.top();
    deadlines_.pop();
    if (conn_id == kListenerTag) {
      RearmListener();
      continue;
    }
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    auto parked = c.parked.find(rpc_id);
    if (parked == c.parked.end()) continue;  // answered before expiry
    if (!parked->second()) continue;  // delivery won the race; answer coming
    c.parked.erase(parked);
    parked_waiters_->Add(-1);
    deadline_expirations_total_->Increment();
    PlaceResponse(conn_id, rpc_id, /*batched=*/false,
                  Response::FromStatus(
                      TimedOutError("deadline expired while parked")));
  }
}

int Reactor::NextTimeoutMs() const {
  if (deadlines_.empty()) return kIdleTimeoutMs;
  const auto now = std::chrono::steady_clock::now();
  const auto next = std::get<0>(deadlines_.top());
  if (next <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count() +
      1;
  return static_cast<int>(std::min<long long>(ms, kIdleTimeoutMs));
}

}  // namespace dmemo
