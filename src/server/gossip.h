// SWIM-style gossip membership (DESIGN.md §15).
//
// PR 5's failure detector heartbeated every peer every interval — O(N²)
// messages per period across the farm. This layer replaces it with the
// SWIM shape: each protocol period a server pings ONE randomized
// round-robin member; on a direct miss it asks k other members to probe
// the target for it (ping-req indirection, so one congested link cannot
// kill a healthy node); a member that still cannot be reached becomes
// *suspect* and, after the suspicion times out unrefuted, *dead*.
// Per-node message load is one ping plus at most k ping-reqs per period —
// independent of N.
//
// Every state claim carries the subject's incarnation number. Only the
// member itself may bump its incarnation, which is how a live suspect
// refutes the rumor: it re-announces itself alive at a higher incarnation,
// and the alive{i} claim overrides suspect{j} for i > j everywhere.
// Updates piggyback on the ping/ack payloads with a bounded resend budget,
// so dissemination costs no extra messages.
//
// GossipMembership is the pure state machine: no I/O, no clock of its own
// (the caller's probe loop drives Tick once per protocol period). All
// methods are thread-safe behind one internal mutex, which is a leaf: no
// callback runs and no other lock is taken while it is held.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/iobuf.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

// DMEMO_GOSSIP_INDIRECT: how many peers relay a ping-req when a direct
// probe misses (default 2, clamped to >= 0).
int GossipIndirectFromEnv();

enum class MemberState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

std::string_view MemberStateName(MemberState state);

// One piggybacked membership claim: "<host> is <state> at <incarnation>".
struct MemberUpdate {
  std::string host;
  std::uint64_t incarnation = 0;
  MemberState state = MemberState::kAlive;
};

// Introspection snapshot of one member.
struct MemberView {
  std::string host;
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;
  int misses = 0;
  int suspect_ticks = 0;
};

// Folder-server epoch/lag info riding a gossip payload (the PR 5
// heartbeat's epoch exchange, now piggybacked on membership traffic).
struct GossipFolderInfo {
  int id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t wal_lag = 0;
};

// Ownership claim for a failed-over folder partition: `host` serves folder
// server `fs_id` under fencing `epoch`. Highest epoch wins everywhere.
struct OwnershipClaim {
  int fs_id = 0;
  std::string host;
  std::uint64_t epoch = 0;
};

// The kGossip request/response payload (an encoded TRecord; PROTOCOL.md).
struct GossipMessage {
  // "ping" (direct probe), "ping-req" (probe `subject` for me), or "ack".
  std::string kind;
  std::string host;         // sender
  std::string subject;      // ping-req only: the member to probe
  std::uint64_t incarnation = 0;  // sender's own incarnation
  bool reached = false;     // ping-req ack: did the relay reach subject?
  std::vector<MemberUpdate> updates;
  std::vector<GossipFolderInfo> folder_servers;
  std::vector<OwnershipClaim> owners;
};

IoBuf EncodeGossipMessage(const GossipMessage& msg);
Result<GossipMessage> ParseGossipMessage(const IoBuf& value);

class GossipMembership {
 public:
  // `suspect_misses` doubles as the SWIM suspicion bound: a member is dead
  // after that many consecutive failed probes, or after a suspicion ages
  // 2x that many protocol periods without a refutation.
  GossipMembership(std::string self_host, int suspect_misses);

  GossipMembership(const GossipMembership&) = delete;
  GossipMembership& operator=(const GossipMembership&) = delete;

  void AddPeer(const std::string& host);

  std::uint64_t self_incarnation() const;

  // Next probe target: randomized round-robin over the non-dead members
  // (every member is probed once per cycle, in an order reshuffled each
  // cycle — the SWIM property that bounds worst-case detection time).
  // Empty when no live member exists.
  std::string NextProbeTarget(SplitMix64& rng);

  // Up to k live members other than `exclude` (and self), for ping-req
  // indirection.
  std::vector<std::string> IndirectCandidates(int k,
                                              const std::string& exclude,
                                              SplitMix64& rng);

  // Direct or indirect probe outcome. `incarnation` is the incarnation the
  // target itself reported in its ack (direct liveness evidence clears a
  // suspicion even at an equal incarnation). Returns true when the member
  // was dead and just rejoined.
  bool OnProbeSuccess(const std::string& host, std::uint64_t incarnation);
  void OnProbeMiss(const std::string& host);

  // One protocol period: age suspicions, promote to dead. Returns the
  // members that died this period (each reported exactly once).
  std::vector<std::string> Tick();

  // Merge piggybacked claims per the SWIM override rules; a claim about
  // self that is not alive bumps our incarnation and queues a refutation.
  // Returns members newly declared dead by these updates.
  std::vector<std::string> ApplyUpdates(
      const std::vector<MemberUpdate>& updates);

  // Claims to piggyback on the next outgoing message: a self-alive claim
  // plus every queued update with resend budget left (budget decremented).
  std::vector<MemberUpdate> PiggybackUpdates();

  std::vector<MemberView> Snapshot() const;

 private:
  struct Member {
    MemberState state = MemberState::kAlive;
    std::uint64_t incarnation = 0;
    int misses = 0;
    int suspect_ticks = 0;
  };
  struct Pending {
    MemberUpdate update;
    int remaining = 0;
  };

  // Queue (or refresh) a claim for piggybacked dissemination.
  void QueueUpdateLocked(const MemberUpdate& update)
      DMEMO_REQUIRES(mu_);
  // Transition helper; returns true when the member just became dead.
  bool MarkDeadLocked(const std::string& host, Member& m)
      DMEMO_REQUIRES(mu_);

  const std::string self_;
  const int suspect_misses_;

  Counter* suspects_ = nullptr;  // dmemo_gossip_suspects_total
  Counter* deaths_ = nullptr;    // dmemo_gossip_deaths_total
  Counter* refutes_ = nullptr;   // dmemo_gossip_refutes_total

  mutable Mutex mu_{"GossipMembership::mu"};
  std::uint64_t self_incarnation_ DMEMO_GUARDED_BY(mu_) = 1;
  std::unordered_map<std::string, Member> members_ DMEMO_GUARDED_BY(mu_);
  std::unordered_map<std::string, Pending> piggyback_ DMEMO_GUARDED_BY(mu_);
  // Randomized round-robin probe order.
  std::vector<std::string> order_ DMEMO_GUARDED_BY(mu_);
  std::size_t order_pos_ DMEMO_GUARDED_BY(mu_) = 0;
};

}  // namespace dmemo
