#include "server/gossip.h"

#include <algorithm>

#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "util/log.h"
#include "util/retry.h"

namespace dmemo {
namespace {

// How many outgoing messages carry one queued claim before it retires.
// Constant (not N-dependent): at one ping per period a claim transits the
// farm through relays, and every receiver re-queues it with a fresh
// budget, so dissemination is epidemic rather than budget-bound.
constexpr int kPiggybackSends = 12;

std::uint64_t U64Field(const TRecord& rec, const char* name) {
  auto v = std::dynamic_pointer_cast<TUInt64>(rec.Get(name));
  return v == nullptr ? 0 : v->value();
}

int I32Field(const TRecord& rec, const char* name) {
  auto v = std::dynamic_pointer_cast<TInt32>(rec.Get(name));
  return v == nullptr ? 0 : v->value();
}

std::string StrField(const TRecord& rec, const char* name) {
  auto v = std::dynamic_pointer_cast<TString>(rec.Get(name));
  return v == nullptr ? std::string() : v->value();
}

}  // namespace

int GossipIndirectFromEnv() {
  return std::max<int>(0, static_cast<int>(EnvInt("DMEMO_GOSSIP_INDIRECT", 2)));
}

std::string_view MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kDead: return "dead";
  }
  return "unknown";
}

IoBuf EncodeGossipMessage(const GossipMessage& msg) {
  auto root = std::make_shared<TRecord>();
  root->Set("kind", MakeString(msg.kind));
  root->Set("host", MakeString(msg.host));
  if (!msg.subject.empty()) root->Set("subject", MakeString(msg.subject));
  root->Set("incarnation", MakeUInt64(msg.incarnation));
  root->Set("reached", MakeBool(msg.reached));
  auto updates = std::make_shared<TList>();
  for (const MemberUpdate& u : msg.updates) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("host", MakeString(u.host));
    rec->Set("incarnation", MakeUInt64(u.incarnation));
    rec->Set("state", MakeInt32(static_cast<int>(u.state)));
    updates->Add(rec);
  }
  root->Set("updates", updates);
  auto folders = std::make_shared<TList>();
  for (const GossipFolderInfo& fs : msg.folder_servers) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("id", MakeInt32(fs.id));
    rec->Set("epoch", MakeUInt64(fs.epoch));
    rec->Set("wal_lag", MakeUInt64(fs.wal_lag));
    folders->Add(rec);
  }
  root->Set("folder_servers", folders);
  auto owners = std::make_shared<TList>();
  for (const OwnershipClaim& claim : msg.owners) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("id", MakeInt32(claim.fs_id));
    rec->Set("host", MakeString(claim.host));
    rec->Set("epoch", MakeUInt64(claim.epoch));
    owners->Add(rec);
  }
  root->Set("owners", owners);
  return EncodeGraphToIoBuf(root);
}

Result<GossipMessage> ParseGossipMessage(const IoBuf& value) {
  if (value.size() == 0) {
    return InvalidArgumentError("empty gossip payload");
  }
  DMEMO_ASSIGN_OR_RETURN(auto decoded, DecodeGraphFromBytes(value));
  auto root = std::dynamic_pointer_cast<TRecord>(decoded);
  if (root == nullptr) {
    return DataLossError("gossip payload is not a record");
  }
  GossipMessage msg;
  msg.kind = StrField(*root, "kind");
  msg.host = StrField(*root, "host");
  msg.subject = StrField(*root, "subject");
  msg.incarnation = U64Field(*root, "incarnation");
  if (auto r = std::dynamic_pointer_cast<TBool>(root->Get("reached"))) {
    msg.reached = r->value();
  }
  if (msg.kind.empty() || msg.host.empty()) {
    return DataLossError("gossip payload missing kind/host");
  }
  if (auto list = std::dynamic_pointer_cast<TList>(root->Get("updates"))) {
    for (const auto& item : list->items()) {
      auto rec = std::dynamic_pointer_cast<TRecord>(item);
      if (rec == nullptr) continue;
      MemberUpdate u;
      u.host = StrField(*rec, "host");
      u.incarnation = U64Field(*rec, "incarnation");
      const int state = I32Field(*rec, "state");
      if (u.host.empty() || state < 0 ||
          state > static_cast<int>(MemberState::kDead)) {
        continue;
      }
      u.state = static_cast<MemberState>(state);
      msg.updates.push_back(std::move(u));
    }
  }
  if (auto list =
          std::dynamic_pointer_cast<TList>(root->Get("folder_servers"))) {
    for (const auto& item : list->items()) {
      auto rec = std::dynamic_pointer_cast<TRecord>(item);
      if (rec == nullptr) continue;
      msg.folder_servers.push_back(GossipFolderInfo{
          I32Field(*rec, "id"), U64Field(*rec, "epoch"),
          U64Field(*rec, "wal_lag")});
    }
  }
  if (auto list = std::dynamic_pointer_cast<TList>(root->Get("owners"))) {
    for (const auto& item : list->items()) {
      auto rec = std::dynamic_pointer_cast<TRecord>(item);
      if (rec == nullptr) continue;
      OwnershipClaim claim;
      claim.fs_id = I32Field(*rec, "id");
      claim.host = StrField(*rec, "host");
      claim.epoch = U64Field(*rec, "epoch");
      if (claim.host.empty()) continue;
      msg.owners.push_back(std::move(claim));
    }
  }
  return msg;
}

GossipMembership::GossipMembership(std::string self_host, int suspect_misses)
    : self_(std::move(self_host)),
      suspect_misses_(std::max(1, suspect_misses)) {
  const std::string host_label = "host=\"" + self_ + "\"";
  auto& registry = MetricsRegistry::Global();
  suspects_ = registry.GetCounter("dmemo_gossip_suspects_total", host_label);
  deaths_ = registry.GetCounter("dmemo_gossip_deaths_total", host_label);
  refutes_ = registry.GetCounter("dmemo_gossip_refutes_total", host_label);
}

void GossipMembership::AddPeer(const std::string& host) {
  if (host == self_ || host.empty()) return;
  MutexLock lock(mu_);
  members_.try_emplace(host);
}

std::uint64_t GossipMembership::self_incarnation() const {
  MutexLock lock(mu_);
  return self_incarnation_;
}

std::string GossipMembership::NextProbeTarget(SplitMix64& rng) {
  MutexLock lock(mu_);
  if (order_pos_ >= order_.size()) {
    order_.clear();
    for (const auto& [host, m] : members_) {
      if (m.state != MemberState::kDead) order_.push_back(host);
    }
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng.NextBelow(i)]);
    }
    order_pos_ = 0;
  }
  // Members may have died since the cycle was shuffled; skip them.
  while (order_pos_ < order_.size()) {
    const std::string& host = order_[order_pos_++];
    auto it = members_.find(host);
    if (it != members_.end() && it->second.state != MemberState::kDead) {
      return host;
    }
  }
  return std::string();
}

std::vector<std::string> GossipMembership::IndirectCandidates(
    int k, const std::string& exclude, SplitMix64& rng) {
  MutexLock lock(mu_);
  std::vector<std::string> live;
  for (const auto& [host, m] : members_) {
    if (host != exclude && m.state != MemberState::kDead) {
      live.push_back(host);
    }
  }
  for (std::size_t i = live.size(); i > 1; --i) {
    std::swap(live[i - 1], live[rng.NextBelow(i)]);
  }
  if (k >= 0 && live.size() > static_cast<std::size_t>(k)) {
    live.resize(static_cast<std::size_t>(k));
  }
  return live;
}

bool GossipMembership::OnProbeSuccess(const std::string& host,
                                      std::uint64_t incarnation) {
  MutexLock lock(mu_);
  auto it = members_.find(host);
  if (it == members_.end()) return false;
  Member& m = it->second;
  // A direct ack is ground truth for liveness: it clears a suspicion even
  // at an equal incarnation (the gossiped alive{i}-overrides-suspect{j}
  // rule needs i > j only for *hearsay*).
  if (incarnation < m.incarnation && m.state != MemberState::kAlive) {
    return false;  // stale ack from before the suspected incarnation
  }
  const bool rejoined = m.state == MemberState::kDead;
  m.state = MemberState::kAlive;
  m.incarnation = std::max(m.incarnation, incarnation);
  m.misses = 0;
  m.suspect_ticks = 0;
  QueueUpdateLocked(
      MemberUpdate{host, m.incarnation, MemberState::kAlive});
  return rejoined;
}

void GossipMembership::OnProbeMiss(const std::string& host) {
  MutexLock lock(mu_);
  auto it = members_.find(host);
  if (it == members_.end()) return;
  Member& m = it->second;
  if (m.state == MemberState::kDead) return;
  ++m.misses;
  if (m.state == MemberState::kAlive) {
    m.state = MemberState::kSuspect;
    m.suspect_ticks = 0;
    suspects_->Increment();
    QueueUpdateLocked(
        MemberUpdate{host, m.incarnation, MemberState::kSuspect});
    DMEMO_LOG(kWarn) << self_ << ": gossip suspects " << host
                     << " (incarnation " << m.incarnation << ")";
  }
}

bool GossipMembership::MarkDeadLocked(const std::string& host, Member& m) {
  if (m.state == MemberState::kDead) return false;
  m.state = MemberState::kDead;
  m.misses = std::max(m.misses, suspect_misses_);
  deaths_->Increment();
  QueueUpdateLocked(MemberUpdate{host, m.incarnation, MemberState::kDead});
  return true;
}

std::vector<std::string> GossipMembership::Tick() {
  MutexLock lock(mu_);
  std::vector<std::string> dead;
  for (auto& [host, m] : members_) {
    if (m.state != MemberState::kSuspect) continue;
    ++m.suspect_ticks;
    // Dead on enough consecutive failed probes of our own, or when a
    // (possibly gossiped) suspicion ages out unrefuted — the SWIM
    // suspicion timeout that lets every member converge on a death it
    // never probed directly.
    if (m.misses >= suspect_misses_ ||
        m.suspect_ticks >= 2 * suspect_misses_) {
      if (MarkDeadLocked(host, m)) dead.push_back(host);
    }
  }
  return dead;
}

std::vector<std::string> GossipMembership::ApplyUpdates(
    const std::vector<MemberUpdate>& updates) {
  MutexLock lock(mu_);
  std::vector<std::string> dead;
  for (const MemberUpdate& u : updates) {
    if (u.host == self_) {
      // Someone thinks we are suspect/dead: refute by outliving the claim
      // — bump our incarnation past it and re-announce alive.
      if (u.state != MemberState::kAlive &&
          u.incarnation >= self_incarnation_) {
        self_incarnation_ = u.incarnation + 1;
        refutes_->Increment();
        QueueUpdateLocked(
            MemberUpdate{self_, self_incarnation_, MemberState::kAlive});
      }
      continue;
    }
    auto it = members_.find(u.host);
    if (it == members_.end()) continue;  // not in the configured farm
    Member& m = it->second;
    bool applies = false;
    switch (u.state) {
      case MemberState::kAlive:
        // alive{i} overrides suspect{j}/dead{j}/alive{j} for i > j.
        applies = u.incarnation > m.incarnation ||
                  (u.incarnation == m.incarnation &&
                   m.state == MemberState::kAlive);
        break;
      case MemberState::kSuspect:
        // suspect{i} overrides alive{j} for i >= j, suspect{j} for i > j.
        applies = (m.state == MemberState::kAlive &&
                   u.incarnation >= m.incarnation) ||
                  (m.state == MemberState::kSuspect &&
                   u.incarnation > m.incarnation);
        break;
      case MemberState::kDead:
        applies = m.state != MemberState::kDead &&
                  u.incarnation >= m.incarnation;
        break;
    }
    if (!applies) continue;
    m.incarnation = std::max(m.incarnation, u.incarnation);
    if (u.state == MemberState::kDead) {
      if (MarkDeadLocked(u.host, m)) dead.push_back(u.host);
    } else if (u.state != m.state) {
      if (u.state == MemberState::kSuspect) {
        m.state = MemberState::kSuspect;
        m.suspect_ticks = 0;
        suspects_->Increment();
      } else {
        m.state = MemberState::kAlive;
        m.misses = 0;
        m.suspect_ticks = 0;
      }
      QueueUpdateLocked(MemberUpdate{u.host, m.incarnation, m.state});
    }
  }
  return dead;
}

void GossipMembership::QueueUpdateLocked(const MemberUpdate& update) {
  piggyback_[update.host] = Pending{update, kPiggybackSends};
}

std::vector<MemberUpdate> GossipMembership::PiggybackUpdates() {
  MutexLock lock(mu_);
  std::vector<MemberUpdate> out;
  out.push_back(
      MemberUpdate{self_, self_incarnation_, MemberState::kAlive});
  for (auto it = piggyback_.begin(); it != piggyback_.end();) {
    out.push_back(it->second.update);
    if (--it->second.remaining <= 0) {
      it = piggyback_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<MemberView> GossipMembership::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MemberView> out;
  out.reserve(members_.size());
  for (const auto& [host, m] : members_) {
    out.push_back(
        MemberView{host, m.state, m.incarnation, m.misses, m.suspect_ticks});
  }
  return out;
}

}  // namespace dmemo
