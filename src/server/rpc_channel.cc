#include "server/rpc_channel.h"

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace dmemo {

namespace {
constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;

// Process-wide RPC-layer metrics, summed over every channel. Handles are
// function-local statics so the per-frame cost is one relaxed add.
Counter* FramesSent() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_frames_sent_total");
  return c;
}
Counter* FramesReceived() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_frames_received_total");
  return c;
}
Counter* RpcBytesSent() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_bytes_sent_total");
  return c;
}
Counter* RpcBytesReceived() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_bytes_received_total");
  return c;
}
// Client-observed round-trip latency of RpcChannel::Call/CallFor, including
// queueing and parked-get wait time at the far end.
Histogram* CallLatency() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("dmemo_rpc_call_latency_us");
  return h;
}
}  // namespace

RpcChannelPtr RpcChannel::Create(ConnectionPtr conn, WorkerPool* pool,
                                 RequestHandler handler) {
  auto channel = RpcChannelPtr(
      new RpcChannel(std::move(conn), pool, std::move(handler)));
  channel->Start();
  return channel;
}

RpcChannel::RpcChannel(ConnectionPtr conn, WorkerPool* pool,
                       RequestHandler handler)
    : conn_(std::move(conn)), pool_(pool), handler_(std::move(handler)) {}

void RpcChannel::Start() {
  reader_ = std::thread([self = shared_from_this()] { self->ReaderLoop(); });
}

RpcChannel::~RpcChannel() {
  Close();
  if (reader_.joinable()) {
    // The destructor can only run once no handler holds shared_from_this,
    // so the reader thread is past its self-reference and joinable here —
    // unless *we are* the reader (channel dropped from a handler); then
    // detach to avoid self-join.
    if (reader_.get_id() == std::this_thread::get_id()) {
      reader_.detach();
    } else {
      reader_.join();
    }
  }
}

Result<Response> RpcChannel::Call(const Request& request) {
  DMEMO_ASSIGN_OR_RETURN(std::optional<Response> resp,
                         CallFor(request, std::chrono::milliseconds::max()));
  if (!resp.has_value()) {
    return InternalError("unbounded call returned without response");
  }
  return std::move(*resp);
}

Result<std::optional<Response>> RpcChannel::CallFor(
    const Request& request, std::chrono::milliseconds timeout) {
  if (closed_.load()) return UnavailableError("rpc channel closed");
  const std::uint64_t start_us = MonotonicMicros();
  std::uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    pending_.emplace(id, PendingCall{});
  }
  Status sent = SendFrame(kKindRequest, id, request.EncodeToIoBuf());
  if (!sent.ok()) {
    MutexLock lock(mu_);
    pending_.erase(id);
    return sent;
  }

  MutexLock lock(mu_);
  const bool unbounded = timeout == std::chrono::milliseconds::max();
  const auto deadline = unbounded
                            ? std::chrono::steady_clock::time_point::max()
                            : std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return UnavailableError("rpc channel closed while waiting");
    }
    if (it->second.failed) {
      pending_.erase(it);
      return UnavailableError("rpc channel closed while waiting");
    }
    if (it->second.response.has_value()) {
      Response resp = std::move(*it->second.response);
      pending_.erase(it);
      CallLatency()->Observe(MonotonicMicros() - start_us);
      return std::optional<Response>(std::move(resp));
    }
    if (closed_.load()) {
      // ReaderLoop may have exited and failed all pending *between* the
      // closed_ check at entry and our insert — our entry was never marked
      // failed and nobody will ever wake us. Checked here, under mu_ and
      // after the response check, so a response that raced in first still
      // wins.
      pending_.erase(it);
      return UnavailableError("rpc channel closed");
    }
    if (unbounded) {
      cv_.Wait(mu_);
    } else if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      // Drop the entry; a late response then finds no waiter and is
      // discarded by the reader loop.
      pending_.erase(id);
      return std::optional<Response>(std::nullopt);
    }
  }
}

Status RpcChannel::SendFrame(std::uint8_t kind, std::uint64_t id,
                             const IoBuf& body) {
  ByteWriter prefix;
  prefix.u8(kind);
  prefix.u64(id);
  IoBuf frame = IoBuf::FromBytes(prefix.take());
  frame.Append(body);
  const std::size_t total = frame.size();
  Status sent;
  {
    MutexLock lock(send_mu_);
    // send_mu_ exists to serialize whole frames onto the wire; the send
    // analyze:allow(blocking-under-lock) blocking under it is its purpose
    sent = conn_->SendBuf(frame);
  }
  if (sent.ok()) {
    bytes_sent_.fetch_add(total, std::memory_order_relaxed);
    FramesSent()->Increment();
    RpcBytesSent()->Add(total);
  }
  return sent;
}

void RpcChannel::ReaderLoop() {
  for (;;) {
    auto frame = conn_->Receive();
    if (!frame.ok()) break;
    bytes_received_.fetch_add(frame->size(), std::memory_order_relaxed);
    FramesReceived()->Increment();
    RpcBytesReceived()->Add(frame->size());
    IoBufReader reader(*frame);
    ByteReader& in = reader.base();
    auto kind = in.u8();
    auto id = in.u64();
    if (!kind.ok() || !id.ok()) continue;  // malformed frame: drop
    if (*kind == kKindResponse) {
      auto resp = Response::DecodeFrom(reader);
      MutexLock lock(mu_);
      auto it = pending_.find(*id);
      if (it == pending_.end()) continue;  // timed-out caller; drop
      if (resp.ok()) {
        it->second.response = std::move(*resp);
      } else {
        it->second.failed = true;
      }
      cv_.NotifyAll();
    } else if (*kind == kKindRequest) {
      auto req = Request::DecodeFrom(reader);
      if (!req.ok()) {
        DMEMO_LOG(kWarn) << "dropping malformed request on "
                         << conn_->description() << ": "
                         << req.status().ToString();
        continue;
      }
      HandleRequest(*id, std::move(*req));
    }
  }
  closed_.store(true);
  MutexLock lock(mu_);
  for (auto& [id, call] : pending_) call.failed = true;
  cv_.NotifyAll();
}

void RpcChannel::HandleRequest(std::uint64_t id, Request request) {
  // Each request gets a (cached) thread, per Sec. 4.1. The worker holds a
  // shared_ptr so the channel outlives parked handlers.
  auto self = shared_from_this();
  auto work = [self, id, request = std::move(request)] {
    Response response =
        self->handler_
            ? self->handler_(request)
            : Response::FromStatus(FailedPreconditionError(
                  "peer does not accept requests"));
    self->requests_handled_.fetch_add(1, std::memory_order_relaxed);
    (void)self->SendFrame(kKindResponse, id, response.EncodeToIoBuf());
  };
  if (pool_ == nullptr || !pool_->Submit(work)) {
    // No pool, or the pool already shut down: run inline so the peer still
    // gets a response instead of timing out on a silently dropped request.
    work();
  }
}

void RpcChannel::Close() {
  if (closed_.exchange(true)) {
    conn_->Close();
    return;
  }
  conn_->Close();
  MutexLock lock(mu_);
  for (auto& [id, call] : pending_) call.failed = true;
  cv_.NotifyAll();
}

bool RpcChannel::closed() const { return closed_.load(); }

std::uint64_t RpcChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}
std::uint64_t RpcChannel::bytes_received() const {
  return bytes_received_.load(std::memory_order_relaxed);
}
std::uint64_t RpcChannel::requests_handled() const {
  return requests_handled_.load(std::memory_order_relaxed);
}

}  // namespace dmemo
