#include "server/rpc_channel.h"

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace dmemo {

namespace {
// Frame kinds live in protocol.h (shared with the formation layer); local
// aliases keep the call sites short.
constexpr std::uint8_t kKindRequest = kFrameKindRequest;
constexpr std::uint8_t kKindResponse = kFrameKindResponse;

// Process-wide RPC-layer metrics, summed over every channel. Handles are
// function-local statics so the per-frame cost is one relaxed add.
Counter* FramesSent() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_frames_sent_total");
  return c;
}
Counter* FramesReceived() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_frames_received_total");
  return c;
}
Counter* RpcBytesSent() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_bytes_sent_total");
  return c;
}
Counter* RpcBytesReceived() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_bytes_received_total");
  return c;
}
// Client-observed round-trip latency of RpcChannel::Call/CallFor, including
// queueing and parked-get wait time at the far end.
Histogram* CallLatency() {
  static Histogram* h =
      MetricsRegistry::Global().GetHistogram("dmemo_rpc_call_latency_us");
  return h;
}
}  // namespace

RpcChannelPtr RpcChannel::Create(ConnectionPtr conn, WorkerPool* pool,
                                 RequestHandler handler,
                                 RequestClassifier may_block) {
  auto channel = RpcChannelPtr(new RpcChannel(
      std::move(conn), pool, std::move(handler), std::move(may_block)));
  channel->Start();
  return channel;
}

RpcChannel::RpcChannel(ConnectionPtr conn, WorkerPool* pool,
                       RequestHandler handler, RequestClassifier may_block)
    : conn_(std::move(conn)),
      pool_(pool),
      handler_(std::move(handler)),
      may_block_(std::move(may_block)) {
  formation_ = std::make_unique<FormationQueue>(
      FormationQueue::Options::FromEnv(),
      [this](IoBuf frame) { (void)SendWireFrame(frame); });
}

void RpcChannel::Start() {
  reader_ = std::thread([self = shared_from_this()] { self->ReaderLoop(); });
}

RpcChannel::~RpcChannel() {
  Close();
  if (reader_.joinable()) {
    // The destructor can only run once no handler holds shared_from_this,
    // so the reader thread is past its self-reference and joinable here —
    // unless *we are* the reader (channel dropped from a handler); then
    // detach to avoid self-join.
    if (reader_.get_id() == std::this_thread::get_id()) {
      reader_.detach();
    } else {
      reader_.join();
    }
  }
}

Result<Response> RpcChannel::Call(const Request& request) {
  DMEMO_ASSIGN_OR_RETURN(std::optional<Response> resp,
                         CallFor(request, std::chrono::milliseconds::max()));
  if (!resp.has_value()) {
    return InternalError("unbounded call returned without response");
  }
  return std::move(*resp);
}

Result<std::optional<Response>> RpcChannel::CallFor(
    const Request& request, std::chrono::milliseconds timeout) {
  if (closed_.load()) return UnavailableError("rpc channel closed");
  const std::uint64_t start_us = MonotonicMicros();
  std::uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    pending_.emplace(id, PendingCall{});
  }
  Status sent = SendFrame(kKindRequest, id, request.EncodeToIoBuf());
  if (!sent.ok()) {
    MutexLock lock(mu_);
    pending_.erase(id);
    return sent;
  }

  MutexLock lock(mu_);
  const bool unbounded = timeout == std::chrono::milliseconds::max();
  const auto deadline = unbounded
                            ? std::chrono::steady_clock::time_point::max()
                            : std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return UnavailableError("rpc channel closed while waiting");
    }
    if (it->second.failed) {
      pending_.erase(it);
      return UnavailableError("rpc channel closed while waiting");
    }
    if (it->second.response.has_value()) {
      Response resp = std::move(*it->second.response);
      pending_.erase(it);
      CallLatency()->Observe(MonotonicMicros() - start_us);
      return std::optional<Response>(std::move(resp));
    }
    if (closed_.load()) {
      // ReaderLoop may have exited and failed all pending *between* the
      // closed_ check at entry and our insert — our entry was never marked
      // failed and nobody will ever wake us. Checked here, under mu_ and
      // after the response check, so a response that raced in first still
      // wins.
      pending_.erase(it);
      return UnavailableError("rpc channel closed");
    }
    if (unbounded) {
      cv_.Wait(mu_);
    } else if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      // Drop the entry; a late response then finds no waiter and is
      // discarded by the reader loop.
      pending_.erase(id);
      return std::optional<Response>(std::nullopt);
    }
  }
}

std::uint64_t RpcChannel::CallAsync(const Request& request,
                                    AsyncCallback done) {
  if (closed_.load()) {
    done(UnavailableError("rpc channel closed"));
    return 0;
  }
  std::uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    PendingCall call;
    call.done = std::move(done);
    call.start_us = MonotonicMicros();
    pending_.emplace(id, std::move(call));
  }
  // A near-deadline call skips coalescing: waiting out the formation timer
  // could eat a meaningful slice of its remaining budget.
  const FormationQueue::Urgency urgency =
      formation_->DeadlineUrgent(request.deadline_ms)
          ? FormationQueue::Urgency::kUrgent
          : FormationQueue::Urgency::kCoalesce;
  formation_->Enqueue(kKindRequest, id, request.EncodeToIoBuf(), urgency);
  if (closed_.load()) {
    // Teardown may have swept pending_ before our insert (same race as
    // CallFor's post-insert closed_ check); if our entry is still there,
    // nobody else will ever complete it.
    AsyncCallback cb;
    {
      MutexLock lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end() && it->second.done) {
        cb = std::move(it->second.done);
        pending_.erase(it);
      }
    }
    if (cb) cb(UnavailableError("rpc channel closed"));
  }
  return id;
}

std::future<Result<Response>> RpcChannel::CallAsync(const Request& request) {
  auto promise = std::make_shared<std::promise<Result<Response>>>();
  std::future<Result<Response>> future = promise->get_future();
  (void)CallAsync(request, [promise](Result<Response> result) {
    promise->set_value(std::move(result));
  });
  return future;
}

void RpcChannel::CancelAsync(std::uint64_t id, const Status& status) {
  AsyncCallback cb;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.done) return;
    cb = std::move(it->second.done);
    pending_.erase(it);
  }
  cb(status);
}

Status RpcChannel::SendFrame(std::uint8_t kind, std::uint64_t id,
                             const IoBuf& body) {
  ByteWriter prefix;
  prefix.u8(kind);
  prefix.u64(id);
  IoBuf frame = IoBuf::FromBytes(prefix.take());
  frame.Append(body);
  return SendWireFrame(frame);
}

Status RpcChannel::SendWireFrame(const IoBuf& frame) {
  const std::size_t total = frame.size();
  Status sent;
  {
    MutexLock lock(send_mu_);
    // send_mu_ exists to serialize whole frames onto the wire; the send
    // analyze:allow(blocking-under-lock) blocking under it is its purpose
    sent = conn_->SendBuf(frame);
  }
  if (sent.ok()) {
    bytes_sent_.fetch_add(total, std::memory_order_relaxed);
    FramesSent()->Increment();
    RpcBytesSent()->Add(total);
  }
  return sent;
}

void RpcChannel::ReaderLoop() {
  for (;;) {
    auto frame = conn_->Receive();
    if (!frame.ok()) break;
    bytes_received_.fetch_add(frame->size(), std::memory_order_relaxed);
    FramesReceived()->Increment();
    RpcBytesReceived()->Add(frame->size());
    IoBufReader reader(*frame);
    ByteReader& in = reader.base();
    auto kind = in.u8();
    auto id = in.u64();
    if (!kind.ok() || !id.ok()) continue;  // malformed frame: drop
    if (*kind == kKindResponse) {
      auto resp = Response::DecodeFrom(reader);
      if (resp.ok()) {
        CompleteResponse(*id, std::move(*resp));
      } else {
        CompleteResponse(*id, resp.status());
      }
    } else if (*kind == kKindRequest) {
      auto req = Request::DecodeFrom(reader);
      if (!req.ok()) {
        DMEMO_LOG(kWarn) << "dropping malformed request on "
                         << conn_->description() << ": "
                         << req.status().ToString();
        continue;
      }
      HandleRequest(*id, std::move(*req), /*batched=*/false);
    } else if (*kind == kFrameKindBatch) {
      // Packed multi-op frame: `id` is the entry count; every entry body
      // aliases the frame's block (no re-copy on the way to the handlers).
      auto entries = DecodeBatchEntries(reader, *id);
      if (!entries.ok()) {
        DMEMO_LOG(kWarn) << "dropping malformed batch frame on "
                         << conn_->description() << ": "
                         << entries.status().ToString();
        continue;
      }
      // Responses complete under one mu_ acquisition; prompt requests ride
      // one sequential worker. Only may-block ops — parking gets, and
      // relays when the owner installed a classifier — fan out.
      std::vector<std::pair<std::uint64_t, Result<Response>>> responses;
      std::vector<std::pair<std::uint64_t, Request>> prompt_requests;
      for (BatchEntry& entry : *entries) {
        IoBufReader entry_reader(entry.body);
        if (entry.kind == kKindResponse) {
          auto resp = Response::DecodeFrom(entry_reader);
          responses.emplace_back(entry.id, resp.ok()
                                               ? Result<Response>(std::move(*resp))
                                               : Result<Response>(resp.status()));
        } else {
          auto req = Request::DecodeFrom(entry_reader);
          if (!req.ok()) {
            DMEMO_LOG(kWarn) << "dropping malformed batched request on "
                             << conn_->description() << ": "
                             << req.status().ToString();
            continue;
          }
          const bool solo = may_block_ != nullptr ? may_block_(*req)
                                                  : OpMayPark(req->op);
          if (solo) {
            HandleRequest(entry.id, std::move(*req), /*batched=*/true);
          } else {
            prompt_requests.emplace_back(entry.id, std::move(*req));
          }
        }
      }
      if (!responses.empty()) CompleteResponseBatch(std::move(responses));
      if (!prompt_requests.empty()) {
        HandleRequestBatch(std::move(prompt_requests));
      }
    }
  }
  closed_.store(true);
  FailAllPending();
}

void RpcChannel::CompleteResponse(std::uint64_t id, Result<Response> result) {
  AsyncCallback cb;
  std::uint64_t start_us = 0;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // timed-out caller; drop
    if (it->second.done) {
      cb = std::move(it->second.done);
      start_us = it->second.start_us;
      pending_.erase(it);
    } else if (result.ok()) {
      it->second.response = std::move(*result);
      cv_.NotifyAll();
      return;
    } else {
      it->second.failed = true;
      cv_.NotifyAll();
      return;
    }
  }
  // Async completion runs outside mu_: the callback may issue follow-up
  // calls on this channel (which take mu_ again).
  if (result.ok()) CallLatency()->Observe(MonotonicMicros() - start_us);
  cb(std::move(result));
}

void RpcChannel::CompleteResponseBatch(
    std::vector<std::pair<std::uint64_t, Result<Response>>> results) {
  // One mu_ acquisition and one cv_ broadcast for the whole packed frame,
  // instead of per entry — on the pipelined path this runs for every frame
  // the peer coalesced, so the per-op locking cost is what the batch
  // amortizes away.
  const std::uint64_t now_us = MonotonicMicros();
  std::vector<std::pair<AsyncCallback, Result<Response>>> callbacks;
  callbacks.reserve(results.size());
  bool woke_sync_waiter = false;
  {
    MutexLock lock(mu_);
    for (auto& [id, result] : results) {
      auto it = pending_.find(id);
      if (it == pending_.end()) continue;  // timed-out caller; drop
      if (it->second.done) {
        if (result.ok()) {
          CallLatency()->Observe(now_us - it->second.start_us);
        }
        callbacks.emplace_back(std::move(it->second.done), std::move(result));
        pending_.erase(it);
      } else if (result.ok()) {
        it->second.response = std::move(*result);
        woke_sync_waiter = true;
      } else {
        it->second.failed = true;
        woke_sync_waiter = true;
      }
    }
    if (woke_sync_waiter) cv_.NotifyAll();
  }
  // Async completions run outside mu_, in frame order (same contract as
  // CompleteResponse).
  for (auto& [cb, result] : callbacks) {
    cb(std::move(result));
  }
}

void RpcChannel::FailAllPending() {
  std::vector<AsyncCallback> callbacks;
  {
    MutexLock lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.done) {
        callbacks.push_back(std::move(it->second.done));
        it = pending_.erase(it);
      } else {
        it->second.failed = true;
        ++it;
      }
    }
    cv_.NotifyAll();
  }
  for (AsyncCallback& cb : callbacks) {
    cb(UnavailableError("rpc channel closed"));
  }
}

void RpcChannel::HandleRequest(std::uint64_t id, Request request,
                               bool batched) {
  // Each request gets a (cached) thread, per Sec. 4.1. The worker holds a
  // shared_ptr so the channel outlives parked handlers.
  auto self = shared_from_this();
  auto work = [self, id, batched, request = std::move(request)] {
    Response response =
        self->handler_
            ? self->handler_(request)
            : Response::FromStatus(FailedPreconditionError(
                  "peer does not accept requests"));
    self->requests_handled_.fetch_add(1, std::memory_order_relaxed);
    if (batched) {
      // Responses to batched requests coalesce on the way back, so a burst
      // that arrived as one frame tends to answer as few frames — without
      // waiting for stragglers of the same inbound batch (a parked get
      // must not hold up its batchmates' responses).
      const FormationQueue::Urgency urgency =
          self->formation_->DeadlineUrgent(request.deadline_ms)
              ? FormationQueue::Urgency::kUrgent
              : FormationQueue::Urgency::kCoalesce;
      self->formation_->Enqueue(kKindResponse, id, response.EncodeToIoBuf(),
                                urgency);
    } else {
      // Single-op requests answer as single-op frames: a legacy peer never
      // sees a packed frame unless it sent one.
      (void)self->SendFrame(kKindResponse, id, response.EncodeToIoBuf());
    }
  };
  if (pool_ == nullptr || !pool_->Submit(work)) {
    // No pool, or the pool already shut down: run inline so the peer still
    // gets a response instead of timing out on a silently dropped request.
    work();
  }
}

void RpcChannel::HandleRequestBatch(
    std::vector<std::pair<std::uint64_t, Request>> batch) {
  // All entries here are never-park ops (OpMayPark == false): each handler
  // call returns promptly, so the whole inbound frame shares one worker and
  // its responses hit the formation queue back-to-back — they leave as the
  // size-triggered packed frame the sender's burst deserves. A relay hop
  // inside an entry blocks only its batchmates, never this channel's reader
  // (the relayed response arrives on the relay channel's own reader), so
  // ordering within the batch is preserved and progress is guaranteed.
  auto self = shared_from_this();
  auto work = [self, batch = std::move(batch)]() mutable {
    for (auto& [id, request] : batch) {
      Response response =
          self->handler_
              ? self->handler_(request)
              : Response::FromStatus(FailedPreconditionError(
                    "peer does not accept requests"));
      self->requests_handled_.fetch_add(1, std::memory_order_relaxed);
      const FormationQueue::Urgency urgency =
          self->formation_->DeadlineUrgent(request.deadline_ms)
              ? FormationQueue::Urgency::kUrgent
              : FormationQueue::Urgency::kCoalesce;
      self->formation_->Enqueue(kKindResponse, id, response.EncodeToIoBuf(),
                                urgency);
    }
    // Burst over: everything this frame produced leaves now instead of a
    // partial batch riding out the delay timer (see FlushDrained).
    self->formation_->FlushDrained();
  };
  if (pool_ == nullptr || !pool_->Submit(work)) {
    work();
  }
}

void RpcChannel::Close() {
  const bool already = closed_.exchange(true);
  // Connection first: a flusher blocked in a send unblocks with an error,
  // so the formation Close below (which joins it) cannot hang.
  conn_->Close();
  formation_->Close();
  if (already) return;
  FailAllPending();
}

bool RpcChannel::closed() const { return closed_.load(); }

std::uint64_t RpcChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}
std::uint64_t RpcChannel::bytes_received() const {
  return bytes_received_.load(std::memory_order_relaxed);
}
std::uint64_t RpcChannel::requests_handled() const {
  return requests_handled_.load(std::memory_order_relaxed);
}

}  // namespace dmemo
