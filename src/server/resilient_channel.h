// Self-healing client channel: RpcChannel plus reconnect and retry.
//
// A raw RpcChannel dies with its Connection: one dropped link permanently
// fails every subsequent call. ResilientChannel owns the dial recipe
// (Transport + URL) instead of the socket, so when the underlying channel
// dies it re-dials with exponential backoff and re-issues the interrupted
// call. Retries are safe because every at-most-once op (put/get family)
// carries a client-minted request id that the server's completion cache
// dedupes: a retried kPut never deposits twice and a retried kGet receives
// the already-extracted memo instead of losing it.
//
// Deadlines: a call with a nonzero timeout (per-call argument, or the
// channel-wide default) fails with TIMED_OUT once the budget is spent — it
// never hangs. The remaining budget rides the Request's deadline_ms field
// on every (re)transmit so forwarding servers can bound their own waits.
// With no deadline (the default, matching blocking-get semantics) a call
// waits indefinitely for a response but still survives channel death, up to
// RetryPolicy::max_attempts dials.
//
// Metrics: dmemo_rpc_retries_total, dmemo_rpc_reconnects_total,
// dmemo_rpc_deadline_exceeded_total.
#pragma once

#include <future>
#include <memory>
#include <string>

#include "server/rpc_channel.h"
#include "transport/transport.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

namespace dmemo {

class ResilientChannel;
using ResilientChannelPtr = std::shared_ptr<ResilientChannel>;

// Always held by shared_ptr (Connect returns one; the async path's retry
// timers take weak references through enable_shared_from_this, so a
// channel destroyed mid-backoff fails the call instead of dangling).
class ResilientChannel
    : public std::enable_shared_from_this<ResilientChannel> {
 public:
  struct Options {
    RetryPolicy retry = RetryPolicy::FromEnv();
    // Default whole-call deadline; 0 = unbounded. Overridable per call.
    std::chrono::milliseconds call_timeout{0};
    // Worker pool / handler for requests the peer sends us over this
    // channel (memo-server peer links are bidirectional). Pure clients
    // leave both null.
    WorkerPool* pool = nullptr;
    RequestHandler handler;
    // Optional dispatch classifier for inbound packed frames (see
    // RequestClassifier in rpc_channel.h); propagated to every channel
    // generation this wrapper dials.
    RequestClassifier classifier;
  };

  // Lazy: no dial happens until the first call (the memo server creates
  // peer channels under its own lock; dialing there would serialize and
  // could deadlock into the transport). Connect() dials eagerly instead.
  ResilientChannel(TransportPtr transport, std::string url, Options options);

  // Eager variant for clients that want dial errors surfaced at setup.
  static Result<ResilientChannelPtr> Connect(TransportPtr transport,
                                             std::string url,
                                             Options options);

  ~ResilientChannel();

  ResilientChannel(const ResilientChannel&) = delete;
  ResilientChannel& operator=(const ResilientChannel&) = delete;

  // Send `request`, wait for its response, transparently re-dialing and
  // retrying on channel death (and on attempt timeout, when the policy
  // bounds attempts). Mints request.request_id for at-most-once ops so all
  // transmits of this call share one server-side execution. `timeout`
  // overrides the channel default; 0 = use default, negative = unbounded.
  Result<Response> Call(Request request,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(0));

  // Asynchronous Call: same semantics (request-id mint, re-dial, backoff,
  // deadline restamp per transmit), but the caller's thread only pays for
  // the transmit — the response completes `done` from the channel's reader
  // thread, so hundreds of calls can be in flight on one connection. The
  // first attempt's dial (lazy channels) runs on the caller; retry attempts
  // run on a per-retry timer thread, never on the completion path. With a
  // per-attempt timeout (or a bounded call), a timer abandons the attempt
  // and retransmits under the same request_id — the server's completion
  // cache dedupes, exactly as for the sync path.
  void CallAsync(Request request, AsyncCallback done,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(0));

  // Future-returning convenience over the callback form.
  std::future<Result<Response>> CallAsync(Request request,
                                          std::chrono::milliseconds timeout =
                                              std::chrono::milliseconds(0));

  // Pipelining hint, forwarded to the live channel generation's formation
  // queue: flush any partially coalesced packed frame now, the caller is
  // about to block on its in-flight futures. No-op when disconnected or
  // nothing is queued; never dials.
  void Flush();

  // Fails in-flight calls and refuses new ones. Idempotent.
  void Close();
  [[nodiscard]] bool closed() const;

  const std::string& url() const { return url_; }
  std::string description() const;

  // Cumulative wire traffic across every channel generation (the memo
  // server's per-peer traffic accounting reads these).
  std::uint64_t bytes_sent() const;
  std::uint64_t bytes_received() const;
  // Successful re-dials after the first connect (this channel's share of
  // dmemo_rpc_reconnects_total).
  std::uint64_t reconnects() const;

 private:
  struct AsyncCall;

  // Returns a live channel, dialing if none exists or the last one died.
  Result<RpcChannelPtr> EnsureChannel();

  // One transmit of an async call: stamps the remaining budget, issues the
  // underlying CallAsync, and arms the per-attempt timer when bounded.
  void StartAsyncAttempt(std::shared_ptr<AsyncCall> call);
  // Failure path of one attempt: decides final-fail vs backoff-and-retry.
  void FinishAsyncAttempt(std::shared_ptr<AsyncCall> call, Status error);

  TransportPtr transport_;
  const std::string url_;
  Options options_;

  mutable Mutex mu_{"ResilientChannel::mu"};
  RpcChannelPtr channel_ DMEMO_GUARDED_BY(mu_);
  bool closed_ DMEMO_GUARDED_BY(mu_) = false;
  bool ever_connected_ DMEMO_GUARDED_BY(mu_) = false;
  std::uint64_t reconnects_ DMEMO_GUARDED_BY(mu_) = 0;
  // Traffic of channels already torn down; live channel counts are added
  // on top when reading.
  std::uint64_t retired_bytes_sent_ DMEMO_GUARDED_BY(mu_) = 0;
  std::uint64_t retired_bytes_received_ DMEMO_GUARDED_BY(mu_) = 0;
};

}  // namespace dmemo
