// RPC formation: per-channel coalescing of small messages into packed
// multi-op frames (PROTOCOL.md §2, kind 3).
//
// The paper's memo operations are tiny — a key plus a small encoded graph —
// so at production rates the per-op framing and syscall overhead dominates
// the wire cost. The formation queue sits between a channel's callers and
// its send path: already-encoded messages accumulate in a queue and are
// packed into one frame, flushed when
//
//   * the queued bodies reach a size threshold (max_bytes),
//   * the queue reaches an op-count threshold (max_ops),
//   * the oldest queued message ages past max_delay (a lazily started
//     flusher thread arms a timer for exactly that moment),
//   * a caller declares urgency (an op whose deadline is near, a shutdown
//     flush) — then the queue drains immediately, or
//   * the producing burst ends (FlushDrained): a batch worker that just
//     handled the last entry of an inbound packed frame flushes the
//     responses it produced instead of letting a partial batch ride out the
//     delay timer. Timed waits on small machines overshoot by tens of
//     microseconds, so this event-driven trigger is what keeps a pipelined
//     stream self-clocking: each inbound frame's worth of responses leaves
//     as soon as it is complete, and the timer is only a backstop for
//     stragglers (parked gets, lone urgent tails).
//
// Packing is zero-copy: entry bodies are IoBuf chains whose slices are
// shared into the packed frame, so the gather send path emits payload bytes
// from their original blocks (the same contract as single-op frames,
// DESIGN.md §11). A flush holding exactly one message emits a plain kind-1/2
// frame, byte-identical to the unbatched encoding — a formation-enabled
// client talking to a legacy server (or vice versa) interoperates as long
// as its batches never grow past one, and mixed fleets can force that with
// DMEMO_RPC_BATCH_OPS=1.
//
// Messages of one flush keep their enqueue order inside the frame; across
// flushes no order is promised (two threads can race past each other
// between taking a batch and sending it), which matches the RPC layer's
// contract that responses arrive in any order and the memo API's unordered
// semantics.
//
// Env knobs (defaults in Options):
//   DMEMO_RPC_BATCH_BYTES     flush threshold, queued body bytes
//   DMEMO_RPC_BATCH_OPS       flush threshold, queued message count
//   DMEMO_RPC_BATCH_DELAY_US  max age of the oldest queued message
//
// Metrics: dmemo_rpc_batch_frames_total, dmemo_rpc_batch_ops_total,
// dmemo_rpc_batch_flush_{size,deadline,urgent,drain}_total.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dmemo {

class FormationQueue {
 public:
  struct Options {
    std::size_t max_bytes = 16 * 1024;
    std::size_t max_ops = 64;
    std::chrono::microseconds max_delay{200};

    // Defaults above, each overridable from the environment (header
    // comment). DMEMO_RPC_BATCH_OPS=1 disables coalescing: every message
    // flushes immediately as a legacy single-op frame.
    static Options FromEnv();
  };

  enum class Urgency {
    kCoalesce,  // wait for a threshold or the delay timer
    kUrgent,    // flush the queue (this message included) right away
  };

  // Emits one fully framed wire message. Called with no formation lock
  // held; the sender provides its own write serialization (RpcChannel's
  // send_mu_). Send failures are the sender's to surface — a dead
  // connection already fails every pending call through the reader loop.
  using SendFrameFn = std::function<void(IoBuf frame)>;

  FormationQueue(Options options, SendFrameFn send);
  ~FormationQueue();

  FormationQueue(const FormationQueue&) = delete;
  FormationQueue& operator=(const FormationQueue&) = delete;

  // Queues one already-encoded message (`body` slices are shared, not
  // copied). May flush inline on the calling thread. After Close(), the
  // message is dropped — the channel is dying and its pending-call cleanup
  // owns failing the callers.
  void Enqueue(std::uint8_t kind, std::uint64_t id, IoBuf body,
               Urgency urgency = Urgency::kCoalesce);

  // Drains whatever is queued as one frame, regardless of thresholds.
  void FlushNow();

  // Burst-end flush (header comment): same drain as FlushNow, but recorded
  // under its own trigger so the metrics separate "a producer finished its
  // batch" from genuine urgency. No-op on an empty queue.
  void FlushDrained();

  // Flushes the remainder, stops and joins the flusher thread. Idempotent;
  // Enqueue afterwards is a no-op.
  void Close();

  // True when `deadline_ms` (a Request's remaining budget; 0 = unbounded)
  // is close enough that queueing behind the delay timer could eat a
  // meaningful slice of it — callers pass kUrgent for those.
  bool DeadlineUrgent(std::uint32_t deadline_ms) const;

  // Cumulative flush statistics (tests; metrics carry the same numbers
  // process-wide).
  std::uint64_t frames_flushed() const;
  std::uint64_t ops_flushed() const;
  std::uint64_t flushes_size() const;
  std::uint64_t flushes_deadline() const;
  std::uint64_t flushes_urgent() const;
  std::uint64_t flushes_drain() const;

 private:
  enum class Trigger { kSize, kDeadline, kUrgent, kDrain };

  void FlusherLoop();
  std::vector<BatchEntry> TakeLocked() DMEMO_REQUIRES(mu_);
  void SendBatch(std::vector<BatchEntry> batch, Trigger trigger);

  const Options options_;
  const SendFrameFn send_;

  Mutex mu_{"FormationQueue::mu"};
  CondVar cv_;
  std::vector<BatchEntry> queue_ DMEMO_GUARDED_BY(mu_);
  std::size_t queued_bytes_ DMEMO_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point oldest_enqueue_ DMEMO_GUARDED_BY(mu_);
  bool closed_ DMEMO_GUARDED_BY(mu_) = false;
  bool flusher_started_ DMEMO_GUARDED_BY(mu_) = false;
  std::thread flusher_;

  std::atomic<std::uint64_t> frames_flushed_{0};
  std::atomic<std::uint64_t> ops_flushed_{0};
  std::atomic<std::uint64_t> flushes_size_{0};
  std::atomic<std::uint64_t> flushes_deadline_{0};
  std::atomic<std::uint64_t> flushes_urgent_{0};
  std::atomic<std::uint64_t> flushes_drain_{0};
};

}  // namespace dmemo
