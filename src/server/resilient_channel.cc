#include "server/resilient_channel.h"

#include <algorithm>
#include <thread>

#include "util/log.h"
#include "util/metrics.h"

namespace dmemo {

namespace {

Counter* RetriesTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_retries_total");
  return c;
}
Counter* ReconnectsTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_reconnects_total");
  return c;
}
Counter* DeadlineExceededTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_deadline_exceeded_total");
  return c;
}

}  // namespace

ResilientChannel::ResilientChannel(TransportPtr transport, std::string url,
                                   Options options)
    : transport_(std::move(transport)),
      url_(std::move(url)),
      options_(std::move(options)) {}

Result<ResilientChannelPtr> ResilientChannel::Connect(TransportPtr transport,
                                                      std::string url,
                                                      Options options) {
  auto channel = std::make_shared<ResilientChannel>(
      std::move(transport), std::move(url), std::move(options));
  DMEMO_ASSIGN_OR_RETURN(RpcChannelPtr live, channel->EnsureChannel());
  (void)live;
  return channel;
}

ResilientChannel::~ResilientChannel() { Close(); }

Result<RpcChannelPtr> ResilientChannel::EnsureChannel() {
  {
    MutexLock lock(mu_);
    if (closed_) return CancelledError("resilient channel closed");
    if (channel_ != nullptr && !channel_->closed()) return channel_;
  }
  // Dial outside mu_ (kernel-socket dials block). Concurrent callers may
  // race to here; the first install wins and extras close their duplicate,
  // so no channel — and no reader thread — is ever silently stranded.
  DMEMO_ASSIGN_OR_RETURN(ConnectionPtr conn, transport_->Dial(url_));
  auto fresh =
      RpcChannel::Create(std::move(conn), options_.pool, options_.handler);
  RpcChannelPtr loser;
  {
    MutexLock lock(mu_);
    if (closed_) {
      loser = std::move(fresh);
    } else if (channel_ != nullptr && !channel_->closed()) {
      loser = std::move(fresh);
      fresh = channel_;  // reuse the race winner
    } else {
      if (channel_ != nullptr) {
        retired_bytes_sent_ += channel_->bytes_sent();
        retired_bytes_received_ += channel_->bytes_received();
      }
      channel_ = fresh;
      if (ever_connected_) {
        ++reconnects_;
        ReconnectsTotal()->Increment();
      }
      ever_connected_ = true;
    }
  }
  if (loser != nullptr) {
    loser->Close();
    MutexLock lock(mu_);
    if (closed_) return CancelledError("resilient channel closed");
  }
  return fresh;
}

Result<Response> ResilientChannel::Call(Request request,
                                        std::chrono::milliseconds timeout) {
  using clock = std::chrono::steady_clock;
  if (timeout.count() == 0) timeout = options_.call_timeout;
  const bool bounded = timeout.count() > 0;
  const clock::time_point deadline =
      bounded ? clock::now() + timeout : clock::time_point::max();
  if (request.request_id == 0 && OpNeedsAtMostOnce(request.op)) {
    request.request_id = NextRequestId();
  }
  thread_local SplitMix64 backoff_rng(NextRequestId());

  // Single exit: a call that ran out its budget counts once, whether the
  // budget died waiting for a response or sleeping between attempts.
  auto fail = [](Status status) -> Result<Response> {
    if (status.code() == StatusCode::kTimedOut) {
      DeadlineExceededTotal()->Increment();
    }
    return status;
  };

  Status last_error = UnavailableError("call never attempted");
  for (int attempt = 1;; ++attempt) {
    if (attempt > 1) RetriesTotal()->Increment();
    auto channel = EnsureChannel();
    if (!channel.ok()) {
      last_error = channel.status();
      if (!IsRetryableStatus(last_error)) return fail(last_error);
    } else {
      auto attempt_budget = std::chrono::milliseconds::max();
      if (bounded) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - clock::now());
        if (remaining.count() <= 0) {
          return fail(TimedOutError("rpc deadline exceeded calling " + url_));
        }
        attempt_budget = remaining;
        request.deadline_ms = static_cast<std::uint32_t>(std::min<
            std::int64_t>(remaining.count(), 0xffffffffLL));
      }
      if (options_.retry.attempt_timeout.count() > 0) {
        attempt_budget =
            std::min(attempt_budget, options_.retry.attempt_timeout);
      }
      auto result = (*channel)->CallFor(request, attempt_budget);
      if (result.ok()) {
        if (result->has_value()) return std::move(**result);
        // Attempt timed out. Retrying is safe (at-most-once request id);
        // whether it is *useful* depends on the remaining budget.
        last_error = TimedOutError("rpc timed out calling " + url_);
      } else {
        last_error = result.status();
        if (!IsRetryableStatus(last_error)) return fail(last_error);
      }
    }
    if (attempt >= options_.retry.max_attempts) return fail(last_error);
    const auto backoff = options_.retry.BackoffFor(attempt, backoff_rng);
    if (bounded && clock::now() + backoff >= deadline) {
      return fail(last_error);
    }
    std::this_thread::sleep_for(backoff);
  }
}

void ResilientChannel::Close() {
  RpcChannelPtr channel;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    if (channel_ != nullptr) {
      retired_bytes_sent_ += channel_->bytes_sent();
      retired_bytes_received_ += channel_->bytes_received();
    }
    channel = std::move(channel_);
  }
  if (channel != nullptr) channel->Close();
}

bool ResilientChannel::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::string ResilientChannel::description() const {
  MutexLock lock(mu_);
  return channel_ != nullptr ? channel_->description() : url_;
}

std::uint64_t ResilientChannel::bytes_sent() const {
  MutexLock lock(mu_);
  return retired_bytes_sent_ +
         (channel_ != nullptr ? channel_->bytes_sent() : 0);
}

std::uint64_t ResilientChannel::bytes_received() const {
  MutexLock lock(mu_);
  return retired_bytes_received_ +
         (channel_ != nullptr ? channel_->bytes_received() : 0);
}

std::uint64_t ResilientChannel::reconnects() const {
  MutexLock lock(mu_);
  return reconnects_;
}

}  // namespace dmemo
