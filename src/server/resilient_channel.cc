#include "server/resilient_channel.h"

#include <algorithm>
#include <thread>

#include "util/log.h"
#include "util/metrics.h"

namespace dmemo {

namespace {

Counter* RetriesTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_retries_total");
  return c;
}
Counter* ReconnectsTotal() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_reconnects_total");
  return c;
}
Counter* DeadlineExceededTotal() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_deadline_exceeded_total");
  return c;
}

}  // namespace

ResilientChannel::ResilientChannel(TransportPtr transport, std::string url,
                                   Options options)
    : transport_(std::move(transport)),
      url_(std::move(url)),
      options_(std::move(options)) {}

Result<ResilientChannelPtr> ResilientChannel::Connect(TransportPtr transport,
                                                      std::string url,
                                                      Options options) {
  auto channel = std::make_shared<ResilientChannel>(
      std::move(transport), std::move(url), std::move(options));
  DMEMO_ASSIGN_OR_RETURN(RpcChannelPtr live, channel->EnsureChannel());
  (void)live;
  return channel;
}

ResilientChannel::~ResilientChannel() { Close(); }

Result<RpcChannelPtr> ResilientChannel::EnsureChannel() {
  {
    MutexLock lock(mu_);
    if (closed_) return CancelledError("resilient channel closed");
    if (channel_ != nullptr && !channel_->closed()) return channel_;
  }
  // Dial outside mu_ (kernel-socket dials block). Concurrent callers may
  // race to here; the first install wins and extras close their duplicate,
  // so no channel — and no reader thread — is ever silently stranded.
  DMEMO_ASSIGN_OR_RETURN(ConnectionPtr conn, transport_->Dial(url_));
  auto fresh = RpcChannel::Create(std::move(conn), options_.pool,
                                  options_.handler, options_.classifier);
  RpcChannelPtr loser;
  {
    MutexLock lock(mu_);
    if (closed_) {
      loser = std::move(fresh);
    } else if (channel_ != nullptr && !channel_->closed()) {
      loser = std::move(fresh);
      fresh = channel_;  // reuse the race winner
    } else {
      if (channel_ != nullptr) {
        retired_bytes_sent_ += channel_->bytes_sent();
        retired_bytes_received_ += channel_->bytes_received();
      }
      channel_ = fresh;
      if (ever_connected_) {
        ++reconnects_;
        ReconnectsTotal()->Increment();
      }
      ever_connected_ = true;
    }
  }
  if (loser != nullptr) {
    loser->Close();
    MutexLock lock(mu_);
    if (closed_) return CancelledError("resilient channel closed");
  }
  return fresh;
}

Result<Response> ResilientChannel::Call(Request request,
                                        std::chrono::milliseconds timeout) {
  using clock = std::chrono::steady_clock;
  if (timeout.count() == 0) timeout = options_.call_timeout;
  const bool bounded = timeout.count() > 0;
  const clock::time_point deadline =
      bounded ? clock::now() + timeout : clock::time_point::max();
  if (request.request_id == 0 && OpNeedsAtMostOnce(request.op)) {
    request.request_id = NextRequestId();
  }
  thread_local SplitMix64 backoff_rng(NextRequestId());

  // Single exit: a call that ran out its budget counts once, whether the
  // budget died waiting for a response or sleeping between attempts.
  auto fail = [](Status status) -> Result<Response> {
    if (status.code() == StatusCode::kTimedOut) {
      DeadlineExceededTotal()->Increment();
    }
    return status;
  };

  Status last_error = UnavailableError("call never attempted");
  for (int attempt = 1;; ++attempt) {
    if (attempt > 1) RetriesTotal()->Increment();
    auto channel = EnsureChannel();
    if (!channel.ok()) {
      last_error = channel.status();
      if (!IsRetryableStatus(last_error)) return fail(last_error);
    } else {
      auto attempt_budget = std::chrono::milliseconds::max();
      if (bounded) {
        // One clock sample decides both "expired?" and the stamped value
        // (util/retry.h RemainingBudgetMs): checking against one read and
        // casting a remainder from a later one can wrap a negative
        // remainder into a ~49-day wire deadline.
        const auto budget_ms = RemainingBudgetMs(clock::now(), deadline);
        if (!budget_ms.has_value()) {
          return fail(TimedOutError("rpc deadline exceeded calling " + url_));
        }
        attempt_budget = std::chrono::milliseconds(*budget_ms);
        request.deadline_ms = *budget_ms;
      }
      if (options_.retry.attempt_timeout.count() > 0) {
        attempt_budget =
            std::min(attempt_budget, options_.retry.attempt_timeout);
      }
      auto result = (*channel)->CallFor(request, attempt_budget);
      if (result.ok()) {
        if (result->has_value()) return std::move(**result);
        // Attempt timed out. Retrying is safe (at-most-once request id);
        // whether it is *useful* depends on the remaining budget.
        last_error = TimedOutError("rpc timed out calling " + url_);
      } else {
        last_error = result.status();
        if (!IsRetryableStatus(last_error)) return fail(last_error);
      }
    }
    if (attempt >= options_.retry.max_attempts) return fail(last_error);
    const auto backoff = options_.retry.BackoffFor(attempt, backoff_rng);
    if (bounded && clock::now() + backoff >= deadline) {
      return fail(last_error);
    }
    std::this_thread::sleep_for(backoff);
  }
}

// Retry state of one async call, shared by the attempt's completion
// callback, the per-attempt timer, and the backoff timer. The channel is
// referenced weakly from all of them: a channel destroyed mid-flight fails
// the call instead of dangling.
struct ResilientChannel::AsyncCall {
  Request request;
  AsyncCallback done;
  int attempt = 1;
  bool bounded = false;
  std::chrono::steady_clock::time_point deadline;
  SplitMix64 rng{NextRequestId()};
};

void ResilientChannel::CallAsync(Request request, AsyncCallback done,
                                 std::chrono::milliseconds timeout) {
  using clock = std::chrono::steady_clock;
  if (timeout.count() == 0) timeout = options_.call_timeout;
  auto call = std::make_shared<AsyncCall>();
  call->request = std::move(request);
  call->done = std::move(done);
  call->bounded = timeout.count() > 0;
  call->deadline =
      call->bounded ? clock::now() + timeout : clock::time_point::max();
  if (call->request.request_id == 0 && OpNeedsAtMostOnce(call->request.op)) {
    call->request.request_id = NextRequestId();
  }
  StartAsyncAttempt(std::move(call));
}

std::future<Result<Response>> ResilientChannel::CallAsync(
    Request request, std::chrono::milliseconds timeout) {
  auto promise = std::make_shared<std::promise<Result<Response>>>();
  std::future<Result<Response>> future = promise->get_future();
  CallAsync(std::move(request),
            [promise](Result<Response> result) {
              promise->set_value(std::move(result));
            },
            timeout);
  return future;
}

void ResilientChannel::StartAsyncAttempt(std::shared_ptr<AsyncCall> call) {
  using clock = std::chrono::steady_clock;
  auto channel = EnsureChannel();
  if (!channel.ok()) {
    FinishAsyncAttempt(std::move(call), channel.status());
    return;
  }
  auto attempt_budget = std::chrono::milliseconds::max();
  if (call->bounded) {
    // Same single-sample check-and-stamp as the sync path.
    const auto budget_ms = RemainingBudgetMs(clock::now(), call->deadline);
    if (!budget_ms.has_value()) {
      DeadlineExceededTotal()->Increment();
      call->done(TimedOutError("rpc deadline exceeded calling " + url_));
      return;
    }
    attempt_budget = std::chrono::milliseconds(*budget_ms);
    call->request.deadline_ms = *budget_ms;
  }
  if (options_.retry.attempt_timeout.count() > 0) {
    attempt_budget = std::min(attempt_budget, options_.retry.attempt_timeout);
  }

  std::weak_ptr<ResilientChannel> weak = weak_from_this();
  const std::uint64_t id = (*channel)->CallAsync(
      call->request, [weak, call](Result<Response> result) {
        if (result.ok()) {
          call->done(std::move(result));
          return;
        }
        auto self = weak.lock();
        if (self == nullptr) {
          call->done(result.status());
          return;
        }
        self->FinishAsyncAttempt(call, result.status());
      });

  if (id != 0 && attempt_budget != std::chrono::milliseconds::max()) {
    // Per-attempt timer: after the budget, abandon this transmit (the
    // underlying CancelAsync is exactly-once against a racing response) so
    // the failure path can retransmit under the same request_id. The timer
    // holds the RpcChannel weakly — it must not keep a retired channel
    // generation alive for the full budget.
    std::weak_ptr<RpcChannel> weak_channel = *channel;
    std::thread([weak_channel, id, attempt_budget] {
      std::this_thread::sleep_for(attempt_budget);
      if (auto live = weak_channel.lock()) {
        live->CancelAsync(id, TimedOutError("rpc attempt timed out"));
      }
    }).detach();
  }
}

void ResilientChannel::FinishAsyncAttempt(std::shared_ptr<AsyncCall> call,
                                          Status error) {
  using clock = std::chrono::steady_clock;
  auto fail = [&call](Status status) {
    if (status.code() == StatusCode::kTimedOut) {
      DeadlineExceededTotal()->Increment();
    }
    call->done(std::move(status));
  };
  // TIMED_OUT here is a per-attempt bound, retryable like the sync path's
  // nullopt from CallFor — unless the whole-call deadline is spent.
  const bool retryable = IsRetryableStatus(error) ||
                         error.code() == StatusCode::kTimedOut;
  if (!retryable || call->attempt >= options_.retry.max_attempts) {
    fail(std::move(error));
    return;
  }
  if (call->bounded && clock::now() >= call->deadline) {
    fail(std::move(error));
    return;
  }
  const auto backoff = options_.retry.BackoffFor(call->attempt, call->rng);
  if (call->bounded && clock::now() + backoff >= call->deadline) {
    fail(std::move(error));
    return;
  }
  ++call->attempt;
  RetriesTotal()->Increment();
  // Backoff runs on its own thread: this path executes on the reader
  // thread of the failed channel generation, which must stay free to drain
  // other completions (and is about to exit).
  std::thread([weak = weak_from_this(), call, backoff] {
    std::this_thread::sleep_for(backoff);
    if (auto self = weak.lock()) {
      self->StartAsyncAttempt(std::move(call));
    } else {
      call->done(CancelledError("resilient channel destroyed"));
    }
  }).detach();
}

void ResilientChannel::Flush() {
  RpcChannelPtr channel;
  {
    MutexLock lock(mu_);
    channel = channel_;
  }
  if (channel != nullptr) channel->Flush();
}

void ResilientChannel::Close() {
  RpcChannelPtr channel;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    if (channel_ != nullptr) {
      retired_bytes_sent_ += channel_->bytes_sent();
      retired_bytes_received_ += channel_->bytes_received();
    }
    channel = std::move(channel_);
  }
  if (channel != nullptr) channel->Close();
}

bool ResilientChannel::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::string ResilientChannel::description() const {
  MutexLock lock(mu_);
  return channel_ != nullptr ? channel_->description() : url_;
}

std::uint64_t ResilientChannel::bytes_sent() const {
  MutexLock lock(mu_);
  return retired_bytes_sent_ +
         (channel_ != nullptr ? channel_->bytes_sent() : 0);
}

std::uint64_t ResilientChannel::bytes_received() const {
  MutexLock lock(mu_);
  return retired_bytes_received_ +
         (channel_ != nullptr ? channel_->bytes_received() : 0);
}

std::uint64_t ResilientChannel::reconnects() const {
  MutexLock lock(mu_);
  return reconnects_;
}

}  // namespace dmemo
