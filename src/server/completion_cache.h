// At-most-once completion cache (the server half of the retry contract).
//
// A client that retransmits a request after a timeout or a reconnect cannot
// know whether the original execution happened. Without dedupe, a retried
// kPut deposits a second memo and a retried kGet extracts a second one —
// and a kGet whose response was lost on the wire *destroys* the memo the
// folder server already removed. The cache closes both holes:
//
//   * first arrival of a request id claims an in-flight entry and executes;
//   * concurrent duplicates park until the owner finishes, then receive the
//     owner's response (one execution, every transmit answered);
//   * later duplicates of a *completed* request are answered from the cache
//     — the extracted memo is re-delivered instead of re-extracted.
//
// Only OK responses are retained: a failed execution mutated nothing, so a
// retry is allowed to execute afresh. Completed entries are evicted FIFO
// once the cache exceeds its capacity (DMEMO_COMPLETION_CACHE_SIZE, default
// 1024) — the at-most-once window is bounded, which is the standard trade
// (a retry older than the window re-executes; clients give up long before).
//
// Lock ranking: mu_ is taken with no other lock held and is never held
// across request execution (owners execute outside, waiters sleep on the
// condvar which releases it), so it stands outside the canonical chain.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dmemo {

class CompletionCache {
 public:
  explicit CompletionCache(std::size_t capacity = CapacityFromEnv());

  CompletionCache(const CompletionCache&) = delete;
  CompletionCache& operator=(const CompletionCache&) = delete;

  struct BeginResult {
    // The caller owns execution and must call Complete() or Abandon().
    bool owner = false;
    // Set when a previous execution already produced the answer (dedup
    // hit) or the cache shut down (CANCELLED response).
    std::optional<Response> response;
  };

  // Claim `request_id` for execution, join an in-flight execution (blocks
  // until the owner finishes), or return the cached response.
  BeginResult Begin(std::uint64_t request_id);

  // Non-blocking Begin for the reactor core. Same claim/dedup semantics,
  // but a duplicate of an in-flight execution never parks a thread: its
  // `on_done` continuation is registered on the entry and fired (outside
  // the lock) when the owner Complete()s — or with a retryable UNAVAILABLE
  // when the owner Abandon()s, since the duplicate carries no execution
  // context of its own and cannot be promoted to owner the way a parked
  // Begin() thread is. Result: owner=true means execute-and-Complete;
  // owner=false with a response is a dedup hit answered inline; owner=false
  // without a response means `on_done` will fire later.
  BeginResult BeginAsync(std::uint64_t request_id,
                         std::function<void(const Response&)> on_done);

  // Owner finished: publish `response` to every waiter. OK responses stay
  // cached for late retransmits; failures are forgotten so a retry may
  // re-execute.
  void Complete(std::uint64_t request_id, const Response& response);

  // Owner could not execute (e.g. shutdown race): drop the in-flight entry;
  // one parked waiter (if any) becomes the new owner.
  void Abandon(std::uint64_t request_id);

  // Recovery path: install a completed entry as if an execution had
  // produced `response`. WAL replay re-seeds the at-most-once window with
  // the request ids of every mutation that survived the crash, so a client
  // retransmitting across a server restart is answered from the cache
  // instead of double-applying (DESIGN.md "Durability & liveness"). An
  // existing entry wins — live executions outrank replayed history.
  void Seed(std::uint64_t request_id, const Response& response);

  // Wake every parked waiter with CANCELLED and refuse further work.
  void Shutdown();

  std::uint64_t dedup_hits() const;

  static std::size_t CapacityFromEnv();

 private:
  struct Entry {
    bool completed = false;
    // Valid when completed. Retaining a Response is cheap since the
    // zero-copy pipeline: its value is an IoBuf whose slices share the
    // payload block with the response already sent, so the cache holds a
    // reference, not a deep copy of the memo bytes.
    Response response;
    // Reactor-core duplicates parked on this in-flight execution; fired
    // outside mu_ on Complete/Abandon/Shutdown.
    std::vector<std::function<void(const Response&)>> async_waiters;
  };

  void EvictLocked() DMEMO_REQUIRES(mu_);

  const std::size_t capacity_;
  Counter* dedup_hits_;  // dmemo_server_dedup_hits_total
  mutable Mutex mu_{"CompletionCache::mu"};
  CondVar cv_;
  bool shutdown_ DMEMO_GUARDED_BY(mu_) = false;
  std::unordered_map<std::uint64_t, Entry> entries_ DMEMO_GUARDED_BY(mu_);
  // Completed ids in completion order; the eviction queue.
  std::deque<std::uint64_t> completed_fifo_ DMEMO_GUARDED_BY(mu_);
  std::uint64_t dedup_hits_local_ DMEMO_GUARDED_BY(mu_) = 0;
};

// RAII wrapper: Abandon()s on destruction unless Complete()d, so an early
// return in a handler never strands parked duplicate waiters.
class CompletionGuard {
 public:
  CompletionGuard(CompletionCache* cache, std::uint64_t request_id)
      : cache_(cache), request_id_(request_id) {}
  ~CompletionGuard() {
    if (cache_ != nullptr) cache_->Abandon(request_id_);
  }

  CompletionGuard(const CompletionGuard&) = delete;
  CompletionGuard& operator=(const CompletionGuard&) = delete;

  void Complete(const Response& response) {
    if (cache_ != nullptr) cache_->Complete(request_id_, response);
    cache_ = nullptr;
  }

 private:
  CompletionCache* cache_;
  std::uint64_t request_id_;
};

}  // namespace dmemo
