// Primary/backup replication of folder partitions (DESIGN.md §15).
//
// The WAL is already a replication stream: every acknowledged mutation is
// a WalRecord in log order. A ReplicationShipper rides that stream — the
// folder server hands it each record under wal_mu_ (so shipping order is
// exactly apply order), and a background thread batches the queue into
// Op::kReplAppend requests to the configured backup over the existing
// resilient peer channel. A cold backup (or one that fell behind past the
// bounded queue) is (re)bootstrapped with Op::kReplSnapshot: a full
// directory snapshot plus the sequence watermark it covers, after which
// the append stream resumes from watermark + 1.
//
// Ack modes (DMEMO_REPL_MODE):
//   off       no replication (the default; PR 5 behaviour)
//   async     mutations ack as before; the stream trails best-effort
//   semisync  a mutation's ack additionally waits until its record is
//             shipped, or DMEMO_REPL_TIMEOUT_MS elapses — on timeout the
//             ack proceeds and dmemo_repl_degraded_total counts the
//             degradation (availability over replication, logged loudly)
//
// A backup that answers FAILED_PRECONDITION is *ahead* of this primary
// (it promoted under a higher epoch): the shipper fences itself off
// permanently — this incarnation must never overwrite the failed-over
// state. NOT_FOUND / OUT_OF_RANGE answers mean "re-bootstrap me" (no
// standby / sequence gap) and flip the shipper back into snapshot mode.
//
// Lock ranks: mu_ is a leaf (no callback runs and no other lock is taken
// while it is held); the shipper thread calls transmit/snapshot functions
// with no shipper lock held.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "util/bytes.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/wal.h"

namespace dmemo {

enum class ReplMode : std::uint8_t { kOff, kAsync, kSemiSync };

// DMEMO_REPL_MODE=off|async|semisync (default off).
ReplMode ReplModeFromEnv();
// DMEMO_REPL_TIMEOUT_MS: semisync wait bound per mutation (default 1000).
std::chrono::milliseconds ReplTimeoutFromEnv();

std::string_view ReplModeName(ReplMode mode);

// One WAL record with its replication sequence number (1-based, assigned
// in log order by the primary's shipper).
struct ReplRecord {
  std::uint64_t seq = 0;
  WalRecord record;
};

// Op::kReplSnapshot request payload (raw ByteWriter framing in
// Request.value; PROTOCOL.md §"Replication payloads").
struct ReplSnapshotPayload {
  int fs_id = 0;
  std::string primary_host;
  std::uint64_t epoch = 0;      // primary's fencing epoch
  std::uint64_t watermark = 0;  // highest seq folded into the snapshot
  Bytes snapshot;               // FolderDirectory::SnapshotTo bytes
};

// Op::kReplAppend request payload: a batch of sequenced records.
struct ReplAppendPayload {
  int fs_id = 0;
  std::string primary_host;
  std::uint64_t epoch = 0;
  std::vector<ReplRecord> records;
};

IoBuf EncodeReplSnapshot(const ReplSnapshotPayload& payload);
Result<ReplSnapshotPayload> DecodeReplSnapshot(const IoBuf& value);
IoBuf EncodeReplAppend(const ReplAppendPayload& payload);
Result<ReplAppendPayload> DecodeReplAppend(const IoBuf& value);

// What the folder server sees: sequence assignment under its wal_mu_ and
// the semisync ack barrier. Virtual so tests can observe the stream.
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;

  // Called under the folder server's wal_mu_, right after the WAL append:
  // assigns and returns the record's sequence number. Must be cheap (no
  // I/O, no blocking).
  virtual std::uint64_t Enqueue(const WalRecord& record) = 0;

  // Semisync barrier, called after the WAL commit with no lock held:
  // blocks until `seq` is shipped, the timeout degrades the ack, or the
  // sink stops. No-op in async mode.
  virtual void WaitShipped(std::uint64_t seq) = 0;

  // Highest sequence number assigned so far.
  virtual std::uint64_t last_seq() const = 0;
};

class ReplicationShipper : public ReplicationSink {
 public:
  struct Options {
    int fs_id = 0;
    std::string primary_host;
    std::string backup_host;
    ReplMode mode = ReplMode::kAsync;
    std::chrono::milliseconds semisync_timeout = ReplTimeoutFromEnv();
    std::size_t max_batch = 64;
    // Queue bound; overflowing flips back to snapshot mode instead of
    // growing without limit while the backup is unreachable.
    std::size_t max_queue = 4096;
    std::chrono::milliseconds retry_backoff{50};
  };

  // Ships one encoded request to the backup (the memo server wraps its
  // resilient peer channel); must be callable from the shipper thread.
  using TransmitFn = std::function<Result<Response>(Request)>;
  // Produces a consistent snapshot + watermark (FolderServer takes wal_mu_).
  using SnapshotFn = std::function<Result<ReplSnapshotPayload>()>;
  // The primary's current fencing epoch, stamped on every append batch.
  using EpochFn = std::function<std::uint64_t()>;

  ReplicationShipper(Options options, TransmitFn transmit,
                     SnapshotFn snapshot, EpochFn epoch);
  ~ReplicationShipper() override;

  ReplicationShipper(const ReplicationShipper&) = delete;
  ReplicationShipper& operator=(const ReplicationShipper&) = delete;

  void Start();
  // Signals and joins the shipper thread; wakes every semisync waiter.
  // Safe to call more than once. Call after the peer channels close so a
  // transmit blocked in a dial unblocks.
  void Stop();

  std::uint64_t Enqueue(const WalRecord& record) override;
  void WaitShipped(std::uint64_t seq) override;
  std::uint64_t last_seq() const override;

  std::uint64_t shipped_seq() const;
  // True once the backup rejected this primary as stale (it promoted).
  bool fenced() const;
  const std::string& backup_host() const { return options_.backup_host; }

 private:
  void Loop();
  // One snapshot bootstrap attempt; returns false to back off and retry.
  bool ShipSnapshot();
  // One batch transmit; returns false to back off and retry (batch was
  // re-queued in order).
  bool ShipBatch(std::vector<ReplRecord> batch);
  // Shared classification of a backup's answer.
  enum class Answer { kOk, kRebootstrap, kFenced, kRetry };
  static Answer Classify(const Result<Response>& resp);
  // Permanently stop shipping: the backup promoted past this primary.
  void Fence(const std::string& detail);

  const Options options_;
  const TransmitFn transmit_;
  const SnapshotFn snapshot_;
  const EpochFn epoch_;

  Counter* records_shipped_ = nullptr;  // dmemo_repl_records_shipped_total
  Counter* batches_ = nullptr;          // dmemo_repl_batches_total
  Counter* snapshots_ = nullptr;     // dmemo_repl_snapshots_shipped_total
  Counter* semisync_waits_ = nullptr;  // dmemo_repl_semisync_waits_total
  Counter* degraded_ = nullptr;         // dmemo_repl_degraded_total
  Counter* overflows_ = nullptr;   // dmemo_repl_queue_overflows_total

  std::thread thread_;

  mutable Mutex mu_{"ReplicationShipper::mu"};
  CondVar work_cv_;     // shipper thread waits for queue/snapshot work
  CondVar shipped_cv_;  // semisync waiters wait for shipped_seq_
  bool stop_ DMEMO_GUARDED_BY(mu_) = false;
  bool fenced_ DMEMO_GUARDED_BY(mu_) = false;
  // A cold or fallen-behind backup needs a snapshot before appends.
  bool needs_snapshot_ DMEMO_GUARDED_BY(mu_) = true;
  std::uint64_t last_seq_ DMEMO_GUARDED_BY(mu_) = 0;
  std::uint64_t shipped_seq_ DMEMO_GUARDED_BY(mu_) = 0;
  std::deque<ReplRecord> queue_ DMEMO_GUARDED_BY(mu_);
};

}  // namespace dmemo
