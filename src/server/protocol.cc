#include "server/protocol.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace dmemo {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kPut: return "put";
    case Op::kPutDelayed: return "put_delayed";
    case Op::kGet: return "get";
    case Op::kGetCopy: return "get_copy";
    case Op::kGetSkip: return "get_skip";
    case Op::kGetAlt: return "get_alt";
    case Op::kGetAltSkip: return "get_alt_skip";
    case Op::kCount: return "count";
    case Op::kRegisterApp: return "register_app";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kHeartbeat: return "heartbeat";
    case Op::kReplSnapshot: return "repl_snapshot";
    case Op::kReplAppend: return "repl_append";
    case Op::kGossip: return "gossip";
  }
  return "unknown";
}

bool OpNeedsAtMostOnce(Op op) {
  switch (op) {
    case Op::kPut:
    case Op::kPutDelayed:
    case Op::kGet:
    case Op::kGetCopy:
    case Op::kGetSkip:
    case Op::kGetAlt:
    case Op::kGetAltSkip:
      return true;
    default:
      return false;
  }
}

bool OpMayPark(Op op) {
  switch (op) {
    case Op::kGet:
    case Op::kGetCopy:
    case Op::kGetAlt:
      return true;
    default:
      return false;
  }
}

std::uint64_t NextRequestId() {
  static std::atomic<std::uint64_t> process_salt{
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      0x5bf0'3635'dc1e'8937ULL};
  thread_local SplitMix64 rng(
      process_salt.fetch_add(0x9e3779b97f4a7c15ULL,
                             std::memory_order_relaxed) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1));
  std::uint64_t id;
  do {
    id = rng.Next();
  } while (id == 0);  // 0 means "no at-most-once tracking" on the wire
  return id;
}

namespace {

// Everything of a Request up to and including the payload length prefix.
// Shared by the legacy encode (payload copied right after) and the
// zero-copy encode (payload slices chained right after).
void EncodeRequestHead(const Request& req, ByteWriter& out) {
  out.u8(static_cast<std::uint8_t>(req.op));
  out.str(req.app);
  out.str(req.target_host);
  out.u8(req.hop_count);
  out.u64(req.trace_id);
  out.u64(req.request_id);
  out.varint(req.deadline_ms);
  out.varint(req.epoch);
  req.key.EncodeTo(out);
  req.key2.EncodeTo(out);
  out.varint(req.alts.size());
  for (const Key& k : req.alts) k.EncodeTo(out);
  out.varint(req.value.size());
}

void EncodeResponseHead(const Response& resp, ByteWriter& out) {
  out.u8(static_cast<std::uint8_t>(resp.code));
  out.str(resp.message);
  out.u8(resp.has_value ? 1 : 0);
  out.varint(resp.value.size());
}

// Shared decode body: `read_value` consumes the payload's length-prefixed
// bytes from `in` into an IoBuf — by copy for the legacy ByteReader path,
// by aliasing for the IoBufReader path. Wire format is identical either
// way.
template <typename ReadValueFn>
Result<Request> DecodeRequestBody(ByteReader& in, ReadValueFn&& read_value) {
  Request req;
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t op, in.u8());
  if (op < static_cast<std::uint8_t>(Op::kPut) ||
      op > static_cast<std::uint8_t>(Op::kGossip)) {
    return DataLossError("unknown opcode " + std::to_string(op));
  }
  req.op = static_cast<Op>(op);
  DMEMO_ASSIGN_OR_RETURN(req.app, in.str());
  DMEMO_ASSIGN_OR_RETURN(req.target_host, in.str());
  DMEMO_ASSIGN_OR_RETURN(req.hop_count, in.u8());
  DMEMO_ASSIGN_OR_RETURN(req.trace_id, in.u64());
  DMEMO_ASSIGN_OR_RETURN(req.request_id, in.u64());
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t deadline_ms, in.varint());
  if (deadline_ms > 0xffffffffULL) {
    return DataLossError("deadline_ms out of range");
  }
  req.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
  DMEMO_ASSIGN_OR_RETURN(req.epoch, in.varint());
  DMEMO_ASSIGN_OR_RETURN(req.key, Key::DecodeFrom(in));
  DMEMO_ASSIGN_OR_RETURN(req.key2, Key::DecodeFrom(in));
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_alts, in.varint());
  if (n_alts > 4096) return DataLossError("too many alternatives");
  for (std::uint64_t i = 0; i < n_alts; ++i) {
    DMEMO_ASSIGN_OR_RETURN(Key k, Key::DecodeFrom(in));
    req.alts.push_back(std::move(k));
  }
  DMEMO_ASSIGN_OR_RETURN(req.value, read_value());
  DMEMO_ASSIGN_OR_RETURN(req.text, in.str());
  return req;
}

template <typename ReadValueFn>
Result<Response> DecodeResponseBody(ByteReader& in,
                                    ReadValueFn&& read_value) {
  Response resp;
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t code, in.u8());
  if (code > static_cast<std::uint8_t>(StatusCode::kUnimplemented)) {
    return DataLossError("unknown status code " + std::to_string(code));
  }
  resp.code = static_cast<StatusCode>(code);
  DMEMO_ASSIGN_OR_RETURN(resp.message, in.str());
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t has_value, in.u8());
  resp.has_value = has_value != 0;
  DMEMO_ASSIGN_OR_RETURN(resp.value, read_value());
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t has_key, in.u8());
  resp.has_key = has_key != 0;
  DMEMO_ASSIGN_OR_RETURN(resp.key, Key::DecodeFrom(in));
  DMEMO_ASSIGN_OR_RETURN(resp.count, in.varint());
  DMEMO_ASSIGN_OR_RETURN(resp.hop_count, in.u8());
  DMEMO_ASSIGN_OR_RETURN(resp.trace_id, in.u64());
  return resp;
}

// Legacy payload read: copy out of the read buffer (counted).
Result<IoBuf> ReadValueByCopy(ByteReader& in) {
  DMEMO_ASSIGN_OR_RETURN(Bytes b, in.bytes());
  CountPayloadCopyBytes(b.size());
  return IoBuf::FromBytes(std::move(b));
}

}  // namespace

void Request::EncodeTo(ByteWriter& out) const {
  EncodeRequestHead(*this, out);
  value.CopyTo(out);  // counted: the legacy path copies the payload
  out.str(text);
}

IoBuf Request::EncodeToIoBuf() const {
  ByteWriter head;
  EncodeRequestHead(*this, head);
  IoBuf out = IoBuf::FromBytes(head.take());
  out.Append(value);  // shares the payload slices, no copy
  ByteWriter tail;
  tail.str(text);
  out.Append(IoBuf::FromBytes(tail.take()));
  return out;
}

Result<Request> Request::DecodeFrom(ByteReader& in) {
  return DecodeRequestBody(in, [&in] { return ReadValueByCopy(in); });
}

Result<Request> Request::DecodeFrom(IoBufReader& in) {
  return DecodeRequestBody(in.base(), [&in] { return in.bytes_shared(); });
}

void PatchHeaderInPlace(Request& request, std::string_view target_host,
                        std::uint8_t hop_count, std::uint32_t deadline_ms) {
  request.target_host = std::string(target_host);
  request.hop_count = hop_count;
  request.deadline_ms = deadline_ms;
}

void Response::EncodeTo(ByteWriter& out) const {
  EncodeResponseHead(*this, out);
  value.CopyTo(out);
  out.u8(has_key ? 1 : 0);
  key.EncodeTo(out);
  out.varint(count);
  out.u8(hop_count);
  out.u64(trace_id);
}

IoBuf Response::EncodeToIoBuf() const {
  ByteWriter head;
  EncodeResponseHead(*this, head);
  IoBuf out = IoBuf::FromBytes(head.take());
  out.Append(value);
  ByteWriter tail;
  tail.u8(has_key ? 1 : 0);
  key.EncodeTo(tail);
  tail.varint(count);
  tail.u8(hop_count);
  tail.u64(trace_id);
  out.Append(IoBuf::FromBytes(tail.take()));
  return out;
}

Result<Response> Response::DecodeFrom(ByteReader& in) {
  return DecodeResponseBody(in, [&in] { return ReadValueByCopy(in); });
}

Result<Response> Response::DecodeFrom(IoBufReader& in) {
  return DecodeResponseBody(in.base(), [&in] { return in.bytes_shared(); });
}

Response Response::FromStatus(const Status& status) {
  Response resp;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

Status Response::ToStatus() const {
  return Status(code, message);
}

IoBuf EncodeBatchFrame(std::span<const BatchEntry> entries) {
  ByteWriter prefix;
  prefix.u8(kFrameKindBatch);
  prefix.u64(entries.size());
  IoBuf frame = IoBuf::FromBytes(prefix.take());
  for (const BatchEntry& entry : entries) {
    ByteWriter head;
    head.u8(entry.kind);
    head.u64(entry.id);
    head.varint(entry.body.size());
    frame.Append(IoBuf::FromBytes(head.take()));
    frame.Append(entry.body);  // shares the body slices, no copy
  }
  return frame;
}

Result<std::vector<BatchEntry>> DecodeBatchEntries(
    IoBufReader& in, std::uint64_t declared_count) {
  if (declared_count == 0 || declared_count > kMaxBatchEntriesWire) {
    return DataLossError("batch frame declares " +
                         std::to_string(declared_count) + " entries");
  }
  std::vector<BatchEntry> entries;
  entries.reserve(declared_count);
  for (std::uint64_t i = 0; i < declared_count; ++i) {
    BatchEntry entry;
    DMEMO_ASSIGN_OR_RETURN(entry.kind, in.base().u8());
    if (entry.kind != kFrameKindRequest && entry.kind != kFrameKindResponse) {
      return DataLossError("batch entry with unknown kind " +
                           std::to_string(entry.kind));
    }
    DMEMO_ASSIGN_OR_RETURN(entry.id, in.base().u64());
    DMEMO_ASSIGN_OR_RETURN(entry.body, in.bytes_shared());
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace dmemo
