#include "server/protocol.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace dmemo {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kPut: return "put";
    case Op::kPutDelayed: return "put_delayed";
    case Op::kGet: return "get";
    case Op::kGetCopy: return "get_copy";
    case Op::kGetSkip: return "get_skip";
    case Op::kGetAlt: return "get_alt";
    case Op::kGetAltSkip: return "get_alt_skip";
    case Op::kCount: return "count";
    case Op::kRegisterApp: return "register_app";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
  }
  return "unknown";
}

bool OpNeedsAtMostOnce(Op op) {
  switch (op) {
    case Op::kPut:
    case Op::kPutDelayed:
    case Op::kGet:
    case Op::kGetCopy:
    case Op::kGetSkip:
    case Op::kGetAlt:
    case Op::kGetAltSkip:
      return true;
    default:
      return false;
  }
}

std::uint64_t NextRequestId() {
  static std::atomic<std::uint64_t> process_salt{
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      0x5bf0'3635'dc1e'8937ULL};
  thread_local SplitMix64 rng(
      process_salt.fetch_add(0x9e3779b97f4a7c15ULL,
                             std::memory_order_relaxed) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1));
  std::uint64_t id;
  do {
    id = rng.Next();
  } while (id == 0);  // 0 means "no at-most-once tracking" on the wire
  return id;
}

void Request::EncodeTo(ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(op));
  out.str(app);
  out.str(target_host);
  out.u8(hop_count);
  out.u64(trace_id);
  out.u64(request_id);
  out.varint(deadline_ms);
  key.EncodeTo(out);
  key2.EncodeTo(out);
  out.varint(alts.size());
  for (const Key& k : alts) k.EncodeTo(out);
  out.bytes(value);
  out.str(text);
}

Result<Request> Request::DecodeFrom(ByteReader& in) {
  Request req;
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t op, in.u8());
  if (op < static_cast<std::uint8_t>(Op::kPut) ||
      op > static_cast<std::uint8_t>(Op::kMetrics)) {
    return DataLossError("unknown opcode " + std::to_string(op));
  }
  req.op = static_cast<Op>(op);
  DMEMO_ASSIGN_OR_RETURN(req.app, in.str());
  DMEMO_ASSIGN_OR_RETURN(req.target_host, in.str());
  DMEMO_ASSIGN_OR_RETURN(req.hop_count, in.u8());
  DMEMO_ASSIGN_OR_RETURN(req.trace_id, in.u64());
  DMEMO_ASSIGN_OR_RETURN(req.request_id, in.u64());
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t deadline_ms, in.varint());
  if (deadline_ms > 0xffffffffULL) {
    return DataLossError("deadline_ms out of range");
  }
  req.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
  DMEMO_ASSIGN_OR_RETURN(req.key, Key::DecodeFrom(in));
  DMEMO_ASSIGN_OR_RETURN(req.key2, Key::DecodeFrom(in));
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n_alts, in.varint());
  if (n_alts > 4096) return DataLossError("too many alternatives");
  for (std::uint64_t i = 0; i < n_alts; ++i) {
    DMEMO_ASSIGN_OR_RETURN(Key k, Key::DecodeFrom(in));
    req.alts.push_back(std::move(k));
  }
  DMEMO_ASSIGN_OR_RETURN(req.value, in.bytes());
  DMEMO_ASSIGN_OR_RETURN(req.text, in.str());
  return req;
}

void Response::EncodeTo(ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(code));
  out.str(message);
  out.u8(has_value ? 1 : 0);
  out.bytes(value);
  out.u8(has_key ? 1 : 0);
  key.EncodeTo(out);
  out.varint(count);
  out.u8(hop_count);
  out.u64(trace_id);
}

Result<Response> Response::DecodeFrom(ByteReader& in) {
  Response resp;
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t code, in.u8());
  if (code > static_cast<std::uint8_t>(StatusCode::kUnimplemented)) {
    return DataLossError("unknown status code " + std::to_string(code));
  }
  resp.code = static_cast<StatusCode>(code);
  DMEMO_ASSIGN_OR_RETURN(resp.message, in.str());
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t has_value, in.u8());
  resp.has_value = has_value != 0;
  DMEMO_ASSIGN_OR_RETURN(resp.value, in.bytes());
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t has_key, in.u8());
  resp.has_key = has_key != 0;
  DMEMO_ASSIGN_OR_RETURN(resp.key, Key::DecodeFrom(in));
  DMEMO_ASSIGN_OR_RETURN(resp.count, in.varint());
  DMEMO_ASSIGN_OR_RETURN(resp.hop_count, in.u8());
  DMEMO_ASSIGN_OR_RETURN(resp.trace_id, in.u64());
  return resp;
}

Response Response::FromStatus(const Status& status) {
  Response resp;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

Status Response::ToStatus() const {
  return Status(code, message);
}

}  // namespace dmemo
