// Request/response multiplexing over one Connection.
//
// Blocking gets can park for arbitrarily long, so a single connection must
// carry many outstanding requests: each message is tagged REQUEST or
// RESPONSE plus a channel-local id. A reader thread dispatches responses to
// their waiting callers and hands requests to the channel's handler (run on
// the owner's worker pool — the paper's thread-per-request-with-caching
// model).
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "server/protocol.h"
#include "server/rpc_formation.h"
#include "transport/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/worker_pool.h"

namespace dmemo {

class RpcChannel;
using RpcChannelPtr = std::shared_ptr<RpcChannel>;

// Serves an incoming request; runs on a worker-pool thread and may block
// (e.g. a parked get). The returned response is sent to the requester.
using RequestHandler = std::function<Response(const Request&)>;

// Completion of a CallAsync: the response, or the error that killed the
// call (UNAVAILABLE on channel death). Invoked exactly once, usually on the
// channel's reader thread — it must not block and must not call back into
// the channel synchronously with work that could block.
using AsyncCallback = std::function<void(Result<Response>)>;

// Answers "may handling this request block its worker?" for the packed-
// frame dispatch split: a may-block request (a parking get, a relay to
// another machine) gets a worker task of its own, everything else shares
// one sequential task per inbound frame. Null falls back to the opcode-only
// OpMayPark — correct but pessimal for servers that relay, since a relayed
// put blocks the shared task for a peer round trip. Runs on the reader
// thread: must be fast and must not call back into the channel.
using RequestClassifier = std::function<bool(const Request&)>;

class RpcChannel : public std::enable_shared_from_this<RpcChannel> {
 public:
  // `pool` must outlive the channel. A null handler rejects inbound
  // requests with FAILED_PRECONDITION (pure-client channels).
  static RpcChannelPtr Create(ConnectionPtr conn, WorkerPool* pool,
                              RequestHandler handler,
                              RequestClassifier may_block = nullptr);

  ~RpcChannel();

  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  // Synchronous call: sends the request, blocks until its response arrives.
  // UNAVAILABLE if the channel closes while waiting.
  Result<Response> Call(const Request& request);

  // Bounded variant; nullopt on timeout (the request stays outstanding and
  // its eventual response is discarded).
  Result<std::optional<Response>> CallFor(const Request& request,
                                          std::chrono::milliseconds timeout);

  // Asynchronous call: the request rides the channel's formation queue
  // (coalesced into a packed frame unless its deadline is near), and `done`
  // fires when the response arrives or the channel dies. Any number of
  // async calls may be in flight at once — this is the pipelined path that
  // lets one connection sustain hundreds of logical clients. No ordering is
  // promised between concurrent calls, matching §2 of PROTOCOL.md. Returns
  // the call's correlation id, usable with CancelAsync.
  std::uint64_t CallAsync(const Request& request, AsyncCallback done);

  // Future-returning convenience over the callback form.
  std::future<Result<Response>> CallAsync(const Request& request);

  // Abandons an outstanding async call: its callback fires with `status`
  // and a response arriving later is dropped like any timed-out caller's.
  // Exactly-once with a racing completion — whichever extracts the
  // callback first wins. No-op for unknown (already completed) ids.
  void CancelAsync(std::uint64_t id, const Status& status);

  // Pipelining hint: the caller is done issuing for now and is about to
  // block on its in-flight calls — drain the formation queue immediately
  // instead of letting a partial batch ride out the delay timer.
  void Flush() { formation_->FlushDrained(); }

  // Closes the connection and fails all outstanding calls.
  void Close();
  [[nodiscard]] bool closed() const;

  // Traffic counters (bytes on the wire, both directions), for the
  // link-traffic experiments.
  std::uint64_t bytes_sent() const;
  std::uint64_t bytes_received() const;
  std::uint64_t requests_handled() const;

  std::string description() const { return conn_->description(); }

 private:
  RpcChannel(ConnectionPtr conn, WorkerPool* pool, RequestHandler handler,
             RequestClassifier may_block);
  void Start();
  void ReaderLoop();
  void HandleRequest(std::uint64_t id, Request request, bool batched);
  // Batched fast path: runs a packed frame's never-park requests on one
  // sequential worker so their responses coalesce by size (see OpMayPark).
  void HandleRequestBatch(std::vector<std::pair<std::uint64_t, Request>> batch);

  // The single framed-write path for both directions: gather-sends the
  // kind/id prefix chained to `body` and maintains every send-side counter,
  // so the request and response paths cannot drift apart on metrics.
  Status SendFrame(std::uint8_t kind, std::uint64_t id, const IoBuf& body);
  // Emits one already-framed wire message (single-op or packed); the leaf
  // of SendFrame and of every formation flush.
  Status SendWireFrame(const IoBuf& frame);

  // Routes one decoded response (or decode error) to its waiter: async
  // callers get their callback invoked outside mu_, sync callers are woken
  // through cv_. Unknown ids (timed-out callers) are dropped.
  void CompleteResponse(std::uint64_t id, Result<Response> result);
  // Batched counterpart: all of a packed frame's responses complete under
  // one mu_ acquisition (async callbacks still run outside mu_, in frame
  // order; sync waiters get one broadcast).
  void CompleteResponseBatch(
      std::vector<std::pair<std::uint64_t, Result<Response>>> results);
  // Fails every outstanding call (channel death). Callbacks run after mu_
  // is released.
  void FailAllPending();

  struct PendingCall {
    std::optional<Response> response;
    bool failed = false;
    // Non-null for CallAsync waiters; moved out (entry erased) before
    // invocation so completion is exactly-once even when teardown races a
    // response.
    AsyncCallback done;
    std::uint64_t start_us = 0;
  };

  ConnectionPtr conn_;
  WorkerPool* pool_;
  RequestHandler handler_;
  RequestClassifier may_block_;

  std::thread reader_;
  std::atomic<bool> closed_{false};

  Mutex mu_{"RpcChannel::mu"};
  CondVar cv_;
  std::uint64_t next_id_ DMEMO_GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, PendingCall> pending_
      DMEMO_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> requests_handled_{0};
  // Serializes whole-frame writes to conn_. Leaf lock: never acquire mu_
  // while holding it.
  Mutex send_mu_{"RpcChannel::send_mu"};
  // Formation queue for the async path (requests from CallAsync, responses
  // to batched requests). Declared after conn_: its destructor joins the
  // flusher thread, which sends through conn_.
  std::unique_ptr<FormationQueue> formation_;
};

}  // namespace dmemo
