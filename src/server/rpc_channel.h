// Request/response multiplexing over one Connection.
//
// Blocking gets can park for arbitrarily long, so a single connection must
// carry many outstanding requests: each message is tagged REQUEST or
// RESPONSE plus a channel-local id. A reader thread dispatches responses to
// their waiting callers and hands requests to the channel's handler (run on
// the owner's worker pool — the paper's thread-per-request-with-caching
// model).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "server/protocol.h"
#include "transport/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/worker_pool.h"

namespace dmemo {

class RpcChannel;
using RpcChannelPtr = std::shared_ptr<RpcChannel>;

// Serves an incoming request; runs on a worker-pool thread and may block
// (e.g. a parked get). The returned response is sent to the requester.
using RequestHandler = std::function<Response(const Request&)>;

class RpcChannel : public std::enable_shared_from_this<RpcChannel> {
 public:
  // `pool` must outlive the channel. A null handler rejects inbound
  // requests with FAILED_PRECONDITION (pure-client channels).
  static RpcChannelPtr Create(ConnectionPtr conn, WorkerPool* pool,
                              RequestHandler handler);

  ~RpcChannel();

  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  // Synchronous call: sends the request, blocks until its response arrives.
  // UNAVAILABLE if the channel closes while waiting.
  Result<Response> Call(const Request& request);

  // Bounded variant; nullopt on timeout (the request stays outstanding and
  // its eventual response is discarded).
  Result<std::optional<Response>> CallFor(const Request& request,
                                          std::chrono::milliseconds timeout);

  // Closes the connection and fails all outstanding calls.
  void Close();
  [[nodiscard]] bool closed() const;

  // Traffic counters (bytes on the wire, both directions), for the
  // link-traffic experiments.
  std::uint64_t bytes_sent() const;
  std::uint64_t bytes_received() const;
  std::uint64_t requests_handled() const;

  std::string description() const { return conn_->description(); }

 private:
  RpcChannel(ConnectionPtr conn, WorkerPool* pool, RequestHandler handler);
  void Start();
  void ReaderLoop();
  void HandleRequest(std::uint64_t id, Request request);

  // The single framed-write path for both directions: gather-sends the
  // kind/id prefix chained to `body` and maintains every send-side counter,
  // so the request and response paths cannot drift apart on metrics.
  Status SendFrame(std::uint8_t kind, std::uint64_t id, const IoBuf& body);

  struct PendingCall {
    std::optional<Response> response;
    bool failed = false;
  };

  ConnectionPtr conn_;
  WorkerPool* pool_;
  RequestHandler handler_;

  std::thread reader_;
  std::atomic<bool> closed_{false};

  Mutex mu_{"RpcChannel::mu"};
  CondVar cv_;
  std::uint64_t next_id_ DMEMO_GUARDED_BY(mu_) = 1;
  std::unordered_map<std::uint64_t, PendingCall> pending_
      DMEMO_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> requests_handled_{0};
  // Serializes whole-frame writes to conn_. Leaf lock: never acquire mu_
  // while holding it.
  Mutex send_mu_{"RpcChannel::send_mu"};
};

}  // namespace dmemo
