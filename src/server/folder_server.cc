#include "server/folder_server.h"

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/log.h"
#include "util/retry.h"
#include "util/trace.h"

namespace dmemo {
namespace {

Result<Bytes> ReadSnapshotFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    // ENOENT is the one benign outcome — a fresh server. Every other
    // errno (permissions, I/O error, EISDIR...) is a real failure that
    // must not be mistaken for "no data yet".
    if (errno == ENOENT) return NotFoundError("no snapshot at " + path);
    return UnavailableError("cannot read snapshot " + path + ": " +
                            std::strerror(errno));
  }
  Bytes data;
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status err = UnavailableError("cannot read snapshot " + path +
                                          ": " + std::strerror(errno));
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    data.insert(data.end(), buf.data(), buf.data() + n);
  }
  ::close(fd);
  return data;
}

Result<QualifiedKey> DecodeKeyBytes(const Bytes& encoded) {
  ByteReader in(encoded);
  return QualifiedKey::DecodeFrom(in);
}

}  // namespace

std::uint64_t FolderServerDurability::CompactBytesFromEnv() {
  return static_cast<std::uint64_t>(
      EnvInt("DMEMO_WAL_COMPACT_BYTES", 4 * 1024 * 1024));
}

FolderServer::FolderServer(int id, std::string host)
    : id_(id),
      host_(std::move(host)),
      directory_(/*seed=*/Mix64(static_cast<std::uint64_t>(id) + 0x0f01de25)) {
  const std::string fs_label =
      "fs=\"" + std::to_string(id_) + "@" + host_ + "\"";
  auto& registry = MetricsRegistry::Global();
  for (std::uint8_t v = static_cast<std::uint8_t>(Op::kPut);
       v <= static_cast<std::uint8_t>(Op::kGossip); ++v) {
    const Op op = static_cast<Op>(v);
    op_latency_[v] = registry.GetHistogram(
        "dmemo_folder_op_latency_us",
        fs_label + ",op=\"" + std::string(OpName(op)) + "\"");
  }
  deposits_ = registry.GetCounter("dmemo_folder_deposits_total", fs_label);
  extracts_ = registry.GetCounter("dmemo_folder_extracts_total", fs_label);
  slow_ops_ = registry.GetCounter("dmemo_folder_slow_ops_total", fs_label);
  fenced_ = registry.GetCounter("dmemo_fenced_requests_total", fs_label);
  wal_replayed_ =
      registry.GetCounter("dmemo_wal_replayed_records_total", fs_label);
  failovers_ = registry.GetCounter("dmemo_failover_total", fs_label);
  epoch_gauge_ = registry.GetGauge("dmemo_fs_epoch", fs_label);
  epoch_gauge_->Set(0);
}

Response FolderServer::Handle(const Request& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t start_us = MonotonicMicros();
  return Finish(request.op, request.trace_id, request.hop_count, request.key,
                start_us, HandleOp(request));
}

Response FolderServer::Finish(Op op, std::uint64_t trace_id,
                              std::uint8_t hop, const Key& key,
                              std::uint64_t start_us, Response resp) {
  resp.trace_id = trace_id;
  const std::uint64_t elapsed_us = MonotonicMicros() - start_us;

  // Span and exemplar share one sampling verdict (see memo_server.cc).
  const bool sampled = TraceSampled(trace_id);
  const auto op_index = static_cast<std::size_t>(op);
  if (op_index < op_latency_.size() && op_latency_[op_index] != nullptr) {
    op_latency_[op_index]->Observe(elapsed_us, sampled ? trace_id : 0);
  }
  const bool ok = resp.code == StatusCode::kOk;
  if (ok) {
    if (op == Op::kPut || op == Op::kPutDelayed) {
      deposits_->Increment();
    } else if (resp.has_value) {
      extracts_->Increment();
    }
  }

  if (sampled) {
    SpanRecord span;
    span.trace_id = trace_id;
    span.component = "fs:" + std::to_string(id_) + "@" + host_;
    span.op = std::string(OpName(op));
    span.hop = hop;
    span.ok = ok;
    span.start_us = start_us;
    span.duration_us = elapsed_us;
    TraceRing::Global().Record(std::move(span));
  }

  const auto threshold_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(SlowOpThreshold())
          .count());
  if (elapsed_us >= threshold_us) {
    slow_ops_->Increment();
    DMEMO_LOG(kWarn) << "slow op: " << OpName(op) << " on folder "
                     << key.DebugString() << " took " << elapsed_us
                     << "us (threshold " << threshold_us
                     << "us), fs=" << id_ << "@" << host_
                     << " trace=" << trace_id;
  }
  return resp;
}

// analyze:reactor-context
void FolderServer::HandleAsync(const Request& request, ResponseCallback done,
                               std::function<bool()>* cancel) {
  // Only non-durable parkable extractions take the continuation path; see
  // the header for why durable servers stay inline.
  const bool parkable =
      wal_ == nullptr &&
      (request.op == Op::kGet || request.op == Op::kGetCopy ||
       request.op == Op::kGetAlt);
  if (!parkable) {
    done(Handle(request));
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t start_us = MonotonicMicros();

  // Same fencing head as HandleOp.
  const std::uint64_t current_epoch = epoch();
  if (request.epoch != 0 && current_epoch != 0 &&
      request.epoch != current_epoch) {
    fenced_->Increment();
    done(Finish(request.op, request.trace_id, request.hop_count, request.key,
                start_us,
                Response::FromStatus(FailedPreconditionError(
                    "stale epoch " + std::to_string(request.epoch) +
                    " fenced (fs " + std::to_string(id_) + "@" + host_ +
                    " serves epoch " + std::to_string(current_epoch) + ")"))));
    return;
  }

  std::vector<QualifiedKey> qkeys;
  if (request.op == Op::kGetAlt) {
    qkeys.reserve(request.alts.size());
    for (const Key& k : request.alts) {
      qkeys.push_back(QualifiedKey{request.app, k});
    }
  } else {
    qkeys.push_back(QualifiedKey{request.app, request.key});
  }

  const Op op = request.op;
  const std::uint64_t req_epoch = request.epoch;
  auto finish = [this, op, trace_id = request.trace_id,
                 hop = request.hop_count, key = request.key, start_us,
                 done = std::move(done)](Response resp) {
    done(Finish(op, trace_id, hop, key, start_us, std::move(resp)));
  };
  const std::uint64_t waiter_id = directory_.GetAsync(
      qkeys, /*copy=*/op == Op::kGetCopy,
      [this, op, req_epoch, finish](
          Status st, std::optional<std::pair<QualifiedKey, IoBuf>> kv) {
        if (!st.ok()) {
          finish(Response::FromStatus(st));
          return;
        }
        // Delivery-time re-checks: the waiter may have parked across an
        // epoch bump (failover) or an EnableDurability. This incarnation
        // must not serve the memo — re-deposit it (copies never consumed
        // one) and answer the way the sync path would.
        const std::uint64_t now_epoch = epoch();
        const bool stale =
            req_epoch != 0 && now_epoch != 0 && req_epoch != now_epoch;
        if (stale || wal_ != nullptr) {
          if (op != Op::kGetCopy) {
            // Un-deliver: the take raced a fence / durability flip.
            (void)directory_.Put(kv->first, kv->second);  // wal:applied (undo)
          }
          if (stale) {
            fenced_->Increment();
            finish(Response::FromStatus(FailedPreconditionError(
                "stale epoch " + std::to_string(req_epoch) + " fenced (fs " +
                std::to_string(id_) + "@" + host_ + " serves epoch " +
                std::to_string(now_epoch) + ")")));
          } else {
            finish(Response::FromStatus(UnavailableError(
                "folder server became durable while the get was parked; "
                "retry")));
          }
          return;
        }
        Response resp;
        resp.has_value = true;
        resp.value = std::move(kv->second);
        if (op == Op::kGetAlt) {
          resp.has_key = true;
          resp.key = kv->first.key;
        }
        finish(std::move(resp));
      });
  if (waiter_id != 0 && cancel != nullptr) {
    *cancel = [this, waiter_id] {
      return directory_.CancelWaiter(waiter_id);
    };
  }
}

Response FolderServer::HandleOp(const Request& request) {
  // Epoch fencing: a request stamped with an epoch (nonzero) must name
  // *this* incarnation. A zombie owner — or a client that pinned the
  // pre-failover epoch — gets FAILED_PRECONDITION, the distinct "you are
  // fenced" status, and mutates nothing. Unstamped requests (epoch 0,
  // all normal client traffic) always pass.
  const std::uint64_t current_epoch = epoch();
  if (request.epoch != 0 && current_epoch != 0 &&
      request.epoch != current_epoch) {
    fenced_->Increment();
    return Response::FromStatus(FailedPreconditionError(
        "stale epoch " + std::to_string(request.epoch) + " fenced (fs " +
        std::to_string(id_) + "@" + host_ + " serves epoch " +
        std::to_string(current_epoch) + ")"));
  }

  const QualifiedKey qk{request.app, request.key};
  switch (request.op) {
    case Op::kPut: {
      Status status = LoggedPut(Op::kPut, qk, QualifiedKey{}, request.value,
                                request.request_id);
      return Response::FromStatus(status);
    }
    case Op::kPutDelayed: {
      const QualifiedKey qk2{request.app, request.key2};
      Status status = LoggedPut(Op::kPutDelayed, qk, qk2, request.value,
                                request.request_id);
      return Response::FromStatus(status);
    }
    case Op::kGet: {
      auto value = directory_.Get(qk);  // wal:applied (logged below)
      if (!value.ok()) return Response::FromStatus(value.status());
      Status logged =
          LogExtraction(Op::kGet, qk, *value, request.request_id);
      if (!logged.ok()) return Response::FromStatus(logged);
      Response resp;
      resp.has_value = true;
      resp.value = std::move(*value);
      return resp;
    }
    case Op::kGetCopy: {
      // Non-mutating (the memo stays), so nothing to log.
      auto value = directory_.GetCopy(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      resp.has_value = true;
      resp.value = std::move(*value);
      return resp;
    }
    case Op::kGetSkip: {
      auto value = directory_.GetSkip(qk);  // wal:applied (logged below)
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      if (value->has_value()) {
        Status logged =
            LogExtraction(Op::kGetSkip, qk, **value, request.request_id);
        if (!logged.ok()) return Response::FromStatus(logged);
        resp.has_value = true;
        resp.value = std::move(**value);
      }
      return resp;
    }
    case Op::kGetAlt:
    case Op::kGetAltSkip: {
      std::vector<QualifiedKey> qkeys;
      qkeys.reserve(request.alts.size());
      for (const Key& k : request.alts) {
        qkeys.push_back(QualifiedKey{request.app, k});
      }
      if (request.op == Op::kGetAlt) {
        auto value = directory_.GetAlt(qkeys);  // wal:applied (logged below)
        if (!value.ok()) return Response::FromStatus(value.status());
        Status logged = LogExtraction(Op::kGetAlt, value->first,
                                      value->second, request.request_id);
        if (!logged.ok()) return Response::FromStatus(logged);
        Response resp;
        resp.has_value = true;
        resp.value = std::move(value->second);
        resp.has_key = true;
        resp.key = value->first.key;
        return resp;
      }
      auto value = directory_.GetAltSkip(qkeys);  // wal:applied (logged below)
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      if (value->has_value()) {
        Status logged = LogExtraction(Op::kGetAltSkip, (*value)->first,
                                      (*value)->second, request.request_id);
        if (!logged.ok()) return Response::FromStatus(logged);
        resp.has_value = true;
        resp.value = std::move((*value)->second);
        resp.has_key = true;
        resp.key = (*value)->first.key;
      }
      return resp;
    }
    case Op::kCount: {
      Response resp;
      resp.count = directory_.Count(qk);
      return resp;
    }
    case Op::kPing:
      return Response{};
    case Op::kRegisterApp:
    case Op::kStats:
    case Op::kMetrics:
    case Op::kHeartbeat:
    case Op::kReplSnapshot:
    case Op::kReplAppend:
    case Op::kGossip:
      return Response::FromStatus(InvalidArgumentError(
          std::string(OpName(request.op)) +
          " must be sent to a memo server"));
  }
  return Response::FromStatus(
      InternalError("unhandled opcode in folder server"));
}

Status FolderServer::LoggedPut(Op op, const QualifiedKey& qk,
                               const QualifiedKey& qk2, const IoBuf& value,
                               std::uint64_t request_id) {
  if (wal_ == nullptr) {
    if (op == Op::kPutDelayed) {
      return directory_.PutDelayed(qk, qk2, value);  // wal:applied (off)
    }
    return directory_.Put(qk, value);  // wal:applied (off)
  }
  std::uint64_t end = 0;
  std::uint64_t repl_seq = 0;
  {
    // Append-then-apply under wal_mu_, so the log's record order is the
    // directory's apply order (a put and a put_delayed on the same folder
    // do not commute). The fsync happens after the lock drops, so
    // concurrent mutations group-commit on one sync.
    MutexLock lock(wal_mu_);
    WalRecord rec;
    rec.op = static_cast<std::uint8_t>(op);
    rec.request_id = request_id;
    rec.key = qk.ToBytes();
    if (op == Op::kPutDelayed) rec.key2 = qk2.ToBytes();
    rec.payload = value;
    DMEMO_ASSIGN_OR_RETURN(end, wal_->Append(rec));
    Status applied =
        op == Op::kPutDelayed
            ? directory_.PutDelayed(qk, qk2, value)  // wal:applied
            : directory_.Put(qk, value);             // wal:applied
    if (!applied.ok()) return applied;
    // Sequenced under wal_mu_ so the replication stream's order is the
    // apply order.
    if (repl_ != nullptr) repl_seq = repl_->Enqueue(rec);
  }
  DMEMO_RETURN_IF_ERROR(wal_->Commit(end));
  // Semisync barrier (no-op in async mode): the ack waits until the
  // record reached the backup or the bounded wait degrades.
  if (repl_ != nullptr) repl_->WaitShipped(repl_seq);
  return MaybeCompact();
}

Status FolderServer::LogExtraction(Op op, const QualifiedKey& qk,
                                   const IoBuf& value,
                                   std::uint64_t request_id) {
  if (wal_ == nullptr) return Status::Ok();
  // The extraction already happened (a blocking Get cannot hold wal_mu_
  // while parked); log it now, before the value leaves the server. Replay
  // removes by content, and the record that deposited this value is
  // necessarily earlier in the log, so the late append is consistent even
  // if other mutations interleaved between take and append.
  std::uint64_t end = 0;
  std::uint64_t repl_seq = 0;
  Status logged = Status::Ok();
  {
    MutexLock lock(wal_mu_);
    WalRecord rec;
    rec.op = static_cast<std::uint8_t>(op);
    rec.request_id = request_id;
    rec.key = qk.ToBytes();
    rec.payload = value;
    auto appended = wal_->Append(rec);
    if (appended.ok()) {
      end = std::move(appended).value();
      if (repl_ != nullptr) repl_seq = repl_->Enqueue(rec);
    } else {
      logged = appended.status();
    }
  }
  if (logged.ok()) logged = wal_->Commit(end);
  if (!logged.ok()) {
    // The extraction never became durable: put the memo back and fail the
    // call, so the client's retry can extract it again — an unlogged
    // extraction acked to the client would be re-delivered after a crash
    // (a duplicate).
    (void)directory_.Put(qk, value);  // wal:applied (undo of unlogged take)
    if (repl_ != nullptr && repl_seq != 0) {
      // The take may already be on the wire: ship a compensating deposit
      // (request_id 0 — untracked) so the backup converges on the undo.
      MutexLock lock(wal_mu_);
      WalRecord undo;
      undo.op = static_cast<std::uint8_t>(Op::kPut);
      undo.key = qk.ToBytes();
      undo.payload = value;
      (void)repl_->Enqueue(undo);
    }
    return logged;
  }
  if (repl_ != nullptr) repl_->WaitShipped(repl_seq);
  return MaybeCompact();
}

Status FolderServer::ApplyReplay(const WalRecord& record,
                                 std::unordered_set<std::uint64_t>& seen,
                                 const SeedCompletionFn& seed) {
  if (record.request_id != 0 && !seen.insert(record.request_id).second) {
    return Status::Ok();  // duplicate record; first application stands
  }
  DMEMO_ASSIGN_OR_RETURN(QualifiedKey qk, DecodeKeyBytes(record.key));
  const Op op = static_cast<Op>(record.op);
  Response resp;
  switch (op) {
    case Op::kPut:
      DMEMO_RETURN_IF_ERROR(
          directory_.Put(qk, record.payload));  // wal:applied (replay)
      break;
    case Op::kPutDelayed: {
      DMEMO_ASSIGN_OR_RETURN(QualifiedKey qk2, DecodeKeyBytes(record.key2));
      DMEMO_RETURN_IF_ERROR(
          directory_.PutDelayed(qk, qk2, record.payload));  // wal:applied

      break;
    }
    case Op::kGet:
    case Op::kGetSkip:
    case Op::kGetAlt:
    case Op::kGetAltSkip: {
      if (!directory_.TakeEqual(qk, record.payload)) {  // wal:applied (replay)
        // Tolerated, loudly: the extraction's memo is already gone —
        // possible only for logs written before this fs's first
        // checkpoint of it, which Checkpoint() makes unreachable.
        DMEMO_LOG(kWarn) << "fs " << id_ << "@" << host_
                         << ": WAL replay found no memo for a logged "
                         << OpName(op) << " on " << qk.key.DebugString();
      }
      resp.has_value = true;
      resp.value = record.payload;
      if (op == Op::kGetAlt || op == Op::kGetAltSkip) {
        resp.has_key = true;
        resp.key = qk.key;
      }
      break;
    }
    default:
      return DataLossError("unknown op " + std::to_string(record.op) +
                           " in WAL record");
  }
  wal_replayed_->Increment();
  if (seed != nullptr && record.request_id != 0) {
    seed(record.request_id, resp);
  }
  return Status::Ok();
}

Status FolderServer::EnableDurability(FolderServerDurability opts,
                                      SeedCompletionFn seed) {
  durability_ = std::move(opts);
  if (durability_.wal.metric_labels.empty()) {
    durability_.wal.metric_labels =
        "fs=\"" + std::to_string(id_) + "@" + host_ + "\"";
  }
  // Recovery keeps going past individual failures and returns the first
  // one: a folder server holding the recoverable subset of its partition
  // beats one that refuses to start (callers log the degradation).
  Status result = Status::Ok();

  Status loaded = LoadFrom(durability_.snapshot_path);
  if (!loaded.ok()) {
    DMEMO_LOG(kError) << "fs " << id_ << "@" << host_
                      << ": snapshot load failed: " << loaded.ToString();
    result = loaded;
  }

  std::uint64_t prev_epoch = 0;
  WalReplayStats replay_stats;
  auto stored_epoch = WriteAheadLog::ReadEpoch(durability_.wal_path);
  if (stored_epoch.ok()) {
    prev_epoch = stored_epoch.value();
    std::unordered_set<std::uint64_t> seen;
    Status replayed = WriteAheadLog::Replay(
        durability_.wal_path,
        [&](const WalRecord& rec) { return ApplyReplay(rec, seen, seed); },
        &replay_stats);
    if (!replayed.ok()) {
      // Corruption inside the record stream (a torn tail is NOT an error).
      // Keep what replayed, preserve the file for forensics, serve on.
      DMEMO_LOG(kError) << "fs " << id_ << "@" << host_
                        << ": WAL replay stopped after "
                        << replay_stats.records
                        << " records: " << replayed.ToString();
      (void)std::rename(durability_.wal_path.c_str(),
                        (durability_.wal_path + ".corrupt").c_str());
      if (result.ok()) result = replayed;
    }
  } else if (stored_epoch.status().code() != StatusCode::kNotFound) {
    DMEMO_LOG(kError) << "fs " << id_ << "@" << host_
                      << ": WAL header unreadable: "
                      << stored_epoch.status().ToString();
    (void)std::rename(durability_.wal_path.c_str(),
                      (durability_.wal_path + ".corrupt").c_str());
    if (result.ok()) result = stored_epoch.status();
  }

  // Every recovery bumps the epoch, so anything still stamped with the
  // previous incarnation's epoch is fenceable from the first request. The
  // floor lets a promoted backup open strictly above the failed primary's
  // next restart (DESIGN.md §15).
  epoch_.store(std::max(prev_epoch, durability_.epoch_floor) + 1,
               std::memory_order_relaxed);
  epoch_gauge_->Set(static_cast<std::int64_t>(epoch()));

  // Fold the recovered state into a fresh snapshot generation *before*
  // opening (truncating) the WAL — the replayed records must never be the
  // only copy once the log is gone.
  Status saved = SaveTo(durability_.snapshot_path);
  if (!saved.ok()) {
    DMEMO_LOG(kError) << "fs " << id_ << "@" << host_
                      << ": post-recovery checkpoint failed: "
                      << saved.ToString() << "; durability stays OFF";
    return result.ok() ? saved : result;
  }
  auto wal = WriteAheadLog::Open(durability_.wal_path, epoch(),
                                 durability_.wal);
  if (!wal.ok()) {
    DMEMO_LOG(kError) << "fs " << id_ << "@" << host_
                      << ": cannot open WAL: " << wal.status().ToString()
                      << "; durability stays OFF";
    return result.ok() ? wal.status() : result;
  }
  wal_ = std::move(wal).value();

  if (replay_stats.records > 0) {
    failovers_->Increment();
    DMEMO_LOG(kWarn) << "fs " << id_ << "@" << host_ << ": recovered "
                     << replay_stats.records << " WAL records"
                     << (replay_stats.truncated_tail ? " (torn tail)" : "")
                     << ", now serving epoch " << epoch();
  }
  return result;
}

Result<ReplSnapshotPayload> FolderServer::ReplicationSnapshot() {
  // wal_mu_ pins the snapshot/watermark relationship: the snapshot holds
  // exactly the mutations with sequence numbers <= watermark, because both
  // Enqueue and the directory apply happen under this lock.
  MutexLock lock(wal_mu_);
  ReplSnapshotPayload payload;
  payload.fs_id = id_;
  payload.primary_host = host_;
  payload.epoch = epoch();
  payload.watermark = repl_ == nullptr ? 0 : repl_->last_seq();
  ByteWriter out;
  directory_.SnapshotTo(out);
  payload.snapshot = out.take();
  return payload;
}

Status FolderServer::Checkpoint() {
  if (wal_ == nullptr) {
    return FailedPreconditionError("durability not enabled on fs " +
                                   std::to_string(id_));
  }
  // Holding wal_mu_ pins the log/directory relationship: no mutation can
  // be appended between the snapshot and the truncation, so the fresh log
  // is empty exactly when the snapshot is complete.
  MutexLock lock(wal_mu_);
  DMEMO_RETURN_IF_ERROR(SaveTo(durability_.snapshot_path));
  return wal_->Reset(epoch());
}

Status FolderServer::MaybeCompact() {
  if (wal_ == nullptr || durability_.compact_bytes == 0) {
    return Status::Ok();
  }
  // Racy read on purpose: Checkpoint re-serializes under wal_mu_, and a
  // compaction that runs a record late is still a compaction.
  if (wal_->size_bytes() < durability_.compact_bytes) return Status::Ok();
  return Checkpoint();
}

void FolderServer::Shutdown() { directory_.Close(); }

Status FolderServer::SaveTo(const std::string& path) const {
  ByteWriter out;
  directory_.SnapshotTo(out);
  return AtomicWriteFileDurably(path, out.data());
}

Status FolderServer::LoadFrom(const std::string& path) {
  auto restore = [this](const Bytes& data) -> Status {
    // Decode into a scratch directory first: RestoreFrom merges, and a
    // snapshot that decodes halfway must not leave partial garbage in the
    // live one.
    FolderDirectory<IoBuf> probe;
    ByteReader check(data);
    DMEMO_RETURN_IF_ERROR(probe.RestoreFrom(check));
    ByteReader in(data);
    return directory_.RestoreFrom(in);
  };

  Status primary = Status::Ok();
  auto data = ReadSnapshotFile(path);
  if (data.ok()) {
    primary = restore(data.value());
    if (primary.ok()) return Status::Ok();
    DMEMO_LOG(kError) << "fs " << id_ << "@" << host_ << ": snapshot "
                      << path << " corrupt: " << primary.ToString();
  } else if (data.status().code() == StatusCode::kNotFound) {
    // Fresh server — unless a previous generation exists, which means a
    // crash hit between the two publish renames; fall through to .prev.
    primary = Status::Ok();
  } else {
    primary = data.status();
    DMEMO_LOG(kError) << "fs " << id_ << "@" << host_ << ": "
                      << primary.ToString();
  }

  const std::string prev_path = path + ".prev";
  auto prev = ReadSnapshotFile(prev_path);
  if (prev.ok()) {
    Status restored = restore(prev.value());
    if (restored.ok()) {
      if (!primary.ok()) {
        DMEMO_LOG(kWarn) << "fs " << id_ << "@" << host_
                         << ": restored previous snapshot generation "
                         << prev_path;
      }
      // Surface the primary's failure even though the fall-back worked —
      // silent degradation is how the old code lost data.
      return primary;
    }
    if (primary.ok()) return restored;
  }
  return primary;
}

}  // namespace dmemo
