#include "server/folder_server.h"

#include <cstdio>

#include <fstream>

namespace dmemo {

FolderServer::FolderServer(int id, std::string host)
    : id_(id),
      host_(std::move(host)),
      directory_(/*seed=*/Mix64(static_cast<std::uint64_t>(id) + 0x0f01de25)) {
}

Response FolderServer::Handle(const Request& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const QualifiedKey qk{request.app, request.key};
  switch (request.op) {
    case Op::kPut: {
      Status status = directory_.Put(qk, request.value);
      return Response::FromStatus(status);
    }
    case Op::kPutDelayed: {
      const QualifiedKey qk2{request.app, request.key2};
      Status status = directory_.PutDelayed(qk, qk2, request.value);
      return Response::FromStatus(status);
    }
    case Op::kGet: {
      auto value = directory_.Get(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      resp.has_value = true;
      resp.value = std::move(*value);
      return resp;
    }
    case Op::kGetCopy: {
      auto value = directory_.GetCopy(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      resp.has_value = true;
      resp.value = std::move(*value);
      return resp;
    }
    case Op::kGetSkip: {
      auto value = directory_.GetSkip(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      if (value->has_value()) {
        resp.has_value = true;
        resp.value = std::move(**value);
      }
      return resp;
    }
    case Op::kGetAlt:
    case Op::kGetAltSkip: {
      std::vector<QualifiedKey> qkeys;
      qkeys.reserve(request.alts.size());
      for (const Key& k : request.alts) {
        qkeys.push_back(QualifiedKey{request.app, k});
      }
      if (request.op == Op::kGetAlt) {
        auto value = directory_.GetAlt(qkeys);
        if (!value.ok()) return Response::FromStatus(value.status());
        Response resp;
        resp.has_value = true;
        resp.value = std::move(value->second);
        resp.has_key = true;
        resp.key = value->first.key;
        return resp;
      }
      auto value = directory_.GetAltSkip(qkeys);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      if (value->has_value()) {
        resp.has_value = true;
        resp.value = std::move((*value)->second);
        resp.has_key = true;
        resp.key = (*value)->first.key;
      }
      return resp;
    }
    case Op::kCount: {
      Response resp;
      resp.count = directory_.Count(qk);
      return resp;
    }
    case Op::kPing:
      return Response{};
    case Op::kRegisterApp:
    case Op::kStats:
      return Response::FromStatus(InvalidArgumentError(
          std::string(OpName(request.op)) +
          " must be sent to a memo server"));
  }
  return Response::FromStatus(
      InternalError("unhandled opcode in folder server"));
}

void FolderServer::Shutdown() { directory_.Close(); }

Status FolderServer::SaveTo(const std::string& path) const {
  ByteWriter out;
  directory_.SnapshotTo(out);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return UnavailableError("cannot write snapshot " + tmp);
    file.write(reinterpret_cast<const char*>(out.data().data()),
               static_cast<std::streamsize>(out.size()));
    if (!file) return UnavailableError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return UnavailableError("cannot rename snapshot into place: " + path);
  }
  return Status::Ok();
}

Status FolderServer::LoadFrom(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::Ok();  // no snapshot: fresh server
  Bytes data((std::istreambuf_iterator<char>(file)),
             std::istreambuf_iterator<char>());
  ByteReader in(data);
  return directory_.RestoreFrom(in);
}

}  // namespace dmemo
