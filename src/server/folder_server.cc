#include "server/folder_server.h"

#include <cstdio>

#include <fstream>

#include "util/log.h"
#include "util/trace.h"

namespace dmemo {

FolderServer::FolderServer(int id, std::string host)
    : id_(id),
      host_(std::move(host)),
      directory_(/*seed=*/Mix64(static_cast<std::uint64_t>(id) + 0x0f01de25)) {
  const std::string fs_label =
      "fs=\"" + std::to_string(id_) + "@" + host_ + "\"";
  auto& registry = MetricsRegistry::Global();
  for (std::uint8_t v = static_cast<std::uint8_t>(Op::kPut);
       v <= static_cast<std::uint8_t>(Op::kMetrics); ++v) {
    const Op op = static_cast<Op>(v);
    op_latency_[v] = registry.GetHistogram(
        "dmemo_folder_op_latency_us",
        fs_label + ",op=\"" + std::string(OpName(op)) + "\"");
  }
  deposits_ = registry.GetCounter("dmemo_folder_deposits_total", fs_label);
  extracts_ = registry.GetCounter("dmemo_folder_extracts_total", fs_label);
  slow_ops_ = registry.GetCounter("dmemo_folder_slow_ops_total", fs_label);
}

Response FolderServer::Handle(const Request& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t start_us = MonotonicMicros();
  Response resp = HandleOp(request);
  resp.trace_id = request.trace_id;
  const std::uint64_t elapsed_us = MonotonicMicros() - start_us;

  const auto op_index = static_cast<std::size_t>(request.op);
  if (op_index < op_latency_.size() && op_latency_[op_index] != nullptr) {
    op_latency_[op_index]->Observe(elapsed_us);
  }
  const bool ok = resp.code == StatusCode::kOk;
  if (ok) {
    if (request.op == Op::kPut || request.op == Op::kPutDelayed) {
      deposits_->Increment();
    } else if (resp.has_value) {
      extracts_->Increment();
    }
  }

  SpanRecord span;
  span.trace_id = request.trace_id;
  span.component = "fs:" + std::to_string(id_) + "@" + host_;
  span.op = std::string(OpName(request.op));
  span.hop = request.hop_count;
  span.ok = ok;
  span.start_us = start_us;
  span.duration_us = elapsed_us;
  TraceRing::Global().Record(std::move(span));

  const auto threshold_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(SlowOpThreshold())
          .count());
  if (elapsed_us >= threshold_us) {
    slow_ops_->Increment();
    DMEMO_LOG(kWarn) << "slow op: " << OpName(request.op) << " on folder "
                     << request.key.DebugString() << " took " << elapsed_us
                     << "us (threshold " << threshold_us
                     << "us), fs=" << id_ << "@" << host_
                     << " trace=" << request.trace_id;
  }
  return resp;
}

Response FolderServer::HandleOp(const Request& request) {
  const QualifiedKey qk{request.app, request.key};
  switch (request.op) {
    case Op::kPut: {
      Status status = directory_.Put(qk, request.value);
      return Response::FromStatus(status);
    }
    case Op::kPutDelayed: {
      const QualifiedKey qk2{request.app, request.key2};
      Status status = directory_.PutDelayed(qk, qk2, request.value);
      return Response::FromStatus(status);
    }
    case Op::kGet: {
      auto value = directory_.Get(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      resp.has_value = true;
      resp.value = std::move(*value);
      return resp;
    }
    case Op::kGetCopy: {
      auto value = directory_.GetCopy(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      resp.has_value = true;
      resp.value = std::move(*value);
      return resp;
    }
    case Op::kGetSkip: {
      auto value = directory_.GetSkip(qk);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      if (value->has_value()) {
        resp.has_value = true;
        resp.value = std::move(**value);
      }
      return resp;
    }
    case Op::kGetAlt:
    case Op::kGetAltSkip: {
      std::vector<QualifiedKey> qkeys;
      qkeys.reserve(request.alts.size());
      for (const Key& k : request.alts) {
        qkeys.push_back(QualifiedKey{request.app, k});
      }
      if (request.op == Op::kGetAlt) {
        auto value = directory_.GetAlt(qkeys);
        if (!value.ok()) return Response::FromStatus(value.status());
        Response resp;
        resp.has_value = true;
        resp.value = std::move(value->second);
        resp.has_key = true;
        resp.key = value->first.key;
        return resp;
      }
      auto value = directory_.GetAltSkip(qkeys);
      if (!value.ok()) return Response::FromStatus(value.status());
      Response resp;
      if (value->has_value()) {
        resp.has_value = true;
        resp.value = std::move((*value)->second);
        resp.has_key = true;
        resp.key = (*value)->first.key;
      }
      return resp;
    }
    case Op::kCount: {
      Response resp;
      resp.count = directory_.Count(qk);
      return resp;
    }
    case Op::kPing:
      return Response{};
    case Op::kRegisterApp:
    case Op::kStats:
    case Op::kMetrics:
      return Response::FromStatus(InvalidArgumentError(
          std::string(OpName(request.op)) +
          " must be sent to a memo server"));
  }
  return Response::FromStatus(
      InternalError("unhandled opcode in folder server"));
}

void FolderServer::Shutdown() { directory_.Close(); }

Status FolderServer::SaveTo(const std::string& path) const {
  ByteWriter out;
  directory_.SnapshotTo(out);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return UnavailableError("cannot write snapshot " + tmp);
    file.write(reinterpret_cast<const char*>(out.data().data()),
               static_cast<std::streamsize>(out.size()));
    if (!file) return UnavailableError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return UnavailableError("cannot rename snapshot into place: " + path);
  }
  return Status::Ok();
}

Status FolderServer::LoadFrom(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::Ok();  // no snapshot: fresh server
  Bytes data((std::istreambuf_iterator<char>(file)),
             std::istreambuf_iterator<char>());
  ByteReader in(data);
  return directory_.RestoreFrom(in);
}

}  // namespace dmemo
