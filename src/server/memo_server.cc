#include "server/memo_server.h"

#include <algorithm>
#include <cstdlib>

#include "adf/adf.h"
#include "server/reactor.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "util/log.h"
#include "util/trace.h"

namespace dmemo {

namespace {
// Relay safety bound; no sane ADF topology approaches this diameter.
constexpr std::uint8_t kMaxHops = 32;

// One (machine, folder server) bucket of a get_alt's alternatives.
struct AltGroup {
  std::string host;
  int fs_id;
  std::vector<Key> keys;
};

// Resolves encoded key bytes to the owning (machine, folder server) —
// MemoServer::ResolveOwner bound over the app's routing table, so failover
// ownership overrides apply everywhere keys are placed.
using OwnerResolver =
    std::function<Result<FolderServerSpec>(const Bytes&)>;

// Group `request.alts` by owning (machine, folder server).
Result<std::vector<AltGroup>> GroupAlts(const Request& request,
                                        const OwnerResolver& resolve) {
  std::vector<AltGroup> groups;
  for (const Key& k : request.alts) {
    const QualifiedKey qk{request.app, k};
    DMEMO_ASSIGN_OR_RETURN(FolderServerSpec spec, resolve(qk.ToBytes()));
    auto it = std::find_if(groups.begin(), groups.end(), [&](const AltGroup& g) {
      return g.host == spec.host && g.fs_id == spec.id;
    });
    if (it == groups.end()) {
      groups.push_back(AltGroup{spec.host, spec.id, {k}});
    } else {
      it->keys.push_back(k);
    }
  }
  if (groups.empty()) {
    return InvalidArgumentError("get_alt requires at least one key");
  }
  return groups;
}
}  // namespace

std::chrono::milliseconds HeartbeatIntervalFromEnv() {
  return std::chrono::milliseconds(
      EnvInt("DMEMO_HEARTBEAT_INTERVAL_MS", 1000));
}

int HeartbeatMissesFromEnv() {
  return static_cast<int>(EnvInt("DMEMO_HEARTBEAT_MISSES", 3));
}

ServerCore ServerCoreFromEnv() {
  const char* v = std::getenv("DMEMO_SERVER_CORE");
  if (v == nullptr || *v == '\0') return ServerCore::kThreads;
  const std::string s(v);
  if (s == "reactor") return ServerCore::kReactor;
  if (s != "threads") {
    DMEMO_LOG(kWarn) << "DMEMO_SERVER_CORE='" << s
                     << "' not recognized (threads|reactor); using threads";
  }
  return ServerCore::kThreads;
}

MemoServer::MemoServer(MemoServerOptions options)
    : options_(std::move(options)),
      gossip_(options_.host, options_.heartbeat_misses) {
  pool_ = std::make_unique<WorkerPool>(options_.pool);
  const std::string host_label = "host=\"" + options_.host + "\"";
  auto& registry = MetricsRegistry::Global();
  for (std::uint8_t v = static_cast<std::uint8_t>(Op::kPut);
       v <= static_cast<std::uint8_t>(Op::kGossip); ++v) {
    const Op op = static_cast<Op>(v);
    op_latency_[v] = registry.GetHistogram(
        "dmemo_server_op_latency_us",
        host_label + ",op=\"" + std::string(OpName(op)) + "\"");
  }
  heartbeat_misses_total_ = registry.GetCounter(
      "dmemo_heartbeat_misses_total", host_label);
  repl_applied_ =
      registry.GetCounter("dmemo_repl_applied_records_total", host_label);
  repl_snapshots_received_ =
      registry.GetCounter("dmemo_repl_snapshots_received_total", host_label);
  repl_epoch_rejects_ =
      registry.GetCounter("dmemo_repl_epoch_rejects_total", host_label);
  repl_promotions_ =
      registry.GetCounter("dmemo_repl_promotions_total", host_label);
  gossip_pings_ =
      registry.GetCounter("dmemo_gossip_pings_total", host_label);
  gossip_ping_reqs_ =
      registry.GetCounter("dmemo_gossip_ping_reqs_total", host_label);
}

Result<std::unique_ptr<MemoServer>> MemoServer::Start(
    TransportPtr transport, MemoServerOptions options) {
  auto server = std::unique_ptr<MemoServer>(new MemoServer(std::move(options)));
  server->transport_ = std::move(transport);
  DMEMO_ASSIGN_OR_RETURN(server->listener_,
                         server->transport_->Listen(server->options_.listen_url));
  server->address_ = server->listener_->address();
  const bool want_reactor = server->options_.core == ServerCore::kReactor;
  if (want_reactor && server->listener_->readiness_fd() >= 0) {
    server->reactor_ =
        std::make_unique<Reactor>(server.get(), server->listener_.get());
    Status started = server->reactor_->Start();
    if (!started.ok()) return started;
  } else {
    if (want_reactor) {
      DMEMO_LOG(kInfo) << server->options_.host
                       << ": reactor core requested but listener '"
                       << server->address_
                       << "' has no pollable descriptor; using threaded core";
    }
    server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  }
  if (server->options_.heartbeat_interval.count() > 0 &&
      !server->options_.peers.empty()) {
    server->heartbeat_ = std::thread([s = server.get()] { s->GossipLoop(); });
  }
  return server;
}

MemoServer::~MemoServer() { Shutdown(); }

void MemoServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed
    auto channel = RpcChannel::Create(
        std::move(*conn), pool_.get(),
        [this](const Request& req) { return Handle(req); },
        [this](const Request& req) { return MayBlockWorker(req); });
    MutexLock lock(mu_);
    if (shutdown_) {
      channel->Close();
      return;
    }
    // Prune channels whose peer hung up so a long-lived server does not
    // accumulate dead entries (one per application process ever seen).
    std::erase_if(inbound_channels_,
                  [](const RpcChannelPtr& ch) { return ch->closed(); });
    inbound_channels_.push_back(std::move(channel));
  }
}

Status MemoServer::RegisterApp(const AppDescription& adf) {
  DMEMO_ASSIGN_OR_RETURN(RoutingTable routing, RoutingTable::Build(adf));
  bool replaced = false;
  {
    MutexLock lock(mu_);
    if (shutdown_) return CancelledError("memo server shut down");
    // Re-registration replaces the table ("allows multiple memo
    // applications to run concurrently, using the same servers").
    auto [it, inserted] = apps_.emplace(
        adf.app_name, std::make_shared<RoutingTable>(routing));
    if (!inserted) {
      it->second = std::make_shared<RoutingTable>(routing);
      replaced = true;
    }
    for (const auto& fs : adf.folder_servers) {
      if (fs.host == options_.host && !folder_servers_.contains(fs.id)) {
        auto server = std::make_unique<FolderServer>(fs.id, fs.host);
        if (!options_.persist_dir.empty()) {
          // Recovery: snapshot + WAL replay under a bumped fencing epoch,
          // re-seeding the at-most-once cache so client retries spanning
          // the restart dedupe instead of double-applying.
          FolderServerDurability dur;
          dur.snapshot_path = SnapshotPath(fs.id);
          dur.wal_path = WalPath(fs.id);
          Status recovered = server->EnableDurability(
              std::move(dur),
              [this](std::uint64_t request_id, const Response& resp) {
                completions_.Seed(request_id, resp);
              });
          if (!recovered.ok()) {
            DMEMO_LOG(kWarn) << "folder server " << fs.id
                             << ": degraded recovery: "
                             << recovered.ToString();
          }
          AttachShipper(fs.id, server.get());
        }
        folder_servers_.emplace(fs.id, std::move(server));
      }
    }
    {
      MutexLock slock(stats_mu_);
      ++stats_.apps_registered;
    }
  }
  // Dynamic data migration: a replaced routing table may hash existing
  // folders to different owners; move their memos so they stay reachable.
  if (replaced) MigrateApp(adf.app_name, routing);
  return Status::Ok();
}

// Move every memo this machine holds for `app` whose folder now belongs to
// a different (machine, folder server) under `routing`. Re-injection goes
// through Handle(), so cross-machine moves follow the normal forwarding
// path. Memos deposited concurrently with the migration may interleave;
// they are hashed with the new table either way, so nothing is lost.
void MemoServer::MigrateApp(const std::string& app,
                            const RoutingTable& routing) {
  std::vector<std::pair<int, FolderServer*>> locals;
  {
    MutexLock lock(mu_);
    for (auto& [id, fs] : folder_servers_) locals.emplace_back(id, fs.get());
  }
  std::uint64_t moved = 0;
  for (auto& [id, fs] : locals) {
    for (const QualifiedKey& qk : fs->directory().Keys(app)) {
      auto owner = ResolveOwner(routing, qk.ToBytes());
      if (!owner.ok()) continue;
      if (owner->host == options_.host && owner->id == id) continue;
      // Drain this folder's visible memos and re-inject under the new map.
      for (;;) {
        auto value = fs->directory().GetSkip(qk);
        if (!value.ok() || !value->has_value()) break;
        Request put;
        put.op = Op::kPut;
        put.app = app;
        put.key = qk.key;
        put.value = std::move(**value);
        Response resp = Handle(put);
        if (resp.code != StatusCode::kOk) {
          // Destination unreachable: put the memo back where it was so it
          // is not lost; it will migrate when the peer returns.
          (void)fs->directory().Put(qk, std::move(put.value));
          break;
        }
        ++moved;
      }
    }
  }
  if (moved > 0) {
    DMEMO_LOG(kInfo) << options_.host << ": migrated " << moved
                     << " memos for app '" << app << "'";
  }
}

std::string MemoServer::SnapshotPath(int fs_id) const {
  return options_.persist_dir + "/fs-" + std::to_string(fs_id) + ".dmemo";
}

std::string MemoServer::WalPath(int fs_id) const {
  return options_.persist_dir + "/fs-" + std::to_string(fs_id) + ".wal";
}

Result<ResilientChannelPtr> MemoServer::PeerChannel(const std::string& host) {
  // Find-or-create entirely under mu_. The old code dropped the lock to
  // dial; two forwarding threads could both dial, and the loser's channel
  // was overwritten without Close(), stranding its reader thread forever.
  // ResilientChannel dials lazily, so creation here is a cheap allocation
  // and the race has nothing left to lose.
  MutexLock lock(mu_);
  if (shutdown_) return CancelledError("memo server shut down");
  auto it = peer_channels_.find(host);
  if (it != peer_channels_.end()) return it->second;
  auto addr_it = options_.peers.find(host);
  if (addr_it == options_.peers.end()) {
    return NotFoundError("no memo-server address known for machine " + host);
  }
  ResilientChannel::Options copts;
  copts.retry = options_.forward_retry;
  copts.pool = pool_.get();
  copts.handler = [this](const Request& req) { return Handle(req); };
  copts.classifier = [this](const Request& req) {
    return MayBlockWorker(req);
  };
  auto channel = std::make_shared<ResilientChannel>(
      transport_, addr_it->second, std::move(copts));
  peer_channels_.emplace(host, channel);
  return channel;
}

Result<FolderServer*> MemoServer::LocalFolderServer(
    const RoutingTable& routing, const QualifiedKey& qk) {
  DMEMO_ASSIGN_OR_RETURN(FolderServerSpec spec,
                         ResolveOwner(routing, qk.ToBytes()));
  if (spec.host != options_.host) {
    // UNAVAILABLE (retryable), not INTERNAL: after a failover the origin
    // may have stamped a stale destination; the client's retry re-resolves
    // against the updated ownership map and reaches the promoted owner.
    return UnavailableError("key " + qk.DebugString() + " owned by " +
                            spec.host + ", not " + options_.host +
                            "; re-resolve");
  }
  MutexLock lock(mu_);
  auto it = folder_servers_.find(spec.id);
  if (it == folder_servers_.end()) {
    return InternalError("folder server " + std::to_string(spec.id) +
                         " not materialized on " + options_.host);
  }
  return it->second.get();
}

Response MemoServer::Handle(const Request& request) {
  // Untraced request (a client predating trace context, or a raw probe):
  // this server is the first to see it, so it mints the trace id. The copy
  // is confined to this rare path; traced requests pass through untouched.
  if (request.trace_id == 0) {
    Request traced = request;
    traced.trace_id = NextTraceId();
    return Handle(traced);
  }
  {
    MutexLock slock(stats_mu_);
    ++stats_.requests;
  }
  const std::uint64_t start_us = MonotonicMicros();
  Response resp = HandleTraced(request);
  resp.trace_id = request.trace_id;
  const std::uint64_t elapsed_us = MonotonicMicros() - start_us;
  // Sampling (DMEMO_TRACE_SAMPLE_RATE) gates both the span and the
  // histogram exemplar together, so an exemplar never points at a trace
  // the ring refused to retain.
  const bool sampled = TraceSampled(request.trace_id);
  const auto op_index = static_cast<std::size_t>(request.op);
  if (op_index < op_latency_.size() && op_latency_[op_index] != nullptr) {
    op_latency_[op_index]->Observe(elapsed_us,
                                   sampled ? request.trace_id : 0);
  }
  if (sampled) {
    SpanRecord span;
    span.trace_id = request.trace_id;
    span.component = "memo:" + options_.host;
    span.op = std::string(OpName(request.op));
    span.hop = request.hop_count;
    span.ok = resp.code == StatusCode::kOk;
    span.start_us = start_us;
    span.duration_us = elapsed_us;
    TraceRing::Global().Record(std::move(span));
  }
  return resp;
}

Response MemoServer::HandleTraced(const Request& request) {
  // At-most-once: a retransmitted request (same client-minted request_id)
  // must not execute twice — a duplicated kPut deposits a second memo and a
  // duplicated kGet of an already-extracted value would hang or destroy it.
  // Dedupe runs only where the request *executes*: at the origin (no target
  // yet) or at the destination. Pure relays pass through untouched so a
  // routing loop still trips kMaxHops instead of parking forever on its own
  // in-flight cache entry.
  const bool is_relay = !request.target_host.empty() &&
                        request.target_host != options_.host;
  if (!is_relay && request.request_id != 0 && OpNeedsAtMostOnce(request.op)) {
    auto begin = completions_.Begin(request.request_id);
    if (begin.response.has_value()) return *std::move(begin.response);
    CompletionGuard guard(&completions_, request.request_id);
    Response resp = DispatchTraced(request);
    guard.Complete(resp);
    return resp;
  }
  return DispatchTraced(request);
}

Response MemoServer::DispatchTraced(const Request& request) {
  if (request.op == Op::kPing) return Response{};
  if (request.op == Op::kStats) return HandleStats();
  if (request.op == Op::kMetrics) return HandleMetrics();
  if (request.op == Op::kHeartbeat) return HandleHeartbeat(request);
  // Replication/membership ops carry their routing in the payload, not in
  // app/key — handle them before the app lookup.
  if (request.op == Op::kReplSnapshot) return HandleReplSnapshot(request);
  if (request.op == Op::kReplAppend) return HandleReplAppend(request);
  if (request.op == Op::kGossip) return HandleGossip(request);
  if (request.op == Op::kRegisterApp) {
    auto parsed = ParseAdf(request.text);
    if (!parsed.ok()) return Response::FromStatus(parsed.status());
    AppDescription adf =
        MergeWithDefault(*parsed, SystemDefaultAdf());
    return Response::FromStatus(RegisterApp(adf));
  }

  std::shared_ptr<RoutingTable> routing;
  {
    MutexLock lock(mu_);
    auto it = apps_.find(request.app);
    if (it == apps_.end()) {
      return Response::FromStatus(UnavailableError(
          "application '" + request.app + "' not registered with " +
          options_.host));
    }
    routing = it->second;
  }

  if (request.hop_count > kMaxHops) {
    return Response::FromStatus(
        InternalError("routing loop: hop count exceeded"));
  }

  // A directed request (relay traffic) goes straight toward its target.
  if (!request.target_host.empty() &&
      request.target_host != options_.host) {
    {
      MutexLock slock(stats_mu_);
      ++stats_.relayed;
    }
    return ForwardToward(request.target_host, request);
  }
  if (!request.target_host.empty()) {
    // We are the destination machine.
    return HandleDirected(request);
  }

  // Origin resolution: hash the folder name to its owning server (Sec. 5).
  if (request.op == Op::kGetAlt || request.op == Op::kGetAltSkip) {
    return HandleAlt(request, *routing);
  }
  const QualifiedKey qk{request.app, request.key};
  auto spec = ResolveOwner(*routing, qk.ToBytes());
  if (!spec.ok()) return Response::FromStatus(spec.status());
  if (spec->host == options_.host) {
    // Origin-local fast path: the folder server is already resolved, so
    // skip HandleDirected's second app lookup and the full Request copy a
    // directed stamp would cost — on the pipelined small-op path that copy
    // (key strings + payload refcounts) is a measurable slice of the
    // per-op budget. FolderServer::Handle never reads target_host.
    FolderServer* fs = nullptr;
    {
      MutexLock lock(mu_);
      auto it = folder_servers_.find(spec->id);
      if (it != folder_servers_.end()) fs = it->second.get();
    }
    if (fs == nullptr) {
      return Response::FromStatus(
          InternalError("folder server " + std::to_string(spec->id) +
                        " not materialized on " + options_.host));
    }
    {
      MutexLock slock(stats_mu_);
      ++stats_.local_handled;
    }
    Response resp = fs->Handle(request);
    resp.hop_count = request.hop_count;
    return resp;
  }
  Request directed = request;
  directed.target_host = spec->host;
  {
    MutexLock slock(stats_mu_);
    ++stats_.forwarded;
  }
  return ForwardToward(spec->host, std::move(directed));
}

// Runs on the reactor loop; nothing it reaches inline may block (pool work
// goes through SubmitDispatch).
// analyze:reactor-context
void MemoServer::HandleAsync(const Request& request, ResponseCallback done,
                             std::function<bool()>* cancel) {
  if (request.trace_id == 0) {
    Request traced = request;
    traced.trace_id = NextTraceId();
    HandleAsync(traced, std::move(done), cancel);
    return;
  }
  {
    MutexLock slock(stats_mu_);
    ++stats_.requests;
  }
  const std::uint64_t start_us = MonotonicMicros();
  // Same epilogue as Handle(), deferred to completion time.
  auto finish = [this, op = request.op, trace_id = request.trace_id,
                 hop = request.hop_count, start_us,
                 done = std::move(done)](Response resp) {
    resp.trace_id = trace_id;
    const std::uint64_t elapsed_us = MonotonicMicros() - start_us;
    const bool sampled = TraceSampled(trace_id);
    const auto op_index = static_cast<std::size_t>(op);
    if (op_index < op_latency_.size() && op_latency_[op_index] != nullptr) {
      op_latency_[op_index]->Observe(elapsed_us, sampled ? trace_id : 0);
    }
    if (sampled) {
      SpanRecord span;
      span.trace_id = trace_id;
      span.component = "memo:" + options_.host;
      span.op = std::string(OpName(op));
      span.hop = hop;
      span.ok = resp.code == StatusCode::kOk;
      span.start_us = start_us;
      span.duration_us = elapsed_us;
      TraceRing::Global().Record(std::move(span));
    }
    done(std::move(resp));
  };

  // At-most-once, mirroring HandleTraced: dedupe where the request
  // executes, never on a pure relay leg.
  const bool is_relay = !request.target_host.empty() &&
                        request.target_host != options_.host;
  if (!is_relay && request.request_id != 0 && OpNeedsAtMostOnce(request.op)) {
    const std::uint64_t rid = request.request_id;
    auto begin = completions_.BeginAsync(
        rid, [finish](const Response& resp) { finish(resp); });
    if (begin.response.has_value()) {
      finish(*std::move(begin.response));
      return;
    }
    if (!begin.owner) return;  // parked on the in-flight owner's completion
    auto completing = [this, rid, finish](Response resp) {
      completions_.Complete(rid, resp);
      finish(std::move(resp));
    };
    if (cancel == nullptr) {
      DispatchAsync(request, std::move(completing), nullptr);
      return;
    }
    // A winning cancel must also abandon the in-flight cache claim, or the
    // entry would absorb this id's retransmits forever.
    std::function<bool()> inner;
    DispatchAsync(request, std::move(completing), &inner);
    if (inner) {
      *cancel = [this, rid, inner] {
        if (!inner()) return false;
        completions_.Abandon(rid);
        return true;
      };
    }
    return;
  }
  DispatchAsync(request, std::move(finish), cancel);
}

void MemoServer::DispatchAsync(const Request& request, ResponseCallback done,
                               std::function<bool()>* cancel) {
  switch (request.op) {
    case Op::kPing:
      done(Response{});
      return;
    case Op::kStats:
      done(HandleStats());
      return;
    case Op::kMetrics:
      done(HandleMetrics());
      return;
    case Op::kHeartbeat:
      done(HandleHeartbeat(request));
      return;
    case Op::kRegisterApp:
      // ADF parsing plus data migration: migration re-injects through
      // Handle() and may forward synchronously — pool work.
      SubmitDispatch(request, std::move(done));
      return;
    case Op::kReplSnapshot:
    case Op::kReplAppend:
    case Op::kGossip:
      // Snapshot restore / batch apply / a ping-req's synchronous relay
      // probe — all may block, none may ride the reactor thread.
      SubmitDispatch(request, std::move(done));
      return;
    default:
      break;
  }

  std::shared_ptr<RoutingTable> routing;
  {
    MutexLock lock(mu_);
    auto it = apps_.find(request.app);
    if (it == apps_.end()) {
      done(Response::FromStatus(UnavailableError(
          "application '" + request.app + "' not registered with " +
          options_.host)));
      return;
    }
    routing = it->second;
  }

  if (request.hop_count > kMaxHops) {
    done(Response::FromStatus(
        InternalError("routing loop: hop count exceeded")));
    return;
  }

  // Relay leg: complete through the peer's formation queue, no parked
  // thread (the PR 8 caveat this refactor closes).
  if (!request.target_host.empty() &&
      request.target_host != options_.host) {
    {
      MutexLock slock(stats_mu_);
      ++stats_.relayed;
    }
    ForwardTowardAsync(request.target_host, request, std::move(done));
    return;
  }

  if (!request.target_host.empty()) {
    // We are the destination machine.
    const Key& probe =
        request.alts.empty() ? request.key : request.alts.front();
    const QualifiedKey qk{request.app, probe};
    auto spec = ResolveOwner(*routing, qk.ToBytes());
    if (!spec.ok()) {
      done(Response::FromStatus(spec.status()));
      return;
    }
    if (spec->host != options_.host) {
      // Retryable (see LocalFolderServer): a failover may have moved the
      // partition while this request was in flight.
      done(Response::FromStatus(
          UnavailableError("key " + qk.DebugString() + " owned by " +
                           spec->host + ", not " + options_.host +
                           "; re-resolve")));
      return;
    }
    DispatchLocalAsync(request, spec->id, std::move(done), cancel);
    return;
  }

  // Origin resolution.
  if (request.op == Op::kGetAlt || request.op == Op::kGetAltSkip) {
    DispatchAltAsync(request, *routing, std::move(done), cancel);
    return;
  }
  const QualifiedKey qk{request.app, request.key};
  auto spec = ResolveOwner(*routing, qk.ToBytes());
  if (!spec.ok()) {
    done(Response::FromStatus(spec.status()));
    return;
  }
  if (spec->host == options_.host) {
    DispatchLocalAsync(request, spec->id, std::move(done), cancel);
    return;
  }
  Request directed = request;
  directed.target_host = spec->host;
  {
    MutexLock slock(stats_mu_);
    ++stats_.forwarded;
  }
  ForwardTowardAsync(spec->host, std::move(directed), std::move(done));
}

void MemoServer::DispatchLocalAsync(const Request& request, int fs_id,
                                    ResponseCallback done,
                                    std::function<bool()>* cancel) {
  FolderServer* fs = nullptr;
  {
    MutexLock lock(mu_);
    auto it = folder_servers_.find(fs_id);
    if (it != folder_servers_.end()) fs = it->second.get();
  }
  if (fs == nullptr) {
    done(Response::FromStatus(
        InternalError("folder server " + std::to_string(fs_id) +
                      " not materialized on " + options_.host)));
    return;
  }
  {
    MutexLock slock(stats_mu_);
    ++stats_.local_handled;
  }
  if (fs->durable()) {
    // Every durable op serializes with the WAL (append + fsync on the
    // mutation path, logged extraction on the get path) — blocking disk
    // work that must not ride the reactor thread.
    SubmitDispatch(request, std::move(done));
    return;
  }
  const std::uint8_t hop = request.hop_count;
  fs->HandleAsync(
      request,
      [hop, done = std::move(done)](Response resp) {
        resp.hop_count = hop;
        done(std::move(resp));
      },
      cancel);
}

void MemoServer::DispatchAltAsync(const Request& request,
                                  const RoutingTable& routing,
                                  ResponseCallback done,
                                  std::function<bool()>* cancel) {
  auto groups = GroupAlts(request, [this, &routing](const Bytes& kb) {
    return ResolveOwner(routing, kb);
  });
  if (!groups.ok()) {
    done(Response::FromStatus(groups.status()));
    return;
  }
  if (groups->size() == 1) {
    // One owner: the whole alt set can park there as a single waiter.
    AltGroup& g = groups->front();
    Request sub = request;
    sub.alts = std::move(g.keys);
    sub.target_host = g.host;
    if (g.host == options_.host) {
      DispatchLocalAsync(sub, g.fs_id, std::move(done), cancel);
      return;
    }
    {
      MutexLock slock(stats_mu_);
      ++stats_.forwarded;
    }
    ForwardTowardAsync(g.host, std::move(sub), std::move(done));
    return;
  }
  // Split path: the rotation loop probes each owner and sleeps between
  // rounds — a genuinely blocking wait, run on the pool exactly like the
  // threaded core runs it (documented deviation in the class comment).
  SubmitDispatch(request, std::move(done));
}

void MemoServer::ForwardTowardAsync(const std::string& target_host,
                                    Request request, ResponseCallback done) {
  // The channel lookup is cheap, but the first use of a lazy channel dials
  // on the caller, and a reconnect inside the resilient wrapper can back
  // off — never on the reactor thread. The pool task only *issues* the
  // call: nothing parks awaiting the response, which lands on the peer
  // reader thread and completes `done` there.
  auto task = [this, target_host, request = std::move(request),
               done = std::move(done)]() mutable {
    std::shared_ptr<RoutingTable> routing;
    {
      MutexLock lock(mu_);
      auto it = apps_.find(request.app);
      if (it == apps_.end()) {
        done(Response::FromStatus(UnavailableError("app not registered")));
        return;
      }
      routing = it->second;
    }
    auto next = routing->NextHop(options_.host, target_host);
    if (!next.ok()) {
      done(Response::FromStatus(next.status()));
      return;
    }
    auto channel = PeerChannel(*next);
    if (!channel.ok()) {
      done(Response::FromStatus(channel.status()));
      return;
    }
    PatchHeaderInPlace(request, request.target_host,
                       static_cast<std::uint8_t>(request.hop_count + 1),
                       request.deadline_ms);
    const auto budget = request.deadline_ms > 0
                            ? std::chrono::milliseconds(request.deadline_ms)
                            : std::chrono::milliseconds(0);
    (*channel)->CallAsync(
        std::move(request),
        [done](Result<Response> resp) {
          done(resp.ok() ? *std::move(resp)
                         : Response::FromStatus(resp.status()));
        },
        budget);
  };
  if (pool_ == nullptr || !pool_->Submit(task)) task();
}

void MemoServer::SubmitDispatch(Request request, ResponseCallback done) {
  auto task = [this, request = std::move(request),
               done = std::move(done)]() mutable {
    done(DispatchTraced(request));
  };
  if (pool_ == nullptr || !pool_->Submit(task)) task();
}

bool MemoServer::MayBlockWorker(const Request& request) const {
  // Park-capable ops block on folder state regardless of locality.
  if (OpMayPark(request.op)) return true;
  switch (request.op) {
    // Keyless admin ops are answered in-process.
    case Op::kPing:
    case Op::kStats:
    case Op::kMetrics:
    case Op::kHeartbeat:
      return false;
    case Op::kRegisterApp:
      return false;
    // Replication/membership ops block their worker: snapshot restore,
    // WAL-batch apply, and a ping-req's synchronous relay probe.
    case Op::kReplSnapshot:
    case Op::kReplAppend:
    case Op::kGossip:
      return true;
    default:
      break;
  }
  // A directed request for another machine is a relay leg: the handler
  // calls the next hop synchronously and waits out a peer round trip.
  if (!request.target_host.empty()) {
    return request.target_host != options_.host;
  }
  std::shared_ptr<RoutingTable> routing;
  {
    MutexLock lock(mu_);
    auto it = apps_.find(request.app);
    // Unknown app: the handler answers UNAVAILABLE immediately — prompt.
    if (it == apps_.end()) return false;
    routing = it->second;
  }
  auto remote = [&](const Key& k) {
    auto spec = ResolveOwner(*routing, QualifiedKey{request.app, k}.ToBytes());
    return spec.ok() && spec->host != options_.host;
  };
  if (!request.alts.empty()) {
    // Alt scans group per owner and may forward any non-local group.
    for (const Key& k : request.alts) {
      if (remote(k)) return true;
    }
    return false;
  }
  return remote(request.key);
}

Response MemoServer::HandleDirected(const Request& request) {
  std::shared_ptr<RoutingTable> routing;
  {
    MutexLock lock(mu_);
    auto it = apps_.find(request.app);
    if (it == apps_.end()) {
      return Response::FromStatus(
          UnavailableError("application not registered at destination"));
    }
    routing = it->second;
  }
  // Alts arriving here were grouped by the origin onto one folder server.
  const Key& probe =
      request.alts.empty() ? request.key : request.alts.front();
  const QualifiedKey qk{request.app, probe};
  auto fs = LocalFolderServer(*routing, qk);
  if (!fs.ok()) return Response::FromStatus(fs.status());
  {
    MutexLock slock(stats_mu_);
    ++stats_.local_handled;
  }
  Response resp = (*fs)->Handle(request);
  resp.hop_count = request.hop_count;
  return resp;
}

Response MemoServer::ForwardToward(const std::string& target_host,
                                   Request request) {
  std::shared_ptr<RoutingTable> routing;
  {
    MutexLock lock(mu_);
    auto it = apps_.find(request.app);
    if (it == apps_.end()) {
      return Response::FromStatus(UnavailableError("app not registered"));
    }
    routing = it->second;
  }
  auto next = routing->NextHop(options_.host, target_host);
  if (!next.ok()) return Response::FromStatus(next.status());
  auto channel = PeerChannel(*next);
  if (!channel.ok()) return Response::FromStatus(channel.status());
  // Relay fast path: only the routing fields change; the payload slices in
  // request.value still alias the bytes received from the upstream peer.
  PatchHeaderInPlace(request, request.target_host,
                     static_cast<std::uint8_t>(request.hop_count + 1),
                     request.deadline_ms);
  // Propagate the caller's remaining budget: a deadline stamped by the
  // client bounds every hop of the forward, so a dead next-hop surfaces as
  // an error at the origin instead of an unbounded hang.
  const auto budget = request.deadline_ms > 0
                          ? std::chrono::milliseconds(request.deadline_ms)
                          : std::chrono::milliseconds(0);
  auto resp = (*channel)->Call(request, budget);
  if (!resp.ok()) return Response::FromStatus(resp.status());
  return std::move(*resp);
}

Response MemoServer::HandleAlt(const Request& request,
                               const RoutingTable& routing) {
  // Group alternatives by owning (machine, folder server).
  auto grouped = GroupAlts(request, [this, &routing](const Bytes& kb) {
    return ResolveOwner(routing, kb);
  });
  if (!grouped.ok()) return Response::FromStatus(grouped.status());
  std::vector<AltGroup>& groups = *grouped;

  auto dispatch = [&](const AltGroup& g, Op op, bool probe) -> Response {
    Request sub = request;
    sub.op = op;
    sub.alts = g.keys;
    sub.target_host = g.host;
    // Rotation probes must not share the caller's at-most-once identity:
    // the first (empty) probe would be cached and every later rotation
    // would be answered from it, so the rotation could never see a value.
    if (probe) sub.request_id = 0;
    if (g.host == options_.host) return HandleDirected(sub);
    {
      MutexLock slock(stats_mu_);
      ++stats_.forwarded;
    }
    return ForwardToward(g.host, std::move(sub));
  };

  // Fast path: one group — park the request at that folder server.
  if (groups.size() == 1) {
    return dispatch(groups.front(), request.op, /*probe=*/false);
  }

  // Split path: rotate non-blocking probes across the owning servers.
  for (;;) {
    for (const AltGroup& g : groups) {
      Response resp = dispatch(g, Op::kGetAltSkip, /*probe=*/true);
      if (resp.code != StatusCode::kOk) return resp;
      if (resp.has_value) return resp;
    }
    if (request.op == Op::kGetAltSkip) {
      return Response{};  // no value anywhere, non-blocking: empty response
    }
    {
      MutexLock slock(stats_mu_);
      ++stats_.alt_rotations;
    }
    {
      MutexLock lock(mu_);
      if (shutdown_) {
        return Response::FromStatus(CancelledError("server shut down"));
      }
    }
    std::this_thread::sleep_for(options_.alt_rotation);
  }
}

Response MemoServer::HandleStats() const {
  // Stats travel as an encoded TRecord: the transferable codec doubles as
  // the introspection wire format.
  auto root = std::make_shared<TRecord>();
  root->Set("host", MakeString(options_.host));
  {
    MutexLock slock(stats_mu_);
    root->Set("requests", MakeUInt64(stats_.requests));
    root->Set("local_handled", MakeUInt64(stats_.local_handled));
    root->Set("forwarded", MakeUInt64(stats_.forwarded));
    root->Set("relayed", MakeUInt64(stats_.relayed));
    root->Set("apps_registered", MakeUInt64(stats_.apps_registered));
  }
  root->Set("dedup_hits", MakeUInt64(completions_.dedup_hits()));
  auto pool_stats = pool_->GetStats();
  auto pool_rec = std::make_shared<TRecord>();
  pool_rec->Set("threads_spawned", MakeUInt64(pool_stats.threads_spawned));
  pool_rec->Set("threads_expired", MakeUInt64(pool_stats.threads_expired));
  pool_rec->Set("tasks_executed", MakeUInt64(pool_stats.tasks_executed));
  pool_rec->Set("cache_hits", MakeUInt64(pool_stats.cache_hits));
  root->Set("pool", pool_rec);

  auto folders = std::make_shared<TList>();
  {
    MutexLock lock(mu_);
    for (const auto& [id, fs] : folder_servers_) {
      auto rec = std::make_shared<TRecord>();
      rec->Set("id", MakeInt32(id));
      rec->Set("requests_served", MakeUInt64(fs->requests_served()));
      rec->Set("epoch", MakeUInt64(fs->epoch()));
      rec->Set("wal_lag", MakeUInt64(fs->wal_lag_bytes()));
      const DirectoryStats dir = fs->directory_stats();
      rec->Set("puts", MakeUInt64(dir.puts));
      rec->Set("gets", MakeUInt64(dir.gets));
      rec->Set("delayed_puts", MakeUInt64(dir.delayed_puts));
      rec->Set("blocked_waits", MakeUInt64(dir.blocked_waits));
      rec->Set("folders_created", MakeUInt64(dir.folders_created));
      rec->Set("folders_vanished", MakeUInt64(dir.folders_vanished));
      folders->Add(rec);
    }
  }
  root->Set("folder_servers", folders);

  // Failure-detector view (DESIGN.md "Durability & liveness"); empty until
  // the first beat runs.
  auto health = std::make_shared<TList>();
  for (const PeerHealthView& view : peer_health()) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("host", MakeString(view.host));
    rec->Set("alive", MakeBool(view.alive));
    rec->Set("misses", MakeInt32(view.misses));
    rec->Set("last_seen_us", MakeUInt64(
        static_cast<std::uint64_t>(view.last_seen_micros)));
    auto epochs = std::make_shared<TList>();
    for (const auto& [fs_id, epoch] : view.epochs) {
      auto erec = std::make_shared<TRecord>();
      erec->Set("id", MakeInt32(fs_id));
      erec->Set("epoch", MakeUInt64(epoch));
      epochs->Add(erec);
    }
    rec->Set("folder_servers", epochs);
    health->Add(rec);
  }
  root->Set("health", health);

  // Warm standbys this host follows (DESIGN.md §15); empty unless some
  // primary replicates here.
  auto standbys = std::make_shared<TList>();
  for (const StandbyView& view : standby_views()) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("id", MakeInt32(view.fs_id));
    rec->Set("primary", MakeString(view.primary_host));
    rec->Set("epoch", MakeUInt64(view.epoch));
    rec->Set("next_seq", MakeUInt64(view.next_seq));
    standbys->Add(rec);
  }
  root->Set("standbys", standbys);

  Response resp;
  resp.has_value = true;
  resp.value = EncodeGraphToIoBuf(root);
  return resp;
}

Response MemoServer::HandleMetrics() const {
  // Refresh the point-in-time gauges that nothing updates incrementally:
  // folder depth (distinct folders resident) per folder server.
  auto& registry = MetricsRegistry::Global();
  {
    MutexLock lock(mu_);
    for (const auto& [id, fs] : folder_servers_) {
      Gauge* depth = registry.GetGauge(
          "dmemo_folder_depth",
          "fs=\"" + std::to_string(id) + "@" + options_.host + "\"");
      depth->Set(static_cast<std::int64_t>(fs->directory().FolderCount()));
    }
  }

  auto root = std::make_shared<TRecord>();
  root->Set("host", MakeString(options_.host));

  std::string text;
  registry.WriteText(text);
  root->Set("text", MakeString(text));

  auto metrics = std::make_shared<TList>();
  for (const MetricSample& sample : registry.Snapshot()) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("name", MakeString(sample.name));
    rec->Set("labels", MakeString(sample.labels));
    rec->Set("kind", MakeString(std::string(MetricKindName(sample.kind))));
    if (sample.kind == MetricKind::kHistogram) {
      rec->Set("count", MakeUInt64(sample.count));
      rec->Set("sum", MakeUInt64(sample.sum));
      auto buckets = std::make_shared<TList>();
      for (std::uint64_t b : sample.buckets) buckets->Add(MakeUInt64(b));
      rec->Set("buckets", buckets);
      // Per-bucket exemplar trace ids, parallel to `buckets` (0 = none);
      // see docs/PROTOCOL.md kMetrics payload note.
      auto exemplars = std::make_shared<TList>();
      for (std::uint64_t e : sample.exemplars) exemplars->Add(MakeUInt64(e));
      rec->Set("exemplars", exemplars);
    } else {
      rec->Set("value", MakeInt64(sample.value));
    }
    metrics->Add(rec);
  }
  root->Set("metrics", metrics);

  auto spans = std::make_shared<TList>();
  for (const SpanRecord& span : TraceRing::Global().Snapshot()) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("trace_id", MakeUInt64(span.trace_id));
    rec->Set("component", MakeString(span.component));
    rec->Set("op", MakeString(span.op));
    rec->Set("hop", MakeInt32(span.hop));
    rec->Set("ok", MakeBool(span.ok));
    rec->Set("start_us", MakeUInt64(span.start_us));
    rec->Set("duration_us", MakeUInt64(span.duration_us));
    spans->Add(rec);
  }
  root->Set("spans", spans);
  root->Set("spans_total", MakeUInt64(TraceRing::Global().TotalRecorded()));

  Response resp;
  resp.has_value = true;
  resp.value = EncodeGraphToIoBuf(root);
  return resp;
}

IoBuf MemoServer::EncodeHealthPayload() const {
  auto root = std::make_shared<TRecord>();
  root->Set("host", MakeString(options_.host));
  auto folders = std::make_shared<TList>();
  {
    MutexLock lock(mu_);
    for (const auto& [id, fs] : folder_servers_) {
      auto rec = std::make_shared<TRecord>();
      rec->Set("id", MakeInt32(id));
      rec->Set("epoch", MakeUInt64(fs->epoch()));
      rec->Set("wal_lag", MakeUInt64(fs->wal_lag_bytes()));
      folders->Add(rec);
    }
  }
  root->Set("folder_servers", folders);
  return EncodeGraphToIoBuf(root);
}

namespace {
// Best-effort parse of a heartbeat payload into (host, fs id -> epoch).
bool ParseHealthPayload(const IoBuf& value, std::string* host,
                        std::unordered_map<int, std::uint64_t>* epochs) {
  if (value.size() == 0) return false;
  auto decoded = DecodeGraphFromBytes(value);
  if (!decoded.ok()) return false;
  auto rec = std::dynamic_pointer_cast<TRecord>(*decoded);
  if (rec == nullptr) return false;
  if (auto h = std::dynamic_pointer_cast<TString>(rec->Get("host"))) {
    *host = h->value();
  }
  if (auto fl = std::dynamic_pointer_cast<TList>(rec->Get("folder_servers"))) {
    for (const auto& item : fl->items()) {
      auto fs = std::dynamic_pointer_cast<TRecord>(item);
      if (fs == nullptr) continue;
      auto id = std::dynamic_pointer_cast<TInt32>(fs->Get("id"));
      auto epoch = std::dynamic_pointer_cast<TUInt64>(fs->Get("epoch"));
      if (id != nullptr && epoch != nullptr) {
        (*epochs)[id->value()] = epoch->value();
      }
    }
  }
  return !host->empty();
}
}  // namespace

Response MemoServer::HandleHeartbeat(const Request& request) {
  // An inbound beat is itself evidence of life: refresh the sender's entry
  // so the view converges even before our own prober reaches it. Miss
  // counting stays with the active prober in HeartbeatLoop.
  std::string sender;
  std::unordered_map<int, std::uint64_t> epochs;
  if (ParseHealthPayload(request.value, &sender, &epochs) &&
      sender != options_.host) {
    MutexLock lock(health_mu_);
    PeerHealthView& view = peer_health_[sender];
    view.host = sender;
    view.alive = true;
    view.misses = 0;
    view.last_seen_micros = static_cast<std::int64_t>(MonotonicMicros());
    view.epochs = std::move(epochs);
  }
  Response resp;
  resp.has_value = true;
  resp.value = EncodeHealthPayload();
  return resp;
}

// ---- replication & membership (DESIGN.md §15) -------------------------

Result<FolderServerSpec> MemoServer::ResolveOwner(
    const RoutingTable& routing, const Bytes& key_bytes) const {
  DMEMO_ASSIGN_OR_RETURN(FolderServerSpec spec,
                         routing.ServerForKey(key_bytes));
  MutexLock lock(ownership_mu_);
  auto it = ownership_.find(spec.id);
  if (it != ownership_.end()) spec.host = it->second.host;
  return spec;
}

void MemoServer::MergeOwners(const std::vector<OwnershipClaim>& owners) {
  if (owners.empty()) return;
  MutexLock lock(ownership_mu_);
  for (const OwnershipClaim& claim : owners) {
    auto [it, inserted] = ownership_.emplace(claim.fs_id, claim);
    if (!inserted && claim.epoch > it->second.epoch) it->second = claim;
  }
}

std::vector<OwnershipClaim> MemoServer::OwnershipClaims() const {
  MutexLock lock(ownership_mu_);
  std::vector<OwnershipClaim> out;
  out.reserve(ownership_.size());
  for (const auto& [id, claim] : ownership_) out.push_back(claim);
  return out;
}

std::vector<GossipFolderInfo> MemoServer::LocalFolderInfos() const {
  MutexLock lock(mu_);
  std::vector<GossipFolderInfo> out;
  out.reserve(folder_servers_.size());
  for (const auto& [id, fs] : folder_servers_) {
    out.push_back(GossipFolderInfo{id, fs->epoch(), fs->wal_lag_bytes()});
  }
  return out;
}

std::string MemoServer::BackupHost() const {
  std::vector<std::string> hosts;
  hosts.push_back(options_.host);
  for (const auto& [host, url] : options_.peers) {
    if (host != options_.host) hosts.push_back(host);
  }
  if (hosts.size() < 2) return std::string();
  std::sort(hosts.begin(), hosts.end());
  auto it = std::find(hosts.begin(), hosts.end(), options_.host);
  ++it;
  return it == hosts.end() ? hosts.front() : *it;
}

void MemoServer::AttachShipper(int fs_id, FolderServer* fs) {
  if (options_.repl_mode == ReplMode::kOff || !fs->durable()) return;
  const std::string backup = BackupHost();
  if (backup.empty()) return;
  if (shippers_.contains(fs_id)) {
    // Re-registration of an already-shipping partition: keep the running
    // shipper (its stream position is still valid for this WAL).
    fs->SetReplication(shippers_[fs_id].get());
    return;
  }
  ReplicationShipper::Options opts;
  opts.fs_id = fs_id;
  opts.primary_host = options_.host;
  opts.backup_host = backup;
  opts.mode = options_.repl_mode;
  auto shipper = std::make_shared<ReplicationShipper>(
      std::move(opts),
      [this, backup](Request req) -> Result<Response> {
        DMEMO_ASSIGN_OR_RETURN(auto channel, PeerChannel(backup));
        // Bounded budget: a dead backup costs one timeout per attempt, and
        // the shipper's own backoff paces the retries.
        return channel->Call(std::move(req), ReplTimeoutFromEnv());
      },
      [fs] { return fs->ReplicationSnapshot(); },
      [fs] { return fs->epoch(); });
  fs->SetReplication(shipper.get());
  shipper->Start();
  DMEMO_LOG(kInfo) << options_.host << ": fs " << fs_id << " replicating ("
                   << ReplModeName(options_.repl_mode) << ") to " << backup;
  shippers_.emplace(fs_id, std::move(shipper));
}

Response MemoServer::HandleReplSnapshot(const Request& request) {
  auto payload = DecodeReplSnapshot(request.value);
  if (!payload.ok()) return Response::FromStatus(payload.status());
  auto dir = std::make_unique<FolderDirectory<IoBuf>>();
  {
    ByteReader in(payload->snapshot);
    Status restored = dir->RestoreFrom(in);
    if (!restored.ok()) return Response::FromStatus(restored);
  }
  MutexLock lock(repl_mu_);
  auto it = standbys_.find(payload->fs_id);
  if (it != standbys_.end() && it->second.epoch > payload->epoch) {
    // This backup already follows (or was promoted from) a higher epoch:
    // the sender is a stale primary and must fence itself off.
    return Response::FromStatus(FailedPreconditionError(
        "standby for fs " + std::to_string(payload->fs_id) +
        " follows epoch " + std::to_string(it->second.epoch) +
        "; snapshot from " + payload->primary_host + " at epoch " +
        std::to_string(payload->epoch) + " is stale"));
  }
  StandbyPartition standby;
  standby.primary_host = payload->primary_host;
  standby.epoch = payload->epoch;
  standby.next_seq = payload->watermark + 1;
  standby.directory = std::move(dir);
  standbys_[payload->fs_id] = std::move(standby);
  repl_snapshots_received_->Increment();
  DMEMO_LOG(kInfo) << options_.host << ": standby for fs "
                   << payload->fs_id << "@" << payload->primary_host
                   << " bootstrapped at epoch " << payload->epoch
                   << ", watermark " << payload->watermark;
  return Response{};
}

Response MemoServer::HandleReplAppend(const Request& request) {
  auto payload = DecodeReplAppend(request.value);
  if (!payload.ok()) return Response::FromStatus(payload.status());
  MutexLock lock(repl_mu_);
  auto it = standbys_.find(payload->fs_id);
  if (it == standbys_.end()) {
    return Response::FromStatus(NotFoundError(
        "no standby for fs " + std::to_string(payload->fs_id) + " on " +
        options_.host + "; snapshot required"));
  }
  StandbyPartition& standby = it->second;
  if (payload->epoch < standby.epoch) {
    // Epoch regression: a zombie primary (pre-failover incarnation) is
    // still shipping. Refuse so it fences itself off.
    repl_epoch_rejects_->Increment();
    return Response::FromStatus(FailedPreconditionError(
        "append for fs " + std::to_string(payload->fs_id) + " at epoch " +
        std::to_string(payload->epoch) + " behind standby epoch " +
        std::to_string(standby.epoch)));
  }
  if (payload->epoch > standby.epoch) {
    // The primary recovered into a new epoch; its stream restarted from
    // sequence 1, so this standby needs a fresh bootstrap.
    return Response::FromStatus(NotFoundError(
        "primary for fs " + std::to_string(payload->fs_id) +
        " advanced to epoch " + std::to_string(payload->epoch) +
        "; snapshot required"));
  }
  for (const ReplRecord& r : payload->records) {
    if (r.seq < standby.next_seq) continue;  // duplicate of applied prefix
    if (r.seq > standby.next_seq) {
      // A gap means part of the stream never arrived (e.g. a torn shipped
      // tail around a primary stall); applying past it would diverge.
      return Response::FromStatus(OutOfRangeError(
          "sequence gap for fs " + std::to_string(payload->fs_id) +
          ": got " + std::to_string(r.seq) + ", expected " +
          std::to_string(standby.next_seq) + "; snapshot required"));
    }
    ++standby.next_seq;
    const WalRecord& rec = r.record;
    // Mirror of FolderServer::ApplyReplay, onto the standby directory.
    if (rec.request_id != 0 &&
        !standby.applied_ids.insert(rec.request_id).second) {
      continue;  // duplicate record; first application stands
    }
    ByteReader kin(rec.key);
    auto qk = QualifiedKey::DecodeFrom(kin);
    if (!qk.ok()) return Response::FromStatus(qk.status());
    const Op op = static_cast<Op>(rec.op);
    Response replayed;
    switch (op) {
      case Op::kPut: {
        Status put = standby.directory->Put(*qk, rec.payload);
        if (!put.ok()) return Response::FromStatus(put);
        break;
      }
      case Op::kPutDelayed: {
        ByteReader k2in(rec.key2);
        auto qk2 = QualifiedKey::DecodeFrom(k2in);
        if (!qk2.ok()) return Response::FromStatus(qk2.status());
        Status put = standby.directory->PutDelayed(*qk, *qk2, rec.payload);
        if (!put.ok()) return Response::FromStatus(put);
        break;
      }
      case Op::kGet:
      case Op::kGetSkip:
      case Op::kGetAlt:
      case Op::kGetAltSkip: {
        if (!standby.directory->TakeEqual(*qk, rec.payload)) {
          // Tolerated, loudly (same contract as WAL replay): the deposit
          // this extraction consumed predates the snapshot watermark.
          DMEMO_LOG(kWarn)
              << options_.host << ": standby fs " << payload->fs_id
              << ": no memo for a shipped " << OpName(op) << " on "
              << qk->key.DebugString();
        }
        replayed.has_value = true;
        replayed.value = rec.payload;
        if (op == Op::kGetAlt || op == Op::kGetAltSkip) {
          replayed.has_key = true;
          replayed.key = qk->key;
        }
        break;
      }
      default:
        return Response::FromStatus(DataLossError(
            "unknown op " + std::to_string(rec.op) + " in shipped record"));
    }
    repl_applied_->Increment();
    // Seed at-most-once now, not at promotion: a client retry that lands
    // here after failover must dedupe against the primary's execution.
    if (rec.request_id != 0) completions_.Seed(rec.request_id, replayed);
  }
  return Response{};
}

void MemoServer::MergePeerEvidence(const GossipMessage& msg) {
  if (msg.host != options_.host) {
    MutexLock lock(health_mu_);
    PeerHealthView& view = peer_health_[msg.host];
    view.host = msg.host;
    if (!view.alive) {
      DMEMO_LOG(kInfo) << options_.host << ": peer " << msg.host
                       << " is back";
    }
    view.alive = true;
    view.misses = 0;
    view.last_seen_micros = static_cast<std::int64_t>(MonotonicMicros());
    for (const GossipFolderInfo& fs : msg.folder_servers) {
      view.epochs[fs.id] = fs.epoch;
    }
  }
  MergeOwners(msg.owners);
}

Response MemoServer::HandleGossip(const Request& request) {
  auto parsed = ParseGossipMessage(request.value);
  if (!parsed.ok()) return Response::FromStatus(parsed.status());
  GossipMessage msg = *std::move(parsed);

  GossipMessage ack;
  ack.kind = "ack";
  ack.host = options_.host;

  if (msg.kind == "ping-req" && !msg.subject.empty() &&
      msg.subject != options_.host) {
    // Probe the subject on the requester's behalf: SWIM indirection, so
    // one congested origin<->subject link cannot kill a healthy subject.
    OnPeersDead(gossip_.ApplyUpdates(msg.updates));
    MergePeerEvidence(msg);
    ack.subject = msg.subject;
    GossipMessage probe;
    probe.kind = "ping";
    probe.host = options_.host;
    probe.incarnation = gossip_.self_incarnation();
    probe.updates = gossip_.PiggybackUpdates();
    Request relay;
    relay.op = Op::kGossip;
    relay.trace_id = request.trace_id;
    relay.value = EncodeGossipMessage(probe);
    auto channel = PeerChannel(msg.subject);
    if (channel.ok()) {
      gossip_pings_->Increment();
      auto resp = (*channel)->Call(std::move(relay),
                                   options_.heartbeat_interval);
      if (resp.ok() && resp->code == StatusCode::kOk) {
        auto sub = ParseGossipMessage(resp->value);
        if (sub.ok()) {
          ack.reached = true;
          // Queues alive{subject} so our ack's piggyback carries the
          // subject's incarnation back to the origin.
          (void)gossip_.OnProbeSuccess(msg.subject, sub->incarnation);
          OnPeersDead(gossip_.ApplyUpdates(sub->updates));
          MergePeerEvidence(*sub);
        }
      }
    }
  } else {
    // A direct ping (any stray kind is treated as one): the sender's own
    // message is liveness evidence.
    (void)gossip_.OnProbeSuccess(msg.host, msg.incarnation);
    OnPeersDead(gossip_.ApplyUpdates(msg.updates));
    MergePeerEvidence(msg);
    ack.folder_servers = LocalFolderInfos();
  }

  ack.incarnation = gossip_.self_incarnation();
  ack.updates = gossip_.PiggybackUpdates();
  ack.owners = OwnershipClaims();
  Response resp;
  resp.has_value = true;
  resp.value = EncodeGossipMessage(ack);
  return resp;
}

void MemoServer::OnPeersDead(const std::vector<std::string>& hosts) {
  if (hosts.empty()) return;
  {
    MutexLock lock(health_mu_);
    for (const std::string& host : hosts) {
      PeerHealthView& view = peer_health_[host];
      view.host = host;
      view.alive = false;
      view.misses = std::max(view.misses, options_.heartbeat_misses);
    }
  }
  for (const std::string& host : hosts) {
    DMEMO_LOG(kWarn) << options_.host << ": peer " << host
                     << " declared dead by gossip; its folder servers "
                     << "must recover under a higher epoch before serving "
                     << "again";
    // Extract this primary's standbys under repl_mu_, release, then
    // promote with no MemoServer lock held (promotion takes mu_).
    std::vector<std::pair<int, StandbyPartition>> mine;
    {
      MutexLock lock(repl_mu_);
      for (auto it = standbys_.begin(); it != standbys_.end();) {
        if (it->second.primary_host == host) {
          mine.emplace_back(it->first, std::move(it->second));
          it = standbys_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& [fs_id, standby] : mine) {
      PromoteStandby(fs_id, std::move(standby));
    }
  }
}

void MemoServer::PromoteStandby(int fs_id, StandbyPartition standby) {
  if (options_.persist_dir.empty()) {
    DMEMO_LOG(kError) << options_.host << ": cannot promote standby fs "
                      << fs_id << " without a persist dir; standby dropped";
    return;
  }
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    if (folder_servers_.contains(fs_id)) {
      DMEMO_LOG(kWarn) << options_.host << ": fs " << fs_id
                       << " already materialized here; standby dropped";
      return;
    }
  }
  // Persist the standby as the new snapshot generation and clear any stale
  // local WAL from an ancient ownership of this partition, then recover
  // under an epoch floor that outranks both the dead primary's last epoch
  // and its next restart (floor + 1 = standby.epoch + 2).
  ByteWriter out;
  standby.directory->SnapshotTo(out);
  Status saved = AtomicWriteFileDurably(SnapshotPath(fs_id), out.data());
  if (!saved.ok()) {
    DMEMO_LOG(kError) << options_.host << ": promotion of fs " << fs_id
                      << " failed to persist standby state: "
                      << saved.ToString();
    return;
  }
  (void)std::remove(WalPath(fs_id).c_str());
  auto server = std::make_unique<FolderServer>(fs_id, options_.host);
  FolderServerDurability dur;
  dur.snapshot_path = SnapshotPath(fs_id);
  dur.wal_path = WalPath(fs_id);
  dur.epoch_floor = standby.epoch + 1;
  Status recovered = server->EnableDurability(
      std::move(dur), [this](std::uint64_t request_id, const Response& r) {
        completions_.Seed(request_id, r);
      });
  if (!recovered.ok()) {
    DMEMO_LOG(kWarn) << options_.host << ": promoted fs " << fs_id
                     << " with degraded recovery: " << recovered.ToString();
  }
  const std::uint64_t new_epoch = server->epoch();
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    AttachShipper(fs_id, server.get());
    folder_servers_.emplace(fs_id, std::move(server));
  }
  {
    MutexLock lock(ownership_mu_);
    OwnershipClaim& claim = ownership_[fs_id];
    if (new_epoch > claim.epoch) {
      claim = OwnershipClaim{fs_id, options_.host, new_epoch};
    }
  }
  // The generic failover counter (also bumped by crash recovery) plus the
  // promotion-specific one; gossip spreads the ownership claim from the
  // next outgoing message.
  MetricsRegistry::Global()
      .GetCounter("dmemo_failover_total",
                  "fs=\"" + std::to_string(fs_id) + "@" + options_.host +
                      "\"")
      ->Increment();
  repl_promotions_->Increment();
  DMEMO_LOG(kWarn) << options_.host << ": promoted standby for fs " << fs_id
                   << " (primary " << standby.primary_host
                   << " dead), now serving epoch " << new_epoch;
}

std::vector<MemoServer::StandbyView> MemoServer::standby_views() const {
  MutexLock lock(repl_mu_);
  std::vector<StandbyView> out;
  out.reserve(standbys_.size());
  for (const auto& [id, standby] : standbys_) {
    out.push_back(StandbyView{id, standby.primary_host, standby.epoch,
                              standby.next_seq});
  }
  return out;
}

void MemoServer::GossipLoop() {
  const auto interval = options_.heartbeat_interval;
  for (const auto& [host, url] : options_.peers) {
    gossip_.AddPeer(host);  // ignores self
  }
  SplitMix64 rng(Mix64(std::hash<std::string>{}(options_.host) ^
                       MonotonicMicros()));
  const auto base =
      std::chrono::duration_cast<std::chrono::nanoseconds>(interval);
  for (;;) {
    // ±25% jitter: a farm started in lockstep must not probe in phase, or
    // every protocol period lands on the network at the same instant.
    const auto wait = std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(base.count()) * (0.75 + 0.5 * rng.NextUnit())));
    {
      MutexLock lock(health_mu_);
      if (!hb_stop_) hb_cv_.WaitFor(health_mu_, wait);
      if (hb_stop_) return;
    }
    {
      MutexLock lock(mu_);
      if (shutdown_) return;
    }
    // One SWIM protocol period: age suspicions, then probe ONE member.
    OnPeersDead(gossip_.Tick());
    const std::string target = gossip_.NextProbeTarget(rng);
    if (target.empty()) continue;

    // Budget = one period so a dead peer costs one probe; the resilient
    // channel's retries must not stack periods behind it.
    auto send = [&](const std::string& to,
                    const GossipMessage& msg) -> Result<GossipMessage> {
      Request req;
      req.op = Op::kGossip;
      req.trace_id = NextTraceId();
      req.value = EncodeGossipMessage(msg);
      DMEMO_ASSIGN_OR_RETURN(auto channel, PeerChannel(to));
      DMEMO_ASSIGN_OR_RETURN(Response resp,
                             channel->Call(std::move(req), interval));
      if (resp.code != StatusCode::kOk) return resp.ToStatus();
      return ParseGossipMessage(resp.value);
    };

    GossipMessage ping;
    ping.kind = "ping";
    ping.host = options_.host;
    ping.incarnation = gossip_.self_incarnation();
    ping.updates = gossip_.PiggybackUpdates();
    ping.folder_servers = LocalFolderInfos();
    ping.owners = OwnershipClaims();
    gossip_pings_->Increment();
    auto ack = send(target, ping);
    bool reached = false;
    if (ack.ok()) {
      reached = true;
      (void)gossip_.OnProbeSuccess(target, ack->incarnation);
      OnPeersDead(gossip_.ApplyUpdates(ack->updates));
      MergePeerEvidence(*ack);
    } else {
      // Direct miss: ask k live members to probe the target for us before
      // raising a suspicion.
      for (const std::string& relay : gossip_.IndirectCandidates(
               options_.gossip_indirect, target, rng)) {
        GossipMessage preq;
        preq.kind = "ping-req";
        preq.host = options_.host;
        preq.subject = target;
        preq.incarnation = gossip_.self_incarnation();
        preq.updates = gossip_.PiggybackUpdates();
        gossip_ping_reqs_->Increment();
        auto rack = send(relay, preq);
        if (!rack.ok()) continue;
        OnPeersDead(gossip_.ApplyUpdates(rack->updates));
        MergePeerEvidence(*rack);
        if (!rack->reached) continue;
        // The relay reached the target and its piggyback carries the
        // target's alive claim — direct liveness evidence for us too.
        std::uint64_t subject_inc = 0;
        for (const MemberUpdate& u : rack->updates) {
          if (u.host == target && u.state == MemberState::kAlive) {
            subject_inc = std::max(subject_inc, u.incarnation);
          }
        }
        (void)gossip_.OnProbeSuccess(target, subject_inc);
        MutexLock lock(health_mu_);
        PeerHealthView& view = peer_health_[target];
        view.host = target;
        view.alive = true;
        view.misses = 0;
        view.last_seen_micros = static_cast<std::int64_t>(MonotonicMicros());
        reached = true;
        break;
      }
    }
    if (!reached) {
      gossip_.OnProbeMiss(target);
      heartbeat_misses_total_->Increment();
      MutexLock lock(health_mu_);
      if (hb_stop_) return;
      PeerHealthView& view = peer_health_[target];
      view.host = target;
      ++view.misses;
      if (view.alive && view.misses >= options_.heartbeat_misses) {
        view.alive = false;
        DMEMO_LOG(kWarn)
            << options_.host << ": peer " << target << " presumed dead ("
            << view.misses << " probes missed); its folder servers "
            << "must recover under a higher epoch before serving again";
      }
    }
  }
}

std::vector<PeerHealthView> MemoServer::peer_health() const {
  MutexLock lock(health_mu_);
  std::vector<PeerHealthView> out;
  out.reserve(peer_health_.size());
  for (const auto& [host, view] : peer_health_) out.push_back(view);
  return out;
}

void MemoServer::Shutdown() {
  std::vector<ResilientChannelPtr> peers;
  std::vector<RpcChannelPtr> channels;
  std::vector<std::shared_ptr<ReplicationShipper>> ships;
  {
    MutexLock lock(health_mu_);
    hb_stop_ = true;
    hb_cv_.NotifyAll();
  }
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [id, sh] : shippers_) ships.push_back(sh);
    for (auto& [host, ch] : peer_channels_) peers.push_back(ch);
    for (auto& ch : inbound_channels_) channels.push_back(ch);
    peer_channels_.clear();
    inbound_channels_.clear();
    for (auto& [id, fs] : folder_servers_) {
      if (fs->durable()) {
        // Clean shutdown folds the WAL into the snapshot; the restart
        // replays zero records and no failover is counted.
        Status saved = fs->Checkpoint();
        if (!saved.ok()) {
          DMEMO_LOG(kWarn) << "folder server " << id
                           << ": final checkpoint failed: "
                           << saved.ToString();
        }
      } else if (!options_.persist_dir.empty()) {
        Status saved = fs->SaveTo(SnapshotPath(id));
        if (!saved.ok()) {
          DMEMO_LOG(kWarn) << "folder server " << id
                           << ": snapshot failed: " << saved.ToString();
        }
      }
      fs->Shutdown();
    }
  }
  // Wake parked duplicate waiters before closing channels: a waiter parked
  // in the completion cache is a pool thread a peer channel may be waiting
  // on for its own drain.
  completions_.Shutdown();
  if (listener_) listener_->Close();
  // The reactor joins its loop thread and closes every inbound connection
  // it owns; completions that race in afterwards are queued and dropped.
  if (reactor_) reactor_->Shutdown();
  for (auto& ch : peers) ch->Close();
  for (auto& ch : channels) ch->Close();
  // Stop shippers after the peer channels close (a transmit blocked in
  // Call() unblocks when its channel dies) and with mu_ NOT held (Stop
  // joins the shipper thread, which takes mu_ inside PeerChannel).
  for (auto& sh : ships) sh->Stop();
  // Join the heartbeat thread after the peer channels close: a beat blocked
  // in Call() unblocks when its channel dies.
  if (heartbeat_.joinable()) heartbeat_.join();
  if (acceptor_.joinable()) acceptor_.join();
  pool_->Shutdown();
}

MemoServerStats MemoServer::stats() const {
  MemoServerStats out;
  {
    MutexLock lock(stats_mu_);
    out = stats_;
  }
  out.dedup_hits = completions_.dedup_hits();
  return out;
}

std::vector<PeerTraffic> MemoServer::peer_traffic() const {
  MutexLock lock(mu_);
  std::vector<PeerTraffic> out;
  for (const auto& [host, ch] : peer_channels_) {
    out.push_back(PeerTraffic{host, ch->bytes_sent(), ch->bytes_received()});
  }
  return out;
}

std::vector<int> MemoServer::folder_server_ids() const {
  MutexLock lock(mu_);
  std::vector<int> ids;
  for (const auto& [id, fs] : folder_servers_) ids.push_back(id);
  return ids;
}

const FolderServer* MemoServer::folder_server(int id) const {
  MutexLock lock(mu_);
  auto it = folder_servers_.find(id);
  return it == folder_servers_.end() ? nullptr : it->second.get();
}

}  // namespace dmemo
