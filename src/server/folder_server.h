// Folder server (paper Sec. 4.1).
//
// "The folder servers maintain a directory of unordered queues on selected
// hosts (each queue representing a folder). There can be 0, 1, or more
// folder servers per machine, each having exclusive access to its folders."
//
// A FolderServer is pure request-handling logic over a FolderDirectory of
// encoded memos; it has no network of its own. The memo server on its
// machine invokes Handle() directly (the Figure-1 shared-memory path), on a
// worker-pool thread, so blocking gets park that thread until a memo
// arrives — the paper's thread-per-request model.
//
// Thread safety: FolderServer itself holds no lock. All synchronization
// lives in the underlying FolderDirectory (whose mutex ranks at the
// "directory" level of the canonical lock order, see DESIGN.md) plus one
// atomic request counter; Handle() is safe from any number of threads. The
// metric handles are resolved once in the constructor and written with
// relaxed atomics on the request path (DESIGN.md "Observability").
#pragma once

#include <array>
#include <atomic>

#include "folder/directory.h"
#include "server/protocol.h"
#include "util/metrics.h"

namespace dmemo {

class FolderServer {
 public:
  // `id` is the numeric folder-server name from the ADF FOLDERS section.
  FolderServer(int id, std::string host);

  FolderServer(const FolderServer&) = delete;
  FolderServer& operator=(const FolderServer&) = delete;

  int id() const { return id_; }
  const std::string& host() const { return host_; }

  // Serve one request (put/get family + count). May block (get, get_copy,
  // get_alt) until a memo arrives or the server shuts down.
  Response Handle(const Request& request);

  // Wake all parked requests with CANCELLED and refuse further work.
  void Shutdown();

  // Persistence (Sec. 3.1.3): snapshot the folder directory to `path`
  // (atomically, via a temp file) / merge a snapshot back in. A missing
  // file on load is OK (fresh server).
  Status SaveTo(const std::string& path) const;
  Status LoadFrom(const std::string& path);

  DirectoryStats directory_stats() const { return directory_.GetStats(); }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Test/bench access to the underlying directory.
  FolderDirectory<IoBuf>& directory() { return directory_; }

 private:
  Response HandleOp(const Request& request);

  int id_;
  std::string host_;
  FolderDirectory<IoBuf> directory_;
  std::atomic<std::uint64_t> requests_served_{0};

  // Observability handles, resolved once at construction. op_latency_ is
  // indexed by the numeric Op value (kPut..kMetrics).
  std::array<Histogram*, 16> op_latency_{};
  Counter* deposits_ = nullptr;
  Counter* extracts_ = nullptr;
  Counter* slow_ops_ = nullptr;
};

}  // namespace dmemo
