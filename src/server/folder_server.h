// Folder server (paper Sec. 4.1).
//
// "The folder servers maintain a directory of unordered queues on selected
// hosts (each queue representing a folder). There can be 0, 1, or more
// folder servers per machine, each having exclusive access to its folders."
//
// A FolderServer is pure request-handling logic over a FolderDirectory of
// encoded memos; it has no network of its own. The memo server on its
// machine invokes Handle() directly (the Figure-1 shared-memory path), on a
// worker-pool thread, so blocking gets park that thread until a memo
// arrives — the paper's thread-per-request model.
//
// Durability (DESIGN.md "Durability & liveness"): with EnableDurability a
// write-ahead log records every mutation before it is acknowledged, and
// recovery = snapshot + WAL replay under a bumped fencing epoch. Requests
// stamped with a stale epoch are rejected with FAILED_PRECONDITION so a
// zombie owner can never double-apply after a failover.
//
// Thread safety: synchronization lives in the underlying FolderDirectory
// plus wal_mu_, which serializes append-to-log with apply-to-directory so
// log order equals apply order. Lock rank: wal_mu_ before the directory
// mutex; the WAL's internal locks are leaves below wal_mu_. The metric
// handles are resolved once in the constructor and written with relaxed
// atomics on the request path (DESIGN.md "Observability").
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "folder/directory.h"
#include "server/protocol.h"
#include "server/replication.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/wal.h"

namespace dmemo {

// Where a durable folder server keeps its state. The snapshot rotates
// through `snapshot_path` / `.prev` generations (util/wal.h
// AtomicWriteFileDurably); the WAL lives beside it.
struct FolderServerDurability {
  std::string snapshot_path;
  std::string wal_path;
  WalOptions wal = WalOptions::FromEnv();
  // Compact (snapshot + truncate the log) once the WAL exceeds this many
  // bytes; 0 disables compaction. DMEMO_WAL_COMPACT_BYTES.
  std::uint64_t compact_bytes = CompactBytesFromEnv();
  // Fencing-epoch floor: recovery serves at max(stored epoch, floor) + 1.
  // A promoted backup passes its standby's replicated epoch + 1 here so it
  // opens at least two epochs above the failed primary — strictly above
  // both the primary's last epoch and whatever a plain restart of that
  // primary would come back with (its epoch + 1), keeping the loser fenced.
  std::uint64_t epoch_floor = 0;

  static std::uint64_t CompactBytesFromEnv();
};

class FolderServer {
 public:
  // `id` is the numeric folder-server name from the ADF FOLDERS section.
  FolderServer(int id, std::string host);

  FolderServer(const FolderServer&) = delete;
  FolderServer& operator=(const FolderServer&) = delete;

  int id() const { return id_; }
  const std::string& host() const { return host_; }

  // Serve one request (put/get family + count). May block (get, get_copy,
  // get_alt) until a memo arrives or the server shuts down.
  Response Handle(const Request& request);

  // Reactor-core handler: same semantics as Handle(), but a parkable
  // extraction (kGet / kGetCopy / kGetAlt on a non-durable server) becomes
  // a waiter continuation on the directory instead of a blocked thread.
  // `done` fires exactly once — inline when the memo is already present or
  // the op doesn't park, later from the depositing thread otherwise — and
  // must not block (directory WAL re-entrance rule). When the request
  // parks and `cancel` is non-null, *cancel receives a revocation hook:
  // calling it returns true when the revoke won and `done` will never run.
  // Durable servers take the inline path unconditionally: a logged
  // extraction must serialize with the WAL, which a continuation cannot do
  // without re-entering wal_mu_ from a deposit.
  void HandleAsync(const Request& request, ResponseCallback done,
                   std::function<bool()>* cancel = nullptr);

  // Wake all parked requests with CANCELLED and refuse further work.
  void Shutdown();

  // Receives (request_id, response) for every mutation WAL replay redid,
  // so the memo server can re-seed its at-most-once completion cache.
  using SeedCompletionFn =
      std::function<void(std::uint64_t, const Response&)>;

  // Recover and go durable: load the snapshot (falling back to the
  // previous generation if the primary is corrupt), replay the WAL
  // (tolerating a torn tail; idempotent via request ids), bump the fencing
  // epoch, checkpoint the recovered state, and append every further
  // mutation to a fresh log before acknowledging it. Returns the first
  // recovery error encountered — the server still comes up serving
  // whatever state was recoverable (a degraded replica beats an outage;
  // callers log the status loudly).
  Status EnableDurability(FolderServerDurability opts,
                          SeedCompletionFn seed = nullptr);

  // Fold the log into the snapshot and truncate it (also the compaction
  // body once the WAL passes compact_bytes, and the clean-shutdown path).
  Status Checkpoint();

  // Attach the replication sink (DESIGN.md §15). Must happen before the
  // server takes traffic; the pointer is immutable afterwards and must
  // outlive the server. Every WAL-logged mutation is handed to the sink
  // under wal_mu_ (ship order == apply order), and acks wait on the sink's
  // semisync barrier after the commit.
  void SetReplication(ReplicationSink* sink) { repl_ = sink; }

  // Consistent bootstrap payload for a cold backup: a directory snapshot
  // plus the replication watermark it covers, taken under wal_mu_ so no
  // mutation can slip between the two.
  Result<ReplSnapshotPayload> ReplicationSnapshot();

  bool durable() const { return wal_ != nullptr; }
  // Current fencing epoch; 0 until EnableDurability.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  // Logged-but-not-compacted bytes a restart would replay.
  std::uint64_t wal_lag_bytes() const {
    return wal_ == nullptr ? 0 : wal_->size_bytes();
  }

  // Persistence (Sec. 3.1.3): snapshot the folder directory to `path`
  // (atomically + durably, keeping the outgoing file as `path`.prev) /
  // merge a snapshot back in. A missing file on load is OK (fresh server);
  // an unreadable or corrupt one is an error, after attempting the
  // previous generation.
  Status SaveTo(const std::string& path) const;
  Status LoadFrom(const std::string& path);

  DirectoryStats directory_stats() const { return directory_.GetStats(); }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Test/bench access to the underlying directory.
  FolderDirectory<IoBuf>& directory() { return directory_; }

 private:
  Response HandleOp(const Request& request);

  // Shared request epilogue (latency observation, span, slow-op warning);
  // Handle() calls it inline, HandleAsync() from the delivery continuation.
  Response Finish(Op op, std::uint64_t trace_id, std::uint8_t hop,
                  const Key& key, std::uint64_t start_us, Response resp);

  // WAL-mediated mutation paths (scripts/check_lint.sh gates that every
  // directory mutation in folder_server.cc goes through these).
  Status LoggedPut(Op op, const QualifiedKey& qk, const QualifiedKey& qk2,
                   const IoBuf& value, std::uint64_t request_id);
  Status LogExtraction(Op op, const QualifiedKey& qk, const IoBuf& value,
                       std::uint64_t request_id);
  Status ApplyReplay(const WalRecord& record,
                     std::unordered_set<std::uint64_t>& seen,
                     const SeedCompletionFn& seed);
  Status MaybeCompact();

  int id_;
  std::string host_;
  FolderDirectory<IoBuf> directory_;
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> epoch_{0};

  FolderServerDurability durability_;
  // Serializes WAL append with directory apply so log order == apply
  // order (put vs put_delayed on one folder does not commute). Ranked
  // above the directory mutex; never held across an fsync — Commit runs
  // after release so concurrent mutations share one group-commit sync.
  Mutex wal_mu_{"FolderServer::wal_mu"};
  // Set once in EnableDurability (before the server takes traffic), then
  // immutable; the WAL has its own internal locking, so the pointer needs
  // no guard.
  std::unique_ptr<WriteAheadLog> wal_;
  // Set once via SetReplication (before the server takes traffic), then
  // immutable; the sink has its own internal locking (ranked below
  // wal_mu_, since Enqueue runs under it).
  ReplicationSink* repl_ = nullptr;

  // Observability handles, resolved once at construction. op_latency_ is
  // indexed by the numeric Op value (kPut..kGossip).
  std::array<Histogram*, 17> op_latency_{};
  Counter* deposits_ = nullptr;
  Counter* extracts_ = nullptr;
  Counter* slow_ops_ = nullptr;
  Counter* fenced_ = nullptr;        // dmemo_fenced_requests_total
  Counter* wal_replayed_ = nullptr;  // dmemo_wal_replayed_records_total
  Counter* failovers_ = nullptr;     // dmemo_failover_total
  Gauge* epoch_gauge_ = nullptr;     // dmemo_fs_epoch
};

}  // namespace dmemo
