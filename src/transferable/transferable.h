// The Transferable foundation (paper Sec. 3.1.3).
//
// A transferable is an active object that can encode itself into a
// language-independent byte stream and decode itself back, recursively, so
// that "any data structure can be entered and extracted intact from the memo
// space with no programming effort". Arbitrary graphs — including
// self-referential structures — are supported: the codec linearizes along a
// spanning tree and emits back-references for shared or cyclic edges
// (polynomial, in fact linear, time in nodes + edges).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "transferable/domain.h"
#include "util/status.h"

namespace dmemo {

class Encoder;
class Decoder;

// Wire type identifier. 1..63 reserved for built-ins; applications register
// their own transferable classes at >= kFirstUserTypeId.
using TypeId = std::uint32_t;
inline constexpr TypeId kFirstUserTypeId = 64;

class Transferable;
using TransferablePtr = std::shared_ptr<Transferable>;

class Transferable {
 public:
  virtual ~Transferable() = default;

  // Identifies the concrete class on the wire (registry key).
  virtual TypeId type_id() const = 0;

  // Concrete data domain for scalars; kComposite for structured types.
  virtual Domain domain() const = 0;

  // Serialize this object's payload. Child transferables are written through
  // Encoder::Value so the codec can handle sharing and cycles.
  virtual void EncodePayload(Encoder& enc) const = 0;

  // Inverse of EncodePayload. The object already exists (created by the
  // registry factory) and is registered with the decoder, so self-references
  // resolve even while the payload is still being read.
  virtual Status DecodePayload(Decoder& dec) = 0;

  // Enumerate direct child transferables (null children are skipped).
  // Composites must override; scalars keep the default no-op. Used for graph
  // traversal: node counting, representability checks, cycle teardown.
  virtual void ForEachChild(
      const std::function<void(const TransferablePtr&)>& fn) const {
    (void)fn;
  }

  // Drop references to child transferables. ReleaseGraph calls this on every
  // reachable node so cyclic shared_ptr graphs do not leak; scalar types
  // keep the default no-op.
  virtual void ClearChildren() {}

  // Human-readable rendering for logs and test diagnostics.
  virtual std::string DebugString() const;
};

// Deep copy via encode/decode round trip; preserves sharing and cycles.
// This is exactly what crosses the wire, so a clone equals what a remote
// process would observe.
Result<TransferablePtr> CloneTransferable(const Transferable& value);

// Structural deep equality via encoded-bytes comparison.
bool TransferableEquals(const Transferable& a, const Transferable& b);

}  // namespace dmemo
