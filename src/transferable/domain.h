// Concrete data domains (paper Sec. 3.1.3).
//
// Heterogeneous machines disagree on word width, so D-Memo applications use
// absolute domains (int16, uint32, float64, ...) instead of `int`/`float`.
// Every transferable carries its domain tag on the wire; the receiving side
// checks representability against its MachineProfile.
#pragma once

#include <cstdint>
#include <string_view>

namespace dmemo {

enum class Domain : std::uint8_t {
  kNull = 0,
  kBool,
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kUInt8,
  kUInt16,
  kUInt32,
  kUInt64,
  kFloat32,
  kFloat64,
  kString,
  kBytes,
  kComposite,  // lists, records, typed vectors, user types
};

std::string_view DomainName(Domain d);

// Bit width of an integer domain (0 for non-integer domains).
int IntDomainBits(Domain d);
bool IsSignedIntDomain(Domain d);
bool IsUnsignedIntDomain(Domain d);
bool IsIntDomain(Domain d);
bool IsFloatDomain(Domain d);

}  // namespace dmemo
