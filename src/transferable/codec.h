// Graph codec: linearize / de-linearize transferable object graphs.
//
// Wire grammar for one value slot:
//   0x00                          null pointer
//   0x01 <type:varint> <payload>  first occurrence; handle assigned in
//                                 pre-order (implicit, sequential)
//   0x02 <handle:varint>          back-reference to an earlier node
//
// Handles are implicit (the Nth inline node has handle N), so shared nodes
// and cycles cost one varint. The decoder registers each node *before*
// decoding its payload, which is what makes self-referential structures
// decodable in a single pass.
//
// Depth: encode/decode recurse once per *nesting* level (graph size is
// unbounded — back-references are flat — but straight-line nesting like a
// cons chain should stay below ~10k levels, as with most serializers).
// Traversal helpers (ReleaseGraph, GraphNodeCount) are fully iterative.
#pragma once

#include <unordered_map>
#include <vector>

#include "transferable/registry.h"
#include "transferable/transferable.h"
#include "util/bytes.h"
#include "util/iobuf.h"
#include "util/status.h"

namespace dmemo {

class Encoder {
 public:
  explicit Encoder(ByteWriter& out) : out_(out) {}

  // Primitive payload writers (scalars call these from EncodePayload).
  void Bool(bool v) { out_.u8(v ? 1 : 0); }
  void I8(std::int8_t v) { out_.i8(v); }
  void I16(std::int16_t v) { out_.i16(v); }
  void I32(std::int32_t v) { out_.i32(v); }
  void I64(std::int64_t v) { out_.i64(v); }
  void U8(std::uint8_t v) { out_.u8(v); }
  void U16(std::uint16_t v) { out_.u16(v); }
  void U32(std::uint32_t v) { out_.u32(v); }
  void U64(std::uint64_t v) { out_.u64(v); }
  void F32(float v) { out_.f32(v); }
  void F64(double v) { out_.f64(v); }
  void Varint(std::uint64_t v) { out_.varint(v); }
  void Str(std::string_view s) { out_.str(s); }
  void Raw(std::span<const std::uint8_t> b) { out_.bytes(b); }

  // Encode a child value slot (nullable). Composites call this for each
  // child; the codec decides between inline encoding and a back-reference.
  void Value(const TransferablePtr& child);

 private:
  ByteWriter& out_;
  std::unordered_map<const Transferable*, std::uint64_t> handles_;
  std::uint64_t next_handle_ = 0;
};

class Decoder {
 public:
  explicit Decoder(ByteReader& in,
                   const TypeRegistry& registry = TypeRegistry::Global())
      : in_(in), registry_(registry) {}

  Result<bool> Bool();
  Result<std::int8_t> I8() { return in_.i8(); }
  Result<std::int16_t> I16() { return in_.i16(); }
  Result<std::int32_t> I32() { return in_.i32(); }
  Result<std::int64_t> I64() { return in_.i64(); }
  Result<std::uint8_t> U8() { return in_.u8(); }
  Result<std::uint16_t> U16() { return in_.u16(); }
  Result<std::uint32_t> U32() { return in_.u32(); }
  Result<std::uint64_t> U64() { return in_.u64(); }
  Result<float> F32() { return in_.f32(); }
  Result<double> F64() { return in_.f64(); }
  Result<std::uint64_t> Varint() { return in_.varint(); }
  Result<std::string> Str() { return in_.str(); }
  Result<Bytes> Raw() { return in_.bytes(); }

  // Decode a child value slot (may be null).
  Result<TransferablePtr> Value();

 private:
  ByteReader& in_;
  const TypeRegistry& registry_;
  std::vector<TransferablePtr> nodes_;
};

// Top-level entry points used by memo payloads and CloneTransferable.
void EncodeGraph(const TransferablePtr& root, ByteWriter& out);
Bytes EncodeGraphToBytes(const TransferablePtr& root);
// Chunk-emitting encode for the zero-copy pipeline: the graph is written
// through a chunked ByteWriter and the chunks are adopted as IoBuf slices,
// so a large payload never lives in (or is copied into) one monolithic
// vector. This IoBuf is what Request/Response::value carries end to end.
IoBuf EncodeGraphToIoBuf(const TransferablePtr& root,
                         std::size_t chunk_bytes = 4096);
Result<TransferablePtr> DecodeGraph(
    ByteReader& in, const TypeRegistry& registry = TypeRegistry::Global());
Result<TransferablePtr> DecodeGraphFromBytes(
    std::span<const std::uint8_t> data,
    const TypeRegistry& registry = TypeRegistry::Global());
// Decode straight out of an IoBuf payload (e.g. resp->value). Single-slice
// buffers — the common receive path — are read in place.
Result<TransferablePtr> DecodeGraphFromBytes(
    const IoBuf& data, const TypeRegistry& registry = TypeRegistry::Global());
// Exact-match overload for Bytes arguments — without it a Bytes call would
// be ambiguous between the span conversion and the implicit IoBuf ctor.
inline Result<TransferablePtr> DecodeGraphFromBytes(
    const Bytes& data, const TypeRegistry& registry = TypeRegistry::Global()) {
  return DecodeGraphFromBytes(std::span<const std::uint8_t>(data), registry);
}

// Break shared_ptr cycles in a decoded/constructed graph so it can be freed.
// Walks reachable nodes and calls ClearChildren on each. Safe on DAGs and
// acyclic graphs too (then it is just an eager teardown).
void ReleaseGraph(const TransferablePtr& root);

// Count reachable nodes (diagnostics and property tests).
std::size_t GraphNodeCount(const TransferablePtr& root);

}  // namespace dmemo
