// Composite transferables: lists, records, and typed bulk vectors.
//
// TList / TRecord carry child transferable pointers, so they can express
// arbitrary object graphs (shared children, cycles). The typed vectors
// (TVecFloat64 etc.) store flat payloads for the numeric workloads the
// examples and benchmarks use; they serialize element-wise in network order
// so profiles with different host endianness interoperate.
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "transferable/codec.h"
#include "transferable/transferable.h"

namespace dmemo {

// Heterogeneous ordered list of child values (children may be null).
class TList final : public Transferable {
 public:
  static constexpr TypeId kTypeId = 16;

  TList() = default;
  explicit TList(std::vector<TransferablePtr> items)
      : items_(std::move(items)) {}

  TypeId type_id() const override { return kTypeId; }
  Domain domain() const override { return Domain::kComposite; }

  std::vector<TransferablePtr>& items() { return items_; }
  const std::vector<TransferablePtr>& items() const { return items_; }
  void Add(TransferablePtr item) { items_.push_back(std::move(item)); }
  std::size_t size() const { return items_.size(); }

  void EncodePayload(Encoder& enc) const override;
  Status DecodePayload(Decoder& dec) override;
  void ForEachChild(
      const std::function<void(const TransferablePtr&)>& fn) const override;
  void ClearChildren() override { items_.clear(); }
  std::string DebugString() const override;

 private:
  std::vector<TransferablePtr> items_;
};

// Named-field record; field order is part of the encoding.
class TRecord final : public Transferable {
 public:
  static constexpr TypeId kTypeId = 17;

  struct Field {
    std::string name;
    TransferablePtr value;
  };

  TRecord() = default;

  TypeId type_id() const override { return kTypeId; }
  Domain domain() const override { return Domain::kComposite; }

  void Set(std::string name, TransferablePtr value);
  // Null when the field is absent.
  TransferablePtr Get(std::string_view name) const;
  bool Has(std::string_view name) const;
  const std::vector<Field>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }

  void EncodePayload(Encoder& enc) const override;
  Status DecodePayload(Decoder& dec) override;
  void ForEachChild(
      const std::function<void(const TransferablePtr&)>& fn) const override;
  void ClearChildren() override { fields_.clear(); }
  std::string DebugString() const override;

 private:
  std::vector<Field> fields_;
};

namespace internal {

// Flat vector of a fixed scalar domain; Enc/Dec are Encoder/Decoder member
// pointers selected per instantiation.
template <typename V, Domain D, TypeId Id>
class VecTransferable final : public Transferable {
 public:
  static constexpr TypeId kTypeId = Id;

  VecTransferable() = default;
  explicit VecTransferable(std::vector<V> values)
      : values_(std::move(values)) {}

  TypeId type_id() const override { return Id; }
  Domain domain() const override { return Domain::kComposite; }

  std::vector<V>& values() { return values_; }
  const std::vector<V>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }

  // The element domain, for representability checks against a profile.
  Domain element_domain() const { return D; }

  void EncodePayload(Encoder& enc) const override {
    enc.Varint(values_.size());
    for (const V& v : values_) {
      if constexpr (std::is_same_v<V, std::int32_t>) enc.I32(v);
      else if constexpr (std::is_same_v<V, std::int64_t>) enc.I64(v);
      else if constexpr (std::is_same_v<V, float>) enc.F32(v);
      else if constexpr (std::is_same_v<V, double>) enc.F64(v);
      else static_assert(sizeof(V) == 0, "unsupported vector element");
    }
  }

  Status DecodePayload(Decoder& dec) override {
    DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, dec.Varint());
    values_.clear();
    values_.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(n, 4096)));
    for (std::uint64_t i = 0; i < n; ++i) {
      if constexpr (std::is_same_v<V, std::int32_t>) {
        DMEMO_ASSIGN_OR_RETURN(V v, dec.I32());
        values_.push_back(v);
      } else if constexpr (std::is_same_v<V, std::int64_t>) {
        DMEMO_ASSIGN_OR_RETURN(V v, dec.I64());
        values_.push_back(v);
      } else if constexpr (std::is_same_v<V, float>) {
        DMEMO_ASSIGN_OR_RETURN(V v, dec.F32());
        values_.push_back(v);
      } else if constexpr (std::is_same_v<V, double>) {
        DMEMO_ASSIGN_OR_RETURN(V v, dec.F64());
        values_.push_back(v);
      }
    }
    return Status::Ok();
  }

  std::string DebugString() const override {
    return std::string(DomainName(D)) + "vec[" +
           std::to_string(values_.size()) + "]";
  }

 private:
  std::vector<V> values_;
};

}  // namespace internal

using TVecInt32 =
    internal::VecTransferable<std::int32_t, Domain::kInt32, 18>;
using TVecInt64 =
    internal::VecTransferable<std::int64_t, Domain::kInt64, 19>;
using TVecFloat32 = internal::VecTransferable<float, Domain::kFloat32, 20>;
using TVecFloat64 = internal::VecTransferable<double, Domain::kFloat64, 21>;

inline TransferablePtr MakeList(std::vector<TransferablePtr> items) {
  return std::make_shared<TList>(std::move(items));
}
inline TransferablePtr MakeVecFloat64(std::vector<double> v) {
  return std::make_shared<TVecFloat64>(std::move(v));
}
inline TransferablePtr MakeVecInt32(std::vector<std::int32_t> v) {
  return std::make_shared<TVecInt32>(std::move(v));
}

// Registers every built-in transferable type with the global registry.
// Idempotent; called automatically by TypeRegistry::Global().
void RegisterBuiltinTransferables(TypeRegistry& registry);

}  // namespace dmemo
