// Machine profiles and lossy-domain-mapping detection (paper Sec. 3.1.3).
//
// "A lossy mapping occurs when an Alpha processor (64-bit) sends an integer
// to an Intel 80486 (16-bit) and the value is greater than 16-bits. The
// problem is not byte order, but precision."
//
// We cannot run on real 16-bit hardware, so heterogeneity is simulated: every
// host declares a MachineProfile giving the widest integer and float it can
// represent losslessly. When a memo is delivered to a client, the engine
// checks the value graph against the receiving profile and reports DATA_LOSS
// for any scalar whose *value* (not type) exceeds the profile — exactly the
// paper's precision semantics.
#pragma once

#include <string>
#include <vector>

#include "transferable/transferable.h"
#include "util/status.h"

namespace dmemo {

struct MachineProfile {
  std::string arch;    // architecture label, e.g. "sun4", "i486", "alpha"
  int int_bits = 64;   // widest losslessly representable integer (incl. sign)
  int float_bits = 64; // widest float: 32 or 64

  // Everything representable: the "no check needed" profile.
  static MachineProfile Universal();
};

// The paper's machines, as synthetic profiles (Sec. 2 + Sec. 3.1.3 example).
// i486 is 16-bit *by the paper's own example*, not by hardware reality.
const MachineProfile& ProfileSun4();    // 32-bit int, 64-bit float
const MachineProfile& ProfileI486();    // 16-bit int, 32-bit float
const MachineProfile& ProfileAlpha();   // 64-bit int, 64-bit float
const MachineProfile& ProfileSp1();     // 32-bit int, 64-bit float
const MachineProfile& ProfileEncore();  // 32-bit int, 64-bit float

// Look up one of the named profiles by arch label; falls back to Universal
// for unknown labels (an unknown arch imposes no restrictions).
MachineProfile ProfileForArch(std::string_view arch);

// One offending scalar found by CheckRepresentable.
struct LossyMapping {
  Domain domain;        // wire domain of the offending scalar
  std::string value;    // rendered value
  std::string reason;   // what would be lost
};

// Walk the value graph and report every scalar whose value cannot be
// represented on `profile` without loss. Empty result means lossless.
std::vector<LossyMapping> FindLossyMappings(const Transferable& value,
                                            const MachineProfile& profile);

// Convenience wrapper: OK when lossless, DATA_LOSS (describing the first
// offender) otherwise.
Status CheckRepresentable(const Transferable& value,
                          const MachineProfile& profile);

}  // namespace dmemo
