#include "transferable/composite.h"

#include "transferable/scalars.h"

namespace dmemo {

void TList::EncodePayload(Encoder& enc) const {
  enc.Varint(items_.size());
  for (const auto& item : items_) enc.Value(item);
}

Status TList::DecodePayload(Decoder& dec) {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, dec.Varint());
  items_.clear();
  // Cap the speculative reserve: n comes off the wire and may be hostile.
  items_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 1024)));
  for (std::uint64_t i = 0; i < n; ++i) {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr item, dec.Value());
    items_.push_back(std::move(item));
  }
  return Status::Ok();
}

void TList::ForEachChild(
    const std::function<void(const TransferablePtr&)>& fn) const {
  for (const auto& item : items_) {
    if (item != nullptr) fn(item);
  }
}

std::string TList::DebugString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += items_[i] == nullptr ? "null" : items_[i]->DebugString();
  }
  return out + "]";
}

void TRecord::Set(std::string name, TransferablePtr value) {
  for (auto& f : fields_) {
    if (f.name == name) {
      f.value = std::move(value);
      return;
    }
  }
  fields_.push_back(Field{std::move(name), std::move(value)});
}

TransferablePtr TRecord::Get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return f.value;
  }
  return nullptr;
}

bool TRecord::Has(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

void TRecord::EncodePayload(Encoder& enc) const {
  enc.Varint(fields_.size());
  for (const auto& f : fields_) {
    enc.Str(f.name);
    enc.Value(f.value);
  }
}

Status TRecord::DecodePayload(Decoder& dec) {
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t n, dec.Varint());
  fields_.clear();
  fields_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 1024)));
  for (std::uint64_t i = 0; i < n; ++i) {
    Field f;
    DMEMO_ASSIGN_OR_RETURN(f.name, dec.Str());
    DMEMO_ASSIGN_OR_RETURN(f.value, dec.Value());
    fields_.push_back(std::move(f));
  }
  return Status::Ok();
}

void TRecord::ForEachChild(
    const std::function<void(const TransferablePtr&)>& fn) const {
  for (const auto& f : fields_) {
    if (f.value != nullptr) fn(f.value);
  }
}

std::string TRecord::DebugString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name + ": ";
    out += fields_[i].value == nullptr ? "null"
                                       : fields_[i].value->DebugString();
  }
  return out + "}";
}

void RegisterBuiltinTransferables(TypeRegistry& registry) {
  auto reg = [&registry](TypeId id, TransferableFactory factory) {
    // Ignore ALREADY_EXISTS so the call is idempotent.
    (void)registry.Register(id, std::move(factory));
  };
  reg(TBool::kTypeId, [] { return std::make_shared<TBool>(); });
  reg(TInt8::kTypeId, [] { return std::make_shared<TInt8>(); });
  reg(TInt16::kTypeId, [] { return std::make_shared<TInt16>(); });
  reg(TInt32::kTypeId, [] { return std::make_shared<TInt32>(); });
  reg(TInt64::kTypeId, [] { return std::make_shared<TInt64>(); });
  reg(TUInt8::kTypeId, [] { return std::make_shared<TUInt8>(); });
  reg(TUInt16::kTypeId, [] { return std::make_shared<TUInt16>(); });
  reg(TUInt32::kTypeId, [] { return std::make_shared<TUInt32>(); });
  reg(TUInt64::kTypeId, [] { return std::make_shared<TUInt64>(); });
  reg(TFloat32::kTypeId, [] { return std::make_shared<TFloat32>(); });
  reg(TFloat64::kTypeId, [] { return std::make_shared<TFloat64>(); });
  reg(TString::kTypeId, [] { return std::make_shared<TString>(); });
  reg(TBytes::kTypeId, [] { return std::make_shared<TBytes>(); });
  reg(TList::kTypeId, [] { return std::make_shared<TList>(); });
  reg(TRecord::kTypeId, [] { return std::make_shared<TRecord>(); });
  reg(TVecInt32::kTypeId, [] { return std::make_shared<TVecInt32>(); });
  reg(TVecInt64::kTypeId, [] { return std::make_shared<TVecInt64>(); });
  reg(TVecFloat32::kTypeId, [] { return std::make_shared<TVecFloat32>(); });
  reg(TVecFloat64::kTypeId, [] { return std::make_shared<TVecFloat64>(); });
}

}  // namespace dmemo
