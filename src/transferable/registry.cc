#include "transferable/registry.h"

#include "transferable/composite.h"

namespace dmemo {

TypeRegistry& TypeRegistry::Global() {
  static TypeRegistry* registry = [] {
    auto* r = new TypeRegistry();
    RegisterBuiltinTransferables(*r);
    return r;
  }();
  return *registry;
}

TypeRegistry::TypeRegistry() = default;

Status TypeRegistry::Register(TypeId id, TransferableFactory factory) {
  MutexLock lock(mu_);
  auto [it, inserted] = factories_.emplace(id, std::move(factory));
  if (!inserted) {
    return AlreadyExistsError("type id " + std::to_string(id) +
                              " already registered");
  }
  return Status::Ok();
}

Result<TransferablePtr> TypeRegistry::Create(TypeId id) const {
  MutexLock lock(mu_);
  auto it = factories_.find(id);
  if (it == factories_.end()) {
    return NotFoundError("no transferable registered for type id " +
                         std::to_string(id));
  }
  return it->second();
}

bool TypeRegistry::Contains(TypeId id) const {
  MutexLock lock(mu_);
  return factories_.contains(id);
}

}  // namespace dmemo
