#include "transferable/codec.h"

#include <unordered_set>

namespace dmemo {

namespace {
constexpr std::uint8_t kTagNull = 0;
constexpr std::uint8_t kTagInline = 1;
constexpr std::uint8_t kTagBackRef = 2;
}  // namespace

void Encoder::Value(const TransferablePtr& child) {
  if (child == nullptr) {
    out_.u8(kTagNull);
    return;
  }
  auto it = handles_.find(child.get());
  if (it != handles_.end()) {
    out_.u8(kTagBackRef);
    out_.varint(it->second);
    return;
  }
  handles_.emplace(child.get(), next_handle_++);
  out_.u8(kTagInline);
  out_.varint(child->type_id());
  child->EncodePayload(*this);
}

Result<bool> Decoder::Bool() {
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t v, in_.u8());
  if (v > 1) return DataLossError("bool byte out of range");
  return v == 1;
}

Result<TransferablePtr> Decoder::Value() {
  DMEMO_ASSIGN_OR_RETURN(std::uint8_t tag, in_.u8());
  switch (tag) {
    case kTagNull:
      return TransferablePtr(nullptr);
    case kTagBackRef: {
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t handle, in_.varint());
      if (handle >= nodes_.size()) {
        return DataLossError("back-reference to unknown handle " +
                             std::to_string(handle));
      }
      return nodes_[static_cast<std::size_t>(handle)];
    }
    case kTagInline: {
      DMEMO_ASSIGN_OR_RETURN(std::uint64_t type_id, in_.varint());
      DMEMO_ASSIGN_OR_RETURN(TransferablePtr node,
                             registry_.Create(static_cast<TypeId>(type_id)));
      // Register before decoding the payload so self-references resolve.
      nodes_.push_back(node);
      DMEMO_RETURN_IF_ERROR(node->DecodePayload(*this));
      return node;
    }
    default:
      return DataLossError("unknown value tag " + std::to_string(tag));
  }
}

void EncodeGraph(const TransferablePtr& root, ByteWriter& out) {
  Encoder enc(out);
  enc.Value(root);
}

Bytes EncodeGraphToBytes(const TransferablePtr& root) {
  ByteWriter out;
  EncodeGraph(root, out);
  return out.take();
}

IoBuf EncodeGraphToIoBuf(const TransferablePtr& root,
                         std::size_t chunk_bytes) {
  ByteWriter out(chunk_bytes);
  EncodeGraph(root, out);
  return IoBuf::FromChunks(out.TakeChunks());
}

Result<TransferablePtr> DecodeGraph(ByteReader& in,
                                    const TypeRegistry& registry) {
  Decoder dec(in, registry);
  return dec.Value();
}

Result<TransferablePtr> DecodeGraphFromBytes(
    std::span<const std::uint8_t> data, const TypeRegistry& registry) {
  ByteReader in(data);
  return DecodeGraph(in, registry);
}

Result<TransferablePtr> DecodeGraphFromBytes(const IoBuf& data,
                                             const TypeRegistry& registry) {
  Bytes scratch;  // only filled for multi-slice payloads (counted flatten)
  return DecodeGraphFromBytes(data.ContiguousView(scratch), registry);
}

namespace {

// Iterative breadth-first walk: decoded graphs can be arbitrarily deep
// (linked lists), so recursion would risk stack overflow.
void CollectReachable(const TransferablePtr& root,
                      std::unordered_set<Transferable*>& seen,
                      std::vector<TransferablePtr>& nodes) {
  if (root == nullptr || !seen.insert(root.get()).second) return;
  nodes.push_back(root);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->ForEachChild([&](const TransferablePtr& child) {
      if (child != nullptr && seen.insert(child.get()).second) {
        nodes.push_back(child);
      }
    });
  }
}

}  // namespace

void ReleaseGraph(const TransferablePtr& root) {
  std::unordered_set<Transferable*> seen;
  std::vector<TransferablePtr> nodes;
  CollectReachable(root, seen, nodes);
  // Holding every node in `nodes` keeps them alive while links are cut, so
  // no destructor runs mid-walk.
  for (const auto& node : nodes) node->ClearChildren();
}

std::size_t GraphNodeCount(const TransferablePtr& root) {
  std::unordered_set<Transferable*> seen;
  std::vector<TransferablePtr> nodes;
  CollectReachable(root, seen, nodes);
  return nodes.size();
}

}  // namespace dmemo
