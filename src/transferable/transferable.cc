#include "transferable/transferable.h"

#include "transferable/codec.h"

namespace dmemo {

std::string Transferable::DebugString() const {
  return "<transferable type=" + std::to_string(type_id()) + ">";
}

Result<TransferablePtr> CloneTransferable(const Transferable& value) {
  ByteWriter out;
  Encoder enc(out);
  // The encoder tracks identity by pointer, so a non-owning aliasing
  // shared_ptr is enough for the root slot.
  TransferablePtr alias(TransferablePtr(), const_cast<Transferable*>(&value));
  enc.Value(alias);
  ByteReader in(out.data());
  return DecodeGraph(in);
}

bool TransferableEquals(const Transferable& a, const Transferable& b) {
  if (a.type_id() != b.type_id()) return false;
  TransferablePtr pa(TransferablePtr(), const_cast<Transferable*>(&a));
  TransferablePtr pb(TransferablePtr(), const_cast<Transferable*>(&b));
  return EncodeGraphToBytes(pa) == EncodeGraphToBytes(pb);
}

}  // namespace dmemo
