#include "transferable/machine_profile.h"

#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "transferable/composite.h"
#include "transferable/scalars.h"

namespace dmemo {

MachineProfile MachineProfile::Universal() {
  return MachineProfile{"universal", 64, 64};
}

const MachineProfile& ProfileSun4() {
  static const MachineProfile p{"sun4", 32, 64};
  return p;
}
const MachineProfile& ProfileI486() {
  static const MachineProfile p{"i486", 16, 32};
  return p;
}
const MachineProfile& ProfileAlpha() {
  static const MachineProfile p{"alpha", 64, 64};
  return p;
}
const MachineProfile& ProfileSp1() {
  static const MachineProfile p{"sp1", 32, 64};
  return p;
}
const MachineProfile& ProfileEncore() {
  static const MachineProfile p{"encore", 32, 64};
  return p;
}

MachineProfile ProfileForArch(std::string_view arch) {
  if (arch == "sun4") return ProfileSun4();
  if (arch == "i486") return ProfileI486();
  if (arch == "alpha") return ProfileAlpha();
  if (arch == "sp1") return ProfileSp1();
  if (arch == "encore") return ProfileEncore();
  MachineProfile p = MachineProfile::Universal();
  p.arch = std::string(arch);
  return p;
}

namespace {

// Signed value fits in `bits` (two's complement, sign included).
bool SignedFits(std::int64_t v, int bits) {
  if (bits >= 64) return true;
  const std::int64_t lo = -(std::int64_t(1) << (bits - 1));
  const std::int64_t hi = (std::int64_t(1) << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

// Unsigned value fits in `bits - 1` usable magnitude bits when the receiver
// is signed-limited; the paper speaks only of integer width, so we check
// against the full unsigned range of `bits`.
bool UnsignedFits(std::uint64_t v, int bits) {
  if (bits >= 64) return true;
  return v <= ((std::uint64_t(1) << bits) - 1);
}

bool Float64FitsIn32(double v) {
  if (std::isnan(v) || std::isinf(v)) return true;  // mapped exactly
  const float narrowed = static_cast<float>(v);
  return static_cast<double>(narrowed) == v && std::isfinite(narrowed);
}

void CheckScalar(const Transferable& node, const MachineProfile& profile,
                 std::vector<LossyMapping>& out) {
  const Domain d = node.domain();
  if (IsSignedIntDomain(d)) {
    std::int64_t v = 0;
    switch (d) {
      case Domain::kInt8:
        v = static_cast<const TInt8&>(node).value();
        break;
      case Domain::kInt16:
        v = static_cast<const TInt16&>(node).value();
        break;
      case Domain::kInt32:
        v = static_cast<const TInt32&>(node).value();
        break;
      case Domain::kInt64:
        v = static_cast<const TInt64&>(node).value();
        break;
      default:
        return;
    }
    if (!SignedFits(v, profile.int_bits)) {
      out.push_back(LossyMapping{
          d, std::to_string(v),
          "value exceeds " + std::to_string(profile.int_bits) +
              "-bit signed range of arch " + profile.arch});
    }
  } else if (IsUnsignedIntDomain(d)) {
    std::uint64_t v = 0;
    switch (d) {
      case Domain::kUInt8:
        v = static_cast<const TUInt8&>(node).value();
        break;
      case Domain::kUInt16:
        v = static_cast<const TUInt16&>(node).value();
        break;
      case Domain::kUInt32:
        v = static_cast<const TUInt32&>(node).value();
        break;
      case Domain::kUInt64:
        v = static_cast<const TUInt64&>(node).value();
        break;
      default:
        return;
    }
    if (!UnsignedFits(v, profile.int_bits)) {
      out.push_back(LossyMapping{
          d, std::to_string(v),
          "value exceeds " + std::to_string(profile.int_bits) +
              "-bit unsigned range of arch " + profile.arch});
    }
  } else if (d == Domain::kFloat64 && profile.float_bits < 64) {
    const double v = static_cast<const TFloat64&>(node).value();
    if (!Float64FitsIn32(v)) {
      out.push_back(LossyMapping{
          d, std::to_string(v),
          "float64 value not exactly representable as float32 on arch " +
              profile.arch});
    }
  }
}

// Typed bulk vectors carry their element domain but not per-element nodes,
// so they are checked elementwise here.
void CheckVector(const Transferable& node, const MachineProfile& profile,
                 std::vector<LossyMapping>& out) {
  switch (node.type_id()) {
    case TVecInt32::kTypeId: {
      for (std::int32_t v : static_cast<const TVecInt32&>(node).values()) {
        if (!SignedFits(v, profile.int_bits)) {
          out.push_back(LossyMapping{Domain::kInt32, std::to_string(v),
                                     "int32vec element exceeds " +
                                         std::to_string(profile.int_bits) +
                                         "-bit range"});
          return;  // one finding per vector keeps reports readable
        }
      }
      return;
    }
    case TVecInt64::kTypeId: {
      for (std::int64_t v : static_cast<const TVecInt64&>(node).values()) {
        if (!SignedFits(v, profile.int_bits)) {
          out.push_back(LossyMapping{Domain::kInt64, std::to_string(v),
                                     "int64vec element exceeds " +
                                         std::to_string(profile.int_bits) +
                                         "-bit range"});
          return;
        }
      }
      return;
    }
    case TVecFloat64::kTypeId: {
      if (profile.float_bits >= 64) return;
      for (double v : static_cast<const TVecFloat64&>(node).values()) {
        if (!Float64FitsIn32(v)) {
          out.push_back(
              LossyMapping{Domain::kFloat64, std::to_string(v),
                           "float64vec element not representable as float32"});
          return;
        }
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::vector<LossyMapping> FindLossyMappings(const Transferable& value,
                                            const MachineProfile& profile) {
  std::vector<LossyMapping> out;
  if (profile.int_bits >= 64 && profile.float_bits >= 64) return out;

  // Iterative reachability walk over the graph (cycles possible).
  std::unordered_set<const Transferable*> seen;
  std::vector<const Transferable*> stack{&value};
  seen.insert(&value);
  while (!stack.empty()) {
    const Transferable* node = stack.back();
    stack.pop_back();
    if (node->domain() == Domain::kComposite) {
      CheckVector(*node, profile, out);
      node->ForEachChild([&](const TransferablePtr& child) {
        if (child != nullptr && seen.insert(child.get()).second) {
          stack.push_back(child.get());
        }
      });
    } else {
      CheckScalar(*node, profile, out);
    }
  }
  return out;
}

Status CheckRepresentable(const Transferable& value,
                          const MachineProfile& profile) {
  auto lossy = FindLossyMappings(value, profile);
  if (lossy.empty()) return Status::Ok();
  return DataLossError("lossy domain mapping: " + lossy.front().reason +
                       " (value " + lossy.front().value + "; " +
                       std::to_string(lossy.size()) + " finding(s) total)");
}

}  // namespace dmemo
