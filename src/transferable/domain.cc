#include "transferable/domain.h"

namespace dmemo {

std::string_view DomainName(Domain d) {
  switch (d) {
    case Domain::kNull: return "null";
    case Domain::kBool: return "bool";
    case Domain::kInt8: return "int8";
    case Domain::kInt16: return "int16";
    case Domain::kInt32: return "int32";
    case Domain::kInt64: return "int64";
    case Domain::kUInt8: return "uint8";
    case Domain::kUInt16: return "uint16";
    case Domain::kUInt32: return "uint32";
    case Domain::kUInt64: return "uint64";
    case Domain::kFloat32: return "float32";
    case Domain::kFloat64: return "float64";
    case Domain::kString: return "string";
    case Domain::kBytes: return "bytes";
    case Domain::kComposite: return "composite";
  }
  return "unknown";
}

int IntDomainBits(Domain d) {
  switch (d) {
    case Domain::kInt8:
    case Domain::kUInt8: return 8;
    case Domain::kInt16:
    case Domain::kUInt16: return 16;
    case Domain::kInt32:
    case Domain::kUInt32: return 32;
    case Domain::kInt64:
    case Domain::kUInt64: return 64;
    default: return 0;
  }
}

bool IsSignedIntDomain(Domain d) {
  return d == Domain::kInt8 || d == Domain::kInt16 || d == Domain::kInt32 ||
         d == Domain::kInt64;
}

bool IsUnsignedIntDomain(Domain d) {
  return d == Domain::kUInt8 || d == Domain::kUInt16 ||
         d == Domain::kUInt32 || d == Domain::kUInt64;
}

bool IsIntDomain(Domain d) {
  return IsSignedIntDomain(d) || IsUnsignedIntDomain(d);
}

bool IsFloatDomain(Domain d) {
  return d == Domain::kFloat32 || d == Domain::kFloat64;
}

}  // namespace dmemo
