// Built-in scalar transferables: the concrete domains of Sec. 3.1.3.
//
// Applications "must use absolute domains (e.g. int16, uint16, int64,
// float32)" instead of built-in C types. Each scalar class pairs a fixed
// wire domain with a host value; the template keeps the fifteen classes from
// being fifteen copies of the same code.
#pragma once

#include <string>
#include <utility>

#include "transferable/codec.h"
#include "transferable/transferable.h"

namespace dmemo {

namespace internal {

// One scalar transferable: value of host type V, wire domain D, wire id Id.
// Encode/Decode dispatch on V at compile time.
template <typename V, Domain D, TypeId Id>
class ScalarTransferable final : public Transferable {
 public:
  static constexpr TypeId kTypeId = Id;
  static constexpr Domain kDomain = D;

  ScalarTransferable() = default;
  explicit ScalarTransferable(V value) : value_(value) {}

  TypeId type_id() const override { return Id; }
  Domain domain() const override { return D; }

  V value() const { return value_; }
  void set_value(V v) { value_ = v; }

  void EncodePayload(Encoder& enc) const override {
    if constexpr (std::is_same_v<V, bool>) enc.Bool(value_);
    else if constexpr (std::is_same_v<V, std::int8_t>) enc.I8(value_);
    else if constexpr (std::is_same_v<V, std::int16_t>) enc.I16(value_);
    else if constexpr (std::is_same_v<V, std::int32_t>) enc.I32(value_);
    else if constexpr (std::is_same_v<V, std::int64_t>) enc.I64(value_);
    else if constexpr (std::is_same_v<V, std::uint8_t>) enc.U8(value_);
    else if constexpr (std::is_same_v<V, std::uint16_t>) enc.U16(value_);
    else if constexpr (std::is_same_v<V, std::uint32_t>) enc.U32(value_);
    else if constexpr (std::is_same_v<V, std::uint64_t>) enc.U64(value_);
    else if constexpr (std::is_same_v<V, float>) enc.F32(value_);
    else if constexpr (std::is_same_v<V, double>) enc.F64(value_);
    else static_assert(sizeof(V) == 0, "unsupported scalar type");
  }

  Status DecodePayload(Decoder& dec) override {
    if constexpr (std::is_same_v<V, bool>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.Bool());
    } else if constexpr (std::is_same_v<V, std::int8_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.I8());
    } else if constexpr (std::is_same_v<V, std::int16_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.I16());
    } else if constexpr (std::is_same_v<V, std::int32_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.I32());
    } else if constexpr (std::is_same_v<V, std::int64_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.I64());
    } else if constexpr (std::is_same_v<V, std::uint8_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.U8());
    } else if constexpr (std::is_same_v<V, std::uint16_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.U16());
    } else if constexpr (std::is_same_v<V, std::uint32_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.U32());
    } else if constexpr (std::is_same_v<V, std::uint64_t>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.U64());
    } else if constexpr (std::is_same_v<V, float>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.F32());
    } else if constexpr (std::is_same_v<V, double>) {
      DMEMO_ASSIGN_OR_RETURN(value_, dec.F64());
    }
    return Status::Ok();
  }

  std::string DebugString() const override {
    return std::string(DomainName(D)) + "(" + std::to_string(value_) + ")";
  }

 private:
  V value_{};
};

}  // namespace internal

using TBool = internal::ScalarTransferable<bool, Domain::kBool, 1>;
using TInt8 = internal::ScalarTransferable<std::int8_t, Domain::kInt8, 2>;
using TInt16 = internal::ScalarTransferable<std::int16_t, Domain::kInt16, 3>;
using TInt32 = internal::ScalarTransferable<std::int32_t, Domain::kInt32, 4>;
using TInt64 = internal::ScalarTransferable<std::int64_t, Domain::kInt64, 5>;
using TUInt8 = internal::ScalarTransferable<std::uint8_t, Domain::kUInt8, 6>;
using TUInt16 =
    internal::ScalarTransferable<std::uint16_t, Domain::kUInt16, 7>;
using TUInt32 =
    internal::ScalarTransferable<std::uint32_t, Domain::kUInt32, 8>;
using TUInt64 =
    internal::ScalarTransferable<std::uint64_t, Domain::kUInt64, 9>;
using TFloat32 = internal::ScalarTransferable<float, Domain::kFloat32, 10>;
using TFloat64 = internal::ScalarTransferable<double, Domain::kFloat64, 11>;

// Variable-length scalars get their own classes.
class TString final : public Transferable {
 public:
  static constexpr TypeId kTypeId = 12;

  TString() = default;
  explicit TString(std::string value) : value_(std::move(value)) {}

  TypeId type_id() const override { return kTypeId; }
  Domain domain() const override { return Domain::kString; }

  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  void EncodePayload(Encoder& enc) const override { enc.Str(value_); }
  Status DecodePayload(Decoder& dec) override {
    DMEMO_ASSIGN_OR_RETURN(value_, dec.Str());
    return Status::Ok();
  }
  std::string DebugString() const override { return "\"" + value_ + "\""; }

 private:
  std::string value_;
};

class TBytes final : public Transferable {
 public:
  static constexpr TypeId kTypeId = 13;

  TBytes() = default;
  explicit TBytes(Bytes value) : value_(std::move(value)) {}

  TypeId type_id() const override { return kTypeId; }
  Domain domain() const override { return Domain::kBytes; }

  const Bytes& value() const { return value_; }
  Bytes& value() { return value_; }

  void EncodePayload(Encoder& enc) const override { enc.Raw(value_); }
  Status DecodePayload(Decoder& dec) override {
    DMEMO_ASSIGN_OR_RETURN(value_, dec.Raw());
    return Status::Ok();
  }
  std::string DebugString() const override {
    return "bytes[" + std::to_string(value_.size()) + "]";
  }

 private:
  Bytes value_;
};

// Factory helpers: memo.put(key, T(42)) reads better than make_shared soup.
inline TransferablePtr MakeBool(bool v) { return std::make_shared<TBool>(v); }
inline TransferablePtr MakeInt16(std::int16_t v) {
  return std::make_shared<TInt16>(v);
}
inline TransferablePtr MakeInt32(std::int32_t v) {
  return std::make_shared<TInt32>(v);
}
inline TransferablePtr MakeInt64(std::int64_t v) {
  return std::make_shared<TInt64>(v);
}
inline TransferablePtr MakeUInt64(std::uint64_t v) {
  return std::make_shared<TUInt64>(v);
}
inline TransferablePtr MakeFloat32(float v) {
  return std::make_shared<TFloat32>(v);
}
inline TransferablePtr MakeFloat64(double v) {
  return std::make_shared<TFloat64>(v);
}
inline TransferablePtr MakeString(std::string v) {
  return std::make_shared<TString>(std::move(v));
}
inline TransferablePtr MakeBytes(Bytes v) {
  return std::make_shared<TBytes>(std::move(v));
}

}  // namespace dmemo
