// Type registry: maps wire TypeIds to factories.
//
// The decoder must construct a concrete Transferable from a TypeId read off
// the wire before it can ask the object to decode its own payload. Built-in
// types self-register; applications add theirs with RegisterTransferable.
#pragma once

#include <functional>
#include <unordered_map>

#include "transferable/transferable.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

using TransferableFactory = std::function<TransferablePtr()>;

class TypeRegistry {
 public:
  // Process-wide registry (thread-safe).
  static TypeRegistry& Global();

  Status Register(TypeId id, TransferableFactory factory);
  Result<TransferablePtr> Create(TypeId id) const;
  bool Contains(TypeId id) const;

 private:
  TypeRegistry();

  mutable Mutex mu_{"TypeRegistry::mu"};
  std::unordered_map<TypeId, TransferableFactory> factories_
      DMEMO_GUARDED_BY(mu_);
};

// Convenience: registers T (default-constructible) under its static kTypeId.
template <typename T>
Status RegisterTransferable() {
  return TypeRegistry::Global().Register(
      T::kTypeId, [] { return std::make_shared<T>(); });
}

}  // namespace dmemo
