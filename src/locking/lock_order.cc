#include "locking/lock_order.h"

#ifdef DMEMO_LOCK_ORDER_CHECKS

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dmemo {
namespace lock_order {

namespace {

struct Node {
  std::string name;
  std::unordered_set<const void*> succ;  // acquired after this lock
  std::unordered_set<const void*> pred;  // acquired before this lock
};

struct Graph {
  // A plain std::mutex on purpose: the instrumented dmemo::Mutex would
  // re-enter the detector.
  std::mutex mu;
  std::unordered_map<const void*, Node> nodes;
  std::uint64_t acquisitions = 0;
  std::uint64_t edges = 0;
};

Graph& GlobalGraph() {
  static Graph* graph = new Graph();  // leaked: outlives static destructors
  return *graph;
}

struct Held {
  const void* lock;
  const char* name;
};

thread_local std::vector<Held> t_held;

std::string Describe(const void* lock, const char* name) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%p", lock);
  std::string out(buf);
  if (name != nullptr && name[0] != '\0') {
    out += " (";
    out += name;
    out += ")";
  }
  return out;
}

[[noreturn]] void AbortWithReport(Graph& graph, const void* acquiring,
                                  const char* acquiring_name,
                                  const std::vector<const void*>& cycle_path,
                                  const char* reason) {
  std::fprintf(stderr, "\n=== dmemo lock-order inversion detected ===\n");
  std::fprintf(stderr, "%s while acquiring lock %s\n", reason,
               Describe(acquiring, acquiring_name).c_str());
  std::fprintf(stderr, "held by this thread (oldest first):\n");
  for (const Held& h : t_held) {
    std::fprintf(stderr, "  - %s\n", Describe(h.lock, h.name).c_str());
  }
  if (!cycle_path.empty()) {
    std::fprintf(stderr,
                 "previously recorded acquisition order (lock-order cycle):\n");
    for (const void* node : cycle_path) {
      auto it = graph.nodes.find(node);
      const char* name =
          it != graph.nodes.end() && !it->second.name.empty()
              ? it->second.name.c_str()
              : nullptr;
      std::fprintf(stderr, "  -> %s\n", Describe(node, name).c_str());
    }
  }
  std::fprintf(stderr, "===========================================\n");
  std::fflush(stderr);
  std::abort();
}

// Depth-first search over recorded order edges: is `target` reachable from
// `from`? Fills `path` (from -> ... -> target) when found. Caller holds
// graph.mu.
bool Reaches(Graph& graph, const void* from, const void* target,
             std::unordered_set<const void*>& visited,
             std::vector<const void*>& path) {
  if (from == target) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  auto it = graph.nodes.find(from);
  if (it == graph.nodes.end()) return false;
  for (const void* next : it->second.succ) {
    if (Reaches(graph, next, target, visited, path)) {
      path.insert(path.begin(), from);
      return true;
    }
  }
  return false;
}

Node& NodeFor(Graph& graph, const void* lock, const char* name) {
  Node& node = graph.nodes[lock];
  if (node.name.empty() && name != nullptr) node.name = name;
  return node;
}

}  // namespace

void OnAcquire(const void* lock, const char* name) {
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      Graph& graph = GlobalGraph();
      std::lock_guard guard(graph.mu);
      AbortWithReport(graph, lock, name, {},
                      "re-acquisition of a lock this thread already holds");
    }
  }
  {
    Graph& graph = GlobalGraph();
    std::lock_guard guard(graph.mu);
    ++graph.acquisitions;
    NodeFor(graph, lock, name);
    // Inversion check: if any held lock is reachable *from* the new lock,
    // some earlier thread acquired them in the opposite order.
    for (const Held& h : t_held) {
      std::unordered_set<const void*> visited;
      std::vector<const void*> path;
      if (Reaches(graph, lock, h.lock, visited, path)) {
        AbortWithReport(graph, lock, name, path,
                        "inconsistent acquisition order");
      }
    }
    // Record held -> new edges.
    for (const Held& h : t_held) {
      Node& from = NodeFor(graph, h.lock, h.name);
      if (from.succ.insert(lock).second) {
        NodeFor(graph, lock, name).pred.insert(h.lock);
        ++graph.edges;
      }
    }
  }
  t_held.push_back(Held{lock, name});
}

void OnTryAcquired(const void* lock, const char* name) {
  t_held.push_back(Held{lock, name});
}

void OnRelease(const void* lock) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->lock == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void OnDestroy(const void* lock) {
  Graph& graph = GlobalGraph();
  std::lock_guard guard(graph.mu);
  auto it = graph.nodes.find(lock);
  if (it == graph.nodes.end()) return;
  for (const void* s : it->second.succ) {
    auto sit = graph.nodes.find(s);
    if (sit != graph.nodes.end()) sit->second.pred.erase(lock);
  }
  for (const void* p : it->second.pred) {
    auto pit = graph.nodes.find(p);
    if (pit != graph.nodes.end()) pit->second.succ.erase(lock);
  }
  graph.nodes.erase(it);
}

Stats GetStats() {
  Graph& graph = GlobalGraph();
  std::lock_guard guard(graph.mu);
  Stats s;
  s.acquisitions = graph.acquisitions;
  s.edges = graph.edges;
  s.locks_tracked = graph.nodes.size();
  return s;
}

}  // namespace lock_order
}  // namespace dmemo

#endif  // DMEMO_LOCK_ORDER_CHECKS
