// Locking foundation (paper Sec. 3.1.4).
//
// "Mechanisms for low-level locking tend to vary between platforms... there
// are times when it is a good idea not to use a semaphore and opt for a more
// efficient locking mechanism." The abstract Lock is the commonality; the
// derivations below are genuinely different mechanisms (CAS spin, futex-based
// mutex, counting semaphore, kernel file lock), selected at run time through
// the factory — the same class-derivation story the paper tells for shared
// memory.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dmemo {

class Lock {
 public:
  virtual ~Lock() = default;

  virtual void Acquire() = 0;
  virtual void Release() = 0;
  // Non-blocking attempt; true when the lock was taken.
  virtual bool TryAcquire() = 0;

  // Mechanism label, e.g. "spin", "mutex" (diagnostics, bench labels).
  virtual std::string_view mechanism() const = 0;
};

enum class LockKind {
  kSpin,       // userspace CAS loop with exponential backoff
  kMutex,      // std::mutex (futex on Linux)
  kSemaphore,  // binary counting-semaphore
  kFile,       // flock() on a path: works across unrelated processes
};

// Create a lock of the given kind. kFile requires `path` (a lock file that
// will be created if absent); other kinds ignore it.
Result<std::unique_ptr<Lock>> MakeLock(LockKind kind, std::string path = "");

// RAII guard over the abstract Lock.
class ScopedLock {
 public:
  explicit ScopedLock(Lock& lock) : lock_(lock) { lock_.Acquire(); }
  ~ScopedLock() { lock_.Release(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Lock& lock_;
};

// Counting semaphore used by the patterns layer and the semaphore lock.
class CountingSemaphore {
 public:
  explicit CountingSemaphore(int initial);
  ~CountingSemaphore();  // out-of-line: Impl is incomplete here

  void Acquire();
  bool TryAcquire();
  void Release(int n = 1);
  int value() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dmemo
