// Locking foundation (paper Sec. 3.1.4).
//
// "Mechanisms for low-level locking tend to vary between platforms... there
// are times when it is a good idea not to use a semaphore and opt for a more
// efficient locking mechanism." The abstract Lock is the commonality; the
// derivations below are genuinely different mechanisms (CAS spin, futex-based
// mutex, counting semaphore, kernel file lock), selected at run time through
// the factory — the same class-derivation story the paper tells for shared
// memory.
//
// Lock is a Clang thread-safety capability and a hook point for the runtime
// lock-order detector: the public Acquire/Release/TryAcquire are non-virtual
// and instrument every acquisition in debug builds before dispatching to the
// mechanism-specific *Impl virtuals.
#pragma once

#include <memory>
#include <mutex>  // std::adopt_lock_t
#include <string>
#include <string_view>

#include "locking/lock_order.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dmemo {

class DMEMO_CAPABILITY("lock") Lock {
 public:
  virtual ~Lock() {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnDestroy(this);
#endif
  }

  void Acquire() DMEMO_ACQUIRE() DMEMO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnAcquire(this, debug_name_.empty() ? nullptr
                                                    : debug_name_.c_str());
#endif
    AcquireImpl();
  }

  void Release() DMEMO_RELEASE() DMEMO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DMEMO_LOCK_ORDER_CHECKS
    lock_order::OnRelease(this);
#endif
    ReleaseImpl();
  }

  // Non-blocking attempt; true when the lock was taken.
  [[nodiscard]] bool TryAcquire() DMEMO_TRY_ACQUIRE(true) DMEMO_NO_THREAD_SAFETY_ANALYSIS {
    const bool taken = TryAcquireImpl();
#ifdef DMEMO_LOCK_ORDER_CHECKS
    if (taken) {
      lock_order::OnTryAcquired(
          this, debug_name_.empty() ? nullptr : debug_name_.c_str());
    }
#endif
    return taken;
  }

  // Mechanism label, e.g. "spin", "mutex" (diagnostics, bench labels).
  virtual std::string_view mechanism() const = 0;

  // Optional label used by lock-order inversion reports.
  void set_debug_name(std::string name) { debug_name_ = std::move(name); }
  const std::string& debug_name() const { return debug_name_; }

 protected:
  virtual void AcquireImpl() = 0;
  virtual void ReleaseImpl() = 0;
  virtual bool TryAcquireImpl() = 0;

 private:
  std::string debug_name_;
};

enum class LockKind {
  kSpin,       // userspace CAS loop with exponential backoff
  kMutex,      // std::mutex (futex on Linux)
  kSemaphore,  // binary counting-semaphore
  kFile,       // flock() on a path: works across unrelated processes
};

// Create a lock of the given kind. kFile requires `path` (a lock file that
// will be created if absent); other kinds ignore it.
Result<std::unique_ptr<Lock>> MakeLock(LockKind kind, std::string path = "");

// RAII guard over the abstract Lock.
class DMEMO_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Lock& lock) DMEMO_ACQUIRE(lock) : lock_(lock) {
    lock_.Acquire();
  }
  // Adopts a lock the caller already holds (e.g. after a successful
  // TryAcquire) so the release path is RAII instead of hand-rolled.
  ScopedLock(Lock& lock, std::adopt_lock_t) DMEMO_REQUIRES(lock)
      : lock_(lock) {}
  ~ScopedLock() DMEMO_RELEASE() { lock_.Release(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Lock& lock_;
};

// RAII try-acquire: holds the lock for the scope only if the attempt
// succeeded. Replaces hand-rolled `if (TryAcquire()) { ... Release(); }`
// release paths at try-lock call sites.
class DMEMO_SCOPED_CAPABILITY TryScopedLock {
 public:
  explicit TryScopedLock(Lock& lock) DMEMO_TRY_ACQUIRE(true, lock)
      : lock_(lock), held_(lock.TryAcquire()) {}
  ~TryScopedLock() DMEMO_RELEASE() {
    if (held_) lock_.Release();
  }
  TryScopedLock(const TryScopedLock&) = delete;
  TryScopedLock& operator=(const TryScopedLock&) = delete;

  bool held() const { return held_; }
  explicit operator bool() const { return held_; }

 private:
  Lock& lock_;
  bool held_;
};

// Counting semaphore used by the patterns layer and the semaphore lock.
class CountingSemaphore {
 public:
  explicit CountingSemaphore(int initial);
  ~CountingSemaphore();  // out-of-line: Impl is incomplete here

  void Acquire();
  bool TryAcquire();
  void Release(int n = 1);
  int value() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dmemo
