#include "locking/lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dmemo {

namespace {

class SpinLock final : public Lock {
 public:
  std::string_view mechanism() const override { return "spin"; }

 protected:
  void AcquireImpl() override {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Exponential backoff: brief busy-wait, then yield to the scheduler so
      // oversubscribed hosts (more workers than cores) make progress.
      if (++spins < 64) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void ReleaseImpl() override { flag_.clear(std::memory_order_release); }

  bool TryAcquireImpl() override {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class StdMutexLock final : public Lock {
 public:
  std::string_view mechanism() const override { return "mutex"; }

 protected:
  void AcquireImpl() override { mu_.lock(); }
  void ReleaseImpl() override { mu_.unlock(); }
  bool TryAcquireImpl() override { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

class SemaphoreLock final : public Lock {
 public:
  SemaphoreLock() : sem_(1) {}
  std::string_view mechanism() const override { return "semaphore"; }

 protected:
  void AcquireImpl() override { sem_.Acquire(); }
  void ReleaseImpl() override { sem_.Release(); }
  bool TryAcquireImpl() override { return sem_.TryAcquire(); }

 private:
  CountingSemaphore sem_;
};

// flock-based lock: the only derivation that synchronizes *unrelated*
// processes by name, which the launcher uses for registration critical
// sections.
class FileLock final : public Lock {
 public:
  explicit FileLock(int fd) : fd_(fd) {}
  ~FileLock() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string_view mechanism() const override { return "file"; }

 protected:
  void AcquireImpl() override { ::flock(fd_, LOCK_EX); }
  void ReleaseImpl() override { ::flock(fd_, LOCK_UN); }
  bool TryAcquireImpl() override {
    return ::flock(fd_, LOCK_EX | LOCK_NB) == 0;
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<Lock>> MakeLock(LockKind kind, std::string path) {
  switch (kind) {
    case LockKind::kSpin:
      return std::unique_ptr<Lock>(std::make_unique<SpinLock>());
    case LockKind::kMutex:
      return std::unique_ptr<Lock>(std::make_unique<StdMutexLock>());
    case LockKind::kSemaphore:
      return std::unique_ptr<Lock>(std::make_unique<SemaphoreLock>());
    case LockKind::kFile: {
      if (path.empty()) {
        return InvalidArgumentError("file lock requires a path");
      }
      int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0600);
      if (fd < 0) {
        return UnavailableError("cannot open lock file " + path);
      }
      return std::unique_ptr<Lock>(std::make_unique<FileLock>(fd));
    }
  }
  return InvalidArgumentError("unknown lock kind");
}

struct CountingSemaphore::Impl {
  std::mutex mu;
  std::condition_variable cv;
  int count;
};

CountingSemaphore::CountingSemaphore(int initial)
    : impl_(std::make_unique<Impl>()) {
  impl_->count = initial;
}

CountingSemaphore::~CountingSemaphore() = default;

void CountingSemaphore::Acquire() {
  std::unique_lock lock(impl_->mu);
  impl_->cv.wait(lock, [&] { return impl_->count > 0; });
  --impl_->count;
}

bool CountingSemaphore::TryAcquire() {
  std::unique_lock lock(impl_->mu);
  if (impl_->count <= 0) return false;
  --impl_->count;
  return true;
}

void CountingSemaphore::Release(int n) {
  std::unique_lock lock(impl_->mu);
  impl_->count += n;
  if (n == 1) {
    impl_->cv.notify_one();
  } else {
    impl_->cv.notify_all();
  }
}

int CountingSemaphore::value() const {
  std::unique_lock lock(impl_->mu);
  return impl_->count;
}

}  // namespace dmemo
