// Runtime lock-order / deadlock detector (debug builds only).
//
// The dynamic leg of the concurrency-correctness layer: every annotated lock
// in the system (dmemo::Mutex, dmemo::Lock) reports acquisitions and
// releases here. The detector maintains
//
//   * a per-thread stack of currently held locks, and
//   * a global acquisition-order graph: an edge A -> B is recorded the first
//     time some thread acquires B while holding A.
//
// Before a blocking acquisition of lock N while holding {H...}, the detector
// walks the graph from N; if any held lock is reachable, the program has
// taken the same pair of locks in both orders — a latent deadlock — and the
// process aborts immediately with both participants' names, the would-be
// cycle, and the acquiring thread's held-lock stack. Re-acquiring a lock the
// thread already holds (self-deadlock on these non-reentrant locks) aborts
// the same way.
//
// TryLock-style acquisitions cannot block, so they are recorded on the held
// stack (later blocking acquisitions still order against them) but do not
// themselves insert edges or trigger the cycle check.
//
// Everything here is compiled out unless DMEMO_LOCK_ORDER_CHECKS is defined
// (CMake option of the same name, default ON in Debug builds): the hook call
// sites in util/mutex.h and locking/lock.h disappear, and this translation
// unit contributes no symbols — release builds pay exactly nothing.
#pragma once

#ifdef DMEMO_LOCK_ORDER_CHECKS

#include <cstdint>

namespace dmemo {
namespace lock_order {

struct Stats {
  std::uint64_t acquisitions = 0;  // blocking acquisitions checked
  std::uint64_t edges = 0;         // distinct order edges recorded
  std::uint64_t locks_tracked = 0; // live locks known to the graph
};

// Pre-acquisition hook for a blocking acquire: records order edges from
// every lock this thread holds to `lock`, aborts on an inversion or a
// re-acquisition, then pushes `lock` onto the thread's held stack. `name`
// may be null (reported as the lock's address only) and must outlive the
// lock when provided.
void OnAcquire(const void* lock, const char* name);

// Post-acquisition hook for a successful try-acquire: pushes onto the held
// stack without edge insertion or cycle checking (a try can't block).
void OnTryAcquired(const void* lock, const char* name);

// Removes `lock` from the calling thread's held stack (any position: guard
// objects may release out of LIFO order).
void OnRelease(const void* lock);

// Forgets a destroyed lock so a recycled address cannot inherit stale
// edges and report a phantom inversion.
void OnDestroy(const void* lock);

Stats GetStats();

}  // namespace lock_order
}  // namespace dmemo

#endif  // DMEMO_LOCK_ORDER_CHECKS
