#include "adf/adf.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dmemo {

namespace {

// ---- tokenizing helpers ----------------------------------------------------

std::string StripComment(std::string line) {
  auto pos = line.find('#');
  if (pos != std::string::npos) line.erase(pos);
  return line;
}

std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

bool IsSectionKeyword(const std::string& tok) {
  return tok == "APP" || tok == "HOSTS" || tok == "FOLDERS" ||
         tok == "PROCESSES" || tok == "PPC";
}

// Parse "3" or "3-8" into [lo, hi]; INVALID_ARGUMENT otherwise.
Result<std::pair<int, int>> ParseIdRange(const std::string& tok, int line_no) {
  auto fail = [&] {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": bad numeric name '" + tok + "'");
  };
  auto dash = tok.find('-');
  auto parse_int = [&](std::string_view s, int& out) {
    if (s.empty()) return false;
    out = 0;
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
      out = out * 10 + (c - '0');
      if (out > 1'000'000) return false;
    }
    return true;
  };
  int lo = 0, hi = 0;
  if (dash == std::string::npos) {
    if (!parse_int(tok, lo)) return fail();
    return std::make_pair(lo, lo);
  }
  if (!parse_int(std::string_view(tok).substr(0, dash), lo) ||
      !parse_int(std::string_view(tok).substr(dash + 1), hi) || hi < lo) {
    return fail();
  }
  return std::make_pair(lo, hi);
}

Result<double> ParseNumber(const std::string& tok, int line_no) {
  try {
    std::size_t used = 0;
    double v = std::stod(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": expected a number, got '" + tok + "'");
  }
}

// ---- cost expressions -------------------------------------------------------
//
// Grammar:  expr := term (('*' | '/') term)*
//           term := number | arch-identifier
// An identifier denotes the resolved cost of the first HOSTS entry with that
// architecture label.

struct CostTerm {
  bool is_number = false;
  double number = 0;
  std::string ident;
};

struct CostExpr {
  std::vector<CostTerm> terms;
  std::vector<char> ops;  // between terms: '*' or '/'
};

Result<CostExpr> ParseCostExpr(const std::string& text, int line_no) {
  CostExpr expr;
  std::string cur;
  auto flush = [&]() -> Status {
    if (cur.empty()) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": empty term in cost '" + text + "'");
    }
    CostTerm term;
    if (std::isdigit(static_cast<unsigned char>(cur[0])) || cur[0] == '.') {
      DMEMO_ASSIGN_OR_RETURN(term.number, ParseNumber(cur, line_no));
      term.is_number = true;
    } else {
      term.ident = cur;
    }
    expr.terms.push_back(std::move(term));
    cur.clear();
    return Status::Ok();
  };
  for (char c : text) {
    if (c == '*' || c == '/') {
      DMEMO_RETURN_IF_ERROR(flush());
      expr.ops.push_back(c);
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  DMEMO_RETURN_IF_ERROR(flush());
  if (expr.ops.size() + 1 != expr.terms.size()) {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": malformed cost '" + text + "'");
  }
  return expr;
}

// Resolve all host costs. Pure-number costs resolve immediately; costs
// referencing arch names resolve once that arch's cost is known. Iterate to
// a fixed point; leftovers mean unknown arch or a reference cycle.
Status ResolveHostCosts(std::vector<HostSpec>& hosts,
                        const std::vector<CostExpr>& exprs) {
  std::unordered_map<std::string, double> arch_cost;
  std::vector<bool> resolved(hosts.size(), false);
  bool progress = true;
  std::size_t remaining = hosts.size();
  while (progress && remaining > 0) {
    progress = false;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (resolved[i]) continue;
      const CostExpr& expr = exprs[i];
      double value = 0;
      bool known = true;
      for (std::size_t t = 0; t < expr.terms.size() && known; ++t) {
        double term_value;
        if (expr.terms[t].is_number) {
          term_value = expr.terms[t].number;
        } else {
          auto it = arch_cost.find(expr.terms[t].ident);
          if (it == arch_cost.end()) {
            known = false;
            break;
          }
          term_value = it->second;
        }
        if (t == 0) {
          value = term_value;
        } else if (expr.ops[t - 1] == '*') {
          value *= term_value;
        } else {
          if (term_value == 0) {
            return InvalidArgumentError("host " + hosts[i].name +
                                        ": division by zero in cost");
          }
          value /= term_value;
        }
      }
      if (!known) continue;
      hosts[i].cost = value;
      resolved[i] = true;
      --remaining;
      progress = true;
      // First host of an arch defines the arch variable.
      arch_cost.emplace(hosts[i].arch, value);
    }
  }
  if (remaining > 0) {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (!resolved[i]) {
        return InvalidArgumentError(
            "host " + hosts[i].name + ": cost '" + hosts[i].cost_expr +
            "' references an unknown or cyclically-defined arch");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

// ---- AppDescription ---------------------------------------------------------

const HostSpec* AppDescription::FindHost(std::string_view name) const {
  for (const auto& h : hosts) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::vector<FolderServerSpec> AppDescription::FolderServersOn(
    std::string_view host) const {
  std::vector<FolderServerSpec> out;
  for (const auto& fs : folder_servers) {
    if (fs.host == host) out.push_back(fs);
  }
  return out;
}

Status AppDescription::Validate() const {
  if (app_name.empty()) {
    return InvalidArgumentError("ADF: application name missing");
  }
  if (hosts.empty()) return InvalidArgumentError("ADF: no hosts declared");
  std::unordered_set<std::string> host_names;
  for (const auto& h : hosts) {
    if (!host_names.insert(h.name).second) {
      return InvalidArgumentError("ADF: duplicate host " + h.name);
    }
    if (h.processors < 1) {
      return InvalidArgumentError("ADF: host " + h.name +
                                  " has no processors");
    }
    if (h.cost <= 0) {
      return InvalidArgumentError("ADF: host " + h.name +
                                  " has non-positive cost");
    }
  }
  if (folder_servers.empty()) {
    return InvalidArgumentError("ADF: at least one folder server required");
  }
  std::unordered_set<int> fs_ids;
  for (const auto& fs : folder_servers) {
    if (!fs_ids.insert(fs.id).second) {
      return InvalidArgumentError("ADF: duplicate folder server id " +
                                  std::to_string(fs.id));
    }
    if (!host_names.contains(fs.host)) {
      return InvalidArgumentError("ADF: folder server " +
                                  std::to_string(fs.id) +
                                  " on undeclared host " + fs.host);
    }
  }
  std::unordered_set<int> proc_ids;
  for (const auto& p : processes) {
    if (!proc_ids.insert(p.id).second) {
      return InvalidArgumentError("ADF: duplicate process id " +
                                  std::to_string(p.id));
    }
    if (!host_names.contains(p.host)) {
      return InvalidArgumentError("ADF: process " + std::to_string(p.id) +
                                  " on undeclared host " + p.host);
    }
  }
  for (const auto& l : links) {
    if (!host_names.contains(l.a) || !host_names.contains(l.b)) {
      return InvalidArgumentError("ADF: link references undeclared host (" +
                                  l.a + " / " + l.b + ")");
    }
    if (l.cost <= 0) {
      return InvalidArgumentError("ADF: link " + l.a + " - " + l.b +
                                  " has non-positive cost");
    }
  }
  return Status::Ok();
}

// ---- parsing ----------------------------------------------------------------

Result<ParsedAdf> ParseAdf(std::string_view text) {
  ParsedAdf out;
  AppDescription& adf = out.description;
  std::vector<CostExpr> host_cost_exprs;

  enum class Section { kNone, kApp, kHosts, kFolders, kProcesses, kPpc };
  Section section = Section::kNone;

  std::istringstream in{std::string(text)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string line = StripComment(raw_line);
    auto tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;

    if (IsSectionKeyword(tokens[0])) {
      const std::string& kw = tokens[0];
      if (kw == "APP") {
        if (tokens.size() != 2) {
          return InvalidArgumentError("line " + std::to_string(line_no) +
                                      ": APP takes exactly one name");
        }
        adf.app_name = tokens[1];
        out.present.app = true;
        section = Section::kApp;
      } else if (kw == "HOSTS") {
        out.present.hosts = true;
        section = Section::kHosts;
      } else if (kw == "FOLDERS") {
        out.present.folders = true;
        section = Section::kFolders;
      } else if (kw == "PROCESSES") {
        out.present.processes = true;
        section = Section::kProcesses;
      } else {
        out.present.ppc = true;
        section = Section::kPpc;
      }
      continue;
    }

    switch (section) {
      case Section::kNone:
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": data before any section keyword");
      case Section::kApp:
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": unexpected data in APP section");
      case Section::kHosts: {
        if (tokens.size() != 4) {
          return InvalidArgumentError(
              "line " + std::to_string(line_no) +
              ": HOSTS entries are 'name #procs arch cost'");
        }
        HostSpec host;
        host.name = tokens[0];
        DMEMO_ASSIGN_OR_RETURN(double procs, ParseNumber(tokens[1], line_no));
        if (procs < 1 || procs != static_cast<int>(procs)) {
          return InvalidArgumentError("line " + std::to_string(line_no) +
                                      ": #procs must be a positive integer");
        }
        host.processors = static_cast<int>(procs);
        host.arch = tokens[2];
        host.cost_expr = tokens[3];
        DMEMO_ASSIGN_OR_RETURN(CostExpr expr,
                               ParseCostExpr(tokens[3], line_no));
        host_cost_exprs.push_back(std::move(expr));
        adf.hosts.push_back(std::move(host));
        break;
      }
      case Section::kFolders: {
        if (tokens.size() != 2) {
          return InvalidArgumentError("line " + std::to_string(line_no) +
                                      ": FOLDERS entries are 'id host'");
        }
        DMEMO_ASSIGN_OR_RETURN(auto range, ParseIdRange(tokens[0], line_no));
        for (int id = range.first; id <= range.second; ++id) {
          adf.folder_servers.push_back(FolderServerSpec{id, tokens[1]});
        }
        break;
      }
      case Section::kProcesses: {
        if (tokens.size() != 3) {
          return InvalidArgumentError(
              "line " + std::to_string(line_no) +
              ": PROCESSES entries are 'id directory host'");
        }
        DMEMO_ASSIGN_OR_RETURN(auto range, ParseIdRange(tokens[0], line_no));
        for (int id = range.first; id <= range.second; ++id) {
          adf.processes.push_back(ProcessSpec{id, tokens[1], tokens[2]});
        }
        break;
      }
      case Section::kPpc: {
        if (tokens.size() != 4 ||
            (tokens[1] != "<->" && tokens[1] != "->")) {
          return InvalidArgumentError(
              "line " + std::to_string(line_no) +
              ": PPC entries are 'host <->|-> host cost'");
        }
        LinkSpec link;
        link.a = tokens[0];
        link.duplex = tokens[1] == "<->";
        link.b = tokens[2];
        DMEMO_ASSIGN_OR_RETURN(link.cost, ParseNumber(tokens[3], line_no));
        adf.links.push_back(std::move(link));
        break;
      }
    }
  }

  DMEMO_RETURN_IF_ERROR(ResolveHostCosts(adf.hosts, host_cost_exprs));
  return out;
}

Result<ParsedAdf> ParseAdfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open ADF file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseAdf(buf.str());
}

AppDescription MergeWithDefault(const ParsedAdf& user,
                                const AppDescription& system_default) {
  AppDescription merged = user.description;
  if (!user.present.app) merged.app_name = system_default.app_name;
  if (!user.present.hosts) merged.hosts = system_default.hosts;
  if (!user.present.folders) {
    merged.folder_servers = system_default.folder_servers;
  }
  if (!user.present.processes) merged.processes = system_default.processes;
  if (!user.present.ppc) merged.links = system_default.links;
  return merged;
}

std::string FormatAdf(const AppDescription& adf) {
  std::ostringstream out;
  out << "# Application Name\nAPP " << adf.app_name << "\n\nHOSTS\n"
      << "# Hosts\t#Procs\tArch\tCost\n";
  for (const auto& h : adf.hosts) {
    out << h.name << "\t" << h.processors << "\t" << h.arch << "\t"
        << (h.cost_expr.empty() ? std::to_string(h.cost) : h.cost_expr)
        << "\n";
  }
  out << "\nFOLDERS\n# Folder\tLocation at\n";
  for (const auto& fs : adf.folder_servers) {
    out << fs.id << "\t" << fs.host << "\n";
  }
  out << "\nPROCESSES\n# Proc\tDirectory\tLocated at\n";
  for (const auto& p : adf.processes) {
    out << p.id << "\t" << p.directory << "\t" << p.host << "\n";
  }
  out << "\nPPC\n# Point-to-Point Connection with cost\n";
  for (const auto& l : adf.links) {
    out << l.a << " " << (l.duplex ? "<->" : "->") << " " << l.b << " "
        << l.cost << "\n";
  }
  return out.str();
}

AppDescription SystemDefaultAdf() {
  AppDescription adf;
  adf.app_name = "default";
  adf.hosts.push_back(HostSpec{"localhost", 1, "local", 1.0, "1"});
  adf.folder_servers.push_back(FolderServerSpec{0, "localhost"});
  return adf;
}

}  // namespace dmemo
