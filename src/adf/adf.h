// Application Description File (paper Sec. 4.3).
//
// An ADF has five sections — APP, HOSTS, FOLDERS, PROCESSES, PPC — that name
// the application, list host machines (with processor count, architecture
// and cost), place folder servers, place boss/worker processes, and define
// the logical point-to-point topology with link costs. '#' starts a comment.
// Numeric names may be ranges ("3-8"). Host costs may be expressions in
// architecture names ("sun4*0.5"). Any missing section is filled from the
// system default ADF.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace dmemo {

struct HostSpec {
  std::string name;        // internet address / hostname
  int processors = 1;      // number of processors on the machine
  std::string arch;        // architecture label, e.g. "sun4", "sp1"
  double cost = 1.0;       // resolved per-processor cost
  std::string cost_expr;   // original expression text, e.g. "sun4*0.5"
};

struct FolderServerSpec {
  int id = 0;          // numeric folder-server name
  std::string host;    // machine it resides on
};

struct ProcessSpec {
  int id = 0;              // numeric process name
  std::string directory;   // source directory (contains the Makefile)
  std::string host;        // machine it executes on
};

struct LinkSpec {
  std::string a;
  std::string b;
  bool duplex = true;   // "<->" duplex, "->" simplex (a to b only)
  double cost = 1.0;    // link cost: distance + transmission speed
};

struct AppDescription {
  std::string app_name;
  std::vector<HostSpec> hosts;
  std::vector<FolderServerSpec> folder_servers;
  std::vector<ProcessSpec> processes;
  std::vector<LinkSpec> links;

  const HostSpec* FindHost(std::string_view name) const;
  // Folder servers residing on `host`.
  std::vector<FolderServerSpec> FolderServersOn(std::string_view host) const;

  // Structural checks: known hosts everywhere, unique ids, >= 1 folder
  // server, every link endpoint declared. ("Each software defined link must
  // have a corresponding physical connection" is unenforceable on a
  // simulated network and is not checked.)
  Status Validate() const;
};

// Which sections a parse actually saw (missing ones default — Sec. 4.3).
struct AdfSections {
  bool app = false;
  bool hosts = false;
  bool folders = false;
  bool processes = false;
  bool ppc = false;
};

struct ParsedAdf {
  AppDescription description;
  AdfSections present;
};

// Parse ADF text. Host cost expressions are resolved against the HOSTS
// section itself (an arch name denotes the resolved cost of the first host
// of that arch).
Result<ParsedAdf> ParseAdf(std::string_view text);
Result<ParsedAdf> ParseAdfFile(const std::string& path);

// Fill any section missing from `user` with the system default's section.
AppDescription MergeWithDefault(const ParsedAdf& user,
                                const AppDescription& system_default);

// Render back to ADF syntax (parse(format(x)) == x up to comments).
std::string FormatAdf(const AppDescription& adf);

// The built-in system default: one host (localhost, arch "local", cost 1),
// one folder server on it, no processes, no links.
AppDescription SystemDefaultAdf();

}  // namespace dmemo
