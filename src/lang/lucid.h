// Lucid-style streams over the memo space (paper Sec. 2: "Lucid, a dataflow
// programming language" was implemented on top of the API; reference [5] is
// the authors' own demand-driven Lucid translation).
//
// A Lucid variable is an infinite stream; programs are equations over
// streams. This layer implements the classic operator set —
//
//   Constant(v)      v, v, v, ...
//   Input()          fed element-by-element by the host
//   Map(f, deps)     pointwise application
//   Fby(h, t)        h(0), t(0), t(1), ...        ("followed by")
//   Next(s)          s(1), s(2), ...
//   First(s)         s(0), s(0), ...
//   Whenever(s, c)   s filtered to ticks where c is true
//
// with *demand-driven* evaluation: At(stream, i) computes exactly the
// elements the answer transitively needs, memoized in the memo space (each
// stream is an I-structure: folder {S=stream_sym, X=[i]} holds element i —
// Sec. 6.2.5's "I-structures were invented for dataflow" made literal).
// Recursive definitions (nat = 0 fby nat+1) use Forward()/Bind().
//
// Cells are assign-once and values are deterministic; concurrent demand may
// recompute a cell (both writers race) but every copy is equal, so reads
// via get_copy are well-defined regardless.
#pragma once

#include <functional>
#include <vector>

#include "core/memo.h"
#include "transferable/scalars.h"

namespace dmemo {

using StreamId = std::uint32_t;

// Pointwise function: one value per dependency stream at the same tick.
using StreamFn =
    std::function<Result<TransferablePtr>(std::span<const TransferablePtr>)>;

class LucidProgram {
 public:
  explicit LucidProgram(Memo memo);

  LucidProgram(const LucidProgram&) = delete;
  LucidProgram& operator=(const LucidProgram&) = delete;

  StreamId Constant(TransferablePtr value);
  StreamId Input();
  StreamId Map(StreamFn fn, std::vector<StreamId> deps);
  StreamId Fby(StreamId head, StreamId tail);
  StreamId Next(StreamId s);
  StreamId First(StreamId s);
  // Elements of `s` at ticks where `cond` (a TBool stream) is true,
  // compacted: Whenever(s,c)(i) = s(j) for the i-th j with c(j) true.
  StreamId Whenever(StreamId s, StreamId cond);

  // Recursive equations: declare, use, then bind the definition.
  StreamId Forward();
  Status Bind(StreamId forward, StreamId definition);

  // Feed element i of an input stream (assign-once per element).
  Status Feed(StreamId input, std::uint32_t i, TransferablePtr value);

  // Demand element i (blocking only on unfed input elements).
  Result<TransferablePtr> At(StreamId s, std::uint32_t i);

  // First n elements, evaluated front to back (keeps recursion shallow for
  // history-dependent streams like nat/fib).
  Result<std::vector<TransferablePtr>> Take(StreamId s, std::uint32_t n);

  // Elements actually computed (memoization metric for tests/benches).
  std::uint64_t cells_computed() const { return computed_; }

 private:
  enum class Kind { kConstant, kInput, kMap, kFby, kNext, kFirst,
                    kWhenever, kForward };

  struct Stream {
    Kind kind;
    TransferablePtr constant;      // kConstant
    StreamFn fn;                   // kMap
    std::vector<StreamId> deps;    // kMap / kFby{head,tail} / kNext / ...
    StreamId bound = 0;            // kForward after Bind
    bool is_bound = false;
  };

  Key CellKey(StreamId s, std::uint32_t i) const {
    return Key(cells_, {s, i});
  }

  Result<TransferablePtr> Demand(StreamId s, std::uint32_t i, int depth);
  Result<TransferablePtr> Compute(StreamId s, std::uint32_t i, int depth);

  Memo memo_;
  Symbol cells_;
  std::vector<Stream> streams_;
  std::uint64_t computed_ = 0;
};

// Convenience numeric helpers for the common integer-stream programs.
StreamFn AddFn();
StreamFn MulFn();
StreamFn IntPredicateFn(std::function<bool(std::int64_t)> pred);

}  // namespace dmemo
