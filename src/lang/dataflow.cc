#include "lang/dataflow.h"

#include "util/log.h"

namespace dmemo {

namespace {
constexpr std::uint32_t kPoisonNode = 0xffffffffu;
constexpr std::string_view kErrorField = "__dataflow_error";
}  // namespace

DataflowGraph::DataflowGraph(Memo memo)
    : memo_(std::move(memo)),
      cells_(memo_.create_symbol()),
      counts_(memo_.create_symbol()),
      jar_(memo_.create_symbol()) {}

DataflowGraph::~DataflowGraph() { Stop(); }

NodeId DataflowGraph::AddInput() {
  nodes_.push_back(Node{nullptr, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId DataflowGraph::AddNode(DataflowOp op, std::vector<NodeId> deps) {
  nodes_.push_back(Node{std::move(op), std::move(deps)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status DataflowGraph::Start(int workers) {
  if (started_.exchange(true)) {
    return FailedPreconditionError("dataflow graph already started");
  }
  // Arm every trigger before any token can possibly fire: operand cells are
  // only written by Feed (caller, after Start returns) and by workers
  // (started last), so no release can race with arming.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.op == nullptr) continue;  // input cell
    if (!node.deps.empty()) {
      // Arrival counter as a shared record (implicit lock).
      DMEMO_RETURN_IF_ERROR(memo_.put(CountKey(id), MakeInt32(0)));
      for (NodeId dep : node.deps) {
        // Sec. 6.3.3 verbatim: one parked token per operand; the operand's
        // arrival drops the token into the ready jar.
        DMEMO_RETURN_IF_ERROR(memo_.put_delayed(
            CellKey(dep), ReadyJar(),
            std::make_shared<TUInt32>(id)));
      }
    }
  }
  // Constant nodes (no operands) are ready immediately.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].op != nullptr && nodes_[id].deps.empty()) {
      DMEMO_RETURN_IF_ERROR(
          memo_.put(ReadyJar(), std::make_shared<TUInt32>(id)));
    }
  }
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

Status DataflowGraph::Feed(NodeId input, TransferablePtr value) {
  if (input >= nodes_.size() || nodes_[input].op != nullptr) {
    return InvalidArgumentError("node " + std::to_string(input) +
                                " is not an input");
  }
  return memo_.put(CellKey(input), std::move(value));
}

Result<TransferablePtr> DataflowGraph::Await(NodeId node) {
  if (node >= nodes_.size()) {
    return OutOfRangeError("no node " + std::to_string(node));
  }
  DMEMO_ASSIGN_OR_RETURN(TransferablePtr value,
                         memo_.get_copy(CellKey(node)));
  if (value != nullptr && value->type_id() == TRecord::kTypeId) {
    auto rec = std::static_pointer_cast<TRecord>(value);
    if (auto err = rec->Get(kErrorField)) {
      return InternalError(
          "dataflow node failed: " +
          std::static_pointer_cast<TString>(err)->value());
    }
  }
  return value;
}

void DataflowGraph::WorkerLoop() {
  for (;;) {
    auto token = memo_.get(ReadyJar());
    if (!token.ok()) return;  // space closed
    const std::uint32_t id =
        std::static_pointer_cast<TUInt32>(*token)->value();
    if (id == kPoisonNode) return;
    FireNode(id);
  }
}

void DataflowGraph::FireNode(NodeId id) {
  const Node& node = nodes_[id];
  if (!node.deps.empty()) {
    // Take the arrival counter (implicit lock), bump, decide.
    auto count = memo_.get(CountKey(id));
    if (!count.ok()) return;  // shutting down
    const int arrived =
        std::static_pointer_cast<TInt32>(*count)->value() + 1;
    if (arrived < static_cast<int>(node.deps.size())) {
      (void)memo_.put(CountKey(id), MakeInt32(arrived));
      return;  // more operands still outstanding
    }
    // Last operand arrived; the counter is consumed and its folder
    // vanishes. Fall through to execution.
  }
  std::vector<TransferablePtr> operands;
  operands.reserve(node.deps.size());
  for (NodeId dep : node.deps) {
    auto value = memo_.get_copy(CellKey(dep));
    if (!value.ok()) return;
    operands.push_back(std::move(*value));
  }
  auto output = node.op(operands);
  fired_.fetch_add(1, std::memory_order_relaxed);
  if (output.ok()) {
    (void)memo_.put(CellKey(id), std::move(*output));
  } else {
    // Surface the failure to Await-ers instead of hanging them.
    auto err = std::make_shared<TRecord>();
    err->Set(std::string(kErrorField),
             MakeString(output.status().ToString()));
    (void)memo_.put(CellKey(id), err);
  }
}

void DataflowGraph::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    (void)memo_.put(ReadyJar(), std::make_shared<TUInt32>(kPoisonNode));
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::uint64_t DataflowGraph::nodes_fired() const {
  return fired_.load(std::memory_order_relaxed);
}

}  // namespace dmemo
