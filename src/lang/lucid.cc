#include "lang/lucid.h"

namespace dmemo {

namespace {
// Demanding element i of a history-defined stream recurses to i-1; Take()
// keeps that shallow, and this bound converts runaway direct demands into
// an error instead of a stack overflow.
constexpr int kMaxDemandDepth = 4096;
// Whenever() scans its condition stream forward; a condition that is never
// true again must terminate with an error, not spin forever.
constexpr std::uint32_t kMaxWheneverScan = 1u << 16;
}  // namespace

LucidProgram::LucidProgram(Memo memo)
    : memo_(std::move(memo)), cells_(memo_.create_symbol()) {}

StreamId LucidProgram::Constant(TransferablePtr value) {
  streams_.push_back(Stream{Kind::kConstant, std::move(value), nullptr, {},
                            0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::Input() {
  streams_.push_back(Stream{Kind::kInput, nullptr, nullptr, {}, 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::Map(StreamFn fn, std::vector<StreamId> deps) {
  streams_.push_back(
      Stream{Kind::kMap, nullptr, std::move(fn), std::move(deps), 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::Fby(StreamId head, StreamId tail) {
  streams_.push_back(
      Stream{Kind::kFby, nullptr, nullptr, {head, tail}, 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::Next(StreamId s) {
  streams_.push_back(Stream{Kind::kNext, nullptr, nullptr, {s}, 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::First(StreamId s) {
  streams_.push_back(Stream{Kind::kFirst, nullptr, nullptr, {s}, 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::Whenever(StreamId s, StreamId cond) {
  streams_.push_back(
      Stream{Kind::kWhenever, nullptr, nullptr, {s, cond}, 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId LucidProgram::Forward() {
  streams_.push_back(
      Stream{Kind::kForward, nullptr, nullptr, {}, 0, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

Status LucidProgram::Bind(StreamId forward, StreamId definition) {
  if (forward >= streams_.size() ||
      streams_[forward].kind != Kind::kForward) {
    return InvalidArgumentError("not a forward stream");
  }
  if (streams_[forward].is_bound) {
    return FailedPreconditionError("forward stream already bound");
  }
  if (definition >= streams_.size()) {
    return InvalidArgumentError("unknown definition stream");
  }
  streams_[forward].bound = definition;
  streams_[forward].is_bound = true;
  return Status::Ok();
}

Status LucidProgram::Feed(StreamId input, std::uint32_t i,
                          TransferablePtr value) {
  if (input >= streams_.size() || streams_[input].kind != Kind::kInput) {
    return InvalidArgumentError("not an input stream");
  }
  return memo_.put(CellKey(input, i), std::move(value));
}

Result<TransferablePtr> LucidProgram::At(StreamId s, std::uint32_t i) {
  return Demand(s, i, 0);
}

Result<std::vector<TransferablePtr>> LucidProgram::Take(StreamId s,
                                                        std::uint32_t n) {
  std::vector<TransferablePtr> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr v, Demand(s, i, 0));
    out.push_back(std::move(v));
  }
  return out;
}

Result<TransferablePtr> LucidProgram::Demand(StreamId s, std::uint32_t i,
                                             int depth) {
  if (s >= streams_.size()) {
    return OutOfRangeError("unknown stream " + std::to_string(s));
  }
  if (depth > kMaxDemandDepth) {
    return InternalError(
        "demand recursion too deep — evaluate front to back with Take()");
  }
  const Stream& stream = streams_[s];
  // Aliases and inputs have no memo cells of their own.
  if (stream.kind == Kind::kForward) {
    if (!stream.is_bound) {
      return FailedPreconditionError("forward stream used before Bind");
    }
    return Demand(stream.bound, i, depth + 1);
  }
  if (stream.kind == Kind::kInput) {
    // Blocks until the host feeds the element (assign-once cell).
    return memo_.get_copy(CellKey(s, i));
  }
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t present, memo_.count(CellKey(s, i)));
  if (present > 0) {
    return memo_.get_copy(CellKey(s, i));
  }
  DMEMO_ASSIGN_OR_RETURN(TransferablePtr value, Compute(s, i, depth));
  ++computed_;
  // Another demander may have raced us here; both computed the same
  // deterministic value, so an extra equal memo is harmless (reads copy).
  DMEMO_ASSIGN_OR_RETURN(std::uint64_t raced, memo_.count(CellKey(s, i)));
  if (raced == 0) {
    DMEMO_RETURN_IF_ERROR(memo_.put(CellKey(s, i), value));
  }
  return value;
}

Result<TransferablePtr> LucidProgram::Compute(StreamId s, std::uint32_t i,
                                              int depth) {
  const Stream& stream = streams_[s];
  switch (stream.kind) {
    case Kind::kConstant:
      return stream.constant;
    case Kind::kMap: {
      std::vector<TransferablePtr> args;
      args.reserve(stream.deps.size());
      for (StreamId dep : stream.deps) {
        DMEMO_ASSIGN_OR_RETURN(TransferablePtr v, Demand(dep, i, depth + 1));
        args.push_back(std::move(v));
      }
      return stream.fn(args);
    }
    case Kind::kFby:
      return i == 0 ? Demand(stream.deps[0], 0, depth + 1)
                    : Demand(stream.deps[1], i - 1, depth + 1);
    case Kind::kNext:
      return Demand(stream.deps[0], i + 1, depth + 1);
    case Kind::kFirst:
      return Demand(stream.deps[0], 0, depth + 1);
    case Kind::kWhenever: {
      // Find the (i+1)-th tick where the condition holds.
      std::uint32_t seen = 0;
      for (std::uint32_t j = 0; j < kMaxWheneverScan; ++j) {
        DMEMO_ASSIGN_OR_RETURN(TransferablePtr c,
                               Demand(stream.deps[1], j, depth + 1));
        if (c == nullptr || c->type_id() != TBool::kTypeId) {
          return InvalidArgumentError(
              "whenever condition must be a bool stream");
        }
        if (std::static_pointer_cast<TBool>(c)->value()) {
          if (seen == i) return Demand(stream.deps[0], j, depth + 1);
          ++seen;
        }
      }
      return OutOfRangeError("whenever: condition true fewer than " +
                             std::to_string(i + 1) + " times in scan range");
    }
    case Kind::kInput:
    case Kind::kForward:
      return InternalError("handled in Demand");
  }
  return InternalError("unknown stream kind");
}

StreamFn AddFn() {
  return [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
    std::int64_t sum = 0;
    for (const auto& a : args) {
      sum += std::static_pointer_cast<TInt64>(a)->value();
    }
    return MakeInt64(sum);
  };
}

StreamFn MulFn() {
  return [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
    std::int64_t prod = 1;
    for (const auto& a : args) {
      prod *= std::static_pointer_cast<TInt64>(a)->value();
    }
    return MakeInt64(prod);
  };
}

StreamFn IntPredicateFn(std::function<bool(std::int64_t)> pred) {
  return [pred = std::move(pred)](std::span<const TransferablePtr> args)
             -> Result<TransferablePtr> {
    return MakeBool(pred(std::static_pointer_cast<TInt64>(args[0])->value()));
  };
}

}  // namespace dmemo
