#include "lang/actors.h"

#include "util/log.h"

namespace dmemo {

bool PatternMatches(const MessagePattern& pattern, const std::string& type,
                    const TransferablePtr& payload) {
  if (pattern.type != type) return false;
  if (pattern.fields.empty()) return true;
  if (payload == nullptr || payload->type_id() != TRecord::kTypeId) {
    return false;
  }
  const auto& record = static_cast<const TRecord&>(*payload);
  for (const auto& match : pattern.fields) {
    TransferablePtr value = record.Get(match.field);
    if (value == nullptr || match.equals == nullptr) return false;
    if (!TransferableEquals(*value, *match.equals)) return false;
  }
  return true;
}

TransferablePtr MakeActorMessage(const std::string& type,
                                 TransferablePtr payload) {
  auto msg = std::make_shared<TRecord>();
  msg->Set("type", MakeString(type));
  msg->Set("payload", std::move(payload));
  return msg;
}

ActorSystem::ActorSystem(Memo memo, int dispatchers)
    : memo_(std::move(memo)),
      dispatchers_(dispatchers),
      control_(Key(memo_.create_symbol())),
      in_flight_(Key(memo_.create_symbol())) {}

ActorSystem::~ActorSystem() { Shutdown(); }

Status ActorSystem::Spawn(const std::string& name, Behavior behavior) {
  if (started_.load()) {
    return FailedPreconditionError("spawn after start");
  }
  auto [it, inserted] = actors_.emplace(name, std::move(behavior));
  if (!inserted) return AlreadyExistsError("actor " + name + " exists");
  mailboxes_.push_back(MailboxKey(name));
  mailbox_owner_.push_back(name);
  return Status::Ok();
}

Status ActorSystem::Start() {
  if (started_.exchange(true)) {
    return FailedPreconditionError("already started");
  }
  DMEMO_RETURN_IF_ERROR(memo_.put(in_flight_, MakeInt32(0)));
  mailboxes_.push_back(control_);  // dispatchers also wait on control
  for (int i = 0; i < dispatchers_; ++i) {
    threads_.emplace_back([this] { DispatcherLoop(); });
  }
  return Status::Ok();
}

Status ActorSystem::Send(const std::string& actor, const std::string& type,
                         TransferablePtr payload) {
  // Bump the in-flight counter first so Drain can never observe zero while
  // a message exists that no handler has finished.
  DMEMO_ASSIGN_OR_RETURN(TransferablePtr count, memo_.get(in_flight_));
  const int n = std::static_pointer_cast<TInt32>(count)->value();
  DMEMO_RETURN_IF_ERROR(memo_.put(in_flight_, MakeInt32(n + 1)));
  return memo_.put(MailboxKey(actor), MakeActorMessage(type, std::move(payload)));
}

void ActorSystem::DispatcherLoop() {
  for (;;) {
    auto hit = memo_.get_alt(mailboxes_);
    if (!hit.ok()) return;  // space closed
    if (hit->first == control_) return;  // shutdown token

    // Which actor does this mailbox belong to?
    std::string owner;
    for (std::size_t i = 0; i < mailbox_owner_.size(); ++i) {
      if (mailboxes_[i] == hit->first) {
        owner = mailbox_owner_[i];
        break;
      }
    }
    auto record = std::static_pointer_cast<TRecord>(hit->second);
    std::string type;
    TransferablePtr payload;
    if (record != nullptr && record->Get("type") != nullptr) {
      type = std::static_pointer_cast<TString>(record->Get("type"))->value();
      payload = record->Get("payload");
    }

    const Behavior& behavior = actors_.at(owner);
    ActorContext ctx(this, owner);
    bool handled = false;
    for (const auto& [pattern, handler] : behavior.patterns) {
      if (PatternMatches(pattern, type, payload)) {
        handler(ctx, payload);
        handled = true;
        break;
      }
    }
    if (!handled) {
      auto handler_it = behavior.handlers.find(type);
      if (handler_it != behavior.handlers.end()) {
        handler_it->second(ctx, payload);
      } else if (behavior.otherwise) {
        behavior.otherwise(ctx, payload);
      } else {
        DMEMO_LOG(kWarn) << "actor " << owner
                         << " dropped message of type '" << type << "'";
      }
    }
    handled_.fetch_add(1, std::memory_order_relaxed);

    // Message fully handled: decrement in-flight.
    auto count = memo_.get(in_flight_);
    if (!count.ok()) return;
    const int n = std::static_pointer_cast<TInt32>(*count)->value();
    (void)memo_.put(in_flight_, MakeInt32(n - 1));
  }
}

Status ActorSystem::Drain() {
  for (;;) {
    DMEMO_ASSIGN_OR_RETURN(TransferablePtr count,
                           memo_.get_copy(in_flight_));
    if (std::static_pointer_cast<TInt32>(count)->value() == 0) {
      return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ActorSystem::Shutdown() {
  if (!started_.load() || stopped_.exchange(true)) return;
  for (int i = 0; i < dispatchers_; ++i) {
    (void)memo_.put(control_, MakeInt32(0));
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t ActorSystem::messages_handled() const {
  return handled_.load(std::memory_order_relaxed);
}

}  // namespace dmemo
