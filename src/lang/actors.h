// Message-driven computing layer (paper Sec. 2: "Message Driven Computing
// language, a pattern-driven language based on Actors" was implemented on
// top of the API).
//
// Actors are named mailboxes (folders). A behaviour is a set of
// pattern-handlers keyed by message type; messages are TRecords whose
// "type" field selects the handler — the pattern-driven dispatch of MDC.
// Dispatcher threads drain the mailboxes of the actors they own with
// get_alt, so an idle system parks inside the memo space rather than
// polling. Sends are ordinary puts: location-transparent, and cross-machine
// for free when the Memo handle is remote.
//
// Folders are unordered queues, so message delivery to one actor is
// unordered — true to the abstraction (Actors semantics require only
// fairness, not order).
#pragma once

#include <functional>
#include <thread>
#include <unordered_map>

#include "core/memo.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

namespace dmemo {

class ActorContext;

// Handles one message; may send further messages through the context.
using ActorHandler =
    std::function<void(ActorContext&, const TransferablePtr& payload)>;

// MDC-style message pattern: matches a message when the type agrees AND
// every listed field of the (record) payload structurally equals the given
// value. Patterns are tried in registration order before the per-type
// handlers, so the most specific rule can be listed first — the
// pattern-driven dispatch of Message Driven Computing.
struct FieldMatch {
  std::string field;
  TransferablePtr equals;
};

struct MessagePattern {
  std::string type;
  std::vector<FieldMatch> fields;
};

// Does `pattern` match a message of `type` with `payload`?
bool PatternMatches(const MessagePattern& pattern, const std::string& type,
                    const TransferablePtr& payload);

// A behaviour: guarded patterns (checked first, in order), then a handler
// per message type, then an optional default.
struct Behavior {
  std::vector<std::pair<MessagePattern, ActorHandler>> patterns;
  std::unordered_map<std::string, ActorHandler> handlers;
  ActorHandler otherwise;  // null: unmatched messages are dropped (logged)
};

class ActorSystem {
 public:
  // `dispatchers` threads share the work of running all actors.
  ActorSystem(Memo memo, int dispatchers);
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  // Create an actor. All Spawn calls must precede Start.
  Status Spawn(const std::string& name, Behavior behavior);

  Status Start();

  // Send `payload` as a `type`-tagged message to the named actor. Any
  // process holding a Memo on the same application can send — the actor's
  // address is just a folder name.
  Status Send(const std::string& actor, const std::string& type,
              TransferablePtr payload);

  // Block until every message sent so far has been handled.
  Status Drain();

  void Shutdown();

  std::uint64_t messages_handled() const;

  // The mailbox folder of an actor (stable across processes).
  static Key MailboxKey(const std::string& actor) {
    return Key::Named("actor-mailbox:" + actor);
  }

 private:
  friend class ActorContext;

  void DispatcherLoop();

  Memo memo_;
  int dispatchers_;
  Key control_;   // shutdown tokens land here
  Key in_flight_; // counter record for Drain

  std::unordered_map<std::string, Behavior> actors_;
  std::vector<Key> mailboxes_;  // all actor mailboxes + control
  std::vector<std::string> mailbox_owner_;  // actor name per mailbox index
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> handled_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

// Passed to handlers: identifies the receiving actor and allows sends.
class ActorContext {
 public:
  ActorContext(ActorSystem* system, std::string self)
      : system_(system), self_(std::move(self)) {}

  const std::string& self() const { return self_; }

  Status Send(const std::string& actor, const std::string& type,
              TransferablePtr payload) {
    return system_->Send(actor, type, std::move(payload));
  }

 private:
  ActorSystem* system_;
  std::string self_;
};

// Build a typed actor message (a TRecord with "type" and "payload").
TransferablePtr MakeActorMessage(const std::string& type,
                                 TransferablePtr payload);

}  // namespace dmemo
