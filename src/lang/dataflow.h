// Dataflow engine (paper Sec. 2: "Lucid, a dataflow programming language"
// was implemented on top of the API; Sec. 6.3.3: "The system simplifies
// dataflow programming by providing the put_delayed procedure").
//
// A DataflowGraph is a static network of operation nodes over assign-once
// operand cells (futures). The engine is D-Memo-native: every piece of its
// runtime state lives in the memo space —
//   * operand and output cells are futures (folders written once),
//   * readiness tokens travel through put_delayed triggers: arming a node
//     parks one token per operand that releases into the ready jar when the
//     operand's folder receives its value (Sec. 6.3.3, verbatim mechanism),
//   * per-node arrival counts are shared records (implicitly locked),
//   * workers are plain processes draining the ready jar with get.
// Demand-driven (Lucid-style) evaluation falls out: nothing executes until
// operands arrive, and pipelines overlap because independent nodes fire as
// their own operands complete.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "core/memo.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

namespace dmemo {

using NodeId = std::uint32_t;

// An operation: operand values in dependency order -> output value.
using DataflowOp =
    std::function<Result<TransferablePtr>(std::span<const TransferablePtr>)>;

class DataflowGraph {
 public:
  explicit DataflowGraph(Memo memo);
  ~DataflowGraph();

  DataflowGraph(const DataflowGraph&) = delete;
  DataflowGraph& operator=(const DataflowGraph&) = delete;

  // An external input cell (fed by the host program).
  NodeId AddInput();

  // An operation node depending on earlier nodes. Must be called before
  // Start(); the graph is static, like a Lucid network.
  NodeId AddNode(DataflowOp op, std::vector<NodeId> deps);

  // Launch `workers` evaluation threads and arm all triggers.
  Status Start(int workers);

  // Assign an input cell (once).
  Status Feed(NodeId input, TransferablePtr value);

  // Block until the node's output cell is written; non-destructive.
  Result<TransferablePtr> Await(NodeId node);

  // Stop workers (idempotent; called by the destructor).
  void Stop();

  // Nodes fired so far (diagnostics / benches).
  std::uint64_t nodes_fired() const;

 private:
  struct Node {
    DataflowOp op;           // null for inputs
    std::vector<NodeId> deps;
  };

  Key CellKey(NodeId id) const { return Key(cells_, {id}); }
  Key CountKey(NodeId id) const { return Key(counts_, {id}); }
  Key ReadyJar() const { return Key(jar_); }

  void WorkerLoop();
  void FireNode(NodeId id);

  Memo memo_;
  Symbol cells_;   // output/input cells: one future per node
  Symbol counts_;  // per-node arrival counters (shared records)
  Symbol jar_;     // the ready jar
  std::vector<Node> nodes_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace dmemo
