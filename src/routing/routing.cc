#include "routing/routing.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/hash.h"

namespace dmemo {

namespace {
constexpr std::size_t kNoHop = ~std::size_t{0};
}

Result<RoutingTable> RoutingTable::Build(const AppDescription& adf) {
  DMEMO_RETURN_IF_ERROR(adf.Validate());
  RoutingTable table;
  table.adf_ = adf;

  const std::size_t n = adf.hosts.size();
  for (std::size_t i = 0; i < n; ++i) {
    table.host_names_.push_back(adf.hosts[i].name);
    table.host_index_.emplace(adf.hosts[i].name, i);
  }

  // Adjacency: min cost per arc (parallel links keep the cheapest).
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  auto add_arc = [&](std::size_t a, std::size_t b, double cost) {
    for (auto& [to, c] : adj[a]) {
      if (to == b) {
        c = std::min(c, cost);
        return;
      }
    }
    adj[a].emplace_back(b, cost);
  };
  for (const auto& link : adf.links) {
    const std::size_t a = table.host_index_.at(link.a);
    const std::size_t b = table.host_index_.at(link.b);
    add_arc(a, b, link.cost);
    if (link.duplex) add_arc(b, a, link.cost);
  }

  // Dijkstra from every source (host counts are small; O(n * m log m)).
  table.dist_.assign(n, std::vector<double>(n, kUnreachable));
  table.next_.assign(n, std::vector<std::size_t>(n, kNoHop));
  for (std::size_t src = 0; src < n; ++src) {
    auto& dist = table.dist_[src];
    auto& next = table.next_[src];
    dist[src] = 0;
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, src);
    std::vector<bool> done(n, false);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (done[u]) continue;
      done[u] = true;
      for (const auto& [v, cost] : adj[u]) {
        const double nd = d + cost;
        if (nd < dist[v]) {
          dist[v] = nd;
          // First hop: inherit u's first hop, unless u is the source.
          next[v] = (u == src) ? v : next[u];
          heap.emplace(nd, v);
        }
      }
    }
  }

  // Per-server rendezvous weights (see header for the formula).
  table.servers_ = adf.folder_servers;
  std::unordered_map<std::string, std::size_t> servers_per_host;
  for (const auto& fs : table.servers_) ++servers_per_host[fs.host];

  double total = 0;
  for (const auto& fs : table.servers_) {
    const HostSpec* host = adf.FindHost(fs.host);
    const std::size_t hi = table.host_index_.at(fs.host);
    // Mean path cost from every host (including itself at 0) to the
    // server's host; unreachable sources simply do not contribute.
    double sum_cost = 0;
    std::size_t reachable = 0;
    for (std::size_t src = 0; src < n; ++src) {
      const double d = table.dist_[src][hi];
      if (d != kUnreachable) {
        sum_cost += d;
        ++reachable;
      }
    }
    const double mean_cost = reachable > 0 ? sum_cost / reachable : 0;
    const double power = host->processors / host->cost;
    const double weight =
        power / static_cast<double>(servers_per_host[fs.host]) /
        (1.0 + mean_cost);
    table.weights_.push_back(weight);
    total += weight;
    table.seeds_.push_back(
        HashCombine(Fnv1a64(fs.host),
                    Mix64(static_cast<std::uint64_t>(fs.id) + 1)));
  }
  for (double& w : table.weights_) w /= total;
  return table;
}

Result<std::size_t> RoutingTable::HostIndex(std::string_view host) const {
  auto it = host_index_.find(std::string(host));
  if (it == host_index_.end()) {
    return NotFoundError("host '" + std::string(host) + "' not in ADF");
  }
  return it->second;
}

Result<double> RoutingTable::PathCost(std::string_view from,
                                      std::string_view to) const {
  DMEMO_ASSIGN_OR_RETURN(std::size_t a, HostIndex(from));
  DMEMO_ASSIGN_OR_RETURN(std::size_t b, HostIndex(to));
  return dist_[a][b];
}

Result<std::vector<std::string>> RoutingTable::Path(std::string_view from,
                                                    std::string_view to) const {
  DMEMO_ASSIGN_OR_RETURN(std::size_t a, HostIndex(from));
  DMEMO_ASSIGN_OR_RETURN(std::size_t b, HostIndex(to));
  if (dist_[a][b] == kUnreachable) {
    return UnavailableError("no path from " + std::string(from) + " to " +
                            std::string(to));
  }
  // Walk first-hop pointers from `a` toward `b`.
  std::vector<std::string> path{host_names_[a]};
  std::size_t cur = a;
  while (cur != b) {
    const std::size_t hop = next_[cur][b];
    if (hop == kNoHop) {
      return InternalError("broken next-hop chain");
    }
    path.push_back(host_names_[hop]);
    cur = hop;
  }
  return path;
}

Result<std::string> RoutingTable::NextHop(std::string_view from,
                                          std::string_view to) const {
  DMEMO_ASSIGN_OR_RETURN(std::size_t a, HostIndex(from));
  DMEMO_ASSIGN_OR_RETURN(std::size_t b, HostIndex(to));
  if (a == b) return std::string(host_names_[a]);
  const std::size_t hop = next_[a][b];
  if (hop == kNoHop) {
    return UnavailableError("no path from " + std::string(from) + " to " +
                            std::string(to));
  }
  return std::string(host_names_[hop]);
}

Result<FolderServerSpec> RoutingTable::ServerForKey(
    std::span<const std::uint8_t> key_bytes) const {
  if (servers_.empty()) {
    return FailedPreconditionError("routing table has no folder servers");
  }
  const std::uint64_t key_hash = Fnv1a64(key_bytes);
  // Weighted rendezvous: score_i = -ln(u_i) / w_i with u_i uniform per
  // (key, server); the minimum-score server wins with probability
  // proportional to w_i. Deterministic: u_i depends only on hashes.
  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const double u = HashToUnit(Mix64(key_hash ^ seeds_[i]));
    // Guard u == 0: log(0) = -inf would make this server win every key.
    const double score =
        -std::log(std::max(u, 1e-18)) / weights_[i];
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return servers_[best];
}

}  // namespace dmemo
