// Routing (paper Sec. 3.1.1 collaborator + Sec. 5 performance policy).
//
// Built from an ADF: the PPC section gives a weighted directed graph over
// hosts (duplex links add both arcs). The routing table answers
//   * path cost / hop sequence between hosts (Dijkstra), used by memo
//     servers to forward inter-machine traffic, and
//   * which folder server owns a folder key.
//
// Folder-server selection implements Sec. 5 with weighted rendezvous
// hashing. A server's weight combines processor power and network locality:
//
//     power(host)  = processors / processor_cost        (ADF HOSTS section)
//     weight(s)    = power(host(s)) / servers_on_host
//                    / (1 + mean path cost from all hosts to host(s))
//
// giving "a higher percentage of proportional probability of hashing memos"
// to fast hosts and discounting servers behind expensive links. The mean
// (rather than per-client) link term keeps the mapping identical on every
// machine: all references to one folder must reach one server, and "no
// broadcasting is done by the system" — consistency must come from the hash
// alone.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "adf/adf.h"
#include "util/status.h"

namespace dmemo {

inline constexpr double kUnreachable =
    std::numeric_limits<double>::infinity();

class RoutingTable {
 public:
  // Validates the ADF and precomputes all-pairs paths and server weights.
  static Result<RoutingTable> Build(const AppDescription& adf);

  // Cheapest path cost from `from` to `to`; kUnreachable when disconnected;
  // NOT_FOUND for undeclared hosts. Cost of a host to itself is 0.
  Result<double> PathCost(std::string_view from, std::string_view to) const;

  // Hop sequence including both endpoints (just {from} when from == to).
  Result<std::vector<std::string>> Path(std::string_view from,
                                        std::string_view to) const;

  // Next host on the cheapest path (== to when directly adjacent).
  Result<std::string> NextHop(std::string_view from,
                              std::string_view to) const;

  // The folder server owning `key_bytes` (the application-qualified encoded
  // folder name). Deterministic across processes and machines.
  Result<FolderServerSpec> ServerForKey(
      std::span<const std::uint8_t> key_bytes) const;

  // Normalized selection probability of each folder server (sums to 1);
  // index-aligned with servers(). Exposed for the distribution experiments.
  const std::vector<double>& server_weights() const { return weights_; }
  const std::vector<FolderServerSpec>& servers() const { return servers_; }

  const AppDescription& adf() const { return adf_; }

 private:
  RoutingTable() = default;

  Result<std::size_t> HostIndex(std::string_view host) const;

  AppDescription adf_;
  std::vector<std::string> host_names_;
  std::unordered_map<std::string, std::size_t> host_index_;
  // dist_[i][j]: cheapest path cost; next_[i][j]: first hop index (or npos).
  std::vector<std::vector<double>> dist_;
  std::vector<std::vector<std::size_t>> next_;

  std::vector<FolderServerSpec> servers_;
  std::vector<double> weights_;       // normalized
  std::vector<std::uint64_t> seeds_;  // per-server rendezvous seed
};

}  // namespace dmemo
