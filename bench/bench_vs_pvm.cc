// E10 — Section 7 vs PVM.
//
// PVM-style direct message passing has less machinery per message than a
// folder deposit (no hashing, no server, no unordered queue), so raw
// point-to-point latency favours PVM. But PVM's static work distribution
// cannot re-balance: with heterogeneous worker speeds, pre-assigned shards
// finish at the speed of the slowest machine, while the D-Memo job jar
// keeps every worker busy until the jar is dry — the dynamic data
// migration the paper says PVM lacks.
//
// Shape expected: PVM wins the raw ping-pong; D-Memo's job jar wins the
// heterogeneous boss/worker makespan by roughly the speed imbalance.
#include <thread>

#include "baselines/pvm.h"
#include "bench_common.h"
#include "patterns/job_jar.h"

namespace dmemo::bench {
namespace {

double ComputeUnits(int units) {
  double x = 1.0001;
  for (int i = 0; i < units * 20'000; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

// Raw message round trip: PVM mailbox vs memo folder (both in-process).
void PingPongPvm(benchmark::State& state) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  pvm::TaskId b = vm.Enroll();
  std::thread echo([&] {
    for (;;) {
      auto msg = vm.Receive(b);
      if (!msg.ok()) return;
      if (msg->tag == 99) return;
      (void)vm.Send(b, a, msg->tag, std::move(msg->body));
    }
  });
  Bytes payload(64, 0x11);
  for (auto _ : state) {
    (void)vm.Send(a, b, 1, payload);
    benchmark::DoNotOptimize(vm.Receive(a));
  }
  (void)vm.Send(a, b, 99, {});
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(PingPongPvm);

void PingPongDMemo(benchmark::State& state) {
  auto space = std::make_shared<LocalSpace>("pp");
  Memo a = Memo::Local(space);
  Memo b = Memo::Local(space);
  Key to_b = Key::Named("to_b");
  Key to_a = Key::Named("to_a");
  std::thread echo([&] {
    for (;;) {
      auto msg = b.get(to_b);
      if (!msg.ok()) return;
      if (*msg == nullptr) return;  // poison: a null payload
      (void)b.put(to_a, std::move(*msg));
    }
  });
  auto payload = Payload(64);
  for (auto _ : state) {
    (void)a.put(to_b, payload);
    benchmark::DoNotOptimize(a.get(to_a));
  }
  (void)a.put(to_b, nullptr);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(PingPongDMemo);

// Heterogeneous boss/worker makespan. Three workers with speed ratio
// 4:2:1 process 60 equal tasks.
//   PVM: the boss statically pre-assigns 20 tasks to each worker.
//   D-Memo: tasks sit in a shared job jar; workers self-schedule.
constexpr int kTasks = 60;
constexpr int kUnitsPerTask = 2;
// slowdown factors (inverse speeds)
constexpr int kSlowdowns[3] = {1, 2, 4};

void HeterogeneousPvmStatic(benchmark::State& state) {
  for (auto _ : state) {
    pvm::VirtualMachine vm;
    pvm::TaskId boss = vm.Enroll();
    std::vector<pvm::TaskId> ids;
    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w) ids.push_back(vm.Enroll());
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&vm, &ids, boss, w] {
        double sink = 0;
        for (;;) {
          auto msg = vm.Receive(ids[static_cast<std::size_t>(w)]);
          if (!msg.ok() || msg->tag == 99) break;
          sink += ComputeUnits(kUnitsPerTask * kSlowdowns[w]);
          (void)vm.Send(ids[static_cast<std::size_t>(w)], boss, 1, {});
        }
        benchmark::DoNotOptimize(sink);
      });
    }
    // Static round-robin pre-assignment: 20 tasks each, no re-balancing.
    for (int t = 0; t < kTasks; ++t) {
      (void)vm.Send(boss, ids[static_cast<std::size_t>(t % 3)], 1, {});
    }
    for (int t = 0; t < kTasks; ++t) {
      (void)vm.Receive(boss);
    }
    for (int w = 0; w < 3; ++w) {
      (void)vm.Send(boss, ids[static_cast<std::size_t>(w)], 99, {});
    }
    for (auto& t : workers) t.join();
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.SetLabel("pvm static assignment, workers 4:2:1");
}
BENCHMARK(HeterogeneousPvmStatic)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void HeterogeneousDMemoJobJar(benchmark::State& state) {
  for (auto _ : state) {
    auto space = std::make_shared<LocalSpace>("hetero");
    Memo boss = Memo::Local(space);
    Key jar = Key::Named("jar");
    Key done = Key::Named("done");
    std::vector<std::thread> workers;
    std::vector<int> tasks_done(3, 0);
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&space, &tasks_done, w] {
        Memo memo = Memo::Local(space);
        Key jar_key = Key::Named("jar");
        Key done_key = Key::Named("done");
        double sink = 0;
        for (;;) {
          auto task = memo.get(jar_key);
          if (!task.ok() || *task == nullptr) break;
          sink += ComputeUnits(kUnitsPerTask * kSlowdowns[w]);
          ++tasks_done[static_cast<std::size_t>(w)];
          (void)memo.put(done_key, MakeInt32(1));
        }
        benchmark::DoNotOptimize(sink);
      });
    }
    for (int t = 0; t < kTasks; ++t) (void)boss.put(jar, MakeInt32(t));
    for (int t = 0; t < kTasks; ++t) (void)boss.get(done);
    for (int w = 0; w < 3; ++w) (void)boss.put(jar, nullptr);
    for (auto& t : workers) t.join();
    state.counters["fast_worker_tasks"] =
        static_cast<double>(tasks_done[0]);
    state.counters["slow_worker_tasks"] =
        static_cast<double>(tasks_done[2]);
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.SetLabel("dmemo job jar, workers 4:2:1");
}
BENCHMARK(HeterogeneousDMemoJobJar)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
