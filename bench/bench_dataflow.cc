// E14 — Section 6.3.3: dataflow on the memo space.
//
// Measures (a) the cost of one put_delayed trigger cycle against its eager
// equivalent (two puts + a get), (b) dataflow-graph evaluation throughput
// for pipelines and for wide fan-out graphs, and (c) that independent
// stages overlap across workers.
//
// Shape expected: the trigger costs roughly one extra folder operation;
// wide graphs gain from more workers while a serial chain does not.
#include "bench_common.h"
#include "lang/dataflow.h"
#include "lang/lucid.h"

namespace dmemo::bench {
namespace {

double NumOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TFloat64>(v)->value();
}

DataflowOp AddAll() {
  return [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
    double sum = 0;
    for (const auto& a : args) sum += NumOf(a);
    return MakeFloat64(sum);
  };
}

// Some real per-node work so parallelism has something to chew on.
DataflowOp AddAllWithWork(int units) {
  return [units](std::span<const TransferablePtr> args)
             -> Result<TransferablePtr> {
    double sum = 0;
    for (const auto& a : args) sum += NumOf(a);
    double x = 1.0001;
    for (int i = 0; i < units * 20'000; ++i) x = x * 1.0000001 + 1e-9;
    return MakeFloat64(sum + x * 1e-12);
  };
}

// (a) trigger cycle vs eager hand-off.
void TriggerCycle(benchmark::State& state) {
  auto space = std::make_shared<LocalSpace>("df");
  Memo memo = Memo::Local(space);
  Key operand = Key::Named("operand");
  Key jar = Key::Named("jar");
  for (auto _ : state) {
    (void)memo.put_delayed(operand, jar, MakeInt32(1));
    (void)memo.put(operand, MakeInt32(0));
    benchmark::DoNotOptimize(memo.get(jar));
    benchmark::DoNotOptimize(memo.get(operand));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("put_delayed trigger cycle");
}
BENCHMARK(TriggerCycle);

void EagerEquivalent(benchmark::State& state) {
  auto space = std::make_shared<LocalSpace>("df2");
  Memo memo = Memo::Local(space);
  Key operand = Key::Named("operand");
  Key jar = Key::Named("jar");
  for (auto _ : state) {
    (void)memo.put(operand, MakeInt32(0));
    (void)memo.put(jar, MakeInt32(1));
    benchmark::DoNotOptimize(memo.get(jar));
    benchmark::DoNotOptimize(memo.get(operand));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("eager equivalent (no trigger)");
}
BENCHMARK(EagerEquivalent);

// (b) serial pipeline: depth-D chain; workers cannot help.
void Pipeline(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  auto space = std::make_shared<LocalSpace>("dfp");
  Memo memo = Memo::Local(space);
  for (auto _ : state) {
    DataflowGraph graph(memo);
    NodeId prev = graph.AddInput();
    NodeId input = prev;
    for (int i = 0; i < depth; ++i) {
      prev = graph.AddNode(AddAll(), {prev});
    }
    if (!graph.Start(workers).ok()) break;
    (void)graph.Feed(input, MakeFloat64(1.0));
    benchmark::DoNotOptimize(graph.Await(prev));
    graph.Stop();
  }
  state.SetItemsProcessed(state.iterations() * depth);
  state.SetLabel("chain depth " + std::to_string(depth) + ", " +
                 std::to_string(workers) + " workers");
}
BENCHMARK(Pipeline)->Args({64, 1})->Args({64, 4})
    ->Unit(benchmark::kMicrosecond);

// (c) wide fan-out with real per-node work: workers overlap stages.
void WideFanOut(benchmark::State& state) {
  const int width = 32;
  const int workers = static_cast<int>(state.range(0));
  auto space = std::make_shared<LocalSpace>("dfw");
  Memo memo = Memo::Local(space);
  for (auto _ : state) {
    DataflowGraph graph(memo);
    NodeId in = graph.AddInput();
    std::vector<NodeId> mids;
    for (int i = 0; i < width; ++i) {
      mids.push_back(graph.AddNode(AddAllWithWork(8), {in}));
    }
    NodeId total = graph.AddNode(AddAll(), mids);
    if (!graph.Start(workers).ok()) break;
    (void)graph.Feed(in, MakeFloat64(1.0));
    benchmark::DoNotOptimize(graph.Await(total));
    graph.Stop();
  }
  state.SetItemsProcessed(state.iterations() * width);
  state.SetLabel(std::to_string(width) + "-wide graph, " +
                 std::to_string(workers) + " workers");
}
BENCHMARK(WideFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Lucid streams: cold evaluation (every cell computed once, on demand) and
// warm re-reads (fully memoized in the memo space).
void LucidNatCold(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  auto space = std::make_shared<LocalSpace>("lucid-bench");
  Memo memo = Memo::Local(space);
  for (auto _ : state) {
    LucidProgram p(memo);
    StreamId nat = p.Forward();
    StreamId one = p.Constant(MakeInt64(1));
    (void)p.Bind(nat, p.Fby(p.Constant(MakeInt64(0)),
                            p.Map(AddFn(), {nat, one})));
    auto vs = p.Take(nat, n);
    benchmark::DoNotOptimize(vs);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("nat cold, " + std::to_string(n) + " elements");
}
BENCHMARK(LucidNatCold)->Arg(64)->Arg(512);

void LucidNatWarm(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  auto space = std::make_shared<LocalSpace>("lucid-bench-warm");
  Memo memo = Memo::Local(space);
  LucidProgram p(memo);
  StreamId nat = p.Forward();
  StreamId one = p.Constant(MakeInt64(1));
  (void)p.Bind(nat, p.Fby(p.Constant(MakeInt64(0)),
                          p.Map(AddFn(), {nat, one})));
  (void)p.Take(nat, n);  // populate the memo cells
  for (auto _ : state) {
    auto vs = p.Take(nat, n);  // pure memoized reads
    benchmark::DoNotOptimize(vs);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel("nat warm (memoized), " + std::to_string(n) + " elements");
}
BENCHMARK(LucidNatWarm)->Arg(64)->Arg(512);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
