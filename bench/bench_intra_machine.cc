// E1 — Figure 1: intra-machine server behaviour.
//
// put/get latency and throughput through the folder + memo servers on one
// machine, across transports (in-process simnet, true shared-memory rings,
// Unix-domain sockets, TCP loopback), payload sizes, and folder-server
// counts.
//
// Shape expected: shared-memory paths (simnet in-process; shm rings
// cross-process) beat Unix sockets, which beat TCP loopback; throughput
// grows with folder count because independent folders do not contend.
#include <atomic>
#include <deque>
#include <future>
#include <thread>

#include "bench_common.h"
#include "transport/shm_transport.h"
#include "transport/socket_transport.h"

namespace dmemo::bench {
namespace {

enum class Net { kSim, kUnix, kTcp, kShm };

std::unique_ptr<Cluster> StartOn(Net net, const AppDescription& adf) {
  switch (net) {
    case Net::kSim:
      return ClusterOrDie(adf);
    case Net::kUnix: {
      static std::atomic<int> counter{0};
      const int run = counter.fetch_add(1);
      auto cluster = Cluster::Start(
          adf, MakeUnixTransport(), [run](const std::string& host) {
            return "unix:///tmp/dmemo-bench-" + std::to_string(::getpid()) +
                   "-" + std::to_string(run) + "-" + host + ".sock";
          });
      if (!cluster.ok()) throw std::runtime_error(cluster.status().ToString());
      return std::move(*cluster);
    }
    case Net::kShm: {
      static std::atomic<int> counter{0};
      const int run = counter.fetch_add(1);
      auto cluster = Cluster::Start(
          adf, MakeShmTransport(), [run](const std::string& host) {
            return "shm:///tmp/dmemo-bench-shm-" + std::to_string(::getpid()) +
                   "-" + std::to_string(run) + "-" + host + ".sock";
          });
      if (!cluster.ok()) throw std::runtime_error(cluster.status().ToString());
      return std::move(*cluster);
    }
    case Net::kTcp: {
      // Sequential fixed ports would collide across runs; pick from the
      // ephemeral-ish range based on pid.
      static std::atomic<int> port{20000 + (::getpid() % 10000)};
      std::map<std::string, int> assigned;
      auto cluster = Cluster::Start(
          adf, MakeTcpTransport(), [&assigned](const std::string& host) {
            auto [it, fresh] = assigned.emplace(host, 0);
            if (fresh) it->second = port.fetch_add(1);
            return "tcp://127.0.0.1:" + std::to_string(it->second);
          });
      if (!cluster.ok()) throw std::runtime_error(cluster.status().ToString());
      return std::move(*cluster);
    }
  }
  throw std::runtime_error("unknown net");
}

const char* NetName(Net net) {
  switch (net) {
    case Net::kSim: return "sim";
    case Net::kUnix: return "unix";
    case Net::kTcp: return "tcp";
    case Net::kShm: return "shm";
  }
  return "?";
}

// Latency: one client, put+get round trip, payload sweep.
void IntraRoundTrip(benchmark::State& state) {
  const Net net = static_cast<Net>(state.range(0));
  const std::size_t payload = static_cast<std::size_t>(state.range(1));
  auto cluster = StartOn(net, OneHostAdf("intra"));
  Memo memo = ClientOrDie(*cluster, "hostA");
  Key key = Key::Named("f");
  auto value = Payload(payload);
  for (auto _ : state) {
    (void)memo.put(key, value);
    benchmark::DoNotOptimize(memo.get(key));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload) * 2);
  state.SetLabel(std::string(NetName(net)) + "/" +
                 std::to_string(payload) + "B");
}
BENCHMARK(IntraRoundTrip)
    ->ArgsProduct({{0, 1, 2, 3}, {16, 1024, 65536}})
    ->UseRealTime();

// Throughput: several producer/consumer pairs on distinct folders; the
// folder count controls available parallelism (Figure 1's threaded servers).
void IntraThroughput(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  auto cluster = StartOn(Net::kSim, OneHostAdf("intra_tp"));
  for (auto _ : state) {
    std::atomic<long> moved{0};
    constexpr int kPerPair = 200;
    std::vector<std::thread> threads;
    for (int p = 0; p < pairs; ++p) {
      threads.emplace_back([&cluster, &moved, p] {
        Memo producer = ClientOrDie(*cluster, "hostA");
        Key key = Key::Named("tp", {static_cast<std::uint32_t>(p)});
        for (int i = 0; i < kPerPair; ++i) {
          (void)producer.put(key, MakeInt32(i));
        }
      });
      threads.emplace_back([&cluster, &moved, p] {
        Memo consumer = ClientOrDie(*cluster, "hostA");
        Key key = Key::Named("tp", {static_cast<std::uint32_t>(p)});
        for (int i = 0; i < kPerPair; ++i) {
          if (consumer.get(key).ok()) moved.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    state.counters["memos"] = static_cast<double>(moved.load());
  }
  state.SetItemsProcessed(state.iterations() * pairs * 200);
  state.SetLabel(std::to_string(pairs) + " folder pairs");
}
BENCHMARK(IntraThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Pipelined small-op throughput across transports: a 256-deep window of
// put_async calls per client, coalesced into packed frames by the
// rpc-formation layer. Contrast with IntraRoundTrip's sync ops — the ratio
// is the round-trip overhead the async client amortizes away.
void IntraAsyncPipelined(benchmark::State& state) {
  const Net net = static_cast<Net>(state.range(0));
  constexpr std::size_t kWindow = 256;
  auto cluster = StartOn(net, OneHostAdf("intra_async"));
  Memo memo = ClientOrDie(*cluster, "hostA");
  Key key = Key::Named("f");
  std::deque<std::future<Status>> window;
  std::uint64_t errors = 0;
  for (auto _ : state) {
    window.push_back(memo.put_async(key, MakeInt32(1)));
    if (window.size() >= kWindow) {
      // About to block: flush the partial batch instead of waiting out the
      // formation delay timer (Memo::flush).
      if (window.front().wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        memo.flush();
      }
      if (!window.front().get().ok()) ++errors;
      window.pop_front();
    }
  }
  memo.flush();
  while (!window.empty()) {
    if (!window.front().get().ok()) ++errors;
    window.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["errors"] = static_cast<double>(errors);
  state.SetLabel(std::string(NetName(net)) + "/async-pipelined");
}
BENCHMARK(IntraAsyncPipelined)
    ->ArgsProduct({{0, 1, 2, 3}})
    ->UseRealTime();

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
