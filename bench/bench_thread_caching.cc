// E6 — Section 4.1: thread caching.
//
// "The system uses the idea of thread caching to avoid the overhead of
// creating processes un-necessarily. When a thread completes its
// transactions, it will set a timer and wait for additional requests."
//
// Ablation: the same request stream against (a) cached threads, (b)
// thread-per-request (ttl = 0), (c) serial execution. Shape expected:
// caching beats spawn-per-request clearly; the gap is the thread-creation
// cost the paper is avoiding.
#include <atomic>

#include "bench_common.h"
#include "util/worker_pool.h"

namespace dmemo::bench {
namespace {

using namespace std::chrono_literals;

// Raw pool cost: submit a trivial request, wait for completion.
void PoolRequest(benchmark::State& state) {
  const auto ttl = std::chrono::milliseconds(state.range(0));
  WorkerPool::Options opts;
  opts.cache_ttl = ttl;
  WorkerPool pool(opts);
  for (auto _ : state) {
    // The pool is live for the whole loop, so Submit cannot fail here.
    (void)pool.Submit([] {});
    pool.Drain();
  }
  auto stats = pool.GetStats();
  state.counters["threads_spawned"] =
      static_cast<double>(stats.threads_spawned);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ttl.count() == 0 ? "thread-per-request"
                                  : "cached (ttl=" +
                                        std::to_string(ttl.count()) + "ms)");
}
BENCHMARK(PoolRequest)->Arg(0)->Arg(250)->UseRealTime();

// Bursts: 64 requests at once, drain, repeat — the server arrival pattern.
void PoolBurst(benchmark::State& state) {
  const auto ttl = std::chrono::milliseconds(state.range(0));
  WorkerPool::Options opts;
  opts.cache_ttl = ttl;
  WorkerPool pool(opts);
  std::atomic<int> done{0};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)pool.Submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Drain();
  }
  auto stats = pool.GetStats();
  state.counters["threads_spawned"] =
      static_cast<double>(stats.threads_spawned);
  state.counters["hit_rate"] =
      stats.tasks_executed > 0
          ? static_cast<double>(stats.cache_hits) / stats.tasks_executed
          : 0.0;
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(ttl.count() == 0 ? "thread-per-request" : "cached");
}
BENCHMARK(PoolBurst)->Arg(0)->Arg(250)->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// TTL sweep: how long should a thread linger? Bursts arrive every ~5 ms;
// a ttl below the gap expires threads between bursts (re-spawn cost), a
// ttl above it keeps them warm. The knee should sit near the arrival gap.
void PoolTtlSweep(benchmark::State& state) {
  const auto ttl = std::chrono::milliseconds(state.range(0));
  WorkerPool::Options opts;
  opts.cache_ttl = ttl;
  WorkerPool pool(opts);
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      (void)pool.Submit([] {});
    }
    pool.Drain();
    // Inter-burst gap, untimed: models request trains with idle valleys.
    state.PauseTiming();
    std::this_thread::sleep_for(5ms);
    state.ResumeTiming();
  }
  auto stats = pool.GetStats();
  state.counters["threads_spawned"] =
      static_cast<double>(stats.threads_spawned);
  state.counters["threads_expired"] =
      static_cast<double>(stats.threads_expired);
  state.SetItemsProcessed(state.iterations() * 8);
  state.SetLabel("ttl=" + std::to_string(ttl.count()) + "ms, bursts 5ms apart");
}
BENCHMARK(PoolTtlSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->UseRealTime()
    ->Unit(benchmark::kMicrosecond)->MinTime(0.1);

// End to end: the same memo-server request stream with caching on/off.
void ServerRequests(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  auto adf = OneHostAdf("cache");
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  MemoServerOptions opts;
  opts.host = "hostA";
  opts.listen_url = "sim://hostA";
  opts.peers = {{"hostA", "sim://hostA"}};
  opts.pool.cache_ttl = cached ? 250ms : 0ms;
  auto server = MemoServer::Start(transport, opts);
  if (!server.ok()) throw std::runtime_error(server.status().ToString());
  if (!(*server)->RegisterApp(adf).ok()) throw std::runtime_error("register");

  RemoteEngineOptions client_opts;
  client_opts.app = "cache";
  client_opts.host = "hostA";
  auto engine = MakeRemoteEngine(transport, "sim://hostA", client_opts);
  if (!engine.ok()) throw std::runtime_error(engine.status().ToString());
  Memo memo(std::move(*engine));

  Key key = Key::Named("f");
  for (auto _ : state) {
    (void)memo.put(key, MakeInt32(1));
    benchmark::DoNotOptimize(memo.get(key));
  }
  auto stats = (*server)->pool_stats();
  state.counters["threads_spawned"] =
      static_cast<double>(stats.threads_spawned);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cached ? "server, cached threads"
                        : "server, thread-per-request");
  (*server)->Shutdown();
}
BENCHMARK(ServerRequests)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
