// Zero-copy pipeline bench: bytes memcpy'd per put-style message, legacy
// single-buffer path vs the IoBuf chain (util/iobuf.h).
//
// The pipeline meters every payload memcpy it performs through
// dmemo_pipeline_payload_copies_total (IoBuf copy points, the sim queue
// hand-off, the legacy decode copy). This bench sends put-style requests
// one way over a connected pair and reports the counter delta as a
// multiple of payload bytes:
//
//   * sim path, legacy:     ~3x (encode copy + queue hand-off + decode copy)
//   * sim path, zero-copy:  ~1x (only the queue hand-off — the "wire")
//   * unix loopback legacy: ~2x (encode copy + decode copy; the kernel's
//                            copies are outside the meter)
//   * unix loopback zero:   ~0x (header bytes only)
//
// The legacy and zero-copy encodings are asserted byte-identical before
// measuring (also property-tested): the speedup is pure plumbing, not a
// wire-format change.
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "server/protocol.h"
#include "transport/simnet.h"
#include "transport/socket_transport.h"
#include "transport/transport.h"
#include "util/iobuf.h"

namespace dmemo::bench {
namespace {

std::pair<ConnectionPtr, ConnectionPtr> ConnectedPair(TransportPtr transport,
                                                      const std::string& url) {
  auto listener = transport->Listen(url);
  if (!listener.ok()) throw std::runtime_error("listen");
  ConnectionPtr server;
  std::thread accepter([&] {
    auto s = (*listener)->Accept();
    if (s.ok()) server = std::move(*s);
  });
  auto client = transport->Dial((*listener)->address());
  accepter.join();
  if (!client.ok() || server == nullptr) throw std::runtime_error("dial");
  return {std::move(*client), std::move(server)};
}

std::pair<ConnectionPtr, ConnectionPtr> SimPair() {
  static SimNetworkPtr network = std::make_shared<SimNetwork>();
  static std::atomic<int> counter{0};
  return ConnectedPair(
      MakeSimTransport(network),
      "sim://zcopy" + std::to_string(counter.fetch_add(1)));
}

std::pair<ConnectionPtr, ConnectionPtr> UnixPair() {
  static std::atomic<int> counter{0};
  return ConnectedPair(MakeUnixTransport(),
                       "unix:///tmp/dmemo_zcopy_" + std::to_string(::getpid()) +
                           "_" + std::to_string(counter.fetch_add(1)) +
                           ".sock");
}

Request PutRequest(std::size_t payload_bytes) {
  Request req;
  req.op = Op::kPut;
  req.app = "zcopy";
  req.key = Key::Named("k", {1});
  req.trace_id = 42;
  req.request_id = 7;
  req.value = IoBuf::FromBytes(Bytes(payload_bytes, 0x5a));
  return req;
}

// The whole point is wire compatibility: refuse to measure if the two
// encode paths ever diverge.
void VerifyWireIdentityOrDie() {
  static const bool ok = [] {
    Request req = PutRequest(4096);
    ByteWriter legacy;
    req.EncodeTo(legacy);
    return req.EncodeToIoBuf() == legacy.data();
  }();
  if (!ok) throw std::runtime_error("IoBuf encoding diverged from legacy");
}

// One-way put-style traffic; the receiver decodes each frame the way the
// server does. `zero_copy` selects encode/send/decode path on both ends.
void PayloadCopies(benchmark::State& state) {
  VerifyWireIdentityOrDie();
  const bool zero_copy = state.range(0) != 0;
  const bool unix_path = state.range(1) != 0;
  const std::size_t payload_bytes = static_cast<std::size_t>(state.range(2));

  auto [tx, rx] = unix_path ? UnixPair() : SimPair();
  Request req = PutRequest(payload_bytes);

  std::thread receiver([&rx = rx, zero_copy] {
    for (;;) {
      auto frame = rx->Receive();
      if (!frame.ok()) return;  // peer closed after draining
      if (zero_copy) {
        IoBufReader reader(*frame);
        auto decoded = Request::DecodeFrom(reader);
        if (decoded.ok()) benchmark::DoNotOptimize(decoded->value.size());
      } else {
        Bytes scratch;
        ByteReader in(frame->ContiguousView(scratch));
        auto decoded = Request::DecodeFrom(in);
        if (decoded.ok()) benchmark::DoNotOptimize(decoded->value.size());
      }
    }
  });

  const std::uint64_t copies_before = PayloadCopyBytesTotal();
  std::uint64_t sent = 0;
  for (auto _ : state) {
    if (zero_copy) {
      if (!tx->SendBuf(req.EncodeToIoBuf()).ok()) {
        state.SkipWithError("send failed");
        break;
      }
    } else {
      ByteWriter w;
      req.EncodeTo(w);
      if (!tx->Send(w.data()).ok()) {
        state.SkipWithError("send failed");
        break;
      }
    }
    ++sent;
  }
  tx->Close();  // receiver drains queued frames, then Receive fails
  receiver.join();

  const std::uint64_t copied = PayloadCopyBytesTotal() - copies_before;
  state.SetBytesProcessed(static_cast<std::int64_t>(sent * payload_bytes));
  // Payload bytes memcpy'd per payload byte sent: the headline number.
  state.counters["copies_x_payload"] =
      sent == 0 ? 0.0
                : static_cast<double>(copied) /
                      (static_cast<double>(payload_bytes) *
                       static_cast<double>(sent));
}

BENCHMARK(PayloadCopies)
    ->ArgNames({"zero_copy", "unix", "payload"})
    // Sim path: legacy ~3x vs zero-copy ~1x.
    ->Args({0, 0, 64 * 1024})
    ->Args({1, 0, 64 * 1024})
    // Unix loopback: legacy ~2x vs zero-copy ~0x.
    ->Args({0, 1, 64 * 1024})
    ->Args({1, 1, 64 * 1024})
    // Large memos: the gap is what the relay/cache paths save per hop.
    ->Args({0, 0, 1024 * 1024})
    ->Args({1, 0, 1024 * 1024});

}  // namespace
}  // namespace dmemo::bench

DMEMO_BENCH_MAIN("bench_zero_copy")
