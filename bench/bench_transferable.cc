// E8 — Section 3.1.3: transferable encoding.
//
// "A spanning tree can be constructed in polynomial time. Thus, it is
// possible to encode (linearize) an arbitrary structure and to decode
// (de-linearize) it in polynomial time."
//
// Shape expected: encode/decode scale near-linearly in node count, for
// trees AND for shared/cyclic graphs (back-references are O(1)); scalar
// vectors approach a modest constant factor over raw memcpy.
#include <cstring>

#include "bench_common.h"
#include "transferable/codec.h"
#include "transferable/composite.h"

namespace dmemo::bench {
namespace {

TransferablePtr BuildTree(int fanout, int depth) {
  if (depth == 0) return MakeInt32(7);
  auto list = std::make_shared<TList>();
  for (int i = 0; i < fanout; ++i) {
    list->Add(BuildTree(fanout, depth - 1));
  }
  return list;
}

// A graph with heavy sharing: n records all pointing at one shared config
// node and at their predecessor (a DAG with 2n edges).
TransferablePtr BuildSharedGraph(int n) {
  auto config = MakeString("shared configuration blob");
  TransferablePtr prev;
  auto root = std::make_shared<TList>();
  for (int i = 0; i < n; ++i) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("config", config);
    if (prev) rec->Set("prev", prev);
    rec->Set("i", MakeInt32(i));
    prev = rec;
    root->Add(prev);
  }
  return root;
}

void EncodeTree(benchmark::State& state) {
  auto tree = BuildTree(4, static_cast<int>(state.range(0)));
  const auto nodes = GraphNodeCount(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeGraphToBytes(tree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(EncodeTree)->Arg(3)->Arg(5)->Arg(7);  // 85 / 1365 / 21845 nodes

void DecodeTree(benchmark::State& state) {
  auto tree = BuildTree(4, static_cast<int>(state.range(0)));
  const auto nodes = GraphNodeCount(tree);
  Bytes encoded = EncodeGraphToBytes(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeGraphFromBytes(encoded));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(DecodeTree)->Arg(3)->Arg(5)->Arg(7);

void RoundTripSharedGraph(benchmark::State& state) {
  auto graph = BuildSharedGraph(static_cast<int>(state.range(0)));
  const auto nodes = GraphNodeCount(graph);
  for (auto _ : state) {
    Bytes encoded = EncodeGraphToBytes(graph);
    auto decoded = DecodeGraphFromBytes(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(RoundTripSharedGraph)->Arg(64)->Arg(512)->Arg(4096);

void RoundTripCyclicRing(benchmark::State& state) {
  // A ring of records: every node is on a cycle.
  const int n = static_cast<int>(state.range(0));
  std::vector<std::shared_ptr<TRecord>> ring;
  for (int i = 0; i < n; ++i) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("i", MakeInt32(i));
    ring.push_back(rec);
  }
  for (int i = 0; i < n; ++i) ring[i]->Set("next", ring[(i + 1) % n]);
  TransferablePtr root = ring[0];
  for (auto _ : state) {
    Bytes encoded = EncodeGraphToBytes(root);
    auto decoded = DecodeGraphFromBytes(encoded);
    if (decoded.ok()) ReleaseGraph(*decoded);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
  state.counters["nodes"] = n;
  for (auto& rec : ring) rec->ClearChildren();
}
BENCHMARK(RoundTripCyclicRing)->Arg(64)->Arg(512)->Arg(2048);

void EncodeFloat64Vector(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto vec = MakeVecFloat64(std::vector<double>(n, 1.25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeGraphToBytes(vec));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(double)));
}
BENCHMARK(EncodeFloat64Vector)->Arg(1024)->Arg(65536);

// The memcpy floor the vector encoding should be compared against.
void MemcpyBaseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> src(n, 1.25);
  std::vector<std::uint8_t> dst(n * sizeof(double));
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), dst.size());
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dst.size()));
}
BENCHMARK(MemcpyBaseline)->Arg(1024)->Arg(65536);

void DomainCheckCost(benchmark::State& state) {
  // The receiving-side lossy-mapping walk (E8 corollary): proportional to
  // graph size, skipped entirely on universal profiles.
  auto graph = BuildSharedGraph(static_cast<int>(state.range(0)));
  const auto profile = ProfileI486();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindLossyMappings(*graph, profile));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(DomainCheckCost)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
