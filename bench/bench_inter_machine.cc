// E2 — Figure 2: inter-machine server behaviour.
//
// A request from a process on host A to a folder on host B crosses
// A's memo server, the A<->B link, and B's memo server before reaching B's
// folder server. This bench measures that path against the local fast path
// and shows the extra per-hop cost explicitly.
//
// Shape expected: remote access costs a small integer multiple of local;
// the difference is the two extra memo-server traversals plus the link.
#include "bench_common.h"

namespace dmemo::bench {
namespace {

// Pin a key owned by the given host (probing the routing table).
Key KeyOwnedBy(const Cluster& cluster, const std::string& host,
               const std::string& stem) {
  auto routing = RoutingTable::Build(cluster.adf());
  if (!routing.ok()) throw std::runtime_error("routing");
  for (std::uint32_t i = 0; i < 4096; ++i) {
    Key key = Key::Named(stem, {i});
    auto owner = routing->ServerForKey(
        QualifiedKey{cluster.adf().app_name, key}.ToBytes());
    if (owner.ok() && owner->host == host) return key;
  }
  throw std::runtime_error("no key hashed to " + host);
}

class InterMachine : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    cluster_ = ClusterOrDie(TwoHostAdf("inter"));
    client_.emplace(ClientOrDie(*cluster_, "hostA"));
    local_key_ = KeyOwnedBy(*cluster_, "hostA", "k");
    remote_key_ = KeyOwnedBy(*cluster_, "hostB", "k");
  }
  void TearDown(const benchmark::State&) override {
    client_.reset();
    cluster_.reset();
  }

 protected:
  std::unique_ptr<Cluster> cluster_;
  std::optional<Memo> client_;
  Key local_key_;
  Key remote_key_;
};

BENCHMARK_DEFINE_F(InterMachine, LocalFolder)(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  auto value = Payload(payload);
  for (auto _ : state) {
    (void)client_->put(local_key_, value);
    benchmark::DoNotOptimize(client_->get(local_key_));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("A->A, " + std::to_string(payload) + "B");
}
BENCHMARK_REGISTER_F(InterMachine, LocalFolder)->Arg(16)->Arg(4096);

BENCHMARK_DEFINE_F(InterMachine, RemoteFolder)(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  auto value = Payload(payload);
  for (auto _ : state) {
    (void)client_->put(remote_key_, value);
    benchmark::DoNotOptimize(client_->get(remote_key_));
  }
  state.SetItemsProcessed(state.iterations());
  // The forwarded fraction verifies the path really crossed machines.
  state.counters["forwards"] = static_cast<double>(
      cluster_->server("hostA").stats().forwarded);
  state.SetLabel("A->B, " + std::to_string(payload) + "B");
}
BENCHMARK_REGISTER_F(InterMachine, RemoteFolder)->Arg(16)->Arg(4096);

// Producer on A, consumer on B: the Figure-2 hand-off including a parked
// blocking get at B's folder server.
BENCHMARK_DEFINE_F(InterMachine, CrossMachineHandoff)
(benchmark::State& state) {
  Memo consumer = ClientOrDie(*cluster_, "hostB");
  auto value = Payload(64);
  for (auto _ : state) {
    (void)client_->put(remote_key_, value);
    benchmark::DoNotOptimize(consumer.get(remote_key_));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(InterMachine, CrossMachineHandoff);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
