// E11 — per-primitive cost of the Memo API (paper Sec. 6.1.2 / 6.3).
//
// Shape expected: get_copy ≈ get + a deep copy; get_alt grows mildly with
// the number of alternatives; put_delayed ≈ the cost of two puts (one to
// park, one released on trigger); semaphore and barrier cycles are small
// multiples of put/get.
#include <deque>
#include <future>

#include "bench_common.h"
#include "patterns/patterns.h"

namespace dmemo::bench {
namespace {

// Local engine: the pure data-structure cost without wire overhead.
class LocalPrimitives : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    space_ = std::make_shared<LocalSpace>("bench");
    memo_.emplace(Memo::Local(space_));
  }
  void TearDown(const benchmark::State&) override {
    space_->Close();
    memo_.reset();
    space_.reset();
  }

 protected:
  LocalSpacePtr space_;
  std::optional<Memo> memo_;
};

BENCHMARK_F(LocalPrimitives, Put)(benchmark::State& state) {
  Key key = Key::Named("f");
  for (auto _ : state) {
    (void)memo_->put(key, MakeInt32(1));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LocalPrimitives, PutThenGet)(benchmark::State& state) {
  Key key = Key::Named("f");
  for (auto _ : state) {
    (void)memo_->put(key, MakeInt32(1));
    benchmark::DoNotOptimize(memo_->get(key));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LocalPrimitives, GetCopy)(benchmark::State& state) {
  Key key = Key::Named("f");
  (void)memo_->put(key, MakeVecFloat64(std::vector<double>(64, 1.0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo_->get_copy(key));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LocalPrimitives, GetSkipEmpty)(benchmark::State& state) {
  Key key = Key::Named("empty");
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo_->get_skip(key));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LocalPrimitives, PutDelayedTriggerRelease)
(benchmark::State& state) {
  Key trigger = Key::Named("t");
  Key jar = Key::Named("jar");
  for (auto _ : state) {
    (void)memo_->put_delayed(trigger, jar, MakeInt32(1));
    (void)memo_->put(trigger, MakeInt32(0));  // releases the delayed memo
    benchmark::DoNotOptimize(memo_->get(jar));
    benchmark::DoNotOptimize(memo_->get(trigger));
  }
  state.SetItemsProcessed(state.iterations());
}

// get_alt cost as the alternative count grows (1..64 folders, value in the
// last one — worst case for the scan).
class LocalGetAlt : public LocalPrimitives {};

BENCHMARK_DEFINE_F(LocalGetAlt, Alternatives)(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<Key> keys;
  for (std::uint32_t i = 0; i < n; ++i) {
    keys.push_back(Key::Named("alt", {i}));
  }
  for (auto _ : state) {
    (void)memo_->put(keys.back(), MakeInt32(1));
    benchmark::DoNotOptimize(memo_->get_alt(keys));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["alternatives"] = n;
}
BENCHMARK_REGISTER_F(LocalGetAlt, Alternatives)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_F(LocalPrimitives, SemaphorePV)(benchmark::State& state) {
  MemoSemaphore sem(*memo_, Key::Named("sem"));
  (void)sem.Initialize(1);
  for (auto _ : state) {
    (void)sem.Acquire();
    (void)sem.Release();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LocalPrimitives, SharedRecordUpdate)(benchmark::State& state) {
  SharedRecord record(*memo_, Key::Named("rec"));
  (void)record.Initialize(MakeInt32(0));
  for (auto _ : state) {
    auto checkout = record.Acquire();
    checkout->value() = MakeInt32(1);
    (void)checkout->Commit();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LocalPrimitives, OrderedQueuePushPop)(benchmark::State& state) {
  // FIFO built on counter records: each push/pop pair costs four folder
  // operations (ticket get+put, element put/get) — the price of order.
  OrderedQueue q(*memo_, memo_->create_symbol());
  (void)q.Initialize();
  for (auto _ : state) {
    (void)q.Push(MakeInt32(1));
    benchmark::DoNotOptimize(q.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}

// Remote engine through a full memo-server round trip, for contrast.
class RemotePrimitives : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    cluster_ = ClusterOrDie(OneHostAdf("benchr"));
    memo_.emplace(ClientOrDie(*cluster_, "hostA"));
  }
  void TearDown(const benchmark::State&) override {
    memo_.reset();
    cluster_.reset();
  }

 protected:
  std::unique_ptr<Cluster> cluster_;
  std::optional<Memo> memo_;
};

BENCHMARK_F(RemotePrimitives, PutThenGet)(benchmark::State& state) {
  Key key = Key::Named("f");
  for (auto _ : state) {
    (void)memo_->put(key, MakeInt32(1));
    benchmark::DoNotOptimize(memo_->get(key));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(RemotePrimitives, PutDelayedTriggerRelease)
(benchmark::State& state) {
  Key trigger = Key::Named("t");
  Key jar = Key::Named("jar");
  for (auto _ : state) {
    (void)memo_->put_delayed(trigger, jar, MakeInt32(1));
    (void)memo_->put(trigger, MakeInt32(0));
    benchmark::DoNotOptimize(memo_->get(jar));
    benchmark::DoNotOptimize(memo_->get(trigger));
  }
  state.SetItemsProcessed(state.iterations());
}

// The pipelined counterpart of PutThenGet: a window of in-flight put_async
// calls rides one connection, coalescing into packed frames instead of
// paying a full round trip per op. The throughput ratio against the sync
// PutThenGet above is the headline number for the rpc-formation layer.
BENCHMARK_F(RemotePrimitives, PutAsyncPipelined)(benchmark::State& state) {
  constexpr std::size_t kWindow = 256;
  Key key = Key::Named("f");
  std::deque<std::future<Status>> window;
  std::uint64_t errors = 0;
  for (auto _ : state) {
    window.push_back(memo_->put_async(key, MakeInt32(1)));
    if (window.size() >= kWindow) {
      // About to block: push the partial batch out now (Memo::flush)
      // instead of letting it ride the formation delay timer.
      if (window.front().wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        memo_->flush();
      }
      if (!window.front().get().ok()) ++errors;
      window.pop_front();
    }
  }
  memo_->flush();
  while (!window.empty()) {
    if (!window.front().get().ok()) ++errors;
    window.pop_front();
  }
  // Drain the folder so repeated runs don't accumulate memos.
  for (std::int64_t i = 0; i < state.iterations(); ++i) {
    (void)memo_->get_skip(key);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["errors"] = static_cast<double>(errors);
}

// Balanced pipelined traffic: every iteration issues one put_async and one
// get_async (the get rides behind its put, so it never parks past the
// drain). Measures the packed-frame path with both frame kinds in play.
BENCHMARK_F(RemotePrimitives, PutGetAsyncPipelined)(benchmark::State& state) {
  constexpr std::size_t kWindow = 128;  // pairs in flight
  Key key = Key::Named("f");
  std::deque<std::future<Result<TransferablePtr>>> window;
  std::uint64_t errors = 0;
  for (auto _ : state) {
    (void)memo_->put_async(key, MakeInt32(1));
    window.push_back(memo_->get_async(key));
    if (window.size() >= kWindow) {
      if (window.front().wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        memo_->flush();
      }
      if (!window.front().get().ok()) ++errors;
      window.pop_front();
    }
  }
  memo_->flush();
  while (!window.empty()) {
    if (!window.front().get().ok()) ++errors;
    window.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["errors"] = static_cast<double>(errors);
}

}  // namespace
}  // namespace dmemo::bench

DMEMO_BENCH_MAIN("bench_primitives")
