// E4 + E5 — Section 5: memo distribution over the network.
//
// E4: "By classifying each host with a ratio percentage of processing
// power, the system can control the distribution of memos... by giving a
// higher percentage of proportional probability of hashing memos to a given
// host." We hash large key populations and report each server's share next
// to its power share.
//
// E5: link weights steer the hashing ("hashing a memo to a folder server
// considers communication link and processor overhead"), and "no
// broadcasting is done by the system" — message cost is independent of the
// server count.
//
// Shape expected: empirical shares track power shares within noise (E4);
// servers behind expensive links receive less (E5a); bytes sent per put do
// not grow with the number of folder servers (E5b).
#include "bench_common.h"

namespace dmemo::bench {
namespace {

// Share of keys landing on each server for a given ADF, reported as
// counters "share_<id>" alongside the model's predicted "weight_<id>".
void HashingShare(benchmark::State& state, const std::string& adf_text) {
  auto adf = AdfOrDie(adf_text);
  auto routing = RoutingTable::Build(adf);
  if (!routing.ok()) throw std::runtime_error(routing.status().ToString());
  constexpr int kKeys = 100'000;
  std::map<int, int> hits;
  for (auto _ : state) {
    hits.clear();
    for (std::uint32_t i = 0; i < kKeys; ++i) {
      QualifiedKey qk{adf.app_name, Key::Named("folder", {i})};
      auto owner = routing->ServerForKey(qk.ToBytes());
      ++hits[owner->id];
    }
    benchmark::DoNotOptimize(hits);
  }
  for (std::size_t s = 0; s < routing->servers().size(); ++s) {
    const int id = routing->servers()[s].id;
    state.counters["share_" + std::to_string(id)] =
        static_cast<double>(hits[id]) / kKeys;
    state.counters["weight_" + std::to_string(id)] =
        routing->server_weights()[s];
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}

// E4a: equal hosts -> even distribution (the paper's stated default).
void EvenDistribution(benchmark::State& state) {
  HashingShare(state,
               "APP even\nHOSTS\na 1 t 1\nb 1 t 1\nc 1 t 1\n"
               "FOLDERS\n0 a\n1 b\n2 c\n"
               "PPC\na <-> b 1\nb <-> c 1\nc <-> a 1\n");
}
BENCHMARK(EvenDistribution);

// E4b: 2:1:1 processor power.
void PowerWeightedDistribution(benchmark::State& state) {
  HashingShare(state,
               "APP power\nHOSTS\na 2 t 1\nb 1 t 1\nc 1 t 1\n"
               "FOLDERS\n0 a\n1 b\n2 c\n"
               "PPC\na <-> b 1\nb <-> c 1\nc <-> a 1\n");
}
BENCHMARK(PowerWeightedDistribution);

// E4c: the paper's own invert configuration (sparc vs half-cost SP-1).
void PaperInvertDistribution(benchmark::State& state) {
  HashingShare(state,
               "APP invert\nHOSTS\n"
               "glen 1 sun4 1\naurora 1 sun4 1\njoliet 1 sun4 1\n"
               "bonnie 128 sp1 sun4*0.5\n"
               "FOLDERS\n0 glen\n1 aurora\n2 joliet\n3-8 bonnie\n"
               "PPC\nglen <-> aurora 1\nglen <-> joliet 1\n"
               "glen <-> bonnie 2\n");
}
BENCHMARK(PaperInvertDistribution);

// E5a: link-cost sweep — identical hosts, but c's only link gets costlier;
// its share must fall monotonically.
void LinkCostDiscount(benchmark::State& state) {
  const int cost = static_cast<int>(state.range(0));
  auto adf = AdfOrDie("APP link\nHOSTS\na 1 t 1\nb 1 t 1\nc 1 t 1\n"
                      "FOLDERS\n0 b\n1 c\n"
                      "PPC\na <-> b 1\na <-> c " +
                      std::to_string(cost) + "\n");
  auto routing = RoutingTable::Build(adf);
  if (!routing.ok()) throw std::runtime_error(routing.status().ToString());
  constexpr int kKeys = 100'000;
  int to_c = 0;
  for (auto _ : state) {
    to_c = 0;
    for (std::uint32_t i = 0; i < kKeys; ++i) {
      QualifiedKey qk{adf.app_name, Key::Named("f", {i})};
      if (routing->ServerForKey(qk.ToBytes())->id == 1) ++to_c;
    }
    benchmark::DoNotOptimize(to_c);
  }
  state.counters["share_c"] = static_cast<double>(to_c) / kKeys;
  state.counters["link_cost"] = cost;
  state.SetItemsProcessed(state.iterations() * kKeys);
  state.SetLabel("c behind cost-" + std::to_string(cost) + " link");
}
BENCHMARK(LinkCostDiscount)->Arg(1)->Arg(2)->Arg(4)->Arg(9);

// E5b: no broadcasting — bytes on the wire per put are flat in the number
// of folder servers (a broadcast design would grow linearly).
void UnicastCostVsServerCount(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  std::string adf = "APP uni\nHOSTS\n";
  for (int i = 0; i < hosts; ++i) adf += "h" + std::to_string(i) + " 1 t 1\n";
  adf += "FOLDERS\n";
  for (int i = 0; i < hosts; ++i) {
    adf += std::to_string(i) + " h" + std::to_string(i) + "\n";
  }
  adf += "PPC\n";
  for (int i = 1; i < hosts; ++i) {
    adf += "h0 <-> h" + std::to_string(i) + " 1\n";
  }
  auto cluster = ClusterOrDie(AdfOrDie(adf));
  Memo memo = ClientOrDie(*cluster, "h0");
  auto value = Payload(64);
  constexpr int kPuts = 500;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kPuts; ++i) {
      (void)memo.put(Key::Named("spread", {i}), value);
    }
  }
  double bytes = 0;
  for (const auto& traffic : cluster->server("h0").peer_traffic()) {
    bytes += static_cast<double>(traffic.bytes_sent);
  }
  state.counters["outbound_bytes_per_put"] =
      bytes / (static_cast<double>(state.iterations()) * kPuts);
  state.counters["servers"] = hosts;
  state.SetItemsProcessed(state.iterations() * kPuts);
  state.SetLabel(std::to_string(hosts) + " folder servers");
}
BENCHMARK(UnicastCostVsServerCount)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
