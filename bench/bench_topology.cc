// E3 — Figure 3 + the PPC section: logical topologies.
//
// Star / Ring / Line / Mesh ADF topologies: measured hop counts of relayed
// requests must match the graph-theoretic path lengths, and per-link
// traffic must respect the topology (a star funnels everything through the
// hub; a line makes the middle machine a relay).
//
// Shape expected: latency grows with hop count; the hub/middle node's
// relayed counter carries the through-traffic.
#include "bench_common.h"

namespace dmemo::bench {
namespace {

Key KeyOwnedBy(const Cluster& cluster, const std::string& host,
               const std::string& stem) {
  auto routing = RoutingTable::Build(cluster.adf());
  if (!routing.ok()) throw std::runtime_error("routing");
  for (std::uint32_t i = 0; i < 8192; ++i) {
    Key key = Key::Named(stem, {i});
    auto owner = routing->ServerForKey(
        QualifiedKey{cluster.adf().app_name, key}.ToBytes());
    if (owner.ok() && owner->host == host) return key;
  }
  throw std::runtime_error("no key hashed to " + host);
}

// A line of n machines; all folders on the far end, so a request from m0
// relays through every intermediate machine — hop count = n-1.
void LineHops(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string adf = "APP line\nHOSTS\n";
  for (int i = 0; i < n; ++i) {
    adf += "m" + std::to_string(i) + " 1 t 1\n";
  }
  adf += "FOLDERS\n0 m" + std::to_string(n - 1) + "\nPPC\n";
  for (int i = 0; i + 1 < n; ++i) {
    adf += "m" + std::to_string(i) + " <-> m" + std::to_string(i + 1) +
           " 1\n";
  }
  auto cluster = ClusterOrDie(AdfOrDie(adf));
  Memo memo = ClientOrDie(*cluster, "m0");
  Key key = Key::Named("far");
  auto value = Payload(64);
  for (auto _ : state) {
    (void)memo.put(key, value);
    benchmark::DoNotOptimize(memo.get(key));
  }
  // Relay traffic went through every intermediate machine.
  double relayed = 0;
  for (int i = 1; i + 1 < n; ++i) {
    relayed += static_cast<double>(
        cluster->server("m" + std::to_string(i)).stats().relayed);
  }
  state.counters["hops"] = n - 1;
  state.counters["relayed_mid"] = relayed;
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(n) + "-machine line");
}
BENCHMARK(LineHops)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

// Star: leaves talk through the hub; the hub relays leaf-to-leaf traffic.
void StarThroughHub(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  std::string adf = "APP star\nHOSTS\nhub 1 t 1\n";
  for (int i = 0; i < leaves; ++i) {
    adf += "leaf" + std::to_string(i) + " 1 t 1\n";
  }
  // All folders on leaf0 so traffic from leaf1 must cross the hub.
  adf += "FOLDERS\n0 leaf0\nPPC\n";
  for (int i = 0; i < leaves; ++i) {
    adf += "hub <-> leaf" + std::to_string(i) + " 1\n";
  }
  auto cluster = ClusterOrDie(AdfOrDie(adf));
  Memo memo = ClientOrDie(*cluster, "leaf1");
  Key key = Key::Named("x");
  auto value = Payload(64);
  for (auto _ : state) {
    (void)memo.put(key, value);
    benchmark::DoNotOptimize(memo.get(key));
  }
  state.counters["hub_relayed"] =
      static_cast<double>(cluster->server("hub").stats().relayed);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("leaf->hub->leaf, " + std::to_string(leaves) + " leaves");
}
BENCHMARK(StarThroughHub)->Arg(3)->Arg(6);

// Ring of 6: opposite nodes are 3 hops apart; neighbours 1. The latency
// ratio should track the hop ratio.
void RingDistance(benchmark::State& state) {
  const int distance = static_cast<int>(state.range(0));
  constexpr int kN = 6;
  std::string adf = "APP ring\nHOSTS\n";
  for (int i = 0; i < kN; ++i) adf += "r" + std::to_string(i) + " 1 t 1\n";
  adf += "FOLDERS\n0 r" + std::to_string(distance) + "\nPPC\n";
  for (int i = 0; i < kN; ++i) {
    adf += "r" + std::to_string(i) + " <-> r" + std::to_string((i + 1) % kN) +
           " 1\n";
  }
  auto cluster = ClusterOrDie(AdfOrDie(adf));
  Memo memo = ClientOrDie(*cluster, "r0");
  Key key = Key::Named("x");
  auto value = Payload(64);
  for (auto _ : state) {
    (void)memo.put(key, value);
    benchmark::DoNotOptimize(memo.get(key));
  }
  state.counters["hops"] = distance;
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("ring distance " + std::to_string(distance));
}
BENCHMARK(RingDistance)->Arg(1)->Arg(2)->Arg(3);

// 2x3 mesh with folders spread everywhere: aggregate traffic respects the
// mesh (every machine both serves and relays).
void MeshMixedTraffic(benchmark::State& state) {
  auto cluster = ClusterOrDie(AdfOrDie(
      "APP mesh\nHOSTS\n"
      "a0 1 t 1\na1 1 t 1\na2 1 t 1\nb0 1 t 1\nb1 1 t 1\nb2 1 t 1\n"
      "FOLDERS\n0 a0\n1 a1\n2 a2\n3 b0\n4 b1\n5 b2\n"
      "PPC\n"
      "a0 <-> a1 1\na1 <-> a2 1\nb0 <-> b1 1\nb1 <-> b2 1\n"
      "a0 <-> b0 1\na1 <-> b1 1\na2 <-> b2 1\n"));
  Memo memo = ClientOrDie(*cluster, "a0");
  auto value = Payload(64);
  std::uint32_t i = 0;
  for (auto _ : state) {
    Key key = Key::Named("spread", {i++});
    (void)memo.put(key, value);
    benchmark::DoNotOptimize(memo.get(key));
  }
  double total_local = 0;
  for (const auto& host : cluster->adf().hosts) {
    total_local +=
        static_cast<double>(cluster->server(host.name).stats().local_handled);
  }
  state.counters["locally_served_total"] = total_local;
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("2x3 mesh, folders everywhere");
}
BENCHMARK(MeshMixedTraffic);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
