#include "loadgen/report.h"

#include <cstdio>
#include <cstdlib>

#include "util/metrics.h"

namespace dmemo::bench {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

void AppendU64(std::uint64_t v, std::string* out) {
  out->append(std::to_string(v));
}

void AppendPhase(const BenchPhaseResult& p, std::string* out) {
  out->append("    {\"name\": ");
  AppendEscaped(p.name, out);
  out->append(", \"workload\": ");
  AppendEscaped(p.workload, out);
  out->append(",\n     \"ops\": ");
  AppendU64(p.ops, out);
  out->append(", \"errors\": ");
  AppendU64(p.errors, out);
  out->append(", \"duration_s\": ");
  AppendDouble(p.duration_s, out);
  out->append(",\n     \"offered_rate\": ");
  AppendDouble(p.offered_rate, out);
  out->append(", \"achieved_rate\": ");
  AppendDouble(p.achieved_rate, out);
  out->append(",\n     \"mean_us\": ");
  AppendDouble(p.mean_us, out);
  out->append(", \"p50_us\": ");
  AppendU64(p.p50_us, out);
  out->append(", \"p90_us\": ");
  AppendU64(p.p90_us, out);
  out->append(", \"p99_us\": ");
  AppendU64(p.p99_us, out);
  out->append(", \"p999_us\": ");
  AppendU64(p.p999_us, out);
  out->append(", \"max_us\": ");
  AppendU64(p.max_us, out);
  out->append(",\n     \"service_p99_us\": ");
  AppendU64(p.service_p99_us, out);
  out->append(", \"service_max_us\": ");
  AppendU64(p.service_max_us, out);
  out->append(",\n     \"extra\": {");
  bool first = true;
  for (const auto& [key, value] : p.extra) {
    if (!first) out->append(", ");
    AppendEscaped(key, out);
    out->append(": ");
    AppendDouble(value, out);
    first = false;
  }
  out->append("}}");
}

}  // namespace

std::string ReportToJson(const BenchRunReport& report) {
  std::string out;
  out.append("{\n  \"schema_version\": 1,\n  \"bench\": ");
  AppendEscaped(report.bench, &out);
  out.append(",\n  \"mode\": ");
  AppendEscaped(report.mode, &out);
  out.append(",\n  \"git_sha\": ");
  AppendEscaped(report.git_sha, &out);
  out.append(",\n  \"config\": {");
  bool first = true;
  for (const auto& [key, value] : report.config) {
    if (!first) out.append(", ");
    AppendEscaped(key, &out);
    out.append(": ");
    AppendEscaped(value, &out);
    first = false;
  }
  out.append("},\n  \"phases\": [\n");
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    AppendPhase(report.phases[i], &out);
    if (i + 1 < report.phases.size()) out.append(",");
    out.append("\n");
  }
  out.append("  ]");
  if (report.include_metrics) {
    out.append(",\n  \"metrics\": {");
    first = true;
    for (const MetricSample& m : MetricsRegistry::Global().Snapshot()) {
      if (m.kind == MetricKind::kHistogram) continue;
      if (!first) out.append(",");
      out.append("\n    ");
      std::string series = m.name;
      if (!m.labels.empty()) series += "{" + m.labels + "}";
      AppendEscaped(series, &out);
      out.append(": ");
      out.append(std::to_string(m.value));
      first = false;
    }
    out.append("\n  }");
  }
  out.append("\n}\n");
  return out;
}

Status WriteReport(const std::string& path, const BenchRunReport& report) {
  const std::string json = ReportToJson(report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot write report to " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) {
    return UnavailableError("short write to " + path);
  }
  return Status::Ok();
}

std::string DiscoverGitSha() {
  const char* env = std::getenv("DMEMO_GIT_SHA");
  if (env != nullptr && *env != '\0') return env;
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
  ::pclose(pipe);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.size() == 40 ? sha : "unknown";
}

}  // namespace dmemo::bench
