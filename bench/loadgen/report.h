// Machine-readable bench run reports: the BENCH_*.json trajectory.
//
// Every harness that measures this system — the open-loop load generator
// and the closed-loop microbenches routed through DMEMO_BENCH_MAIN — emits
// the same schema-versioned JSON document, so the repo accumulates a
// comparable performance trajectory across commits and
// scripts/bench_compare.py can gate regressions mechanically.
//
// Schema (version 1, documented in docs/OBSERVABILITY.md):
//   {
//     "schema_version": 1,
//     "bench": "loadgen",
//     "mode": "open-loop" | "closed-loop",
//     "git_sha": "<sha or 'unknown'>",
//     "config": { "<key>": "<value>", ... },
//     "phases": [ { "name", "workload", "ops", "errors", "duration_s",
//                   "offered_rate", "achieved_rate", "mean_us",
//                   "p50_us", "p90_us", "p99_us", "p999_us", "max_us",
//                   "service_p99_us", "service_max_us",
//                   "extra": { ... } }, ... ],
//     "metrics": { "name{labels}": value, ... }   // counters + gauges
//   }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace dmemo::bench {

struct BenchPhaseResult {
  std::string name;
  std::string workload;  // put_get | fanout | job_jar | benchmark name
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  double duration_s = 0;
  double offered_rate = 0;   // arrivals/s the schedule asked for (open-loop)
  double achieved_rate = 0;  // ops completed / wall time
  // Latency from *intended* start time, µs (open-loop phases; all zero for
  // closed-loop phases, which have no arrival schedule to be late against).
  double mean_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  // Service time of the same ops (what a closed-loop bench would report);
  // the gap against the intended-start numbers is coordinated omission.
  std::uint64_t service_p99_us = 0;
  std::uint64_t service_max_us = 0;
  // Free-form numeric extras (closed-loop items/s, real time, counters).
  std::map<std::string, double> extra;
};

struct BenchRunReport {
  std::string bench;                // "loadgen", "bench_primitives", ...
  std::string mode;                 // "open-loop" | "closed-loop"
  std::string git_sha = "unknown";
  std::map<std::string, std::string> config;
  std::vector<BenchPhaseResult> phases;
  // When true, ReportToJson appends every counter and gauge of the global
  // metrics registry under "metrics" (histograms are the phases' job).
  bool include_metrics = true;
};

// Serializes the report (schema version 1). Deterministic key order.
std::string ReportToJson(const BenchRunReport& report);

// Writes ReportToJson(report) to `path` atomically enough for CI (tmp +
// rename is overkill here: the artifact is re-generated on failure).
Status WriteReport(const std::string& path, const BenchRunReport& report);

// Best-effort commit identity for the trajectory: DMEMO_GIT_SHA if set,
// else `git rev-parse HEAD` in the current directory, else "unknown".
std::string DiscoverGitSha();

}  // namespace dmemo::bench
