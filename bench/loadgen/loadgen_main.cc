// dmemo-loadgen: open-loop load harness for the BENCH_*.json trajectory.
//
//   dmemo-loadgen [--workload put_get|fanout|job_jar|all]
//                 [--rate ARRIVALS_PER_SEC] [--duration-s SECONDS]
//                 [--arrival poisson|fixed] [--clients N] [--threads N]
//                 [--payload BYTES] [--folders N] [--put-ratio X]
//                 [--async] [--pipeline N]
//                 [--connections N] [--server-core threads|reactor]
//                 [--hosts N | --url URL --host NAME]
//                 [--seed N] [--git-sha SHA] [--out FILE]
//
// --async switches the put_get workload to the pipelined client: arrivals
// issue put_async/get_async and up to --pipeline (default 256) calls per
// thread ride each connection at once, coalescing into packed batch frames
// (PROTOCOL.md §2.4). fanout and job_jar stay synchronous.
//
// --connections N is the high-connection sweep (DESIGN.md §14): before the
// workload phases the harness dials N extra connections to the target,
// round-trips one ping on each (the RTT distribution is reported as the
// gated "conn_ramp" phase) and holds them all open while the workloads
// run — so the reported workload latencies are measured *with* N mostly
// idle sockets registered, which is exactly the load shape the reactor
// core exists for. Requires a kernel-socket target: with --connections or
// --server-core reactor the in-process cluster runs over loopback TCP
// instead of simnet. --server-core sets DMEMO_SERVER_CORE for the
// in-process servers.
//
// Default target is an in-process simulated cluster (--hosts N memo
// servers over simnet: the full server/routing/wire path, no kernel
// sockets), which is what CI's loadgen-smoke job drives. --url points the
// harness at a running dmemo-server instead (--host must name that
// server's ADF host identity); that is the mode used to soak a real
// deployment and then read it with dmemo-stat/dmemo-top.
//
// Every phase runs the open-loop schedule of bench/loadgen/loadgen.h:
// latency is accounted from each arrival's *intended* start, so the
// reported p99/p999 include the queueing delay a closed-loop bench hides.
// Results (plus a metrics-registry snapshot) are written as schema-v1 JSON
// (bench/loadgen/report.h) to --out, default BENCH_loadgen.json.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "adf/adf.h"
#include "core/remote_engine.h"
#include "loadgen/loadgen.h"
#include "loadgen/report.h"
#include "runtime/cluster.h"
#include "server/protocol.h"
#include "transport/transport.h"
#include "util/bytes.h"
#include "util/trace.h"

namespace {

using dmemo::bench::Arrival;

struct Options {
  std::string workload = "all";
  double rate = 2000;
  double duration_s = 2.0;
  Arrival arrival = Arrival::kPoisson;
  std::size_t clients = 256;
  std::size_t threads = 4;
  std::size_t payload = 64;
  std::size_t folders = 128;
  double put_ratio = 0.5;
  bool async = false;
  std::size_t pipeline = 256;
  std::size_t connections = 0;  // extra held-open connections (TCP sweep)
  std::string server_core;      // ""=env default | threads | reactor
  int hosts = 2;
  std::string url;   // external server; empty = in-process sim cluster
  std::string host;  // ADF host identity of --url's server
  std::uint64_t seed = 1;
  std::string git_sha;
  std::string out = "BENCH_loadgen.json";
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload put_get|fanout|job_jar|all] [--rate R]\n"
      "       [--duration-s S] [--arrival poisson|fixed] [--clients N]\n"
      "       [--threads N] [--payload BYTES] [--folders N]\n"
      "       [--put-ratio X] [--async] [--pipeline N]\n"
      "       [--connections N] [--server-core threads|reactor]\n"
      "       [--hosts N | --url URL --host NAME]\n"
      "       [--seed N] [--git-sha SHA] [--out FILE]\n",
      argv0);
  return 2;
}

// ADF with n hosts, one folder server each, full unit mesh.
std::string MeshAdf(int n) {
  std::string adf = "APP loadgen\nHOSTS\n";
  for (int i = 0; i < n; ++i) {
    adf += "h" + std::to_string(i) + " 1 t 1\n";
  }
  adf += "FOLDERS\n";
  for (int i = 0; i < n; ++i) {
    adf += std::to_string(i) + " h" + std::to_string(i) + "\n";
  }
  if (n > 1) {
    adf += "PPC\n";
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        adf += "h" + std::to_string(i) + " <-> h" + std::to_string(j) +
               " 1\n";
      }
    }
  }
  return adf;
}

// Lift RLIMIT_NOFILE toward its hard cap, then clamp the sweep to what
// the resulting budget can actually hold: both ends of every in-process
// connection live in this process (2 fds each) plus headroom for the
// cluster, handles and epoll plumbing. Exhausting the table mid-ramp is
// worse than a smaller sweep — the server sheds accepts and the ramp
// degenerates into timeout noise.
std::size_t ClampConnectionsToNofile(std::size_t connections) {
  constexpr rlim_t kHeadroom = 512;
  struct rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return connections;
  const rlim_t wanted = static_cast<rlim_t>(connections) * 2 + kHeadroom;
  if (rl.rlim_cur < wanted) {
    rl.rlim_cur = std::min(wanted, rl.rlim_max);
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return connections;
  }
  const std::size_t usable =
      rl.rlim_cur > kHeadroom
          ? static_cast<std::size_t>((rl.rlim_cur - kHeadroom) / 2)
          : 0;
  if (usable < connections) {
    std::fprintf(stderr,
                 "dmemo-loadgen: RLIMIT_NOFILE %llu fits %zu connections; "
                 "clamping the sweep from %zu\n",
                 (unsigned long long)rl.rlim_cur, usable, connections);
    return usable;
  }
  return connections;
}

// Dials `count` connections to `urls` (round-robin), round-trips one ping
// on each and keeps every connection open in `held`. The RTT distribution
// becomes the gated "conn_ramp" phase: it is per-connection accept + first
// request latency while thousands of earlier sockets stay registered.
dmemo::bench::BenchPhaseResult RampConnections(
    dmemo::Transport& transport, const std::vector<std::string>& urls,
    std::size_t count, std::vector<dmemo::ConnectionPtr>& held) {
  const std::size_t ramp_threads = std::min<std::size_t>(16, count);
  std::vector<std::vector<dmemo::ConnectionPtr>> conns(ramp_threads);
  std::vector<std::vector<std::uint64_t>> rtts(ramp_threads);
  std::vector<std::uint64_t> errors(ramp_threads, 0);

  dmemo::Bytes ping_frame;
  {
    dmemo::ByteWriter w;
    w.u8(dmemo::kFrameKindRequest);
    w.u64(1);  // correlation id; one request in flight per connection
    dmemo::Request ping;
    ping.op = dmemo::Op::kPing;
    ping.EncodeTo(w);
    ping_frame = w.take();
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(ramp_threads);
  for (std::size_t t = 0; t < ramp_threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < count; i += ramp_threads) {
        const auto began = std::chrono::steady_clock::now();
        auto conn = transport.Dial(urls[i % urls.size()]);
        if (!conn.ok() || !(*conn)->Send(ping_frame).ok()) {
          ++errors[t];
          continue;
        }
        // Bounded wait: a server shedding accepts must show up as a
        // counted error, not a ramp thread wedged forever.
        auto pong = (*conn)->ReceiveFor(std::chrono::seconds(5));
        if (!pong.ok() || !pong->has_value()) {
          ++errors[t];
          continue;
        }
        rtts[t].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - began)
                .count()));
        conns[t].push_back(std::move(*conn));
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<std::uint64_t> all;
  all.reserve(count);
  for (auto& v : rtts) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&all](double q) -> std::uint64_t {
    if (all.empty()) return 0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(all.size() - 1));
    return all[idx];
  };
  double sum = 0;
  for (std::uint64_t us : all) sum += static_cast<double>(us);

  dmemo::bench::BenchPhaseResult phase;
  phase.name = "conn_ramp";
  phase.workload = "connections";
  phase.ops = all.size();
  for (std::uint64_t e : errors) phase.errors += e;
  phase.duration_s = wall;
  phase.offered_rate = static_cast<double>(count) / std::max(wall, 1e-9);
  phase.achieved_rate =
      static_cast<double>(all.size()) / std::max(wall, 1e-9);
  phase.mean_us = all.empty() ? 0 : sum / static_cast<double>(all.size());
  phase.p50_us = pct(0.50);
  phase.p90_us = pct(0.90);
  phase.p99_us = pct(0.99);
  phase.p999_us = pct(0.999);
  phase.max_us = all.empty() ? 0 : all.back();
  phase.service_p99_us = phase.p99_us;  // dial+ping has no arrival schedule
  phase.service_max_us = phase.max_us;
  phase.extra["held_connections"] = static_cast<double>(all.size());

  for (auto& v : conns) {
    for (auto& c : v) held.push_back(std::move(c));
  }
  return phase;
}

void PrintPhase(const dmemo::bench::BenchPhaseResult& p) {
  std::printf(
      "%-8s ops=%llu errors=%llu offered=%.0f/s achieved=%.0f/s\n"
      "         intended-start: mean=%.0fus p50=%lluus p90=%lluus "
      "p99=%lluus p999=%lluus max=%lluus\n"
      "         service (closed-loop view): p99=%lluus max=%lluus\n",
      p.workload.c_str(), (unsigned long long)p.ops,
      (unsigned long long)p.errors, p.offered_rate, p.achieved_rate,
      p.mean_us, (unsigned long long)p.p50_us, (unsigned long long)p.p90_us,
      (unsigned long long)p.p99_us, (unsigned long long)p.p999_us,
      (unsigned long long)p.max_us, (unsigned long long)p.service_p99_us,
      (unsigned long long)p.service_max_us);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--workload" && (v = next())) {
      opts.workload = v;
    } else if (arg == "--rate" && (v = next())) {
      opts.rate = std::strtod(v, nullptr);
    } else if (arg == "--duration-s" && (v = next())) {
      opts.duration_s = std::strtod(v, nullptr);
    } else if (arg == "--arrival" && (v = next())) {
      if (std::strcmp(v, "poisson") == 0) {
        opts.arrival = Arrival::kPoisson;
      } else if (std::strcmp(v, "fixed") == 0) {
        opts.arrival = Arrival::kFixedRate;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--clients" && (v = next())) {
      opts.clients = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads" && (v = next())) {
      opts.threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--payload" && (v = next())) {
      opts.payload = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--folders" && (v = next())) {
      opts.folders = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--put-ratio" && (v = next())) {
      opts.put_ratio = std::strtod(v, nullptr);
    } else if (arg == "--async") {
      opts.async = true;
    } else if (arg == "--pipeline" && (v = next())) {
      opts.pipeline = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--connections" && (v = next())) {
      opts.connections =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--server-core" && (v = next())) {
      if (std::strcmp(v, "threads") != 0 && std::strcmp(v, "reactor") != 0) {
        return Usage(argv[0]);
      }
      opts.server_core = v;
    } else if (arg == "--hosts" && (v = next())) {
      opts.hosts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--url" && (v = next())) {
      opts.url = v;
    } else if (arg == "--host" && (v = next())) {
      opts.host = v;
    } else if (arg == "--seed" && (v = next())) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--git-sha" && (v = next())) {
      opts.git_sha = v;
    } else if (arg == "--out" && (v = next())) {
      opts.out = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.rate <= 0 || opts.duration_s <= 0 || opts.hosts < 1 ||
      (!opts.url.empty() && opts.host.empty())) {
    return Usage(argv[0]);
  }

  if (!opts.server_core.empty()) {
    ::setenv("DMEMO_SERVER_CORE", opts.server_core.c_str(), 1);
  }
  if (opts.connections > 0) {
    opts.connections = ClampConnectionsToNofile(opts.connections);
  }

  // Build the target and one Memo handle per worker thread (many logical
  // clients multiplexed over few connections).
  std::unique_ptr<dmemo::Cluster> cluster;
  std::vector<dmemo::Memo> handles;
  // The connection sweep and the reactor core both need kernel sockets;
  // simnet has no pollable descriptor.
  const bool want_tcp =
      opts.connections > 0 || opts.server_core == "reactor";
  if (opts.url.empty()) {
    auto parsed = dmemo::ParseAdf(MeshAdf(opts.hosts));
    if (!parsed.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: bad ADF: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto started = want_tcp
                       ? dmemo::Cluster::StartLoopbackTcp(parsed->description)
                       : dmemo::Cluster::Start(parsed->description);
    if (!started.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: cluster: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    cluster = std::move(*started);
    for (std::size_t t = 0; t < std::max<std::size_t>(1, opts.threads);
         ++t) {
      const std::string host =
          "h" + std::to_string(t % static_cast<std::size_t>(opts.hosts));
      auto memo = cluster->Client(host);
      if (!memo.ok()) {
        std::fprintf(stderr, "dmemo-loadgen: client: %s\n",
                     memo.status().ToString().c_str());
        return 1;
      }
      handles.push_back(std::move(*memo));
    }
  } else {
    auto transport = dmemo::TransportMux::CreateDefault();
    const std::string adf =
        "APP loadgen\nHOSTS\n" + opts.host + " 1 t 1\nFOLDERS\n0 " +
        opts.host + "\n";
    auto registered = dmemo::RegisterAppWith(transport, opts.url, adf);
    if (!registered.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: register: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    for (std::size_t t = 0; t < std::max<std::size_t>(1, opts.threads);
         ++t) {
      dmemo::RemoteEngineOptions engine_opts;
      engine_opts.app = "loadgen";
      engine_opts.host = opts.host;
      auto engine =
          dmemo::MakeRemoteEngine(transport, opts.url, engine_opts);
      if (!engine.ok()) {
        std::fprintf(stderr, "dmemo-loadgen: dial %s: %s\n",
                     opts.url.c_str(), engine.status().ToString().c_str());
        return 1;
      }
      handles.emplace_back(std::move(*engine));
    }
  }

  dmemo::bench::OpenLoopOptions run;
  run.rate = opts.rate;
  run.arrival = opts.arrival;
  run.clients = opts.clients;
  run.threads = opts.threads;
  run.duration = std::chrono::milliseconds(
      static_cast<std::int64_t>(opts.duration_s * 1000));
  run.seed = opts.seed;

  dmemo::bench::WorkloadOptions wl;
  wl.put_ratio = opts.put_ratio;
  wl.payload_bytes = opts.payload;
  wl.folders = opts.folders;

  dmemo::bench::BenchRunReport report;
  report.bench = "loadgen";
  report.mode = "open-loop";
  report.git_sha =
      opts.git_sha.empty() ? dmemo::bench::DiscoverGitSha() : opts.git_sha;
  report.config = {
      {"arrival",
       opts.arrival == Arrival::kPoisson ? "poisson" : "fixed"},
      {"rate", std::to_string(opts.rate)},
      {"duration_s", std::to_string(opts.duration_s)},
      {"clients", std::to_string(opts.clients)},
      {"threads", std::to_string(opts.threads)},
      {"payload_bytes", std::to_string(opts.payload)},
      {"folders", std::to_string(opts.folders)},
      {"put_ratio", std::to_string(opts.put_ratio)},
      {"target", opts.url.empty()
                     ? "sim-cluster/" + std::to_string(opts.hosts)
                     : opts.url},
      {"trace_sample_rate", std::to_string(dmemo::TraceSampleRate())},
      {"latency_accounting", "intended-start"},
      {"client", opts.async ? "async-pipelined" : "sync"},
      {"pipeline", std::to_string(opts.async ? opts.pipeline : 1)},
      {"connections", std::to_string(opts.connections)},
      {"server_core",
       !opts.server_core.empty()
           ? opts.server_core
           : (std::getenv("DMEMO_SERVER_CORE") != nullptr
                  ? std::getenv("DMEMO_SERVER_CORE")
                  : "default")},
  };

  // High-connection sweep: dial + ping-validate --connections sockets and
  // hold them open across every workload phase below.
  std::vector<dmemo::ConnectionPtr> held;
  if (opts.connections > 0) {
    std::vector<std::string> urls;
    if (opts.url.empty()) {
      for (int h = 0; h < opts.hosts; ++h) {
        urls.push_back(cluster->server("h" + std::to_string(h)).address());
      }
    } else {
      urls.push_back(opts.url);
    }
    dmemo::TransportPtr ramp_transport =
        cluster != nullptr
            ? cluster->transport()
            : std::static_pointer_cast<dmemo::Transport>(
                  dmemo::TransportMux::CreateDefault());
    report.phases.push_back(RampConnections(*ramp_transport, urls,
                                            opts.connections, held));
    PrintPhase(report.phases.back());
    if (report.phases.back().errors > 0) {
      std::fprintf(stderr,
                   "dmemo-loadgen: %llu of %zu connections failed to ramp\n",
                   (unsigned long long)report.phases.back().errors,
                   opts.connections);
    }
  }

  const bool all = opts.workload == "all";
  if (all || opts.workload == "put_get") {
    if (opts.async) {
      auto op = dmemo::bench::MakePutGetAsyncOp(handles, wl);
      auto flush = [&handles](std::size_t thread) {
        handles[thread % handles.size()].flush();
      };
      report.phases.push_back(dmemo::bench::PhaseFromResult(
          "put_get_async", "put_get",
          dmemo::bench::RunOpenLoopAsync(run, op, opts.pipeline, flush)));
    } else {
      auto op = dmemo::bench::MakePutGetOp(handles, wl);
      report.phases.push_back(dmemo::bench::PhaseFromResult(
          "put_get", "put_get", dmemo::bench::RunOpenLoop(run, op)));
    }
    PrintPhase(report.phases.back());
  }
  if (all || opts.workload == "fanout") {
    auto preloaded = dmemo::bench::PreloadFanOut(handles.front(), wl);
    if (!preloaded.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: preload: %s\n",
                   preloaded.ToString().c_str());
      return 1;
    }
    auto op = dmemo::bench::MakeFanOutOp(handles, wl);
    report.phases.push_back(dmemo::bench::PhaseFromResult(
        "fanout", "fanout", dmemo::bench::RunOpenLoop(run, op)));
    PrintPhase(report.phases.back());
  }
  if (all || opts.workload == "job_jar") {
    auto op = dmemo::bench::MakeJobJarOp(handles, wl);
    report.phases.push_back(dmemo::bench::PhaseFromResult(
        "job_jar", "job_jar", dmemo::bench::RunOpenLoop(run, op)));
    PrintPhase(report.phases.back());
  }
  if (report.phases.empty()) return Usage(argv[0]);

  auto written = dmemo::bench::WriteReport(opts.out, report);
  if (!written.ok()) {
    std::fprintf(stderr, "dmemo-loadgen: %s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dmemo-loadgen: wrote %s (git %s)\n",
               opts.out.c_str(), report.git_sha.c_str());

  for (auto& conn : held) conn->Close();
  held.clear();
  handles.clear();
  if (cluster != nullptr) cluster->Shutdown();
  return 0;
}
