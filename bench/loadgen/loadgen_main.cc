// dmemo-loadgen: open-loop load harness for the BENCH_*.json trajectory.
//
//   dmemo-loadgen [--workload put_get|fanout|job_jar|all]
//                 [--rate ARRIVALS_PER_SEC] [--duration-s SECONDS]
//                 [--arrival poisson|fixed] [--clients N] [--threads N]
//                 [--payload BYTES] [--folders N] [--put-ratio X]
//                 [--async] [--pipeline N]
//                 [--hosts N | --url URL --host NAME]
//                 [--seed N] [--git-sha SHA] [--out FILE]
//
// --async switches the put_get workload to the pipelined client: arrivals
// issue put_async/get_async and up to --pipeline (default 256) calls per
// thread ride each connection at once, coalescing into packed batch frames
// (PROTOCOL.md §2.4). fanout and job_jar stay synchronous.
//
// Default target is an in-process simulated cluster (--hosts N memo
// servers over simnet: the full server/routing/wire path, no kernel
// sockets), which is what CI's loadgen-smoke job drives. --url points the
// harness at a running dmemo-server instead (--host must name that
// server's ADF host identity); that is the mode used to soak a real
// deployment and then read it with dmemo-stat/dmemo-top.
//
// Every phase runs the open-loop schedule of bench/loadgen/loadgen.h:
// latency is accounted from each arrival's *intended* start, so the
// reported p99/p999 include the queueing delay a closed-loop bench hides.
// Results (plus a metrics-registry snapshot) are written as schema-v1 JSON
// (bench/loadgen/report.h) to --out, default BENCH_loadgen.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "adf/adf.h"
#include "core/remote_engine.h"
#include "loadgen/loadgen.h"
#include "loadgen/report.h"
#include "runtime/cluster.h"
#include "transport/transport.h"
#include "util/trace.h"

namespace {

using dmemo::bench::Arrival;

struct Options {
  std::string workload = "all";
  double rate = 2000;
  double duration_s = 2.0;
  Arrival arrival = Arrival::kPoisson;
  std::size_t clients = 256;
  std::size_t threads = 4;
  std::size_t payload = 64;
  std::size_t folders = 128;
  double put_ratio = 0.5;
  bool async = false;
  std::size_t pipeline = 256;
  int hosts = 2;
  std::string url;   // external server; empty = in-process sim cluster
  std::string host;  // ADF host identity of --url's server
  std::uint64_t seed = 1;
  std::string git_sha;
  std::string out = "BENCH_loadgen.json";
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload put_get|fanout|job_jar|all] [--rate R]\n"
      "       [--duration-s S] [--arrival poisson|fixed] [--clients N]\n"
      "       [--threads N] [--payload BYTES] [--folders N]\n"
      "       [--put-ratio X] [--async] [--pipeline N]\n"
      "       [--hosts N | --url URL --host NAME]\n"
      "       [--seed N] [--git-sha SHA] [--out FILE]\n",
      argv0);
  return 2;
}

// ADF with n hosts, one folder server each, full unit mesh.
std::string MeshAdf(int n) {
  std::string adf = "APP loadgen\nHOSTS\n";
  for (int i = 0; i < n; ++i) {
    adf += "h" + std::to_string(i) + " 1 t 1\n";
  }
  adf += "FOLDERS\n";
  for (int i = 0; i < n; ++i) {
    adf += std::to_string(i) + " h" + std::to_string(i) + "\n";
  }
  if (n > 1) {
    adf += "PPC\n";
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        adf += "h" + std::to_string(i) + " <-> h" + std::to_string(j) +
               " 1\n";
      }
    }
  }
  return adf;
}

void PrintPhase(const dmemo::bench::BenchPhaseResult& p) {
  std::printf(
      "%-8s ops=%llu errors=%llu offered=%.0f/s achieved=%.0f/s\n"
      "         intended-start: mean=%.0fus p50=%lluus p90=%lluus "
      "p99=%lluus p999=%lluus max=%lluus\n"
      "         service (closed-loop view): p99=%lluus max=%lluus\n",
      p.workload.c_str(), (unsigned long long)p.ops,
      (unsigned long long)p.errors, p.offered_rate, p.achieved_rate,
      p.mean_us, (unsigned long long)p.p50_us, (unsigned long long)p.p90_us,
      (unsigned long long)p.p99_us, (unsigned long long)p.p999_us,
      (unsigned long long)p.max_us, (unsigned long long)p.service_p99_us,
      (unsigned long long)p.service_max_us);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--workload" && (v = next())) {
      opts.workload = v;
    } else if (arg == "--rate" && (v = next())) {
      opts.rate = std::strtod(v, nullptr);
    } else if (arg == "--duration-s" && (v = next())) {
      opts.duration_s = std::strtod(v, nullptr);
    } else if (arg == "--arrival" && (v = next())) {
      if (std::strcmp(v, "poisson") == 0) {
        opts.arrival = Arrival::kPoisson;
      } else if (std::strcmp(v, "fixed") == 0) {
        opts.arrival = Arrival::kFixedRate;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--clients" && (v = next())) {
      opts.clients = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads" && (v = next())) {
      opts.threads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--payload" && (v = next())) {
      opts.payload = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--folders" && (v = next())) {
      opts.folders = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--put-ratio" && (v = next())) {
      opts.put_ratio = std::strtod(v, nullptr);
    } else if (arg == "--async") {
      opts.async = true;
    } else if (arg == "--pipeline" && (v = next())) {
      opts.pipeline = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--hosts" && (v = next())) {
      opts.hosts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--url" && (v = next())) {
      opts.url = v;
    } else if (arg == "--host" && (v = next())) {
      opts.host = v;
    } else if (arg == "--seed" && (v = next())) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--git-sha" && (v = next())) {
      opts.git_sha = v;
    } else if (arg == "--out" && (v = next())) {
      opts.out = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.rate <= 0 || opts.duration_s <= 0 || opts.hosts < 1 ||
      (!opts.url.empty() && opts.host.empty())) {
    return Usage(argv[0]);
  }

  // Build the target and one Memo handle per worker thread (many logical
  // clients multiplexed over few connections).
  std::unique_ptr<dmemo::Cluster> cluster;
  std::vector<dmemo::Memo> handles;
  if (opts.url.empty()) {
    auto parsed = dmemo::ParseAdf(MeshAdf(opts.hosts));
    if (!parsed.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: bad ADF: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto started = dmemo::Cluster::Start(parsed->description);
    if (!started.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: cluster: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    cluster = std::move(*started);
    for (std::size_t t = 0; t < std::max<std::size_t>(1, opts.threads);
         ++t) {
      const std::string host =
          "h" + std::to_string(t % static_cast<std::size_t>(opts.hosts));
      auto memo = cluster->Client(host);
      if (!memo.ok()) {
        std::fprintf(stderr, "dmemo-loadgen: client: %s\n",
                     memo.status().ToString().c_str());
        return 1;
      }
      handles.push_back(std::move(*memo));
    }
  } else {
    auto transport = dmemo::TransportMux::CreateDefault();
    const std::string adf =
        "APP loadgen\nHOSTS\n" + opts.host + " 1 t 1\nFOLDERS\n0 " +
        opts.host + "\n";
    auto registered = dmemo::RegisterAppWith(transport, opts.url, adf);
    if (!registered.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: register: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    for (std::size_t t = 0; t < std::max<std::size_t>(1, opts.threads);
         ++t) {
      dmemo::RemoteEngineOptions engine_opts;
      engine_opts.app = "loadgen";
      engine_opts.host = opts.host;
      auto engine =
          dmemo::MakeRemoteEngine(transport, opts.url, engine_opts);
      if (!engine.ok()) {
        std::fprintf(stderr, "dmemo-loadgen: dial %s: %s\n",
                     opts.url.c_str(), engine.status().ToString().c_str());
        return 1;
      }
      handles.emplace_back(std::move(*engine));
    }
  }

  dmemo::bench::OpenLoopOptions run;
  run.rate = opts.rate;
  run.arrival = opts.arrival;
  run.clients = opts.clients;
  run.threads = opts.threads;
  run.duration = std::chrono::milliseconds(
      static_cast<std::int64_t>(opts.duration_s * 1000));
  run.seed = opts.seed;

  dmemo::bench::WorkloadOptions wl;
  wl.put_ratio = opts.put_ratio;
  wl.payload_bytes = opts.payload;
  wl.folders = opts.folders;

  dmemo::bench::BenchRunReport report;
  report.bench = "loadgen";
  report.mode = "open-loop";
  report.git_sha =
      opts.git_sha.empty() ? dmemo::bench::DiscoverGitSha() : opts.git_sha;
  report.config = {
      {"arrival",
       opts.arrival == Arrival::kPoisson ? "poisson" : "fixed"},
      {"rate", std::to_string(opts.rate)},
      {"duration_s", std::to_string(opts.duration_s)},
      {"clients", std::to_string(opts.clients)},
      {"threads", std::to_string(opts.threads)},
      {"payload_bytes", std::to_string(opts.payload)},
      {"folders", std::to_string(opts.folders)},
      {"put_ratio", std::to_string(opts.put_ratio)},
      {"target", opts.url.empty()
                     ? "sim-cluster/" + std::to_string(opts.hosts)
                     : opts.url},
      {"trace_sample_rate", std::to_string(dmemo::TraceSampleRate())},
      {"latency_accounting", "intended-start"},
      {"client", opts.async ? "async-pipelined" : "sync"},
      {"pipeline", std::to_string(opts.async ? opts.pipeline : 1)},
  };

  const bool all = opts.workload == "all";
  if (all || opts.workload == "put_get") {
    if (opts.async) {
      auto op = dmemo::bench::MakePutGetAsyncOp(handles, wl);
      auto flush = [&handles](std::size_t thread) {
        handles[thread % handles.size()].flush();
      };
      report.phases.push_back(dmemo::bench::PhaseFromResult(
          "put_get_async", "put_get",
          dmemo::bench::RunOpenLoopAsync(run, op, opts.pipeline, flush)));
    } else {
      auto op = dmemo::bench::MakePutGetOp(handles, wl);
      report.phases.push_back(dmemo::bench::PhaseFromResult(
          "put_get", "put_get", dmemo::bench::RunOpenLoop(run, op)));
    }
    PrintPhase(report.phases.back());
  }
  if (all || opts.workload == "fanout") {
    auto preloaded = dmemo::bench::PreloadFanOut(handles.front(), wl);
    if (!preloaded.ok()) {
      std::fprintf(stderr, "dmemo-loadgen: preload: %s\n",
                   preloaded.ToString().c_str());
      return 1;
    }
    auto op = dmemo::bench::MakeFanOutOp(handles, wl);
    report.phases.push_back(dmemo::bench::PhaseFromResult(
        "fanout", "fanout", dmemo::bench::RunOpenLoop(run, op)));
    PrintPhase(report.phases.back());
  }
  if (all || opts.workload == "job_jar") {
    auto op = dmemo::bench::MakeJobJarOp(handles, wl);
    report.phases.push_back(dmemo::bench::PhaseFromResult(
        "job_jar", "job_jar", dmemo::bench::RunOpenLoop(run, op)));
    PrintPhase(report.phases.back());
  }
  if (report.phases.empty()) return Usage(argv[0]);

  auto written = dmemo::bench::WriteReport(opts.out, report);
  if (!written.ok()) {
    std::fprintf(stderr, "dmemo-loadgen: %s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dmemo-loadgen: wrote %s (git %s)\n",
               opts.out.c_str(), report.git_sha.c_str());

  handles.clear();
  if (cluster != nullptr) cluster->Shutdown();
  return 0;
}
