#include "loadgen/loadgen.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>

#include "transferable/scalars.h"
#include "util/metrics.h"

namespace dmemo::bench {

namespace {

using Clock = std::chrono::steady_clock;

// Per-thread recording; combined after the join so the hot loop touches no
// shared state. Histograms give the shared bucket math its input; the max
// is tracked exactly because a bucket can only floor it.
struct ThreadStats {
  Histogram intended;
  Histogram service;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t max_us = 0;
  std::uint64_t service_max_us = 0;
};

std::uint64_t ElapsedMicros(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

OpenLoopResult RunOpenLoop(const OpenLoopOptions& options, const LoadOp& op) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  const std::size_t clients = std::max(threads, options.clients);
  const double rate = options.rate > 0 ? options.rate : 1.0;

  std::vector<std::unique_ptr<ThreadStats>> stats;
  for (std::size_t t = 0; t < threads; ++t) {
    stats.push_back(std::make_unique<ThreadStats>());
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline = start + options.duration;

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadStats& local = *stats[t];
      SplitMix64 rng(Mix64(options.seed + 0x9e3779b9 * (t + 1)));
      const double thread_rate = rate / static_cast<double>(threads);
      // Arrival index within this thread's stream; the logical client
      // identity walks the thread's slice of [0, clients) so each client
      // is a persistent entity, not a fresh name per request.
      std::uint64_t arrival = 0;
      double poisson_offset_s = 0;
      for (;;) {
        Clock::time_point intended;
        if (options.arrival == Arrival::kFixedRate) {
          // Global fixed-rate grid, interleaved across threads.
          const double at_s =
              static_cast<double>(arrival * threads + t) / rate;
          intended = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(at_s));
        } else {
          // Independent per-thread Poisson stream at rate/threads; the
          // superposition of the thread streams is Poisson(rate).
          const double u = std::max(1e-12, 1.0 - rng.NextUnit());
          poisson_offset_s += -std::log(u) / thread_rate;
          intended = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     poisson_offset_s));
        }
        if (intended >= deadline) break;
        // The schedule does not wait for the system: if the previous op
        // overran, `intended` is already in the past and sleep_until
        // returns immediately — the backlog is charged to latency below.
        std::this_thread::sleep_until(intended);
        const Clock::time_point actual = Clock::now();
        const std::size_t client =
            (t + static_cast<std::size_t>(arrival) * threads) % clients;
        const bool ok = op(t, client, rng);
        const Clock::time_point done = Clock::now();
        const std::uint64_t intended_us = ElapsedMicros(intended, done);
        const std::uint64_t service_us = ElapsedMicros(actual, done);
        local.intended.Observe(intended_us);
        local.service.Observe(service_us);
        local.max_us = std::max(local.max_us, intended_us);
        local.service_max_us = std::max(local.service_max_us, service_us);
        ++local.ops;
        if (!ok) ++local.errors;
        ++arrival;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      static_cast<double>(ElapsedMicros(start, Clock::now())) / 1e6;

  OpenLoopResult result;
  std::vector<std::uint64_t> intended_buckets(Histogram::kBuckets, 0);
  std::vector<std::uint64_t> service_buckets(Histogram::kBuckets, 0);
  std::uint64_t intended_sum = 0;
  for (const auto& local : stats) {
    result.ops += local->ops;
    result.errors += local->errors;
    result.max_us = std::max(result.max_us, local->max_us);
    result.service_max_us =
        std::max(result.service_max_us, local->service_max_us);
    intended_sum += local->intended.Sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      intended_buckets[i] += local->intended.BucketCount(i);
      service_buckets[i] += local->service.BucketCount(i);
    }
  }
  result.duration_s = wall_s;
  result.offered_rate = rate;
  result.achieved_rate =
      wall_s > 0 ? static_cast<double>(result.ops) / wall_s : 0;
  result.mean_us =
      result.ops > 0
          ? static_cast<double>(intended_sum) /
                static_cast<double>(result.ops)
          : 0;
  result.p50_us = HistogramPercentile(intended_buckets, 0.50);
  result.p90_us = HistogramPercentile(intended_buckets, 0.90);
  result.p99_us = HistogramPercentile(intended_buckets, 0.99);
  result.p999_us = HistogramPercentile(intended_buckets, 0.999);
  result.service_p50_us = HistogramPercentile(service_buckets, 0.50);
  result.service_p99_us = HistogramPercentile(service_buckets, 0.99);
  return result;
}

namespace {

TransferablePtr MakePayload(std::size_t bytes) {
  return MakeBytes(Bytes(bytes, 0x5a));
}

Memo& HandleFor(std::vector<Memo>& handles, std::size_t thread) {
  return handles[thread % handles.size()];
}

}  // namespace

LoadOp MakePutGetOp(std::vector<Memo>& handles, const WorkloadOptions& wl) {
  return [&handles, wl](std::size_t thread, std::size_t client,
                        SplitMix64& rng) {
    Memo& memo = HandleFor(handles, thread);
    // Spread each client over a few home folders so the key space is wide
    // but per-client locality exists (a client re-reads what it wrote).
    const auto folder = static_cast<std::uint32_t>(
        (client + rng.NextBelow(4)) % wl.folders);
    const Key key = Key::Named("lg", {folder});
    if (rng.NextUnit() < wl.put_ratio) {
      return memo.put(key, MakePayload(wl.payload_bytes)).ok();
    }
    return memo.get_skip(key).ok();
  };
}

Status PreloadFanOut(Memo& memo, const WorkloadOptions& wl) {
  for (std::uint32_t topic = 0; topic < wl.topics; ++topic) {
    DMEMO_RETURN_IF_ERROR(memo.put(Key::Named("topic", {topic}),
                                   MakePayload(wl.payload_bytes)));
  }
  return Status::Ok();
}

LoadOp MakeFanOutOp(std::vector<Memo>& handles, const WorkloadOptions& wl) {
  // One publish per `fanout` reads in expectation; get_copy examines
  // without extracting, so every subscriber sees the latest publish and
  // topics never empty out (after PreloadFanOut).
  const double publish_ratio =
      1.0 / static_cast<double>(std::max(1, wl.fanout) + 1);
  return [&handles, wl, publish_ratio](std::size_t thread,
                                       std::size_t client, SplitMix64& rng) {
    (void)client;
    Memo& memo = HandleFor(handles, thread);
    const auto topic =
        static_cast<std::uint32_t>(rng.NextBelow(wl.topics));
    const Key key = Key::Named("topic", {topic});
    if (rng.NextUnit() < publish_ratio) {
      return memo.put(key, MakePayload(wl.payload_bytes)).ok();
    }
    return memo.get_copy(key).ok();
  };
}

LoadOp MakeJobJarOp(std::vector<Memo>& handles, const WorkloadOptions& wl) {
  return [&handles, wl](std::size_t thread, std::size_t client,
                        SplitMix64& rng) {
    Memo& memo = HandleFor(handles, thread);
    const Key jar = Key::Named("jar");
    if (rng.NextUnit() < wl.put_ratio) {
      return memo.put(jar, MakePayload(wl.payload_bytes)).ok();
    }
    // Worker: take a job if one is there, deposit a result keyed by the
    // worker's identity (a later phase or a supervisor could collect it).
    auto job = memo.get_skip(jar);
    if (!job.ok()) return false;
    if (!job->has_value()) return true;  // empty jar is a valid outcome
    const auto slot = static_cast<std::uint32_t>(client % 64);
    return memo.put(Key::Named("done", {slot}), std::move(**job)).ok();
  };
}

BenchPhaseResult PhaseFromResult(const std::string& name,
                                 const std::string& workload,
                                 const OpenLoopResult& result) {
  BenchPhaseResult phase;
  phase.name = name;
  phase.workload = workload;
  phase.ops = result.ops;
  phase.errors = result.errors;
  phase.duration_s = result.duration_s;
  phase.offered_rate = result.offered_rate;
  phase.achieved_rate = result.achieved_rate;
  phase.mean_us = result.mean_us;
  phase.p50_us = result.p50_us;
  phase.p90_us = result.p90_us;
  phase.p99_us = result.p99_us;
  phase.p999_us = result.p999_us;
  phase.max_us = result.max_us;
  phase.service_p99_us = result.service_p99_us;
  phase.service_max_us = result.service_max_us;
  return phase;
}

}  // namespace dmemo::bench
