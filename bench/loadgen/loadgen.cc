#include "loadgen/loadgen.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "transferable/scalars.h"
#include "util/metrics.h"

namespace dmemo::bench {

namespace {

using Clock = std::chrono::steady_clock;

// Per-thread recording; combined after the join so the hot loop touches no
// shared state. Histograms give the shared bucket math its input; the max
// is tracked exactly because a bucket can only floor it.
struct ThreadStats {
  Histogram intended;
  Histogram service;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t max_us = 0;
  std::uint64_t service_max_us = 0;
};

std::uint64_t ElapsedMicros(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

// One thread's slice of the arrival process. Next() hands out intended
// start times until either the schedule horizon or the arrival budget is
// exhausted. The budget — ceil(thread share of rate × duration) — is what
// keeps achieved ≤ offered: a Poisson stream is free to draw arrivals a
// little faster than its rate, and without the cap a lucky draw (or a
// stalled run replaying its backlog as a burst) reports throughput that
// was never offered. With it, total arrivals ≤ rate × duration + threads.
struct ArrivalStream {
  Arrival arrival;
  std::size_t thread = 0;
  std::size_t threads = 1;
  double rate = 1.0;         // aggregate, arrivals/sec
  double thread_rate = 1.0;  // this thread's share
  Clock::time_point start;
  Clock::time_point deadline;
  std::uint64_t budget = 0;  // max arrivals for this thread

  std::uint64_t index = 0;  // arrivals handed out so far
  double poisson_offset_s = 0;

  bool Next(SplitMix64& rng, Clock::time_point* intended) {
    if (index >= budget) return false;
    if (arrival == Arrival::kFixedRate) {
      // Global fixed-rate grid, interleaved across threads.
      const double at_s =
          static_cast<double>(index * threads + thread) / rate;
      *intended = start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(at_s));
    } else {
      // Independent per-thread Poisson stream at rate/threads; the
      // superposition of the thread streams is Poisson(rate).
      const double u = std::max(1e-12, 1.0 - rng.NextUnit());
      poisson_offset_s += -std::log(u) / thread_rate;
      *intended = start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  poisson_offset_s));
    }
    if (*intended >= deadline) return false;
    ++index;
    return true;
  }
};

ArrivalStream MakeStream(const OpenLoopOptions& options, std::size_t thread,
                         std::size_t threads, double rate,
                         Clock::time_point start) {
  ArrivalStream s;
  s.arrival = options.arrival;
  s.thread = thread;
  s.threads = threads;
  s.rate = rate;
  s.thread_rate = rate / static_cast<double>(threads);
  s.start = start;
  s.deadline = start + options.duration;
  const double horizon_s =
      std::chrono::duration<double>(options.duration).count();
  s.budget = static_cast<std::uint64_t>(
      std::ceil(s.thread_rate * horizon_s));
  return s;
}

// Folds per-thread stats into a result. achieved_rate divides by the
// schedule horizon, not the measured wall clock: the wall clock includes
// the drain of the final backlog, and a run that stalls then catches up
// must not get credit for the catch-up burst (the other half of the
// achieved ≤ offered fix; the arrival budget above is the first half).
OpenLoopResult CombineStats(
    const std::vector<std::unique_ptr<ThreadStats>>& stats, double rate,
    double horizon_s, double wall_s) {
  OpenLoopResult result;
  std::vector<std::uint64_t> intended_buckets(Histogram::kBuckets, 0);
  std::vector<std::uint64_t> service_buckets(Histogram::kBuckets, 0);
  std::uint64_t intended_sum = 0;
  for (const auto& local : stats) {
    result.ops += local->ops;
    result.errors += local->errors;
    result.max_us = std::max(result.max_us, local->max_us);
    result.service_max_us =
        std::max(result.service_max_us, local->service_max_us);
    intended_sum += local->intended.Sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      intended_buckets[i] += local->intended.BucketCount(i);
      service_buckets[i] += local->service.BucketCount(i);
    }
  }
  result.duration_s = wall_s;
  result.offered_rate = rate;
  const double denom = std::max(wall_s, horizon_s);
  result.achieved_rate =
      denom > 0 ? static_cast<double>(result.ops) / denom : 0;
  result.mean_us =
      result.ops > 0
          ? static_cast<double>(intended_sum) /
                static_cast<double>(result.ops)
          : 0;
  result.p50_us = HistogramPercentile(intended_buckets, 0.50);
  result.p90_us = HistogramPercentile(intended_buckets, 0.90);
  result.p99_us = HistogramPercentile(intended_buckets, 0.99);
  result.p999_us = HistogramPercentile(intended_buckets, 0.999);
  result.service_p50_us = HistogramPercentile(service_buckets, 0.50);
  result.service_p99_us = HistogramPercentile(service_buckets, 0.99);
  return result;
}

void Record(ThreadStats& local, Clock::time_point intended,
            Clock::time_point actual, Clock::time_point done, bool ok) {
  const std::uint64_t intended_us = ElapsedMicros(intended, done);
  const std::uint64_t service_us = ElapsedMicros(actual, done);
  local.intended.Observe(intended_us);
  local.service.Observe(service_us);
  local.max_us = std::max(local.max_us, intended_us);
  local.service_max_us = std::max(local.service_max_us, service_us);
  ++local.ops;
  if (!ok) ++local.errors;
}

}  // namespace

OpenLoopResult RunOpenLoop(const OpenLoopOptions& options, const LoadOp& op) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  const std::size_t clients = std::max(threads, options.clients);
  const double rate = options.rate > 0 ? options.rate : 1.0;

  std::vector<std::unique_ptr<ThreadStats>> stats;
  for (std::size_t t = 0; t < threads; ++t) {
    stats.push_back(std::make_unique<ThreadStats>());
  }

  const Clock::time_point start = Clock::now();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadStats& local = *stats[t];
      SplitMix64 rng(Mix64(options.seed + 0x9e3779b9 * (t + 1)));
      ArrivalStream stream = MakeStream(options, t, threads, rate, start);
      Clock::time_point intended;
      while (stream.Next(rng, &intended)) {
        // The schedule does not wait for the system: if the previous op
        // overran, `intended` is already in the past and sleep_until
        // returns immediately — the backlog is charged to latency below.
        std::this_thread::sleep_until(intended);
        const Clock::time_point actual = Clock::now();
        // The logical client identity walks the thread's slice of
        // [0, clients) so each client is a persistent entity, not a fresh
        // name per request.
        const std::size_t client =
            (t + static_cast<std::size_t>(stream.index - 1) * threads) %
            clients;
        const bool ok = op(t, client, rng);
        Record(local, intended, actual, Clock::now(), ok);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      static_cast<double>(ElapsedMicros(start, Clock::now())) / 1e6;
  const double horizon_s =
      std::chrono::duration<double>(options.duration).count();
  return CombineStats(stats, rate, horizon_s, wall_s);
}

OpenLoopResult RunOpenLoopAsync(const OpenLoopOptions& options,
                                const AsyncLoadOp& op,
                                std::size_t max_inflight,
                                const FlushHint& flush) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  const std::size_t clients = std::max(threads, options.clients);
  const double rate = options.rate > 0 ? options.rate : 1.0;
  const std::size_t window_cap = std::max<std::size_t>(1, max_inflight);

  std::vector<std::unique_ptr<ThreadStats>> stats;
  for (std::size_t t = 0; t < threads; ++t) {
    stats.push_back(std::make_unique<ThreadStats>());
  }

  const Clock::time_point start = Clock::now();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadStats& local = *stats[t];
      SplitMix64 rng(Mix64(options.seed + 0x9e3779b9 * (t + 1)));
      ArrivalStream stream = MakeStream(options, t, threads, rate, start);

      struct Inflight {
        Clock::time_point intended;
        Clock::time_point actual;
        PendingOp pending;
      };
      std::deque<Inflight> window;

      // Completions may land out of order (an extraction can park behind a
      // deposit still in flight), so harvest scans the whole window rather
      // than only its head.
      auto harvest_ready = [&] {
        for (auto it = window.begin(); it != window.end();) {
          if (!it->pending.poll()) {
            ++it;
            continue;
          }
          const bool ok = it->pending.take();
          Record(local, it->intended, it->actual, Clock::now(), ok);
          it = window.erase(it);
        }
      };
      auto harvest_front_blocking = [&] {
        Inflight front = std::move(window.front());
        window.pop_front();
        // About to block: push any partial batch out now rather than
        // waiting out the formation delay timer.
        if (flush != nullptr && !front.pending.poll()) flush(t);
        const bool ok = front.pending.take();
        Record(local, front.intended, front.actual, Clock::now(), ok);
      };

      Clock::time_point intended;
      while (stream.Next(rng, &intended)) {
        std::this_thread::sleep_until(intended);
        const Clock::time_point actual = Clock::now();
        const std::size_t client =
            (t + static_cast<std::size_t>(stream.index - 1) * threads) %
            clients;
        window.push_back({intended, actual, op(t, client, rng)});
        harvest_ready();
        // A full window is backpressure: block the schedule on the oldest
        // ops, and let the stall surface as intended-start latency on the
        // arrivals queued behind it. Drain to half rather than one slot —
        // a drain-one policy degenerates to issue-one/harvest-one at
        // saturation, where every op is flushed as its own frame and the
        // formation layer never gets a batch to form. With hysteresis the
        // schedule resumes with half a window of (already overdue)
        // arrivals to issue back to back.
        if (window.size() >= window_cap) {
          while (window.size() > window_cap / 2) {
            harvest_front_blocking();
            harvest_ready();
          }
        }
      }
      while (!window.empty()) harvest_front_blocking();
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      static_cast<double>(ElapsedMicros(start, Clock::now())) / 1e6;
  const double horizon_s =
      std::chrono::duration<double>(options.duration).count();
  return CombineStats(stats, rate, horizon_s, wall_s);
}

namespace {

TransferablePtr MakePayload(std::size_t bytes) {
  return MakeBytes(Bytes(bytes, 0x5a));
}

Memo& HandleFor(std::vector<Memo>& handles, std::size_t thread) {
  return handles[thread % handles.size()];
}

}  // namespace

PendingOp PendingFromStatus(std::future<Status> f) {
  auto shared = std::make_shared<std::future<Status>>(std::move(f));
  PendingOp op;
  op.poll = [shared] {
    return shared->wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  op.take = [shared] { return shared->get().ok(); };
  return op;
}

PendingOp PendingFromValue(std::future<Result<TransferablePtr>> f) {
  auto shared =
      std::make_shared<std::future<Result<TransferablePtr>>>(std::move(f));
  PendingOp op;
  op.poll = [shared] {
    return shared->wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  op.take = [shared] { return shared->get().ok(); };
  return op;
}

LoadOp MakePutGetOp(std::vector<Memo>& handles, const WorkloadOptions& wl) {
  return [&handles, wl](std::size_t thread, std::size_t client,
                        SplitMix64& rng) {
    Memo& memo = HandleFor(handles, thread);
    // Spread each client over a few home folders so the key space is wide
    // but per-client locality exists (a client re-reads what it wrote).
    const auto folder = static_cast<std::uint32_t>(
        (client + rng.NextBelow(4)) % wl.folders);
    const Key key = Key::Named("lg", {folder});
    if (rng.NextUnit() < wl.put_ratio) {
      return memo.put(key, MakePayload(wl.payload_bytes)).ok();
    }
    return memo.get_skip(key).ok();
  };
}

AsyncLoadOp MakePutGetAsyncOp(std::vector<Memo>& handles,
                              const WorkloadOptions& wl) {
  return [&handles, wl](std::size_t thread, std::size_t client,
                        SplitMix64& rng) {
    Memo& memo = HandleFor(handles, thread);
    const auto folder = static_cast<std::uint32_t>(
        (client + rng.NextBelow(4)) % wl.folders);
    const Key key = Key::Named("lga", {folder});
    if (rng.NextUnit() < wl.put_ratio) {
      return PendingFromStatus(
          memo.put_async(key, MakePayload(wl.payload_bytes)));
    }
    // Extraction, paired with its own deposit: values deposited to a
    // folder always ≥ extractions issued against it, so no get parks past
    // the drain — a parked get resolves once the deposits ahead of it
    // land. (The paired put's future is dropped; its failure would surface
    // as the get timing out, which the error count catches.)
    (void)memo.put_async(key, MakePayload(wl.payload_bytes));
    return PendingFromValue(memo.get_async(key));
  };
}

Status PreloadFanOut(Memo& memo, const WorkloadOptions& wl) {
  for (std::uint32_t topic = 0; topic < wl.topics; ++topic) {
    DMEMO_RETURN_IF_ERROR(memo.put(Key::Named("topic", {topic}),
                                   MakePayload(wl.payload_bytes)));
  }
  return Status::Ok();
}

LoadOp MakeFanOutOp(std::vector<Memo>& handles, const WorkloadOptions& wl) {
  // One publish per `fanout` reads in expectation; get_copy examines
  // without extracting, so every subscriber sees the latest publish and
  // topics never empty out (after PreloadFanOut).
  const double publish_ratio =
      1.0 / static_cast<double>(std::max(1, wl.fanout) + 1);
  return [&handles, wl, publish_ratio](std::size_t thread,
                                       std::size_t client, SplitMix64& rng) {
    (void)client;
    Memo& memo = HandleFor(handles, thread);
    const auto topic =
        static_cast<std::uint32_t>(rng.NextBelow(wl.topics));
    const Key key = Key::Named("topic", {topic});
    if (rng.NextUnit() < publish_ratio) {
      return memo.put(key, MakePayload(wl.payload_bytes)).ok();
    }
    return memo.get_copy(key).ok();
  };
}

LoadOp MakeJobJarOp(std::vector<Memo>& handles, const WorkloadOptions& wl) {
  return [&handles, wl](std::size_t thread, std::size_t client,
                        SplitMix64& rng) {
    Memo& memo = HandleFor(handles, thread);
    const Key jar = Key::Named("jar");
    if (rng.NextUnit() < wl.put_ratio) {
      return memo.put(jar, MakePayload(wl.payload_bytes)).ok();
    }
    // Worker: take a job if one is there, deposit a result keyed by the
    // worker's identity (a later phase or a supervisor could collect it).
    auto job = memo.get_skip(jar);
    if (!job.ok()) return false;
    if (!job->has_value()) return true;  // empty jar is a valid outcome
    const auto slot = static_cast<std::uint32_t>(client % 64);
    return memo.put(Key::Named("done", {slot}), std::move(**job)).ok();
  };
}

BenchPhaseResult PhaseFromResult(const std::string& name,
                                 const std::string& workload,
                                 const OpenLoopResult& result) {
  BenchPhaseResult phase;
  phase.name = name;
  phase.workload = workload;
  phase.ops = result.ops;
  phase.errors = result.errors;
  phase.duration_s = result.duration_s;
  phase.offered_rate = result.offered_rate;
  phase.achieved_rate = result.achieved_rate;
  phase.mean_us = result.mean_us;
  phase.p50_us = result.p50_us;
  phase.p90_us = result.p90_us;
  phase.p99_us = result.p99_us;
  phase.p999_us = result.p999_us;
  phase.max_us = result.max_us;
  phase.service_p99_us = result.service_p99_us;
  phase.service_max_us = result.service_max_us;
  return phase;
}

}  // namespace dmemo::bench
